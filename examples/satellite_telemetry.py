"""Satellite telemetry pass under radiation bursts.

The paper motivates its schemes with "space systems working on a
limited combination of solar and battery power".  This example models a
telemetry-compression task on a dual-redundant on-board computer whose
orbit crosses a radiation belt: fault arrivals are *bursty* (two-state
MMPP), not Poisson.  It asks two practical questions:

1. does the adaptive SCP scheme keep its advantage when the Poisson
   assumption is violated?
2. what does one run actually look like?  (ASCII trace)

Run:  python examples/satellite_telemetry.py  [--reps 1500]
"""

import argparse
import os

from repro import (
    AdaptiveDVSPolicy,
    AdaptiveSCPPolicy,
    BurstyFaults,
    CostModel,
    EnergyModel,
    PoissonArrivalPolicy,
    RandomSource,
    TaskSpec,
    Trace,
    estimate,
    simulate_run,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--reps",
        type=int,
        default=int(os.environ.get("REPRO_EXAMPLE_REPS", 1500)),
    )
    args = parser.parse_args()

    # One telemetry frame: 7000 cycles, deadline = the downlink window.
    task = TaskSpec(
        cycles=7_000,
        deadline=10_000,
        fault_budget=6,
        fault_rate=1.2e-3,  # long-run average rate, used by the planners
        costs=CostModel.scp_favourable(),
    )

    # Orbit model: quiet cruise at 2e-4 faults/unit, belt crossings at
    # 6e-3 lasting ~600 units every ~2400 — same long-run mean as λ.
    environment = BurstyFaults(
        quiet_rate=2e-4,
        burst_rate=6e-3,
        quiet_dwell=2_400.0,
        burst_dwell=600.0,
    )
    print(f"environment: mean fault rate {environment.mean_rate:.2e} "
          f"(bursty), planner assumes λ={task.fault_rate:.2e}\n")

    print(f"{'scheme':16s} {'P(timely)':>10} {'E(timely)':>10}")
    for name, factory in [
        ("Poisson static", lambda: PoissonArrivalPolicy(1.0)),
        ("A_D (DATE'03)", AdaptiveDVSPolicy),
        ("A_D_S (paper)", AdaptiveSCPPolicy),
    ]:
        cell = estimate(
            task, factory, reps=args.reps, seed=7, faults=environment
        )
        print(f"{name:16s} {cell.p:10.4f} {cell.e:10.0f}")

    # One belt-crossing run, traced.
    print("\none A_D_S run through a belt crossing "
          "(= exec, s store, # CSCP, ! fault):")
    trace = Trace()
    result = simulate_run(
        task,
        AdaptiveSCPPolicy(),
        environment,
        EnergyModel.paper_dmr(),
        RandomSource(20).generator(),
        recorder=trace,
    )
    print(trace.render(width=76))
    print(
        f"faults detected: {result.detected_faults}, "
        f"checkpoints: {result.checkpoints}, "
        f"energy: {result.energy:.0f}"
    )


if __name__ == "__main__":
    main()
