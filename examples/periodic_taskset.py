"""Schedule a periodic task set with checkpoint-aware EDF.

The paper analyses one task; a deployed flight computer runs several.
This example builds a three-task avionics-style set, checks
checkpoint-aware schedulability analytically (fault-tolerant WCETs in
the EDF/RM tests), then simulates the schedule and compares the
analytic verdicts with observed deadline behaviour.

Run:  python examples/periodic_taskset.py
"""

from repro.core.checkpoints import CostModel
from repro.rts.feasibility import analyze
from repro.rts.scheduler import simulate_schedule
from repro.rts.taskset import PeriodicTask, TaskSet

COSTS = CostModel.scp_favourable()


def build_taskset(scale: float) -> TaskSet:
    """An avionics-flavoured set; ``scale`` inflates every WCET."""
    return TaskSet(
        [
            PeriodicTask(
                name="attitude-control",
                cycles=scale * 800.0,
                period=4_000.0,
                deadline=3_000.0,
                fault_rate=2e-4,
                fault_budget=2,
                costs=COSTS,
            ),
            PeriodicTask(
                name="nav-filter",
                cycles=scale * 1_500.0,
                period=8_000.0,
                deadline=8_000.0,
                fault_rate=2e-4,
                fault_budget=2,
                costs=COSTS,
            ),
            PeriodicTask(
                name="telemetry",
                cycles=scale * 2_500.0,
                period=16_000.0,
                deadline=16_000.0,
                fault_rate=2e-4,
                fault_budget=3,
                costs=COSTS,
            ),
        ]
    )


def main() -> None:
    for scale, label in [(1.0, "nominal load"), (2.6, "overloaded")]:
        ts = build_taskset(scale)
        report = analyze(ts)
        print(f"--- {label} (scale ×{scale}) ---")
        print(
            f"raw U = {report.raw_utilization:.3f}, fault-tolerant demand = "
            f"{report.fault_tolerant_demand:.3f}"
        )
        print(f"analysis: EDF {'OK' if report.edf_ok else 'INFEASIBLE'}, "
              f"RM {'OK' if report.rm_ok else 'INFEASIBLE'}")
        for name, response in report.rm_responses.items():
            shown = "unschedulable" if response is None else f"{response:.0f}"
            print(f"  RM worst-case response {name}: {shown}")

        for policy in ("edf", "rm"):
            result = simulate_schedule(
                ts, horizon=160_000.0, policy=policy, seed=11
            )
            misses = result.per_task_miss_ratio()
            summary = ", ".join(
                f"{name}={ratio:.2f}" for name, ratio in sorted(misses.items())
            )
            print(
                f"  simulated {policy.upper()}: miss ratio "
                f"{result.deadline_miss_ratio:.3f} ({summary}), "
                f"busy {result.utilization_achieved:.2f}, "
                f"energy {result.energy:.2e}"
            )
        print()

    print(
        "Reading: at nominal load both tests pass and the simulation "
        "meets every deadline;\nthe overloaded set fails the "
        "checkpoint-aware demand test and the simulation shows\nwho "
        "actually pays — EDF spreads the misses, RM sacrifices the "
        "longest-period task."
    )


if __name__ == "__main__":
    main()
