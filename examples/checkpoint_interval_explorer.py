"""Explore the analysis behind the paper: R1(m), R2(m) and num_SCP/CCP.

Regenerates the curves behind paper fig. 2 in ASCII: for a grid of CSCP
interval lengths, how does the expected interval time move with the
subdivision count m, where is the optimum, and how do the SCP and CCP
variants differ under store-cheap vs compare-cheap cost models?

Pure analysis — no simulation, runs instantly.

Run:  python examples/checkpoint_interval_explorer.py
"""

from repro import num_ccp, num_scp
from repro.core.renewal import (
    ccp_interval_time_for_m,
    scp_interval_time_for_m,
    scp_optimal_sublength,
)

RATE = 2 * 1.4e-3  # the paper's DMR analysis rate 2λ
MAX_M = 12


def curve(kind: str, span: float, store: float, compare: float):
    fn = scp_interval_time_for_m if kind == "scp" else ccp_interval_time_for_m
    return [
        fn(m, span=span, rate=RATE, store=store, compare=compare)
        for m in range(1, MAX_M + 1)
    ]


def sparkline(values) -> str:
    glyphs = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    if hi == lo:
        return glyphs[0] * len(values)
    return "".join(
        glyphs[int((v - lo) / (hi - lo) * (len(glyphs) - 1))] for v in values
    )


def show(kind: str, store: float, compare: float) -> None:
    label = "SCP (store between CSCPs)" if kind == "scp" else "CCP (compare between CSCPs)"
    print(f"\n{label}, t_s={store:.0f}, t_cp={compare:.0f}, rate={RATE}:")
    print(f"{'span':>6} {'R(m) for m=1..12':24s} {'opt m':>6} "
          f"{'R(opt)':>9} {'R(1)':>9} {'saving':>7}")
    for span in (60.0, 120.0, 177.0, 300.0, 500.0):
        values = curve(kind, span, store, compare)
        if kind == "scp":
            plan = num_scp(span, rate=RATE, store=store, compare=compare)
        else:
            plan = num_ccp(span, rate=RATE, store=store, compare=compare)
        saving = 1 - plan.expected_time / values[0]
        print(
            f"{span:6.0f} {sparkline(values):24s} {plan.m:6d} "
            f"{plan.expected_time:9.1f} {values[0]:9.1f} {saving:6.1%}"
        )


def main() -> None:
    print("Expected CSCP-interval time vs subdivision count m "
          "(lower is better; sparkline per row).")

    # Paper §4.1: stores cheap → subdividing with SCPs pays.
    show("scp", store=2.0, compare=20.0)
    # Paper §4.2: compares cheap → subdividing with CCPs pays.
    show("ccp", store=20.0, compare=2.0)
    # Cross-matched costs: the wrong checkpoint type stops paying.
    show("scp", store=20.0, compare=2.0)

    span = 177.0
    t1 = scp_optimal_sublength(span, rate=RATE, store=2.0)
    print(
        f"\nClosed form check at span={span:.0f}: "
        f"T̃1 = sqrt(T·t_s·coth(rT/2)) = {t1:.1f} "
        f"→ m ≈ T/T̃1 = {span / t1:.2f}"
    )


if __name__ == "__main__":
    main()
