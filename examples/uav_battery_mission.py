"""UAV mission sizing: how much work fits in the battery and deadline?

The paper's second motivating class is "autonomous airborne systems
working on limited battery supply".  This example sizes the perception
workload of a battery-powered UAV: given a control deadline and a
per-frame energy budget, find the largest utilisation the scheme
sustains — the *operating envelope* — for the DATE'03 baseline and the
paper's A_D_S, then report the battery life each implies.

Run:  python examples/uav_battery_mission.py  [--reps 600]
"""

import argparse
import os

from repro import (
    AdaptiveDVSPolicy,
    AdaptiveSCPPolicy,
    CostModel,
    TaskSpec,
    estimate,
)

DEADLINE = 10_000.0
LAMBDA = 1.4e-3  # low-altitude EMI environment
FAULT_BUDGET = 5
TARGET_P = 0.999  # flight-control reliability floor


def sustainable_utilization(policy_factory, reps: int) -> float:
    """Largest U (at f1 reference) with P(timely) ≥ TARGET_P, by bisection."""
    lo, hi = 0.5, 1.3  # U > 1 reachable: DVS can run at f2
    for _ in range(12):
        mid = (lo + hi) / 2
        task = TaskSpec(
            cycles=mid * DEADLINE,
            deadline=DEADLINE,
            fault_budget=FAULT_BUDGET,
            fault_rate=LAMBDA,
            costs=CostModel.scp_favourable(),
        )
        cell = estimate(task, policy_factory, reps=reps, seed=99)
        if cell.p >= TARGET_P:
            lo = mid
        else:
            hi = mid
    return lo


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--reps",
        type=int,
        default=int(os.environ.get("REPRO_EXAMPLE_REPS", 600)),
    )
    parser.add_argument(
        "--battery",
        type=float,
        default=5e8,
        help="battery budget in energy units",
    )
    args = parser.parse_args()

    print(f"deadline {DEADLINE:.0f}, λ={LAMBDA}, k={FAULT_BUDGET}, "
          f"reliability floor P ≥ {TARGET_P}\n")

    report = {}
    for name, factory in [
        ("A_D (DATE'03)", AdaptiveDVSPolicy),
        ("A_D_S (paper)", AdaptiveSCPPolicy),
    ]:
        u_max = sustainable_utilization(factory, args.reps)
        task = TaskSpec(
            cycles=u_max * DEADLINE,
            deadline=DEADLINE,
            fault_budget=FAULT_BUDGET,
            fault_rate=LAMBDA,
            costs=CostModel.scp_favourable(),
        )
        cell = estimate(task, factory, reps=args.reps, seed=123)
        frames = args.battery / cell.e if cell.e > 0 else float("nan")
        report[name] = (u_max, cell.e, frames)
        print(
            f"{name}: sustainable U = {u_max:.3f}  "
            f"(E/frame = {cell.e:.0f}, ≈{frames:,.0f} frames per battery)"
        )

    (u_ad, e_ad, f_ad) = report["A_D (DATE'03)"]
    (u_ads, e_ads, f_ads) = report["A_D_S (paper)"]
    print(
        f"\nA_D_S sustains {u_ads - u_ad:+.3f} utilisation over the "
        f"baseline and stretches the battery by "
        f"{(f_ads / f_ad - 1) * 100:+.1f}% at its envelope."
    )


if __name__ == "__main__":
    main()
