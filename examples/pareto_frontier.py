"""Energy/time Pareto frontier over (frequency, checkpoint count).

The paper picks *one* operating point per task — lowest expected energy
subject to the deadline.  This example shows the whole trade-off
surface instead: sweep equidistant checkpointing over every
(frequency, checkpoint-count) pair, estimate expected completion time
and energy for each, and mark the non-dominated configurations.  Points
off the frontier are strictly worse on both axes than some other
configuration — the frontier is what a designer actually chooses from.

All cells share the study seed (common random numbers), so differences
between configurations are policy effects, not sampling noise.

Run:  python examples/pareto_frontier.py  [--reps 400]
"""

import argparse
import os

from repro.api import Study, StudySpec

LAMBDA = 2e-4  # mild fault environment: f1 points stay competitive
UTILIZATION = 0.5
TARGET_P = 0.9  # reliability floor: unreliable points are ineligible


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--reps",
        type=int,
        default=int(os.environ.get("REPRO_EXAMPLE_REPS", 400)),
    )
    args = parser.parse_args()

    spec = StudySpec(
        kind="frontier",
        table="1a",
        u=UTILIZATION,
        lam=LAMBDA,
        ms=(1, 2, 4, 8),
        reps=args.reps,
        seed=2006,
    )
    study = Study(spec)
    results = study.run()

    from repro.workloads import pareto_points, render_frontier

    points = pareto_points(
        [
            (
                record.axes["f"],
                record.axes["m"],
                record.estimate.p,
                record.estimate.mean_finish_time_timely,
                record.estimate.e,
            )
            for record in results
        ],
        p_min=TARGET_P,
    )
    print(
        f"U={UTILIZATION}, λ={LAMBDA}, P ≥ {TARGET_P}, reps={spec.reps} "
        f"(spec {study.spec_hash})\n"
    )
    print(render_frontier(points))
    best = [p for p in points if p.on_frontier]
    print(
        f"\nA designer picks among the {len(best)} starred rows; "
        "everything else loses on both axes simultaneously."
    )


if __name__ == "__main__":
    main()
