"""Quickstart: protect one task with adaptive checkpointing + DVS.

Builds the paper's table-1(a) headline scenario (U=0.76, λ=1.4e-3,
k=5), runs all five schemes, and prints the (P, E) comparison — the
library's one-screen "hello world".

Run:  python examples/quickstart.py  [--reps 2000]
"""

import argparse
import os

from repro import (
    AdaptiveCCPPolicy,
    AdaptiveDVSPolicy,
    AdaptiveSCPPolicy,
    CostModel,
    KFaultTolerantPolicy,
    PoissonArrivalPolicy,
    TaskSpec,
    estimate,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--reps",
        type=int,
        default=int(os.environ.get("REPRO_EXAMPLE_REPS", 2000)),
        help="Monte-Carlo repetitions per scheme",
    )
    args = parser.parse_args()

    # A hard-real-time task on a two-processor (DMR) embedded board:
    # 7600 cycles of work, a 10000-time-unit deadline, up to 5 faults to
    # tolerate, transient faults at λ = 1.4e-3 — the paper's table 1(a).
    task = TaskSpec(
        cycles=7600,
        deadline=10_000,
        fault_budget=5,
        fault_rate=1.4e-3,
        costs=CostModel.scp_favourable(),  # cheap stores: t_s=2, t_cp=20
    )

    # The CCP variant belongs with compare-cheap hardware (paper §4.2):
    # same task, store-heavy cost model.
    task_ccp = TaskSpec(
        cycles=task.cycles,
        deadline=task.deadline,
        fault_budget=task.fault_budget,
        fault_rate=task.fault_rate,
        costs=CostModel.ccp_favourable(),  # t_s=20, t_cp=2
    )

    schemes = [
        ("Poisson (static)", lambda: PoissonArrivalPolicy(frequency=1.0), task),
        ("k-fault (static)", lambda: KFaultTolerantPolicy(frequency=1.0), task),
        ("A_D   (DATE'03) ", AdaptiveDVSPolicy, task),
        ("A_D_S (paper)   ", AdaptiveSCPPolicy, task),
        ("A_D_C (paper)   ", AdaptiveCCPPolicy, task_ccp),
    ]

    print(f"task: N={task.cycles:.0f} cycles, D={task.deadline:.0f}, "
          f"k={task.fault_budget}, λ={task.fault_rate}")
    print(f"{args.reps} Monte-Carlo runs per scheme "
          f"(A_D_C shown on its compare-cheap cost model)\n")
    print(f"{'scheme':18s} {'P(timely)':>10} {'E(timely)':>10} "
          f"{'faults/run':>11}")
    for name, factory, scheme_task in schemes:
        cell = estimate(scheme_task, factory, reps=args.reps, seed=2006)
        print(
            f"{name:18s} {cell.p:10.4f} {cell.e:10.0f} "
            f"{cell.mean_detected_faults:11.2f}"
        )

    print(
        "\nReading: the static schemes miss the deadline on most runs "
        "(P < 0.2);\nthe adaptive schemes hit P ≈ 1, and the paper's "
        "subdivided variants\n(A_D_S/A_D_C) do it with ~5-10% less "
        "energy than the DATE'03 baseline."
    )


if __name__ == "__main__":
    main()
