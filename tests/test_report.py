"""Unit tests for table rendering and shape checks."""

import pytest

from repro.experiments.report import format_table, markdown_table, shape_checks
from repro.experiments.tables import run_table


@pytest.fixture(scope="module")
def table_1a():
    # Enough reps that the headline orderings are stable.
    return run_table("1a", reps=250, seed=12)


@pytest.fixture(scope="module")
def table_2b():
    return run_table("2b", reps=250, seed=12)


class TestFormatTable:
    def test_contains_header_and_schemes(self, table_1a):
        text = format_table(table_1a)
        assert "Table 1a" in text
        for scheme in ("Poisson", "k-f-t", "A_D", "A_D_S"):
            assert scheme in text

    def test_paper_columns_optional(self, table_1a):
        with_paper = format_table(table_1a, show_paper=True)
        without = format_table(table_1a, show_paper=False)
        assert "P paper" in with_paper
        assert "P paper" not in without

    def test_all_rows_rendered(self, table_1a):
        text = format_table(table_1a)
        assert text.count("A_D_S") >= len(table_1a.rows)


class TestMarkdownTable:
    def test_structure(self, table_1a):
        md = markdown_table(table_1a)
        assert md.startswith("### Table 1a")
        assert "| U | λ | scheme |" in md
        # 8 rows × 4 schemes data lines.
        data_lines = [l for l in md.splitlines() if l.startswith("| 0.")]
        assert len(data_lines) == 32

    def test_nan_rendered(self):
        result = run_table("1b", reps=40, seed=3)
        md = markdown_table(result)
        assert "NaN" in md  # U=1.0 static cells


class TestShapeChecks:
    def test_f1_table_passes_at_modest_reps(self, table_1a):
        checks = shape_checks(table_1a)
        failed = [c for c in checks if not c.passed]
        assert not failed, "\n".join(str(c) for c in failed)

    def test_f2_table_passes_at_modest_reps(self, table_2b):
        checks = shape_checks(table_2b)
        failed = [c for c in checks if not c.passed]
        assert not failed, "\n".join(str(c) for c in failed)

    def test_checks_cover_every_row(self, table_1a):
        checks = shape_checks(table_1a)
        assert len(checks) >= 2 * len(table_1a.rows)

    def test_check_stringification(self, table_1a):
        check = shape_checks(table_1a)[0]
        assert "PASS" in str(check) or "FAIL" in str(check)


class TestStatisticalComparators:
    """Unit-level checks of the CI-based shape comparisons."""

    @staticmethod
    def _fake_cell(p, reps, energy=None):
        from repro.experiments.tables import CellResult
        from repro.sim.metrics import MeanEstimate, ProportionEstimate
        from repro.sim.montecarlo import CellEstimate
        import math

        successes = int(round(p * reps))
        energies = [energy] * max(successes, 0) if energy is not None else []
        measured = CellEstimate(
            p_timely=ProportionEstimate.from_counts(successes, reps),
            energy_timely=MeanEstimate.from_values(energies),
            energy_all=MeanEstimate.from_values(energies or [0.0]),
            mean_finish_time_timely=math.nan,
            mean_detected_faults=0.0,
            mean_checkpoints=1.0,
            mean_sub_checkpoints=0.0,
            reps=reps,
        )
        return CellResult(scheme="x", measured=measured, paper=None)

    def test_p_not_below_tolerates_noise_at_low_reps(self):
        from repro.experiments.report import _p_not_below

        a = self._fake_cell(0.55, 80)
        b = self._fake_cell(0.65, 80)
        assert _p_not_below(a, b)  # gap is within 80-rep noise

    def test_p_not_below_rejects_clear_gap_at_high_reps(self):
        from repro.experiments.report import _p_not_below

        a = self._fake_cell(0.55, 10_000)
        b = self._fake_cell(0.65, 10_000)
        assert not _p_not_below(a, b)

    def test_e_not_above_handles_nan(self):
        from repro.experiments.report import _e_not_above

        a = self._fake_cell(0.0, 50)  # no timely runs → NaN energy
        b = self._fake_cell(0.5, 50, energy=100.0)
        assert _e_not_above(a, b)
        assert _e_not_above(b, a)

    def test_e_not_above_detects_significant_excess(self):
        from repro.experiments.report import _e_not_above

        # Zero-variance energies: intervals collapse to points.
        a = self._fake_cell(1.0, 100, energy=200.0)
        b = self._fake_cell(1.0, 100, energy=100.0)
        assert not _e_not_above(a, b)
        assert _e_not_above(b, a)
