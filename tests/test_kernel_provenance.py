"""Kernel-mode provenance: every estimate knows which engine made it.

Exact and fast estimates follow different determinism contracts, so
they must never silently mix: ``CellRecord`` stamps the kernel into
its provenance (back-compat: pre-kernel files load as ``"exact"``),
``ResultSet`` enforces kernel homogeneity at construction and refuses
cross-kernel merges, ``Study`` refuses to resume an exact result set
in fast mode (and vice versa), and ``StudySpec`` hashes ``kernel``
into the spec hash — while eliding the default so every pre-kernel
spec hash is unchanged.

Also covered here (same PR, same execution-configuration seam): the
``workers=0`` validation split — ``ExecutionSettings.workers=0`` is
the documented one-per-CPU convention and must keep working, while
``make_backend("process", workers=0)`` (which has no such convention)
must be rejected loudly instead of building a broken pool — plus the
``--kernel`` CLI flag and the ``--update-goldens`` diff reporting.
"""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.api import ResultSet, Session, Study, StudySpec
from repro.api.results import CellRecord
from repro.errors import ConfigurationError, ParameterError
from repro.experiments.config import ExecutionSettings, table_spec
from repro.sim.backends import make_backend


def _small_spec(kernel="exact", seed=5):
    return StudySpec(
        kind="fixed_m",
        table="1a",
        reps=16,
        seed=seed,
        ms=(1, 2),
        kernel=kernel,
    )


@pytest.fixture(scope="module")
def exact_results():
    with Session() as session:
        return Study(_small_spec()).run(session)


@pytest.fixture(scope="module")
def fast_results():
    with Session() as session:
        return Study(_small_spec(kernel="fast")).run(session)


# ---------------------------------------------------------------------------
# CellRecord provenance


def test_records_carry_their_kernel(exact_results, fast_results):
    assert all(r.kernel == "exact" for r in exact_results)
    assert all(r.kernel == "fast" for r in fast_results)
    assert exact_results.kernel == "exact"
    assert fast_results.kernel == "fast"


def test_kernel_round_trips_through_json(fast_results):
    reloaded = ResultSet.from_json(fast_results.to_json())
    assert reloaded.kernel == "fast"
    assert all(r.kernel == "fast" for r in reloaded)
    assert reloaded.same_values(fast_results)


def test_pre_kernel_files_load_as_exact(exact_results):
    payload = exact_results.to_dict()
    for item in payload["records"]:
        # Simulate a file written before the kernel field existed.
        del item["provenance"]["kernel"]
    reloaded = ResultSet.from_dict(payload)
    assert reloaded.kernel == "exact"


def test_result_set_rejects_mixed_kernels(exact_results):
    records = exact_results.records
    mixed = records[:1] + [
        dataclasses.replace(records[1], kernel="fast")
    ]
    with pytest.raises(ConfigurationError, match="fast"):
        ResultSet(exact_results.spec_hash, mixed)


def test_merge_rejects_cross_kernel_partials(exact_results):
    keys = exact_results.keys()
    half_a = ResultSet(
        exact_results.spec_hash,
        [exact_results.record(keys[0])],
    )
    half_b_fast = ResultSet(
        exact_results.spec_hash,
        [
            dataclasses.replace(
                exact_results.record(key), kernel="fast"
            )
            for key in keys[1:]
        ],
    )
    with pytest.raises(ConfigurationError, match="kernel"):
        half_a.merge(half_b_fast)


def test_merge_of_same_kernel_partials_still_works(fast_results):
    keys = fast_results.keys()
    half_a = ResultSet(
        fast_results.spec_hash, [fast_results.record(keys[0])]
    )
    half_b = ResultSet(
        fast_results.spec_hash,
        [fast_results.record(key) for key in keys[1:]],
    )
    merged = half_a.merge(half_b)
    assert len(merged) == len(fast_results)
    assert merged.kernel == "fast"


# ---------------------------------------------------------------------------
# StudySpec hashing


def test_exact_kernel_is_elided_from_spec_hash():
    exact = _small_spec()
    assert "kernel" not in exact.to_dict()
    # The default must hash identically to a spec written before the
    # field existed — resume files from old trees keep working.
    assert exact.spec_hash == StudySpec(
        kind="fixed_m", table="1a", reps=16, seed=5, ms=(1, 2)
    ).spec_hash


def test_fast_kernel_changes_the_spec_hash():
    exact, fast = _small_spec(), _small_spec(kernel="fast")
    assert fast.to_dict()["kernel"] == "fast"
    assert fast.spec_hash != exact.spec_hash


def test_spec_rejects_unknown_kernel():
    with pytest.raises(ConfigurationError, match="kernel"):
        _small_spec(kernel="turbo")


# ---------------------------------------------------------------------------
# resume refuses to extend across kernels


def test_resume_refuses_exact_set_in_fast_mode(exact_results):
    spec = _small_spec()
    forged = ResultSet(
        spec.spec_hash,
        [
            dataclasses.replace(record, spec_hash=spec.spec_hash)
            for record in list(exact_results)[:1]
        ],
    )
    with Session(kernel="fast") as session:
        with pytest.raises(ConfigurationError, match="resume"):
            Study(spec).run(session, resume=forged)


def test_resume_refuses_fast_set_in_exact_mode(fast_results):
    # Forge a partial carrying the *exact* spec's hash but fast-kernel
    # records — the shape a user gets by renaming files around.
    spec = _small_spec()
    forged = ResultSet(
        spec.spec_hash,
        [
            dataclasses.replace(record, spec_hash=spec.spec_hash)
            for record in list(fast_results)[:1]
        ],
    )
    with Session() as session:
        with pytest.raises(ConfigurationError, match="resume"):
            Study(spec).run(session, resume=forged)


def test_fast_resume_in_fast_mode_computes_only_missing(fast_results):
    spec = _small_spec(kernel="fast")
    partial = ResultSet(
        fast_results.spec_hash,
        [fast_results.record(fast_results.keys()[0])],
        spec=fast_results.spec,
    )
    with Session() as session:
        completed = Study(spec).run(session, resume=partial)
    assert completed.same_values(fast_results)
    assert completed.kernel == "fast"


def test_session_kernel_opts_exact_specs_into_fast():
    spec = _small_spec()  # exact spec
    with Session(kernel="fast") as session:
        assert session.kernel == "fast"
        results = Study(spec).run(session)
    assert results.kernel == "fast"


# ---------------------------------------------------------------------------
# execution-configuration validation


def test_execution_settings_validates_kernel():
    assert ExecutionSettings().kernel == "exact"
    assert ExecutionSettings(kernel="fast").kernel == "fast"
    with pytest.raises(ConfigurationError, match="kernel"):
        ExecutionSettings(kernel="warp")


def test_cell_job_validates_kernel():
    spec = table_spec("1a")
    job = spec.cell_job(0.76, 1.4e-3, "A_D", reps=8, seed=1)
    assert job.kernel == "exact"
    assert dataclasses.replace(job, kernel="fast").kernel == "fast"
    with pytest.raises(ParameterError, match="kernel"):
        dataclasses.replace(job, kernel="warp")


def test_make_backend_rejects_workers_zero_for_process():
    with pytest.raises(ConfigurationError, match="workers"):
        make_backend("process", workers=0)


def test_execution_settings_workers_zero_still_means_one_per_cpu():
    # The *settings* layer documents workers=0 as one-per-CPU; it must
    # keep translating that convention before reaching make_backend.
    settings = ExecutionSettings(backend="process", workers=0)
    runner = settings.make_runner()
    try:
        assert runner is not None
        assert runner.backend.name == "process"
        assert runner.backend.workers >= 1
    finally:
        runner.close()


# ---------------------------------------------------------------------------
# CLI surface


def test_cli_parses_kernel_flag():
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(["table", "1a", "--kernel", "fast"])
    assert args.kernel == "fast"
    assert ExecutionSettings.from_cli_args(args).kernel == "fast"
    args = parser.parse_args(["table", "1a"])
    assert ExecutionSettings.from_cli_args(args).kernel == "exact"
    with pytest.raises(SystemExit):
        parser.parse_args(["table", "1a", "--kernel", "warp"])


def test_update_goldens_reports_event_level_diffs(tmp_path):
    import json

    from repro.goldens import record_matrix, update_goldens

    name = "adaptive-scp-poisson"
    directory = str(tmp_path)
    record_matrix(directory, names=[name])
    path = os.path.join(directory, f"{name}.jsonl")

    # Unchanged tree: the re-record is bit-identical.
    (update,) = update_goldens(directory, names=[name])
    assert update.identical
    assert "bit-identical" in update.render()

    # Perturb one recorded event; the next update must localise it.
    lines = open(path, encoding="utf-8").read().splitlines()
    event = json.loads(lines[5])
    assert event["kind"] == "segment"
    event["end"] = 123456.789
    lines[5] = json.dumps(event)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")

    (update,) = update_goldens(directory, names=[name])
    assert not update.identical
    assert update.changed_total == 1
    index, kind, diffs = update.changed[0]
    assert index == 4  # event 4: line 5 minus the header line
    assert diffs  # field-level old -> new pairs
    rendered = update.render()
    assert "CHANGED" in rendered and "123456.789" in rendered

    # And the rewritten file is clean again.
    (final,) = update_goldens(directory, names=[name])
    assert final.identical
