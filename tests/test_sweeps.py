"""Tests for the ablation sweeps."""

import pytest

from repro.errors import ParameterError
from repro.experiments.config import table_spec
from repro.experiments.sweeps import (
    FixedSubdivisionSCPPolicy,
    fixed_m_study,
    optimal_m_curves,
    rate_factor_study,
    utilization_sweep,
)
from repro.sim.task import TaskSpec
from repro.core.checkpoints import CostModel


@pytest.fixture
def task():
    return TaskSpec(
        cycles=7600.0,
        deadline=10_000.0,
        fault_budget=5,
        fault_rate=1.4e-3,
        costs=CostModel.scp_favourable(),
    )


class TestFixedSubdivisionPolicy:
    def test_pins_m(self, task):
        from repro.sim.state import ExecutionState

        policy = FixedSubdivisionSCPPolicy(3)
        state = ExecutionState.fresh(task)
        policy.start(state)
        assert policy.plan(state).m == 3

    def test_rejects_bad_m(self):
        with pytest.raises(ParameterError):
            FixedSubdivisionSCPPolicy(0)


class TestFixedMStudy:
    def test_keys_and_adaptive_included(self, task):
        results = fixed_m_study(task, ms=[1, 4], reps=60, seed=1)
        assert set(results) == {"m=1", "m=4", "adaptive"}

    def test_adaptive_competitive_with_best_fixed(self, task):
        results = fixed_m_study(task, ms=[1, 2, 4, 8], reps=200, seed=2)
        best_fixed_p = max(
            cell.p for name, cell in results.items() if name != "adaptive"
        )
        assert results["adaptive"].p >= best_fixed_p - 0.05

    def test_empty_ms_rejected(self, task):
        with pytest.raises(ParameterError):
            fixed_m_study(task, ms=[], reps=10, seed=0)


class TestRateFactorStudy:
    def test_returns_requested_factors(self, task):
        results = rate_factor_study(task, factors=(1.0, 2.0), reps=60, seed=3)
        assert set(results) == {1.0, 2.0}
        for cell in results.values():
            assert cell.p > 0.9  # both factors keep the scheme viable


class TestUtilizationSweep:
    def test_curve_shapes(self):
        spec = table_spec("1a")
        curves = utilization_sweep(
            spec, u_grid=[0.7, 0.8], lam=1.4e-3, reps=80, seed=4
        )
        assert set(curves) == set(spec.schemes)
        for points in curves.values():
            assert [u for u, _ in points] == [0.7, 0.8]

    def test_static_p_collapses_with_utilization(self):
        spec = table_spec("1a")
        curves = utilization_sweep(
            spec, u_grid=[0.60, 0.82], lam=1.4e-3, reps=150, seed=5
        )
        poisson = curves["Poisson"]
        assert poisson[0][1].p > poisson[1][1].p
        adaptive = curves["A_D_S"]
        assert adaptive[1][1].p > 0.9  # stays near 1 where static collapses


class TestOptimalMCurves:
    def test_curves_for_each_kind(self):
        curves = optimal_m_curves(
            [100.0, 200.0], rate=2.8e-3, store=2.0, compare=20.0
        )
        assert len(curves) == 4  # 2 spans × {scp, ccp}
        kinds = {c.kind for c in curves}
        assert kinds == {"scp", "ccp"}

    def test_marked_optimum_is_curve_minimum(self):
        curves = optimal_m_curves([200.0], rate=2.8e-3, store=2.0, compare=20.0)
        for curve in curves:
            assert curve.optimal_value == min(curve.values)
            assert curve.ms[curve.values.index(min(curve.values))] == curve.optimal_m

    def test_empty_spans_rejected(self):
        with pytest.raises(ParameterError):
            optimal_m_curves([], rate=1e-3, store=2.0, compare=20.0)
