"""Deterministic end-to-end runs of the *adaptive* schemes.

Scripted fault times drive the full fig.-6/7 machinery — speed
selection, interval(), num_SCP replanning — and the tests assert the
externally visible consequences (speed switches, interval changes,
budget decrements) rather than re-deriving every timestamp.
"""

import pytest

from repro.core.checkpoints import CostModel
from repro.core.schemes import (
    AdaptiveCCPPolicy,
    AdaptiveDVSPolicy,
    AdaptiveSCPPolicy,
)
from repro.sim.executor import simulate_run
from repro.sim.faults import ScriptedFaults
from repro.sim.task import TaskSpec
from repro.sim.trace import Trace


def make_task(**overrides):
    params = dict(
        cycles=7600.0,
        deadline=10_000.0,
        fault_budget=5,
        fault_rate=1.4e-3,
        costs=CostModel.scp_favourable(),
    )
    params.update(overrides)
    return TaskSpec(**params)


class TestAdaptiveDVS:
    def test_fault_free_run_is_deterministic(self):
        task = make_task()
        a = simulate_run(task, AdaptiveDVSPolicy(), ScriptedFaults([]))
        b = simulate_run(task, AdaptiveDVSPolicy(), ScriptedFaults([]))
        assert a.finish_time == b.finish_time
        assert a.energy == b.energy
        assert a.completed and a.timely

    def test_starts_fast_when_f1_infeasible(self):
        # Table-1a parameters: t_est(f1) ≈ 10833 > 10000.
        task = make_task()
        trace = Trace()
        simulate_run(task, AdaptiveDVSPolicy(), ScriptedFaults([]), recorder=trace)
        assert trace.speeds[0].frequency == 2.0

    def test_switches_down_at_fault_when_slack_allows(self):
        task = make_task()
        trace = Trace()
        # One fault at t=1000: by then enough work retired at f2 that
        # t_est(Rc, f1) ≤ Rd → the policy drops to f1 (fig. 6 line 15).
        result = simulate_run(
            task, AdaptiveDVSPolicy(), ScriptedFaults([1000.0]), recorder=trace
        )
        assert result.detected_faults == 1
        frequencies = [s.frequency for s in trace.speeds]
        assert frequencies[0] == 2.0
        assert 1.0 in frequencies[1:]
        assert result.completed and result.timely

    def test_budget_decrements_per_detected_fault(self):
        task = make_task()
        result = simulate_run(
            task, AdaptiveDVSPolicy(), ScriptedFaults([500.0, 1500.0, 2500.0])
        )
        assert result.detected_faults == 3

    def test_infeasible_task_aborts_early(self):
        # N far beyond what f2 can deliver by D.
        task = make_task(cycles=25_000.0)
        result = simulate_run(task, AdaptiveDVSPolicy(), ScriptedFaults([]))
        assert not result.completed
        assert result.finish_time == 0.0


class TestAdaptiveSCP:
    def test_uses_subdivision(self):
        task = make_task()
        trace = Trace()
        result = simulate_run(
            task, AdaptiveSCPPolicy(), ScriptedFaults([]), recorder=trace
        )
        assert result.sub_checkpoints > 0
        assert result.completed

    def test_scp_commits_partial_interval_on_fault(self):
        # Same fault, same parameters: A_D_S loses less work than A_D
        # because it restarts from the last clean store.
        task = make_task()
        fault = [3000.0]
        ads = simulate_run(task, AdaptiveSCPPolicy(), ScriptedFaults(fault))
        ad = simulate_run(task, AdaptiveDVSPolicy(), ScriptedFaults(fault))
        assert ads.completed and ad.completed
        assert ads.cycles_executed < ad.cycles_executed

    def test_replans_interval_after_fault(self):
        task = make_task()
        policy = AdaptiveSCPPolicy()
        trace = Trace()
        simulate_run(task, policy, ScriptedFaults([1000.0]), recorder=trace)
        # After the fault the run drops to f1: stores take longer (2
        # cycles at f1 vs 1 time unit at f2) and the plan is rebuilt —
        # visible as a new CSCP cadence in the trace.
        cscp_times = [c.time for c in trace.checkpoints]
        assert len(cscp_times) > 2
        gaps = [b - a for a, b in zip(cscp_times, cscp_times[1:])]
        assert max(gaps) > min(gaps) * 1.05  # cadence changed mid-run

    def test_faulty_run_costs_more_energy(self):
        task = make_task()
        clean = simulate_run(task, AdaptiveSCPPolicy(), ScriptedFaults([]))
        faulty = simulate_run(
            task, AdaptiveSCPPolicy(), ScriptedFaults([2000.0, 4000.0])
        )
        assert faulty.cycles_executed > clean.cycles_executed


class TestAdaptiveCCP:
    def test_early_detection_beats_cscp_detection(self):
        # Same single fault: A_D_C detects at the next CCP, so it wastes
        # less wall-clock than A_D, which waits for the interval end.
        task = make_task(costs=CostModel.ccp_favourable())
        fault = [3000.0]
        adc = simulate_run(task, AdaptiveCCPPolicy(), ScriptedFaults(fault))
        ad = simulate_run(task, AdaptiveDVSPolicy(), ScriptedFaults(fault))
        assert adc.completed and ad.completed
        assert adc.detected_faults == ad.detected_faults == 1

    def test_completes_with_many_faults(self):
        task = make_task(costs=CostModel.ccp_favourable())
        faults = [float(t) for t in range(500, 5000, 500)]
        result = simulate_run(task, AdaptiveCCPPolicy(), ScriptedFaults(faults))
        assert result.completed
        assert result.detected_faults >= 5
