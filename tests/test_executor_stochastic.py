"""The executor against the closed-form renewal predictions.

These are the strongest end-to-end correctness tests in the suite: the
Monte-Carlo executor must land on the analytic expected completion time
and timely-completion probability of :mod:`repro.core.analysis` for
static schemes.
"""

import math

import pytest

from repro.core.analysis import (
    static_expected_time,
    static_schedule,
    static_timely_probability,
)
from repro.core.checkpoints import CostModel
from repro.sim.executor import simulate_run
from repro.sim.faults import PoissonFaults
from repro.sim.montecarlo import run_many, summarize
from repro.sim.task import TaskSpec

from tests.conftest import make_fixed_policy

COSTS = CostModel.scp_favourable()


def run_cells(task, interval, reps, seed, frequency=1.0):
    return run_many(
        task,
        lambda: make_fixed_policy(interval_time=interval, frequency=frequency),
        reps=reps,
        seed=seed,
    )


class TestExpectedCompletionTime:
    def test_matches_renewal_sum_uniform(self):
        # 10 intervals of 100 with rate 2e-3: visible fault pressure.
        task = TaskSpec(
            cycles=1000.0,
            deadline=1e9,
            fault_budget=10,
            fault_rate=2e-3,
            costs=COSTS,
        )
        schedule = static_schedule(1000.0, 100.0, checkpoint_cost=22.0, rate=2e-3)
        expected = static_expected_time(schedule)
        results = run_cells(task, interval=100.0, reps=4000, seed=11)
        mean = sum(r.finish_time for r in results) / len(results)
        assert mean == pytest.approx(expected, rel=0.02)

    def test_matches_renewal_sum_with_tail(self):
        task = TaskSpec(
            cycles=950.0,
            deadline=1e9,
            fault_budget=10,
            fault_rate=2e-3,
            costs=COSTS,
        )
        schedule = static_schedule(950.0, 300.0, checkpoint_cost=22.0, rate=2e-3)
        expected = static_expected_time(schedule)
        results = run_cells(task, interval=300.0, reps=4000, seed=13)
        mean = sum(r.finish_time for r in results) / len(results)
        assert mean == pytest.approx(expected, rel=0.03)

    def test_speed_two_halves_everything(self):
        task = TaskSpec(
            cycles=1000.0,
            deadline=1e9,
            fault_budget=10,
            fault_rate=1e-3,
            costs=COSTS,
        )
        # At f2: interval time 50, cost 11, same cycle layout.
        schedule = static_schedule(500.0, 50.0, checkpoint_cost=11.0, rate=1e-3)
        expected = static_expected_time(schedule)
        results = run_cells(task, interval=50.0, reps=4000, seed=17, frequency=2.0)
        mean = sum(r.finish_time for r in results) / len(results)
        assert mean == pytest.approx(expected, rel=0.03)


class TestTimelyProbability:
    @pytest.mark.parametrize(
        "deadline,seed",
        [(1500.0, 21), (1400.0, 22), (1350.0, 23)],
    )
    def test_matches_negative_binomial(self, deadline, seed):
        task = TaskSpec(
            cycles=1000.0,
            deadline=deadline,
            fault_budget=10,
            fault_rate=2e-3,
            costs=COSTS,
        )
        schedule = static_schedule(1000.0, 100.0, checkpoint_cost=22.0, rate=2e-3)
        expected = static_timely_probability(schedule, deadline)
        results = run_cells(task, interval=100.0, reps=4000, seed=seed)
        p = sum(1 for r in results if r.timely) / len(results)
        sigma = math.sqrt(max(expected * (1 - expected), 1e-6) / 4000)
        assert abs(p - expected) < max(5 * sigma, 0.01)

    def test_paper_poisson_cell_probability(self):
        # Table 1(b) U=0.92, λ=1e-4: published P = 0.3914.
        task = TaskSpec(
            cycles=9200.0,
            deadline=10_000.0,
            fault_budget=1,
            fault_rate=1e-4,
            costs=COSTS,
        )
        interval = math.sqrt(2 * 22 / 1e-4)
        schedule = static_schedule(
            9200.0, interval, checkpoint_cost=22.0, rate=1e-4
        )
        analytic = static_timely_probability(schedule, 10_000.0)
        assert analytic == pytest.approx(0.3914, abs=0.05)
        results = run_cells(task, interval=interval, reps=3000, seed=29)
        p = sum(1 for r in results if r.timely) / len(results)
        assert p == pytest.approx(analytic, abs=0.035)


class TestEnergyConsistency:
    def test_energy_tracks_expected_cycles(self):
        task = TaskSpec(
            cycles=1000.0,
            deadline=1e9,
            fault_budget=10,
            fault_rate=2e-3,
            costs=COSTS,
        )
        schedule = static_schedule(1000.0, 100.0, checkpoint_cost=22.0, rate=2e-3)
        expected_time = static_expected_time(schedule)
        results = run_cells(task, interval=100.0, reps=4000, seed=31)
        cell = summarize(results)
        # At f1, energy = 4·cycles = 4·time.
        assert cell.energy_all.value == pytest.approx(4 * expected_time, rel=0.02)

    def test_dual_process_doubles_fault_pressure(self):
        task = TaskSpec(
            cycles=1000.0,
            deadline=1e9,
            fault_budget=10,
            fault_rate=1e-3,
            costs=COSTS,
        )
        single = run_many(
            task,
            lambda: make_fixed_policy(interval_time=100.0),
            reps=3000,
            seed=37,
            faults=PoissonFaults(1e-3),
        )
        from repro.sim.faults import DualPoissonFaults

        dual = run_many(
            task,
            lambda: make_fixed_policy(interval_time=100.0),
            reps=3000,
            seed=37,
            faults=DualPoissonFaults(1e-3),
        )
        schedule = static_schedule(1000.0, 100.0, checkpoint_cost=22.0, rate=2e-3)
        expected_dual = static_expected_time(schedule)
        mean_single = sum(r.finish_time for r in single) / len(single)
        mean_dual = sum(r.finish_time for r in dual) / len(dual)
        assert mean_dual == pytest.approx(expected_dual, rel=0.03)
        assert mean_dual > mean_single
