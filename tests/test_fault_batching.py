"""Event-for-event conformance of the batched fault streams.

The batched :class:`~repro.sim.faults.FaultStream` pre-draws gaps in
chunks (vectorised where the process allows) and turns them into
arrival times with an anchored cumulative sum.  The contract is that
the arrivals are **bit-identical** to the seed's one-gap-at-a-time
iterator — the same generator consumed in the same order, the same
left-to-right float additions.  This module pins that contract for
every shipped :class:`~repro.sim.faults.FaultProcess`:

* :class:`LegacyFaultStream` below is a verbatim copy of the seed's
  lazy iterator, fed by the same scalar gap closures the seed built;
* identity is asserted for pure ``pop`` consumption, for segment-wise
  ``take_until``/``drain_until`` consumption, and for adversarial
  interleavings of all three.
"""

import math

import numpy as np
import pytest

from repro.sim.faults import (
    BurstyFaults,
    DualPoissonFaults,
    FaultStream,
    PoissonFaults,
    ScriptedFaults,
    WeibullFaults,
)

HORIZON = 50_000.0


class LegacyFaultStream:
    """The seed's sequential iterator, copied verbatim (the reference)."""

    def __init__(self, draw_gap, start: float = 0.0) -> None:
        self._draw_gap = draw_gap
        self._clock = float(start)
        self._next = None

    def peek(self) -> float:
        if self._next is None:
            gap = self._draw_gap()
            self._next = math.inf if gap is None else self._clock + gap
        return self._next

    def pop(self) -> float:
        value = self.peek()
        if math.isfinite(value):
            self._clock = value
        self._next = None
        return value


def legacy_draw_gap(process, rng):
    """The seed's scalar gap closures, per process type."""
    if isinstance(process, PoissonFaults):
        if process.rate == 0:
            return lambda: None
        rate = process.rate
        return lambda: rng.exponential(1.0 / rate)
    if isinstance(process, DualPoissonFaults):
        merged = 2.0 * process.rate_per_processor
        if merged == 0:
            return lambda: None
        return lambda: rng.exponential(1.0 / merged)
    if isinstance(process, WeibullFaults):
        shape, scale = process.shape, process.scale
        return lambda: scale * rng.weibull(shape)
    if isinstance(process, BurstyFaults):
        state = {"bursting": False, "until": rng.exponential(process.quiet_dwell)}

        def draw_gap():
            gap = 0.0
            while True:
                rate = (
                    process.burst_rate if state["bursting"] else process.quiet_rate
                )
                window = state["until"]
                candidate = rng.exponential(1.0 / rate) if rate > 0 else math.inf
                if candidate <= window:
                    state["until"] = window - candidate
                    return gap + candidate
                gap += window
                state["bursting"] = not state["bursting"]
                dwell = (
                    process.burst_dwell
                    if state["bursting"]
                    else process.quiet_dwell
                )
                state["until"] = rng.exponential(dwell)

        return draw_gap
    if isinstance(process, ScriptedFaults):
        remaining = list(process.times)
        last = [0.0]

        def draw_gap():
            if not remaining:
                return None
            nxt = remaining.pop(0)
            gap = nxt - last[0]
            last[0] = nxt
            return gap

        return draw_gap
    raise AssertionError(f"no legacy closure for {process!r}")


PROCESSES = [
    PoissonFaults(1.4e-3),
    PoissonFaults(0.05),
    DualPoissonFaults(7e-4),
    WeibullFaults(shape=0.7, scale=900.0),
    WeibullFaults(shape=1.8, scale=400.0),
    BurstyFaults(
        quiet_rate=2e-4, burst_rate=8e-3, quiet_dwell=3000.0, burst_dwell=300.0
    ),
    ScriptedFaults([1.5, 3.25, 10.0, 10.5, 4000.0]),
]


def _legacy_events(process, seed, horizon=HORIZON, limit=100_000):
    stream = LegacyFaultStream(legacy_draw_gap(process, np.random.default_rng(seed)))
    events = []
    while (
        math.isfinite(stream.peek())
        and stream.peek() <= horizon
        and len(events) < limit
    ):
        events.append(stream.pop())
    return events


@pytest.mark.parametrize("process", PROCESSES, ids=lambda p: type(p).__name__)
@pytest.mark.parametrize("seed", [0, 7, 2006])
class TestEventForEventIdentity:
    def test_pop_sequence_matches_legacy(self, process, seed):
        """Pure pop consumption: every arrival bit-equal to the seed's."""
        legacy = _legacy_events(process, seed)
        stream = process.stream(np.random.default_rng(seed))
        batched = [stream.pop() for _ in legacy]
        assert batched == legacy  # exact float equality, element-wise
        if len(legacy) < 100_000:
            assert stream.peek() > HORIZON

    def test_take_until_matches_legacy(self, process, seed):
        """Segment-wise draining visits exactly the same events."""
        legacy = _legacy_events(process, seed)
        stream = process.stream(np.random.default_rng(seed))
        rng = np.random.default_rng(seed + 1)
        collected = []
        t = 0.0
        while t < HORIZON:
            t += rng.exponential(HORIZON / 40.0)
            collected.extend(stream.take_until(min(t, HORIZON)))
        assert collected == legacy

    def test_interleaved_consumption_matches_legacy(self, process, seed):
        """Adversarial mix of peek/pop/take_until/drain_until."""
        target = 500
        legacy = _legacy_events(process, seed, horizon=math.inf, limit=10 * target)
        stream = process.stream(np.random.default_rng(seed))
        rng = np.random.default_rng(seed + 2)
        collected = []
        while len(collected) < target:
            choice = rng.integers(0, 4)
            if choice == 0:
                value = stream.peek()  # must not consume
                assert stream.peek() == value
            elif choice == 1:
                value = stream.pop()
                if math.isfinite(value):
                    collected.append(value)
                else:
                    break  # exhausted (scripted processes)
            elif choice == 2:
                head = stream.peek()
                if math.isfinite(head):
                    span = head + float(rng.exponential(200.0))
                    collected.extend(stream.take_until(span))
            else:
                head = stream.peek()
                if math.isfinite(head):
                    taken, nxt = stream.drain_until(head)
                    collected.extend(taken)
                    assert nxt == stream.peek()
        assert collected == legacy[: len(collected)]
        # Either we hit the target or the process genuinely ran dry.
        assert len(collected) >= target or len(collected) == len(legacy)

    def test_chunk_one_equals_default_chunking(self, process, seed):
        """The pre-draw size is invisible: chunk=1 (the legacy laziness)
        and the growing default produce the same events."""
        lazy = process.stream(np.random.default_rng(seed), chunk=1)
        default = process.stream(np.random.default_rng(seed))
        for _ in range(300):
            a, b = lazy.pop(), default.pop()
            assert a == b
            if not math.isfinite(a):
                break


class TestStreamBasics:
    def test_zero_rate_is_exhausted(self):
        stream = PoissonFaults(0.0).stream(np.random.default_rng(0))
        assert stream.peek() == math.inf
        assert stream.pop() == math.inf
        assert stream.take_until(1e12) == []

    def test_scripted_exhaustion_reports_inf(self):
        stream = ScriptedFaults([1.0, 2.0]).stream()
        assert stream.take_until(5.0) == [1.0, 2.0]
        assert stream.peek() == math.inf
        assert stream.pop() == math.inf

    def test_take_until_before_first_event_is_empty(self):
        stream = ScriptedFaults([5.0]).stream()
        assert stream.take_until(4.999) == []
        assert stream.peek() == 5.0

    def test_drain_until_returns_next_arrival(self):
        stream = ScriptedFaults([1.0, 2.0, 7.0]).stream()
        taken, nxt = stream.drain_until(3.0)
        assert taken == [1.0, 2.0]
        assert nxt == 7.0
        taken, nxt = stream.drain_until(10.0)
        assert taken == [7.0]
        assert nxt == math.inf

    def test_advance_past_counts(self):
        stream = PoissonFaults(0.01).stream(np.random.default_rng(3))
        reference = process_events = _legacy_events(PoissonFaults(0.01), 3, 500.0)
        assert stream.advance_past(500.0) == len(process_events)
        assert reference == process_events

    def test_fixed_chunk_must_be_positive(self):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            FaultStream(lambda: 1.0, chunk=0)
