"""The execution-backend seam: protocol, planning, and conformance.

Backends only decide *where* a block runs; determinism lives in the
block-keyed seeding and the block-ordered merge above them.  These
tests pin the seam itself: planning covers rep ranges exactly, every
shipped backend satisfies the protocol and agrees with the serial
reference, custom backends plug into :class:`BatchRunner`, and the
distributed stub documents (and enforces) its unimplemented contract.
"""

from functools import partial

import pytest

from repro.core.checkpoints import CostModel
from repro.core.schemes import PoissonArrivalPolicy
from repro.errors import ParameterError
from repro.sim.backends import (
    BlockTask,
    CellJob,
    DistributedBackend,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    execute_block,
    plan_blocks,
)
from repro.sim.fastpath import StaticCellJob, static_cell_for_scheme
from repro.sim.parallel import BatchRunner
from repro.sim.task import TaskSpec


@pytest.fixture
def task():
    return TaskSpec(
        cycles=7600.0,
        deadline=10_000.0,
        fault_budget=5,
        fault_rate=1.4e-3,
        costs=CostModel.scp_favourable(),
    )


@pytest.fixture
def jobs(task):
    static = StaticCellJob(
        spec=static_cell_for_scheme(task, "Poisson", 1.0), reps=90, seed=4
    )
    executor = CellJob(
        task=task,
        policy_factory=partial(PoissonArrivalPolicy, 1.0),
        reps=50,
        seed=4,
    )
    return [static, executor]


class TestPlanning:
    def test_blocks_cover_every_job(self, jobs):
        tasks = plan_blocks(jobs, 40)
        by_job = {}
        for t in tasks:
            by_job.setdefault(t.job_index, []).append(t)
        assert [(t.block, t.start, t.stop) for t in by_job[0]] == [
            (0, 0, 40), (1, 40, 80), (2, 80, 90)
        ]
        assert [(t.block, t.start, t.stop) for t in by_job[1]] == [
            (0, 0, 40), (1, 40, 50)
        ]

    def test_block_size_validated(self, jobs):
        with pytest.raises(ParameterError):
            plan_blocks(jobs, 0)

    def test_tasks_are_in_job_then_block_order(self, jobs):
        tasks = plan_blocks(jobs, 25)
        order = [(t.job_index, t.block) for t in tasks]
        assert order == sorted(order)


class TestProtocolConformance:
    @pytest.mark.parametrize(
        "backend_factory",
        [SerialBackend, partial(ProcessBackend, 2), DistributedBackend],
        ids=["serial", "process", "distributed"],
    )
    def test_satisfies_protocol(self, backend_factory):
        backend = backend_factory()
        assert isinstance(backend, ExecutionBackend)
        assert isinstance(backend.name, str)
        backend.close()
        backend.close()  # idempotent

    def test_process_backend_matches_serial(self, jobs):
        tasks = plan_blocks(jobs, 30)
        serial = SerialBackend().run_tasks(tasks)
        backend = ProcessBackend(2)
        try:
            pooled = backend.run_tasks(tasks)
        finally:
            backend.close()
        assert len(pooled) == len(serial) == len(tasks)
        for a, b in zip(serial, pooled):
            assert repr(a.finalize()) == repr(b.finalize())

    def test_execute_block_is_the_single_entry_point(self, jobs):
        task = plan_blocks(jobs, 90)[0]
        acc = execute_block(task)
        assert acc.reps == task.stop - task.start

    def test_process_backend_validates_workers(self):
        with pytest.raises(ParameterError):
            ProcessBackend(0)


class TestDistributedSurface:
    """The off-host contract's local half (the socket transport itself
    is covered by tests/test_distributed*.py and the conformance
    suite)."""

    def test_url_recorded_but_nothing_started(self):
        backend = DistributedBackend(url="tcp://127.0.0.1:0")
        assert backend.url == "tcp://127.0.0.1:0"
        assert backend.coordinator_url is None  # lazy until a batch
        backend.close()

    def test_empty_task_list_returns_empty(self):
        # Regression: the stub used to raise even for zero tasks.
        backend = DistributedBackend()
        assert backend.run_tasks([]) == []
        assert backend.coordinator_url is None
        backend.close()

    def test_tasks_it_receives_are_picklable(self, jobs):
        # The documented contract: payloads must pickle.
        import pickle

        for block_task in plan_blocks(jobs, 30):
            restored = pickle.loads(pickle.dumps(block_task))
            assert isinstance(restored, BlockTask)
            assert restored.stop == block_task.stop

    def test_duplicate_delivery_is_idempotent(self, jobs):
        # At-least-once transports may recompute a block; re-running
        # the same BlockTask must reproduce the identical accumulator.
        block_task = plan_blocks(jobs, 45)[0]
        first = execute_block(block_task)
        second = execute_block(block_task)
        assert repr(first.finalize()) == repr(second.finalize())


class TestCustomBackendPlugsIn:
    def test_batchrunner_accepts_explicit_backend(self, jobs):
        class CountingBackend(SerialBackend):
            name = "counting"

            def __init__(self):
                self.calls = 0

            def run_tasks(self, tasks):
                self.calls += 1
                return super().run_tasks(tasks)

        backend = CountingBackend()
        runner = BatchRunner(backend=backend, chunk_size=30)
        estimates = runner.run_cells(jobs)
        reference = BatchRunner.serial(chunk_size=30).run_cells(jobs)
        assert backend.calls == 1
        assert all(
            a.same_values(b) for a, b in zip(estimates, reference)
        )
