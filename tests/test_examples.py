"""Smoke tests: every example script runs end to end.

``REPRO_EXAMPLE_REPS`` is set low so the whole file stays fast; the
examples' own defaults are higher.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def run_example(path: Path, extra_env=None, args=()) -> str:
    env = dict(os.environ, REPRO_EXAMPLE_REPS="60")
    env.update(extra_env or {})
    proc = subprocess.run(
        [sys.executable, str(path), *args],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path):
    out = run_example(path, args=["--reps", "40"] if "explorer" not in path.name
                      and "taskset" not in path.name else ())
    assert out.strip(), f"{path.name} produced no output"


def test_quickstart_output_shape():
    out = run_example(EXAMPLES[EXAMPLES.index(
        next(p for p in EXAMPLES if p.name == "quickstart.py")
    )], args=["--reps", "60"])
    assert "A_D_S" in out
    assert "P(timely)" in out


def test_explorer_is_deterministic():
    path = next(p for p in EXAMPLES if p.name == "checkpoint_interval_explorer.py")
    assert run_example(path) == run_example(path)


def test_example_spec_file_is_a_valid_study():
    """The shipped spec file loads into the façade (the CI smoke step
    runs it end to end; this keeps the parse/validation check in
    tier-1)."""
    from repro.api import Study

    spec_path = (
        Path(__file__).resolve().parent.parent / "examples" / "table_a.spec.json"
    )
    study = Study.from_file(str(spec_path))
    assert study.spec.kind == "table"
    assert study.spec.table == "1a"
    assert len(study.cells()) == 32  # 8 rows x 4 schemes
