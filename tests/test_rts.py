"""Tests for the real-time-systems substrate (task sets, feasibility,
scheduler)."""

import math

import pytest

from repro.core.checkpoints import CostModel
from repro.errors import ParameterError
from repro.rts.feasibility import (
    analyze,
    edf_feasible,
    fault_tolerant_wcet,
    optimal_checkpoint_count,
    rm_response_times,
)
from repro.rts.scheduler import simulate_schedule
from repro.rts.taskset import PeriodicTask, TaskSet

COSTS = CostModel.scp_favourable()


def make_task(name="t1", cycles=1000.0, period=5000.0, deadline=None, **kw):
    return PeriodicTask(
        name=name,
        cycles=cycles,
        period=period,
        deadline=deadline if deadline is not None else period,
        fault_rate=kw.pop("fault_rate", 1e-4),
        fault_budget=kw.pop("fault_budget", 2),
        costs=kw.pop("costs", COSTS),
    )


class TestPeriodicTask:
    def test_utilization(self):
        assert make_task().utilization() == pytest.approx(0.2)
        assert make_task().utilization(2.0) == pytest.approx(0.1)

    def test_release_times(self):
        releases = list(make_task(period=100.0, deadline=100.0).release_times(350.0))
        assert releases == [0.0, 100.0, 200.0, 300.0]

    def test_job_spec_round_trip(self):
        job = make_task(deadline=4000.0).job_spec()
        assert job.cycles == 1000.0
        assert job.deadline == 4000.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            make_task(name="")
        with pytest.raises(ParameterError):
            make_task(cycles=0)
        with pytest.raises(ParameterError):
            make_task(deadline=6000.0)  # deadline > period
        with pytest.raises(ParameterError):
            make_task(fault_rate=-1.0)


class TestTaskSet:
    def test_total_utilization(self):
        ts = TaskSet([make_task("a"), make_task("b", cycles=2000.0)])
        assert ts.total_utilization() == pytest.approx(0.6)

    def test_hyperperiod(self):
        ts = TaskSet(
            [
                make_task("a", period=40.0, deadline=40.0),
                make_task("b", period=60.0, deadline=60.0),
            ]
        )
        assert ts.hyperperiod() == pytest.approx(120.0)

    def test_rm_order(self):
        ts = TaskSet(
            [
                make_task("slow", period=9000.0, deadline=9000.0),
                make_task("fast", period=1000.0, deadline=1000.0),
            ]
        )
        assert [t.name for t in ts.rate_monotonic_order()] == ["fast", "slow"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ParameterError):
            TaskSet([make_task("a"), make_task("a")])

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            TaskSet([])

    def test_by_name(self):
        ts = TaskSet([make_task("a")])
        assert ts.by_name("a").name == "a"
        with pytest.raises(ParameterError):
            ts.by_name("zz")


class TestFeasibility:
    def test_optimal_checkpoint_count_near_sqrt(self):
        n = optimal_checkpoint_count(1000.0, 4, 22.0)
        ideal = math.sqrt(4 * 1000 / 22)
        assert abs(n - ideal) <= 1.0

    def test_wcet_formula(self):
        n = optimal_checkpoint_count(1000.0, 4, 22.0)
        expected = 1000 + n * 22 + 4 * (1000 / n + 22)
        assert fault_tolerant_wcet(1000.0, 4, 22.0) == pytest.approx(expected)

    def test_wcet_zero_faults(self):
        assert fault_tolerant_wcet(1000.0, 0, 22.0) == pytest.approx(1022.0)

    def test_wcet_scales_with_frequency(self):
        slow = fault_tolerant_wcet(1000.0, 2, 22.0, frequency=1.0)
        fast = fault_tolerant_wcet(1000.0, 2, 22.0, frequency=2.0)
        assert fast == pytest.approx(slow / 2)

    def test_edf_feasible_light_load(self):
        ts = TaskSet([make_task("a"), make_task("b", cycles=500.0)])
        assert edf_feasible(ts)

    def test_edf_infeasible_overload(self):
        ts = TaskSet(
            [
                make_task("a", cycles=3000.0),
                make_task("b", cycles=3000.0, period=5000.0),
            ]
        )
        assert not edf_feasible(ts)

    def test_rm_response_times_increase_with_lower_priority(self):
        ts = TaskSet(
            [
                make_task("hi", cycles=200.0, period=1000.0, deadline=1000.0),
                make_task("lo", cycles=500.0, period=5000.0, deadline=5000.0),
            ]
        )
        responses = rm_response_times(ts)
        assert responses["hi"] < responses["lo"]

    def test_rm_unschedulable_reported_none(self):
        ts = TaskSet(
            [
                make_task("hi", cycles=600.0, period=1000.0, deadline=1000.0),
                make_task("lo", cycles=3000.0, period=5000.0, deadline=5000.0),
            ]
        )
        responses = rm_response_times(ts)
        assert responses["lo"] is None

    def test_analyze_report(self):
        ts = TaskSet([make_task("a"), make_task("b", cycles=500.0)])
        report = analyze(ts)
        assert report.edf_ok
        assert report.rm_ok
        assert report.fault_tolerant_demand > report.raw_utilization


class TestScheduler:
    def test_single_task_all_deadlines_met(self):
        ts = TaskSet([make_task("a", cycles=1000.0, period=5000.0)])
        result = simulate_schedule(ts, horizon=50_000.0, seed=1)
        assert len(result.jobs) == 10
        assert result.deadline_miss_ratio == 0.0

    def test_overload_misses_deadlines(self):
        ts = TaskSet(
            [
                make_task("a", cycles=4000.0, period=5000.0),
                make_task("b", cycles=4000.0, period=5000.0),
            ]
        )
        result = simulate_schedule(ts, horizon=50_000.0, seed=1)
        assert result.deadline_miss_ratio > 0.3

    def test_edf_honours_urgent_deadline_rm_ignores(self):
        # 'urgent' has a long period (RM: low priority) but a tight
        # relative deadline.  EDF runs it first and meets every job; RM
        # lets 'steady' preempt and misses every 'urgent' job.
        ts = TaskSet(
            [
                make_task("urgent", cycles=300.0, period=10_000.0,
                          deadline=700.0, fault_rate=0.0, fault_budget=2),
                make_task("steady", cycles=250.0, period=1000.0,
                          deadline=1000.0, fault_rate=0.0, fault_budget=2),
            ]
        )
        edf = simulate_schedule(ts, horizon=50_000.0, policy="edf", seed=2)
        rm = simulate_schedule(ts, horizon=50_000.0, policy="rm", seed=2)
        assert edf.per_task_miss_ratio()["urgent"] == 0.0
        assert rm.per_task_miss_ratio()["urgent"] == 1.0
        assert edf.deadline_miss_ratio < rm.deadline_miss_ratio

    def test_faults_inflate_response_times(self):
        quiet = TaskSet([make_task("a", fault_rate=0.0)])
        noisy = TaskSet([make_task("a", fault_rate=2e-3)])
        r_quiet = simulate_schedule(quiet, horizon=100_000.0, seed=3)
        r_noisy = simulate_schedule(noisy, horizon=100_000.0, seed=3)
        mean = lambda r: sum(
            j.response_time for j in r.jobs if j.response_time is not None
        ) / max(1, sum(1 for j in r.jobs if j.response_time is not None))
        assert mean(r_noisy) > mean(r_quiet)

    def test_energy_accumulates(self):
        ts = TaskSet([make_task("a")])
        result = simulate_schedule(ts, horizon=20_000.0, seed=4)
        assert result.energy > 0
        assert 0 < result.utilization_achieved < 1

    def test_preemption_counted(self):
        ts = TaskSet(
            [
                make_task("long", cycles=3000.0, period=20_000.0,
                          deadline=20_000.0),
                make_task("short", cycles=100.0, period=700.0, deadline=700.0),
            ]
        )
        result = simulate_schedule(ts, horizon=40_000.0, policy="edf", seed=5)
        assert sum(j.preemptions for j in result.jobs) > 0

    def test_reproducible(self):
        ts = TaskSet([make_task("a", fault_rate=1e-3)])
        a = simulate_schedule(ts, horizon=30_000.0, seed=6)
        b = simulate_schedule(ts, horizon=30_000.0, seed=6)
        assert [j.completed_at for j in a.jobs] == [j.completed_at for j in b.jobs]

    def test_per_task_miss_ratio(self):
        ts = TaskSet([make_task("a")])
        result = simulate_schedule(ts, horizon=30_000.0, seed=7)
        ratios = result.per_task_miss_ratio()
        assert set(ratios) == {"a"}

    def test_validation(self):
        ts = TaskSet([make_task("a")])
        with pytest.raises(ParameterError):
            simulate_schedule(ts, horizon=0.0)
        with pytest.raises(ParameterError):
            simulate_schedule(ts, horizon=100.0, policy="fifo")
        with pytest.raises(ParameterError):
            simulate_schedule(ts, horizon=100.0, frequency=0.0)
