"""Tests for the sensitivity / crossover analysis."""

import pytest

from repro.errors import ParameterError
from repro.experiments.config import table_spec
from repro.experiments.sensitivity import (
    cost_ratio_frontier,
    operating_map,
    render_operating_map,
    subdivision_benefit,
)


class TestOperatingMap:
    @pytest.fixture(scope="class")
    def points(self):
        spec = table_spec("1a")
        return operating_map(
            spec,
            u_grid=[0.55, 0.80],
            lam_grid=[1e-4, 1.4e-3],
            reps=150,
            seed=5,
        )

    def test_grid_coverage(self, points):
        assert len(points) == 4
        assert {(p.u, p.lam) for p in points} == {
            (0.55, 1e-4),
            (0.80, 1e-4),
            (0.55, 1.4e-3),
            (0.80, 1.4e-3),
        }

    def test_high_pressure_point_goes_adaptive(self, points):
        # U=0.80, λ=1.4e-3: statics collapse; the subdivided scheme wins.
        point = next(p for p in points if p.u == 0.80 and p.lam == 1.4e-3)
        assert point.winner in ("A_D_S", "A_D")
        assert point.cell("A_D_S").p > 0.9

    def test_easy_point_prefers_cheap_static(self, points):
        # U=0.55, λ=1e-4: everyone completes; statics use less energy.
        point = next(p for p in points if p.u == 0.55 and p.lam == 1e-4)
        assert point.winner in ("Poisson", "k-f-t")

    def test_render(self, points):
        text = render_operating_map(points, table_spec("1a").schemes)
        assert "λ \\ U" in text
        assert "S=A_D_S" in text
        # Two λ rows rendered.
        assert text.count("e-0") >= 2

    def test_validation(self):
        spec = table_spec("1a")
        with pytest.raises(ParameterError):
            operating_map(spec, [], [1e-4], reps=10)
        with pytest.raises(ParameterError):
            render_operating_map([], spec.schemes)


class TestCostRatioFrontier:
    # At λ·T ≈ 0.1 the crossover is crisp: each variant subdivides only
    # on its own side of the cost split.  (At the paper's heavier
    # λ·T ≈ 0.56 both keep m ≥ 2 everywhere — subdivision always pays.)
    RATE = 5e-4
    RATIOS = (0.02, 0.1, 0.5, 1.0, 2.0, 10.0, 50.0)

    def test_scp_subdivision_vanishes_as_stores_get_expensive(self):
        frontier = cost_ratio_frontier(200.0, rate=self.RATE, ratios=self.RATIOS)
        m_scp = [m for _, m, _ in frontier]
        assert m_scp[0] > 1
        assert m_scp[-1] == 1
        assert all(b <= a for a, b in zip(m_scp, m_scp[1:]))

    def test_ccp_mirrors_scp(self):
        frontier = cost_ratio_frontier(200.0, rate=self.RATE, ratios=self.RATIOS)
        m_ccp = [m for _, _, m in frontier]
        assert m_ccp[0] == 1
        assert m_ccp[-1] > 1
        assert all(b >= a for a, b in zip(m_ccp, m_ccp[1:]))

    def test_heavy_pressure_always_subdivides_something(self):
        frontier = cost_ratio_frontier(200.0, rate=2.8e-3, ratios=self.RATIOS)
        for _ratio, m_scp, m_ccp in frontier:
            assert max(m_scp, m_ccp) >= 2

    def test_validation(self):
        with pytest.raises(ParameterError):
            cost_ratio_frontier(0.0, rate=1e-3)


class TestSubdivisionBenefit:
    def test_benefit_grows_with_fault_pressure(self):
        rows = subdivision_benefit(
            [50.0, 150.0, 400.0, 900.0], rate=2.8e-3, store=2.0, compare=20.0
        )
        pressures = [p for p, _, _ in rows]
        scp_savings = [s for _, s, _ in rows]
        assert pressures == sorted(pressures)
        assert scp_savings == sorted(scp_savings)
        assert scp_savings[-1] > 0.2

    def test_no_benefit_without_faults(self):
        rows = subdivision_benefit([200.0], rate=1e-9, store=2.0, compare=20.0)
        assert rows[0][1] == pytest.approx(0.0, abs=1e-6)
        assert rows[0][2] == pytest.approx(0.0, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ParameterError):
            subdivision_benefit([], rate=1e-3, store=2.0, compare=20.0)
