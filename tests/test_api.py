"""Public-API integrity: everything advertised exists and works."""

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ advertises missing {name}"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.core.analysis",
            "repro.core.checkpoints",
            "repro.core.dvs",
            "repro.core.intervals",
            "repro.core.optimizer",
            "repro.core.renewal",
            "repro.core.schemes",
            "repro.sim",
            "repro.sim.energy",
            "repro.sim.engine",
            "repro.sim.executor",
            "repro.sim.fastpath",
            "repro.sim.faults",
            "repro.sim.metrics",
            "repro.sim.montecarlo",
            "repro.sim.rng",
            "repro.sim.state",
            "repro.sim.task",
            "repro.sim.trace",
            "repro.rts",
            "repro.rts.feasibility",
            "repro.rts.scheduler",
            "repro.rts.taskset",
            "repro.extensions",
            "repro.extensions.multi_speed",
            "repro.extensions.security",
            "repro.extensions.tmr",
            "repro.experiments",
            "repro.experiments.config",
            "repro.experiments.paper_data",
            "repro.experiments.report",
            "repro.experiments.sensitivity",
            "repro.experiments.sweeps",
            "repro.experiments.tables",
            "repro.cli",
            "repro.errors",
        ],
    )
    def test_module_imports(self, module):
        imported = importlib.import_module(module)
        assert imported.__doc__, f"{module} lacks a module docstring"

    def test_module_all_lists_resolve(self):
        for module_name in (
            "repro.core.intervals",
            "repro.core.renewal",
            "repro.core.optimizer",
            "repro.core.schemes",
            "repro.sim.executor",
            "repro.sim.faults",
            "repro.sim.fastpath",
            "repro.experiments.sensitivity",
        ):
            module = importlib.import_module(module_name)
            for name in module.__all__:
                assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_readme_quickstart_runs(self):
        # The literal README snippet, at tiny reps.
        from repro import (
            AdaptiveDVSPolicy,
            AdaptiveSCPPolicy,
            CostModel,
            TaskSpec,
            estimate,
        )

        task = TaskSpec(
            cycles=7600,
            deadline=10_000,
            fault_budget=5,
            fault_rate=1.4e-3,
            costs=CostModel.scp_favourable(),
        )
        paper = estimate(task, AdaptiveSCPPolicy, reps=120, seed=42)
        base = estimate(task, AdaptiveDVSPolicy, reps=120, seed=42)
        assert paper.p > 0.95 and base.p > 0.95
        assert paper.e < base.e

    def test_public_classes_have_docstrings(self):
        for name in repro.__all__:
            if name.startswith("__"):
                continue
            obj = getattr(repro, name)
            if isinstance(obj, type) or callable(obj):
                assert getattr(obj, "__doc__", None), f"{name} lacks a docstring"
