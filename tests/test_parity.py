"""Executor/fast-path parity: the fastpath docstring, made executable.

:mod:`repro.sim.fastpath` promises to reproduce the event executor's
semantics for the static schemes exactly (same ``P``, same
timely-conditional ``E``).  The two implementations share no hot-path
code, so agreement over a *randomized* grid of (scheme, frequency, U,
λ, k) cells is strong evidence both are right — much stronger than the
handful of hand-picked cells in ``tests/test_fastpath.py``.

The grid is drawn from a seeded PRNG (reproducible run to run) and the
tolerances are derived from the estimates' own confidence intervals at
99.9%, scaled up — this is a parity check, not a flakiness generator.
"""

import math
import random
from functools import partial

import pytest

from repro.core.checkpoints import CostModel
from repro.core.schemes import KFaultTolerantPolicy, PoissonArrivalPolicy
from repro.sim.fastpath import simulate_static_cell, static_cell_for_scheme
from repro.sim.metrics import wilson_interval
from repro.sim.montecarlo import estimate
from repro.sim.rng import RandomSource
from repro.sim.task import TaskSpec

DEADLINE = 10_000.0
EXECUTOR_REPS = 1200
FASTPATH_REPS = 12_000

_POLICIES = {"Poisson": PoissonArrivalPolicy, "k-f-t": KFaultTolerantPolicy}


def _draw_cases(count: int, seed: int = 20060317):
    """A reproducible random grid of static-scheme cells."""
    rng = random.Random(seed)
    cases = []
    for index in range(count):
        frequency = rng.choice([1.0, 2.0])
        u = rng.uniform(0.55, 0.97)
        lam = 10 ** rng.uniform(-4.0, math.log10(2e-3))
        budget = rng.randint(1, 6)
        scheme = rng.choice(["Poisson", "k-f-t"])
        costs = rng.choice(
            [CostModel.scp_favourable(), CostModel.ccp_favourable()]
        )
        task = TaskSpec(
            cycles=round(u * frequency * DEADLINE),
            deadline=DEADLINE,
            fault_budget=budget,
            fault_rate=lam,
            costs=costs,
        )
        cases.append(
            pytest.param(
                task,
                scheme,
                frequency,
                1000 + index,
                id=f"{scheme}-f{frequency:.0f}-U{u:.2f}-lam{lam:.1e}-k{budget}",
            )
        )
    return cases


def _half_width(low: float, high: float) -> float:
    return (high - low) / 2.0


class TestRandomizedParity:
    @pytest.mark.parametrize("task,scheme,frequency,seed", _draw_cases(6))
    def test_p_and_timely_e_agree(self, task, scheme, frequency, seed):
        policy = _POLICIES[scheme]
        slow = estimate(
            task, partial(policy, frequency), reps=EXECUTOR_REPS, seed=seed
        )
        spec = static_cell_for_scheme(task, scheme, frequency)
        fast = simulate_static_cell(
            spec, reps=FASTPATH_REPS, rng=RandomSource(seed + 1).generator()
        )

        # P: tolerance from both estimators' Wilson intervals at 99.9%,
        # plus a small floor for the extreme-P corners.
        slow_ci = wilson_interval(
            round(slow.p * EXECUTOR_REPS), EXECUTOR_REPS, 0.999
        )
        fast_ci = wilson_interval(
            round(fast.p * FASTPATH_REPS), FASTPATH_REPS, 0.999
        )
        tolerance = _half_width(*slow_ci) + _half_width(*fast_ci) + 0.01
        assert fast.p == pytest.approx(slow.p, abs=tolerance)

        # Timely-conditional E: only meaningful when both sides actually
        # observed a healthy timely sample.  The stored intervals are at
        # 95%; scale to ~99.9% (×1.7) and add a 1% relative floor.
        if slow.energy_timely.count >= 100 and fast.energy_timely.count >= 100:
            e_tolerance = 1.7 * (
                _half_width(slow.energy_timely.low, slow.energy_timely.high)
                + _half_width(fast.energy_timely.low, fast.energy_timely.high)
            ) + 0.01 * abs(slow.e)
            assert fast.e == pytest.approx(slow.e, abs=e_tolerance)
        if slow.p == 0.0 and fast.p == 0.0:
            assert math.isnan(slow.e) and math.isnan(fast.e)

    @pytest.mark.parametrize("task,scheme,frequency,seed", _draw_cases(3, seed=77))
    def test_parity_suite_is_reproducible(self, task, scheme, frequency, seed):
        """Same seeds ⇒ same numbers — the suite itself is deterministic."""
        policy = _POLICIES[scheme]
        spec = static_cell_for_scheme(task, scheme, frequency)
        again = [
            (
                estimate(task, partial(policy, frequency), reps=60, seed=seed),
                simulate_static_cell(
                    spec, reps=500, rng=RandomSource(seed).generator()
                ),
            )
            for _ in range(2)
        ]
        assert again[0][0].same_values(again[1][0])
        assert again[0][1].same_values(again[1][1])


class TestFaultFreeParity:
    """λ = 0 removes all randomness: both paths must agree exactly."""

    @pytest.mark.parametrize("frequency", [1.0, 2.0])
    def test_energy_matches_closed_form(self, frequency):
        costs = CostModel.scp_favourable()
        task = TaskSpec(
            cycles=4000.0,
            deadline=DEADLINE,
            fault_budget=3,
            fault_rate=0.0,
            costs=costs,
        )
        spec = static_cell_for_scheme(task, "Poisson", frequency)
        assert spec.interval_time == pytest.approx(task.cycles / frequency)
        fast = simulate_static_cell(
            spec, reps=50, rng=RandomSource(0).generator()
        )
        slow = estimate(
            task, partial(PoissonArrivalPolicy, frequency), reps=5, seed=0
        )
        assert fast.p == 1.0 == slow.p
        # One interval closed by one CSCP, no retries anywhere.
        from repro.sim.energy import EnergyModel

        per_cycle = EnergyModel.paper_dmr().segment_energy(frequency, 1.0)
        expected = (task.cycles + costs.checkpoint_cycles) * per_cycle
        assert fast.e == pytest.approx(expected)
        assert slow.e == pytest.approx(expected)
