"""End-to-end reproduction regression: every table's shape criteria.

These are the tests that say "the reproduction reproduces".  Reps are
kept moderate (seeded) so the whole file stays under a couple of
minutes; the benchmark harness runs the same checks at higher reps.
"""

import math

import pytest

from repro.experiments.config import all_table_specs, table_spec
from repro.experiments.report import shape_checks
from repro.experiments.tables import run_table

REPS = 250
SEED = 2006


@pytest.fixture(scope="module")
def all_results():
    return {
        spec.table_id: run_table(spec, reps=REPS, seed=SEED)
        for spec in all_table_specs()
    }


@pytest.mark.parametrize("table_id", [s.table_id for s in all_table_specs()])
def test_shape_criteria(all_results, table_id):
    checks = shape_checks(all_results[table_id])
    failed = [c for c in checks if not c.passed]
    assert not failed, "\n".join(str(c) for c in failed)


class TestQuantitativeAgreement:
    """Beyond orderings: measured values track the published ones."""

    def test_static_energy_magnitudes(self, all_results):
        # Published static-at-f1 energies are ≈39,000; ours must land
        # within 15% (the paper's own cells vary by ~2%).
        for table_id in ("1a", "3a"):
            for row in all_results[table_id].rows:
                for scheme in ("Poisson", "k-f-t"):
                    cell = row.cell(scheme)
                    if math.isnan(cell.e) or cell.paper is None:
                        continue
                    assert cell.e == pytest.approx(cell.paper.e, rel=0.15)

    def test_f2_energy_magnitudes(self, all_results):
        for table_id in ("2a", "4a"):
            for row in all_results[table_id].rows:
                cell = row.cell("Poisson")
                if math.isnan(cell.e) or cell.paper is None:
                    continue
                assert cell.e == pytest.approx(cell.paper.e, rel=0.15)

    def test_adaptive_p_near_one_at_f1_tables(self, all_results):
        for table_id in ("1a", "3a"):
            ours = all_results[table_id].schemes[-1]
            for row in all_results[table_id].rows:
                assert row.cell(ours).p >= 0.98

    def test_static_p_small_at_high_utilization(self, all_results):
        for table_id in ("1a", "3a"):
            for row in all_results[table_id].rows:
                if row.u >= 0.80:
                    assert row.cell("Poisson").p < 0.2
                    assert row.cell("k-f-t").p < 0.2

    def test_u1_rows_are_infeasible_for_static(self, all_results):
        for table_id in ("1b", "3b"):
            for row in all_results[table_id].rows:
                if row.u >= 1.0:
                    assert row.cell("Poisson").p == 0.0
                    assert math.isnan(row.cell("Poisson").e)

    def test_energy_scaling_between_speed_regimes(self, all_results):
        # The paper's f2 energies are ≈4× its f1 static energies.
        e_f1 = all_results["1a"].rows[0].cell("Poisson").e
        e_f2 = all_results["2a"].rows[0].cell("Poisson").e
        assert e_f2 / e_f1 == pytest.approx(4.0, rel=0.15)

    def test_ads_energy_saving_vs_ad_at_f1(self, all_results):
        # Paper table 1(a): A_D_S saves ~5-10% energy vs A_D.
        savings = []
        for row in all_results["1a"].rows:
            ad, ads = row.cell("A_D").e, row.cell("A_D_S").e
            if not math.isnan(ad) and not math.isnan(ads):
                savings.append(1 - ads / ad)
        assert savings
        mean_saving = sum(savings) / len(savings)
        assert 0.02 < mean_saving < 0.20

    def test_adc_energy_saving_vs_ad_at_f1(self, all_results):
        savings = []
        for row in all_results["3a"].rows:
            ad, adc = row.cell("A_D").e, row.cell("A_D_C").e
            if not math.isnan(ad) and not math.isnan(adc):
                savings.append(1 - adc / ad)
        mean_saving = sum(savings) / len(savings)
        assert 0.02 < mean_saving < 0.20

    def test_f2_table_ads_p_advantage_grows_with_u(self, all_results):
        # Paper table 2(a): the P gap A_D_S − A_D widens as U rises
        # within λ=1.4e-3 rows (0.30 → 0.29 → 0.38 → 0.29...): at least
        # the advantage must be substantial at every U ≥ 0.78.
        for row in all_results["2a"].rows:
            if row.lam == 1.4e-3 and row.u >= 0.78:
                gap = row.cell("A_D_S").p - row.cell("A_D").p
                assert gap > 0.1
