"""Unit tests for the reproducible RNG streams."""

import numpy as np
import pytest

from repro.sim.rng import RandomSource


class TestRandomSource:
    def test_same_seed_same_streams(self):
        a = RandomSource(42).substream(3).random(8)
        b = RandomSource(42).substream(3).random(8)
        assert np.array_equal(a, b)

    def test_different_substreams_differ(self):
        a = RandomSource(42).substream(0).random(8)
        b = RandomSource(42).substream(1).random(8)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomSource(1).substream(0).random(8)
        b = RandomSource(2).substream(0).random(8)
        assert not np.array_equal(a, b)

    def test_substreams_iterator_matches_indexing(self):
        source = RandomSource(7)
        from_iter = [g.random() for g in source.substreams(4)]
        from_index = [source.substream(i).random() for i in range(4)]
        assert from_iter == from_index

    def test_fork_is_deterministic(self):
        a = RandomSource(5).fork(9)
        b = RandomSource(5).fork(9)
        assert a.seed == b.seed

    def test_fork_labels_independent(self):
        source = RandomSource(5)
        assert source.fork(1).seed != source.fork(2).seed

    def test_adding_reps_preserves_existing_streams(self):
        # The property the Monte-Carlo harness relies on.
        source = RandomSource(0)
        first_two = [g.random() for g in source.substreams(2)]
        first_of_many = [g.random() for g in source.substreams(10)][:2]
        assert first_two == first_of_many

    def test_negative_substream_rejected(self):
        with pytest.raises(ValueError):
            RandomSource(0).substream(-1)

    def test_generator_is_seeded(self):
        assert RandomSource(3).generator().random() == RandomSource(
            3
        ).generator().random()
