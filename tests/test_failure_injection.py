"""Failure-injection and edge-case tests across the stack.

Deliberately hostile configurations: saturating fault rates, zero
budgets, pathological intervals, and overhead-corruption mode — the
executor must stay consistent (never hang, never mis-account) even
where the paper's formulas degenerate.
"""

import math

import numpy as np
import pytest

from repro.core.checkpoints import CheckpointKind, CostModel
from repro.core.schemes import (
    AdaptiveCCPPolicy,
    AdaptiveDVSPolicy,
    AdaptiveSCPPolicy,
    PoissonArrivalPolicy,
)
from repro.sim.executor import SimulationLimits, simulate_run
from repro.sim.faults import DualPoissonFaults, PoissonFaults, ScriptedFaults
from repro.sim.montecarlo import estimate
from repro.sim.task import TaskSpec

from tests.conftest import make_fixed_policy

COSTS = CostModel.scp_favourable()


def make_task(**overrides):
    params = dict(
        cycles=1000.0,
        deadline=5_000.0,
        fault_budget=5,
        fault_rate=1e-3,
        costs=COSTS,
    )
    params.update(overrides)
    return TaskSpec(**params)


class TestSaturatingFaultRates:
    @pytest.mark.parametrize("policy_cls", [AdaptiveDVSPolicy, AdaptiveSCPPolicy])
    def test_hopeless_rate_terminates_and_fails(self, policy_cls):
        # λ·c ≥ f everywhere: t_est is infinite at every speed, and the
        # workload cannot converge before the deadline; the run must
        # fail cleanly (not hang, not crash).
        task = make_task(cycles=2_000.0, deadline=2_200.0, fault_rate=0.1)
        result = simulate_run(
            task,
            policy_cls(),
            PoissonFaults(0.1),
            rng=np.random.default_rng(0),
            limits=SimulationLimits(horizon_factor=4.0),
        )
        assert not result.timely
        assert result.failure_reason in ("deadline_infeasible", "horizon")

    def test_adaptive_ccp_with_hostile_rate(self):
        task = make_task(fault_rate=0.05, costs=CostModel.ccp_favourable())
        result = simulate_run(
            task,
            AdaptiveCCPPolicy(),
            PoissonFaults(0.05),
            rng=np.random.default_rng(1),
            limits=SimulationLimits(horizon_factor=4.0),
        )
        assert result.failure_reason or result.completed


class TestZeroBudget:
    def test_zero_fault_budget_still_runs(self):
        task = make_task(fault_budget=0)
        result = simulate_run(task, AdaptiveSCPPolicy(), ScriptedFaults([]))
        assert result.completed and result.timely

    def test_budget_can_go_negative_without_crash(self):
        task = make_task(fault_budget=0, deadline=50_000.0)
        result = simulate_run(
            task, AdaptiveSCPPolicy(), ScriptedFaults([100.0, 700.0, 1400.0])
        )
        assert result.completed
        assert result.detected_faults >= 1


class TestPathologicalIntervals:
    def test_interval_longer_than_task(self):
        task = make_task()
        policy = make_fixed_policy(interval_time=1e9)
        result = simulate_run(task, policy, ScriptedFaults([]))
        # Clamped to the remaining work: one interval, one CSCP.
        assert result.checkpoints == 1
        assert result.finish_time == pytest.approx(1022.0)

    def test_tiny_interval_many_checkpoints(self):
        task = make_task(cycles=100.0)
        policy = make_fixed_policy(interval_time=1.0)
        result = simulate_run(task, policy, ScriptedFaults([]))
        assert result.checkpoints == 100
        assert result.finish_time == pytest.approx(100 + 100 * 22)

    def test_m_larger_than_interval_cycles_is_clamped(self):
        task = make_task(cycles=10.0)
        policy = make_fixed_policy(
            interval_time=10.0, m=1000, sub_kind=CheckpointKind.SCP
        )
        result = simulate_run(task, policy, ScriptedFaults([]))
        assert result.completed


class TestOverheadCorruptionMode:
    def test_ccp_fault_during_interior_compare_detected_there(self):
        task = make_task(cycles=100.0, deadline=50_000.0)
        policy = make_fixed_policy(
            interval_time=100.0, m=4, sub_kind=CheckpointKind.CCP
        )
        # Interior compare windows: (25,45), (70,90), (115,135).
        result = simulate_run(
            task,
            policy,
            ScriptedFaults([30.0]),
            faults_during_overhead=True,
        )
        # Detected at the very compare it corrupted (ends 45).
        assert result.detected_faults == 1
        assert result.finish_time == pytest.approx(45.0 + 182.0)

    def test_scp_fault_during_store_invalidates_that_boundary(self):
        task = make_task(cycles=100.0, deadline=50_000.0)
        policy = make_fixed_policy(
            interval_time=100.0, m=4, sub_kind=CheckpointKind.SCP
        )
        # Store windows: (25,27), (52,54), (79,81).  Fault at 53.0
        # corrupts boundary 2's store → rollback target is boundary 1.
        result = simulate_run(
            task,
            policy,
            ScriptedFaults([53.0]),
            faults_during_overhead=True,
        )
        assert result.detected_faults == 1
        # 25 cycles commit; retry 75 with m=4: 75 + 3·2 + 22 = 103.
        assert result.finish_time == pytest.approx(128.0 + 103.0)

    def test_estimate_plumbs_flag_through(self):
        task = make_task(fault_rate=2e-3)
        relaxed = estimate(
            task, lambda: PoissonArrivalPolicy(1.0), reps=400, seed=5
        )
        strict = estimate(
            task,
            lambda: PoissonArrivalPolicy(1.0),
            reps=400,
            seed=5,
            faults_during_overhead=True,
        )
        # Corrupting overhead can only add detected faults.
        assert strict.mean_detected_faults >= relaxed.mean_detected_faults

    def test_rollback_overhead_can_chain_detections(self):
        costs = CostModel(store_cycles=2, compare_cycles=20, rollback_cycles=50)
        task = make_task(cycles=100.0, deadline=50_000.0, costs=costs)
        policy = make_fixed_policy(interval_time=100.0)
        # First fault in execution; second inside the rollback window
        # (122, 172): it corrupts the restored state, so the retry's
        # CSCP at 294 detects again, costing another rollback + attempt.
        result = simulate_run(
            task,
            policy,
            ScriptedFaults([50.0, 125.0]),
            faults_during_overhead=True,
        )
        assert result.detected_faults == 2
        assert result.completed
        assert result.finish_time == pytest.approx(294.0 + 50.0 + 122.0)


class TestDualStreamMode:
    def test_dual_stream_p_lower_than_single(self):
        task = make_task(cycles=7600.0, deadline=10_000.0, fault_rate=1.4e-3)
        single = estimate(
            task,
            lambda: PoissonArrivalPolicy(1.0),
            reps=600,
            seed=9,
            faults=PoissonFaults(1.4e-3),
        )
        dual = estimate(
            task,
            lambda: PoissonArrivalPolicy(1.0),
            reps=600,
            seed=9,
            faults=DualPoissonFaults(1.4e-3),
        )
        assert dual.p < single.p

    def test_adaptive_survives_dual_stream(self):
        task = make_task(cycles=7600.0, deadline=10_000.0, fault_rate=1.4e-3)
        # The planner still assumes λ; the environment delivers 2λ —
        # model mismatch the adaptive scheme must absorb.
        cell = estimate(
            task,
            AdaptiveSCPPolicy,
            reps=400,
            seed=11,
            faults=DualPoissonFaults(1.4e-3),
        )
        assert cell.p > 0.9


class TestNumericalRobustness:
    def test_float_cycle_counts(self):
        task = make_task(cycles=997.3)
        policy = make_fixed_policy(interval_time=123.456)
        result = simulate_run(task, policy, ScriptedFaults([]))
        assert result.completed
        assert result.cycles_executed == pytest.approx(
            997.3 + result.checkpoints * 22.0
        )

    def test_no_drift_across_many_intervals(self):
        task = make_task(cycles=10_000.0, deadline=1e9)
        policy = make_fixed_policy(interval_time=7.77)
        result = simulate_run(task, policy, ScriptedFaults([]))
        assert result.completed
        useful = result.cycles_executed - result.checkpoints * 22.0
        assert useful == pytest.approx(10_000.0, abs=1e-6)

    def test_energy_is_finite_and_positive_always(self):
        task = make_task(fault_rate=0.02)
        result = simulate_run(
            task,
            AdaptiveDVSPolicy(),
            PoissonFaults(0.02),
            rng=np.random.default_rng(3),
            limits=SimulationLimits(horizon_factor=4.0),
        )
        assert math.isfinite(result.energy)
        assert result.energy > 0
