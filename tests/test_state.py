"""Unit tests for the execution state."""

import pytest

from repro.core.checkpoints import CostModel
from repro.sim.state import ExecutionState
from repro.sim.task import TaskSpec


@pytest.fixture
def task():
    return TaskSpec(
        cycles=1000.0,
        deadline=5000.0,
        fault_budget=3,
        fault_rate=1e-3,
        costs=CostModel.scp_favourable(),
    )


class TestExecutionState:
    def test_fresh_state(self, task):
        state = ExecutionState.fresh(task)
        assert state.remaining_cycles == 1000.0
        assert state.faults_left == 3.0
        assert state.clock == 0.0
        assert state.frequency == 1.0
        assert state.deadline_left == 5000.0

    def test_deadline_left_tracks_clock(self, task):
        state = ExecutionState.fresh(task)
        state.clock = 1200.0
        assert state.deadline_left == 3800.0
        state.clock = 6000.0
        assert state.deadline_left == -1000.0  # overshoot is visible

    def test_remaining_time_scales_with_frequency(self, task):
        state = ExecutionState.fresh(task)
        assert state.remaining_time == 1000.0
        state.frequency = 2.0
        assert state.remaining_time == 500.0

    def test_counters_start_empty(self, task):
        state = ExecutionState.fresh(task)
        assert state.detected_faults == 0
        assert state.checkpoints == 0
        assert state.counters == {}
