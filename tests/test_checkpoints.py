"""Unit tests for the checkpoint kinds and cost model."""

import pytest

from repro.core.checkpoints import CheckpointKind, CostModel
from repro.errors import ParameterError


class TestCheckpointKind:
    def test_scp_stores_without_comparing(self):
        assert CheckpointKind.SCP.stores
        assert not CheckpointKind.SCP.compares

    def test_ccp_compares_without_storing(self):
        assert CheckpointKind.CCP.compares
        assert not CheckpointKind.CCP.stores

    def test_cscp_does_both(self):
        assert CheckpointKind.CSCP.stores
        assert CheckpointKind.CSCP.compares


class TestCostModel:
    def test_checkpoint_cycles_is_sum(self):
        costs = CostModel(store_cycles=2, compare_cycles=20)
        assert costs.checkpoint_cycles == 22

    def test_paper_scp_parameters(self):
        costs = CostModel.scp_favourable()
        assert costs.store_cycles == 2
        assert costs.compare_cycles == 20
        assert costs.rollback_cycles == 0
        assert costs.checkpoint_cycles == 22

    def test_paper_ccp_parameters(self):
        costs = CostModel.ccp_favourable()
        assert costs.store_cycles == 20
        assert costs.compare_cycles == 2
        assert costs.checkpoint_cycles == 22

    def test_cycles_of_each_kind(self):
        costs = CostModel(store_cycles=3, compare_cycles=7)
        assert costs.cycles_of(CheckpointKind.SCP) == 3
        assert costs.cycles_of(CheckpointKind.CCP) == 7
        assert costs.cycles_of(CheckpointKind.CSCP) == 10

    def test_at_frequency_scales_costs(self):
        costs = CostModel(store_cycles=4, compare_cycles=6, rollback_cycles=2)
        timed = costs.at_frequency(2.0)
        assert timed.store == 2.0
        assert timed.compare == 3.0
        assert timed.rollback == 1.0
        assert timed.checkpoint == 5.0

    def test_at_frequency_rejects_non_positive(self):
        with pytest.raises(ParameterError):
            CostModel().at_frequency(0.0)
        with pytest.raises(ParameterError):
            CostModel().at_frequency(-1.0)

    def test_negative_costs_rejected(self):
        with pytest.raises(ParameterError):
            CostModel(store_cycles=-1)
        with pytest.raises(ParameterError):
            CostModel(compare_cycles=-1)
        with pytest.raises(ParameterError):
            CostModel(rollback_cycles=-1)

    def test_all_zero_costs_rejected(self):
        with pytest.raises(ParameterError):
            CostModel(store_cycles=0, compare_cycles=0)

    def test_frozen(self):
        costs = CostModel()
        with pytest.raises(AttributeError):
            costs.store_cycles = 5
