"""Unit tests for the closed-form analysis module."""

import math

import pytest

from repro.core.analysis import (
    expected_time_with_subdivision,
    static_expected_time,
    static_schedule,
    static_timely_probability,
)
from repro.core.renewal import cscp_interval_time, scp_interval_time_for_m
from repro.errors import ParameterError


class TestStaticSchedule:
    def test_uniform_split(self):
        schedule = static_schedule(1000.0, 100.0, checkpoint_cost=22.0, rate=1e-3)
        assert schedule.n_intervals == 10
        assert all(l == 100.0 for l in schedule.interval_lengths)
        assert schedule.work == pytest.approx(1000.0)

    def test_tail_interval(self):
        schedule = static_schedule(950.0, 300.0, checkpoint_cost=22.0, rate=1e-3)
        assert schedule.interval_lengths == [300.0, 300.0, 300.0, 50.0]

    def test_interval_larger_than_work(self):
        schedule = static_schedule(80.0, 300.0, checkpoint_cost=22.0, rate=1e-3)
        assert schedule.interval_lengths == [80.0]

    def test_validation(self):
        with pytest.raises(ParameterError):
            static_schedule(0.0, 100.0, checkpoint_cost=22.0, rate=1e-3)
        with pytest.raises(ParameterError):
            static_schedule(100.0, 0.0, checkpoint_cost=22.0, rate=1e-3)


class TestStaticExpectedTime:
    def test_sums_per_interval_renewals(self):
        schedule = static_schedule(200.0, 100.0, checkpoint_cost=22.0, rate=2e-3)
        per = cscp_interval_time(100.0, rate=2e-3, store=0.0, compare=22.0)
        assert static_expected_time(schedule) == pytest.approx(2 * per)

    def test_zero_rate_is_deterministic(self):
        schedule = static_schedule(500.0, 100.0, checkpoint_cost=22.0, rate=0.0)
        assert static_expected_time(schedule) == pytest.approx(500 + 5 * 22)

    def test_rollback_term_counts_faults(self):
        with_rb = static_schedule(
            100.0, 100.0, checkpoint_cost=22.0, rate=1e-2, rollback_cost=7.0
        )
        without = static_schedule(100.0, 100.0, checkpoint_cost=22.0, rate=1e-2)
        delta = static_expected_time(with_rb) - static_expected_time(without)
        assert delta == pytest.approx(7.0 * math.expm1(1e-2 * 100.0))


class TestStaticTimelyProbability:
    def test_certain_when_no_faults(self):
        schedule = static_schedule(100.0, 50.0, checkpoint_cost=22.0, rate=0.0)
        assert static_timely_probability(schedule, 1000.0) == pytest.approx(1.0)

    def test_zero_when_fault_free_time_exceeds_deadline(self):
        schedule = static_schedule(100.0, 50.0, checkpoint_cost=22.0, rate=1e-3)
        # Fault-free completion needs 144 > 120.
        assert static_timely_probability(schedule, 120.0) == 0.0

    def test_zero_deadline(self):
        schedule = static_schedule(100.0, 50.0, checkpoint_cost=22.0, rate=1e-3)
        assert static_timely_probability(schedule, 0.0) == 0.0

    def test_zero_failures_case_is_success_probability(self):
        # Deadline admits exactly the fault-free schedule: P = e^{-λ·work}.
        schedule = static_schedule(100.0, 50.0, checkpoint_cost=22.0, rate=2e-3)
        p = static_timely_probability(schedule, 144.0)
        assert p == pytest.approx(math.exp(-2e-3 * 100.0))

    def test_one_affordable_failure(self):
        # Deadline 144 + 72 allows exactly one failed attempt.
        schedule = static_schedule(100.0, 50.0, checkpoint_cost=22.0, rate=2e-3)
        p0 = math.exp(-2e-3 * 50.0)
        expected = p0**2 + 2 * p0**2 * (1 - p0)  # NB(2, p): F ≤ 1
        assert static_timely_probability(schedule, 216.0) == pytest.approx(expected)

    def test_monotone_in_deadline(self):
        schedule = static_schedule(1000.0, 100.0, checkpoint_cost=22.0, rate=2e-3)
        ps = [
            static_timely_probability(schedule, d)
            for d in (1220.0, 1300.0, 1500.0, 2000.0, 5000.0)
        ]
        assert ps == sorted(ps)
        assert ps[-1] > 0.99

    def test_dp_path_matches_uniform_path_when_uniform(self):
        # Force the DP by a microscopic length perturbation; results
        # must agree with the negative-binomial closed form.
        uniform = static_schedule(1000.0, 100.0, checkpoint_cost=22.0, rate=2e-3)
        p_closed = static_timely_probability(uniform, 1600.0)
        from repro.core.analysis import _timely_probability_dp

        p_dp = _timely_probability_dp(uniform, 1600.0)
        assert p_dp == pytest.approx(p_closed, rel=1e-9)

    def test_tail_layout_uses_dp(self):
        schedule = static_schedule(950.0, 300.0, checkpoint_cost=22.0, rate=1e-3)
        p = static_timely_probability(schedule, 1500.0)
        assert 0.0 < p < 1.0


class TestExpectedTimeWithSubdivision:
    def test_scales_linearly_in_intervals(self):
        one = expected_time_with_subdivision(
            1, 200.0, m=4, kind="scp", rate=2e-3, store=2.0, compare=20.0
        )
        five = expected_time_with_subdivision(
            5, 200.0, m=4, kind="scp", rate=2e-3, store=2.0, compare=20.0
        )
        assert five == pytest.approx(5 * one)

    def test_matches_renewal_model(self):
        value = expected_time_with_subdivision(
            3, 200.0, m=4, kind="scp", rate=2e-3, store=2.0, compare=20.0
        )
        per = scp_interval_time_for_m(
            4, span=200.0, rate=2e-3, store=2.0, compare=20.0
        )
        assert value == pytest.approx(3 * per)

    def test_kind_validation(self):
        with pytest.raises(ParameterError):
            expected_time_with_subdivision(
                1, 200.0, m=4, kind="bogus", rate=2e-3, store=2.0, compare=20.0
            )

    def test_n_validation(self):
        with pytest.raises(ParameterError):
            expected_time_with_subdivision(
                0, 200.0, m=4, kind="scp", rate=2e-3, store=2.0, compare=20.0
            )
