"""repro.workloads: generators, EDF engine, frontier studies, cache prune.

Covers the workload subsystem end to end: property tests on the
taskset generators (target utilization, bit-identical regeneration),
the feasibility-then-lowest-energy selection rule, scheduler chunk
overrides, backend bit-identity for the two new study kinds, spec-hash
stability (including every pre-existing kind's pinned hash), Pareto
dominance, cache eviction, the committed taskset golden, and the CLI
surface (``--list-kinds``, ``repro cache prune``).
"""

import json
import math
import os
import pickle
import time
from functools import partial
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ResultSet, Session, Study, StudySpec
from repro.api.plans import cell_identity
from repro.api.results import json_dumps_exact, json_loads_exact
from repro.api.spec import KIND_SUMMARIES, STUDY_KINDS
from repro.cli import build_parser, main
from repro.errors import ConfigurationError, ParameterError
from repro.rts.generators import (
    WORKLOAD_PATTERNS,
    WorkloadParams,
    generate_taskset,
)
from repro.rts.scheduler import simulate_schedule
from repro.service.cache import CellCache
from repro.service.server import StudyService
from repro.workloads import (
    EquidistantPolicy,
    TasksetCellJob,
    pareto_points,
    render_frontier,
    select_configuration,
)
from repro.workloads.goldens import (
    GOLDEN_JOB,
    record_taskset_golden,
    replay_taskset_golden,
)

GOLDEN_PATH = (
    Path(__file__).resolve().parent / "goldens" / "taskset" / "bursty-edf.jsonl"
)

#: Spec hashes are provenance: resume, merge, and the service cache all
#: gate on them.  The first nine pins predate the workload kinds and
#: MUST NOT move — a change means defaults leaked into the canonical
#: payload.  The last four pin the new kinds from their introduction.
PINNED_SPEC_HASHES = {
    "table_1a": "dd01af1b521b4313",
    "table_2b_fast_static": "30a98b4b06b7a496",
    "row_1a": "dcf5e0fa3565fcc9",
    "fixed_m_1a": "78387339d2a5ff26",
    "fixed_m_3a_ms": "1761c603e4a88f38",
    "rate_factor_1a": "f9fd88b36109f88b",
    "utilization_1a": "bac33f17e9d41692",
    "operating_map_1b": "e5de5a61fa7bdd39",
    "table_1a_fast": "e83e2e5d5e7ff14a",
    "taskset_default": "a4fb8ce666883fa7",
    "taskset_custom": "506d5bf95e39f506",
    "frontier_default": "c20660fc9cee73eb",
    "frontier_custom": "e9535fd60cfc94f8",
}


def _pinned_specs():
    return {
        "table_1a": StudySpec(kind="table", table="1a"),
        "table_2b_fast_static": StudySpec(
            kind="table", table="2b", reps=500, seed=7, fast_static=True
        ),
        "row_1a": StudySpec(kind="row", table="1a", u=0.8, lam=0.0014),
        "fixed_m_1a": StudySpec(kind="fixed_m", table="1a"),
        "fixed_m_3a_ms": StudySpec(kind="fixed_m", table="3a", ms=(1, 2, 4)),
        "rate_factor_1a": StudySpec(
            kind="rate_factor", table="1a", factors=(1.0, 2.0, 4.0)
        ),
        "utilization_1a": StudySpec(
            kind="utilization", table="1a", u_grid=(0.6, 0.8), lam=1e-4
        ),
        "operating_map_1b": StudySpec(
            kind="operating_map", table="1b",
            u_grid=(0.6, 0.8), lam_grid=(1e-4, 1.4e-3),
        ),
        "table_1a_fast": StudySpec(kind="table", table="1a", kernel="fast"),
        "taskset_default": StudySpec(kind="taskset", table="1a"),
        "taskset_custom": StudySpec(
            kind="taskset", table="1a", patterns=("light", "bursty"),
            u_grid=(0.5, 0.8), lam=2e-4, n_tasks=3, horizon=8000.0,
            reps=40, seed=2006,
        ),
        "frontier_default": StudySpec(kind="frontier", table="1a"),
        "frontier_custom": StudySpec(
            kind="frontier", table="1a", u=0.5, lam=2e-4,
            ms=(1, 2, 4, 8), reps=400, seed=2006,
        ),
    }


SMALL_TASKSET_SPEC = StudySpec(
    kind="taskset", table="1a", patterns=("light", "bursty"),
    u_grid=(0.5,), lam=2e-4, n_tasks=3, horizon=4000.0, reps=6, seed=9,
)
SMALL_FRONTIER_SPEC = StudySpec(
    kind="frontier", table="1a", u=0.5, lam=2e-4, ms=(1, 2), reps=8, seed=9,
)


# ---------------------------------------------------------------------------
# taskset generators


pattern_st = st.sampled_from(WORKLOAD_PATTERNS)
seed_st = st.integers(min_value=0, max_value=2**63 - 1)


class TestGenerators:
    @given(pattern_st, seed_st,
           st.floats(min_value=0.2, max_value=0.95),
           st.integers(min_value=2, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_target_utilization_is_hit(self, pattern, seed, u, n):
        params = WorkloadParams(pattern=pattern, n_tasks=n, utilization=u)
        taskset = generate_taskset(seed, params)
        total = sum(t.cycles / t.period for t in taskset.tasks)
        assert total == pytest.approx(u, rel=1e-9)

    @given(pattern_st, seed_st)
    @settings(max_examples=40, deadline=None)
    def test_same_seed_regenerates_bit_identically(self, pattern, seed):
        params = WorkloadParams(pattern=pattern)
        assert generate_taskset(seed, params) == generate_taskset(seed, params)

    def test_different_seeds_differ(self):
        params = WorkloadParams(pattern="bursty")
        assert generate_taskset(1, params) != generate_taskset(2, params)

    def test_different_patterns_differ(self):
        a = generate_taskset(5, WorkloadParams(pattern="light"))
        b = generate_taskset(5, WorkloadParams(pattern="heavy"))
        assert a != b

    @given(pattern_st, seed_st)
    @settings(max_examples=40, deadline=None)
    def test_tasks_are_well_formed(self, pattern, seed):
        taskset = generate_taskset(seed, WorkloadParams(pattern=pattern))
        for task in taskset.tasks:
            assert task.cycles > 0
            assert task.period > 0
            assert 0 < task.deadline <= task.period

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ParameterError):
            WorkloadParams(pattern="spiky")

    def test_bad_shape_rejected(self):
        with pytest.raises(ParameterError):
            WorkloadParams(pattern="light", n_tasks=0)
        with pytest.raises(ParameterError):
            WorkloadParams(pattern="light", utilization=0.0)


# ---------------------------------------------------------------------------
# scheduler extensions: chunk overrides + checkpoint accounting


def _small_taskset():
    return generate_taskset(
        11, WorkloadParams(pattern="light", n_tasks=2, utilization=0.4)
    )


class TestChunkOverrides:
    def test_overrides_set_the_chunk_count(self):
        taskset = generate_taskset(
            11, WorkloadParams(pattern="light", n_tasks=2,
                               utilization=0.4, fault_rate=1e-12)
        )
        name = taskset.tasks[0].name
        chunk = (taskset.tasks[0].cycles / 1.0) / 4
        plain = simulate_schedule(taskset, horizon=8000.0, seed=3)
        overridden = simulate_schedule(
            taskset, horizon=8000.0, seed=3,
            chunk_overrides={name: chunk},
        )
        over = [j.checkpoints for j in overridden.jobs
                if j.task_name == name and j.deadline_met]
        # Fault-free: exactly the requested 4 chunks per completed job.
        assert over and set(over) == {4}
        plain_cp = [j.checkpoints for j in plain.jobs
                    if j.task_name == name and j.deadline_met]
        assert set(plain_cp) != {4}  # the override actually took effect

    def test_unknown_task_rejected(self):
        with pytest.raises(ParameterError):
            simulate_schedule(
                _small_taskset(), horizon=1000.0,
                chunk_overrides={"nope": 10.0},
            )

    def test_nonpositive_chunk_rejected(self):
        taskset = _small_taskset()
        with pytest.raises(ParameterError):
            simulate_schedule(
                taskset, horizon=1000.0,
                chunk_overrides={taskset.tasks[0].name: 0.0},
            )

    def test_result_totals(self):
        result = simulate_schedule(_small_taskset(), horizon=8000.0, seed=3)
        assert result.total_checkpoints == sum(
            j.checkpoints for j in result.jobs
        )
        assert result.total_faults == sum(j.faults for j in result.jobs)
        assert result.makespan == max(j.completed_at for j in result.jobs)


# ---------------------------------------------------------------------------
# operating-point selection


class TestSelectConfiguration:
    def test_light_load_picks_the_slow_frequency(self):
        taskset = generate_taskset(
            7, WorkloadParams(pattern="light", n_tasks=3, utilization=0.3)
        )
        config = select_configuration(taskset)
        assert config.feasible
        assert config.frequency == 1.0  # feasible and lowest energy

    def test_overload_falls_back_to_fastest_infeasible(self):
        taskset = generate_taskset(
            7, WorkloadParams(pattern="light", n_tasks=3, utilization=0.95,
                              fault_rate=5e-3, fault_budget=6)
        )
        config = select_configuration(taskset, frequencies=(0.25,))
        assert not config.feasible
        assert config.frequency == 0.25

    def test_frequency_order_does_not_matter(self):
        taskset = _small_taskset()
        a = select_configuration(taskset, frequencies=(1.0, 2.0))
        b = select_configuration(taskset, frequencies=(2.0, 1.0))
        assert a == b

    def test_checkpoint_counts_cover_every_task(self):
        taskset = _small_taskset()
        config = select_configuration(taskset)
        assert {name for name, _ in config.checkpoint_counts} == {
            t.name for t in taskset.tasks
        }
        assert all(count >= 1 for _, count in config.checkpoint_counts)


# ---------------------------------------------------------------------------
# the taskset cell job


class TestTasksetCellJob:
    def _job(self, reps=8):
        return TasksetCellJob(
            params=WorkloadParams(pattern="bursty", n_tasks=3,
                                  utilization=0.5, fault_rate=2e-4),
            horizon=4000.0,
            reps=reps,
            seed=17,
        )

    def test_split_merge_bit_identity(self):
        job = self._job()
        whole = job.run_block(0, 0, 8)
        left = job.run_block(0, 0, 3)
        left.merge(job.run_block(0, 3, 8))
        assert whole.finalize().same_values(left.finalize())

    def test_job_pickles(self):
        job = self._job()
        clone = pickle.loads(pickle.dumps(job))
        assert clone == job
        assert clone.run_block(0, 0, 2).finalize().same_values(
            job.run_block(0, 0, 2).finalize()
        )

    def test_validation(self):
        with pytest.raises(ParameterError):
            self._job(reps=0)
        with pytest.raises(ParameterError):
            TasksetCellJob(
                params=WorkloadParams(pattern="light"), horizon=0.0
            )


# ---------------------------------------------------------------------------
# StudySpec: new kinds, pinned hashes, round trips


class TestStudyKinds:
    def test_kind_registry_is_consistent(self):
        assert set(KIND_SUMMARIES) == set(STUDY_KINDS)
        assert "taskset" in STUDY_KINDS and "frontier" in STUDY_KINDS

    @pytest.mark.parametrize("name", sorted(PINNED_SPEC_HASHES))
    def test_pinned_spec_hashes(self, name):
        assert _pinned_specs()[name].spec_hash == PINNED_SPEC_HASHES[name]

    @pytest.mark.parametrize("name", sorted(PINNED_SPEC_HASHES))
    def test_json_round_trip_preserves_hash(self, name):
        spec = _pinned_specs()[name]
        again = StudySpec.from_json(spec.to_json())
        assert again.to_dict() == spec.to_dict()
        assert again.spec_hash == spec.spec_hash

    def test_defaults_are_elided(self):
        payload = StudySpec(kind="taskset", table="1a").to_dict()
        # Axis defaults are materialised (they define the study); the
        # execution defaults that predate the kind must stay elided so
        # pre-existing kinds' hashes cannot move.
        assert "kernel" not in payload
        assert "fast_static" not in payload

    def test_stray_axes_rejected(self):
        with pytest.raises(ConfigurationError):
            StudySpec(kind="taskset", table="1a", ms=(1, 2))
        with pytest.raises(ConfigurationError):
            StudySpec(kind="frontier", table="1a", patterns=("light",))

    def test_fast_paths_rejected_for_workload_kinds(self):
        with pytest.raises(ConfigurationError):
            StudySpec(kind="taskset", table="1a", kernel="fast")
        with pytest.raises(ConfigurationError):
            StudySpec(kind="taskset", table="1a", fast_static=True)
        with pytest.raises(ConfigurationError):
            StudySpec(kind="frontier", table="1a", fast_static=True)

    def test_unknown_kind_error_names_every_kind(self):
        with pytest.raises(ConfigurationError) as err:
            StudySpec(kind="mystery", table="1a")
        for kind in STUDY_KINDS:
            assert kind in str(err.value)


class TestCellEnumeration:
    def test_taskset_cells_have_distinct_identities(self):
        plans = Study(SMALL_TASKSET_SPEC).cells()
        identities = [cell_identity(p.job, block_size=64) for p in plans]
        assert all(identities)
        assert len(set(identities)) == len(identities)

    def test_frontier_cells_have_distinct_identities(self):
        plans = Study(SMALL_FRONTIER_SPEC).cells()
        identities = [cell_identity(p.job, block_size=64) for p in plans]
        assert all(identities)
        assert len(set(identities)) == len(identities)

    def test_taskset_cells_fork_per_workload(self):
        plans = Study(SMALL_TASKSET_SPEC).cells()
        assert len({p.job.seed for p in plans}) == len(plans)

    def test_frontier_cells_share_the_study_seed(self):
        # Common random numbers: configuration differences are policy
        # effects, not sampling noise.
        plans = Study(SMALL_FRONTIER_SPEC).cells()
        assert {p.job.seed for p in plans} == {SMALL_FRONTIER_SPEC.seed}

    def test_axis_columns_reach_the_csv(self, tmp_path):
        results = Study(SMALL_TASKSET_SPEC).run()
        path = tmp_path / "t.csv"
        results.save_csv(str(path))
        header = path.read_text().splitlines()[0]
        for column in ("pattern", "u", "lam"):
            assert column in header.split(",")


class TestBackendBitIdentity:
    @pytest.mark.parametrize("spec", [SMALL_TASKSET_SPEC, SMALL_FRONTIER_SPEC],
                             ids=["taskset", "frontier"])
    def test_serial_vs_process(self, spec):
        serial = Study(spec).run()
        with Session(backend="process", workers=2) as session:
            parallel = Study(spec).run(session)
        assert parallel.same_values(serial)


# ---------------------------------------------------------------------------
# Pareto frontier


class TestEquidistantPolicy:
    def test_partial_factory_pickles(self):
        factory = partial(EquidistantPolicy, 2.0, 4)
        clone = pickle.loads(pickle.dumps(factory))
        assert clone.func is EquidistantPolicy
        assert clone.args == (2.0, 4)

    def test_policy_names_its_shape(self):
        policy = EquidistantPolicy(2.0, 4)
        assert "4" in policy.name and "2" in policy.name

    def test_checkpoint_count_validated(self):
        with pytest.raises(ParameterError):
            EquidistantPolicy(1.0, 0)


class TestParetoFrontier:
    def test_dominated_points_are_flagged(self):
        points = pareto_points([
            (1.0, 1, 1.0, 10.0, 10.0),
            (1.0, 2, 1.0, 12.0, 12.0),   # dominated by the first
            (2.0, 1, 1.0, 5.0, 20.0),    # faster, costlier: frontier
        ])
        flags = {(p.frequency, p.checkpoints): p.on_frontier for p in points}
        assert flags[(1.0, 1)] and flags[(2.0, 1)]
        assert not flags[(1.0, 2)]

    def test_p_min_excludes_unreliable_points(self):
        points = pareto_points([
            (1.0, 1, 0.2, 1.0, 1.0),     # would dominate everything
            (2.0, 1, 0.99, 5.0, 5.0),
        ], p_min=0.9)
        flags = {p.frequency: p.on_frontier for p in points}
        assert not flags[1.0] and flags[2.0]

    def test_deadline_and_budget_filters(self):
        cells = [(1.0, 1, 1.0, 10.0, 10.0), (2.0, 1, 1.0, 4.0, 30.0)]
        by_deadline = {
            p.frequency: p.on_frontier
            for p in pareto_points(cells, deadline=5.0)
        }
        assert by_deadline == {1.0: False, 2.0: True}
        by_budget = {
            p.frequency: p.on_frontier
            for p in pareto_points(cells, energy_budget=15.0)
        }
        assert by_budget == {1.0: True, 2.0: False}

    def test_nan_points_never_reach_the_frontier(self):
        points = pareto_points([
            (1.0, 1, 0.0, math.nan, math.nan),
            (2.0, 1, 1.0, 5.0, 5.0),
        ])
        flags = {p.frequency: p.on_frontier for p in points}
        assert not flags[1.0] and flags[2.0]

    def test_render_footer_counts(self):
        text = render_frontier(pareto_points([
            (1.0, 1, 1.0, 10.0, 10.0),
            (1.0, 2, 1.0, 12.0, 12.0),
        ]))
        assert text.strip().endswith("frontier: 1 of 2 configurations")


# ---------------------------------------------------------------------------
# cache pruning


def _fill_cache(tmp_path, spec):
    cache_dir = str(tmp_path / "cells")
    service = StudyService(cache_dir=cache_dir)
    try:
        service.submit(json.loads(spec.to_json()))
    finally:
        service.close()
    return cache_dir


class TestCachePrune:
    def test_hits_survive_pruning_of_cold_entries(self, tmp_path):
        cache_dir = _fill_cache(tmp_path, SMALL_TASKSET_SPEC)
        cache = CellCache(cache_dir, memory=False)
        entries = cache._entries()
        assert len(entries) == 2
        # Make one entry cold, then prune to a size only one fits in.
        cold_identity, cold_path, _, _ = entries[0]
        hot_identity = entries[1][0]
        past = time.time() - 3600.0
        os.utime(cold_path, (past, past))
        report = cache.prune(max_bytes=entries[1][2])
        assert report.removed == (cold_identity,)
        assert cache.get(hot_identity) is not None  # the hit survived
        assert cache.get(cold_identity) is None

    def test_dry_run_removes_nothing(self, tmp_path):
        cache_dir = _fill_cache(tmp_path, SMALL_TASKSET_SPEC)
        cache = CellCache(cache_dir, memory=False)
        report = cache.prune(max_bytes=0, dry_run=True)
        assert report.dry_run and len(report.removed) == 2
        assert len(cache) == 2
        assert "would remove" in report.render()

    def test_age_prune(self, tmp_path):
        cache_dir = _fill_cache(tmp_path, SMALL_TASKSET_SPEC)
        cache = CellCache(cache_dir, memory=False)
        entries = cache._entries()
        past = time.time() - 10 * 86_400.0
        os.utime(entries[0][1], (past, past))
        report = cache.prune(max_age_seconds=86_400.0)
        assert report.removed == (entries[0][0],)
        assert len(cache) == 1

    def test_pruned_entry_recomputes_on_resubmission(self, tmp_path):
        cache_dir = _fill_cache(tmp_path, SMALL_TASKSET_SPEC)
        CellCache(cache_dir, memory=False).prune(max_bytes=0)
        service = StudyService(cache_dir=cache_dir)
        try:
            envelope = service.submit(
                json.loads(SMALL_TASKSET_SPEC.to_json())
            )
        finally:
            service.close()
        assert envelope["computed"] == envelope["cells"]


# ---------------------------------------------------------------------------
# the committed golden


class TestTasksetGolden:
    def test_committed_golden_replays_clean(self):
        assert GOLDEN_PATH.exists()
        assert replay_taskset_golden(str(GOLDEN_PATH)) is None

    def test_rerecording_is_byte_identical_modulo_git(self, tmp_path):
        fresh = tmp_path / "fresh.jsonl"
        record_taskset_golden(str(fresh), GOLDEN_JOB)
        committed = GOLDEN_PATH.read_text().splitlines()
        recorded = fresh.read_text().splitlines()
        assert committed[1:] == recorded[1:]  # events + sentinel
        a, b = json_loads_exact(committed[0]), json_loads_exact(recorded[0])
        a.pop("git"), b.pop("git")
        assert json_dumps_exact(a) == json_dumps_exact(b)

    def test_tampered_event_is_localised(self, tmp_path):
        lines = GOLDEN_PATH.read_text().splitlines()
        event = json_loads_exact(lines[3])  # events start at line 2
        event["faults"] = event["faults"] + 1
        lines[3] = json_dumps_exact(event)
        tampered = tmp_path / "tampered.jsonl"
        tampered.write_text("\n".join(lines) + "\n")
        drift = replay_taskset_golden(str(tampered))
        assert drift is not None
        assert drift.index == 2
        assert drift.kind == "job"
        assert [name for name, _, _ in drift.fields] == ["faults"]
        assert "first diverging event" in drift.render()

    def test_truncated_golden_rejected(self, tmp_path):
        lines = GOLDEN_PATH.read_text().splitlines()[:-1]
        broken = tmp_path / "broken.jsonl"
        broken.write_text("\n".join(lines) + "\n")
        with pytest.raises(ConfigurationError):
            replay_taskset_golden(str(broken))


# ---------------------------------------------------------------------------
# service resubmission: byte-identical taskset payloads


class TestServiceTaskset:
    def test_resubmission_hits_and_is_byte_identical(self, tmp_path):
        service = StudyService(cache_dir=str(tmp_path / "cells"))
        try:
            payload = json.loads(SMALL_FRONTIER_SPEC.to_json())
            first = service.submit(payload)
            second = service.submit(payload)
        finally:
            service.close()
        assert first["computed"] == first["cells"] > 0
        assert second["computed"] == 0
        assert second["cached"] == second["cells"]
        assert json_dumps_exact(first["result"]) == json_dumps_exact(
            second["result"]
        )
        local = Study(SMALL_FRONTIER_SPEC).run()
        assert ResultSet.from_dict(first["result"]).same_values(local)


# ---------------------------------------------------------------------------
# CLI surface


class TestWorkloadCLI:
    def test_list_kinds_names_every_kind(self, capsys):
        assert main(["run", "--list-kinds"]) == 0
        out = capsys.readouterr().out
        for kind in STUDY_KINDS:
            assert kind in out
            assert KIND_SUMMARIES[kind] in out

    def test_run_help_derives_kinds_from_the_registry(self):
        parser = build_parser()
        run_parser = parser._subparsers._group_actions[0].choices["run"]
        text = run_parser.format_help()
        for kind in STUDY_KINDS:
            assert kind in text

    def test_run_without_spec_errors(self, capsys):
        assert main(["run"]) == 2
        assert "spec path" in capsys.readouterr().err

    def test_frontier_run_renders_the_frontier(self, tmp_path, capsys):
        spec_path = tmp_path / "f.spec.json"
        spec_path.write_text(SMALL_FRONTIER_SPEC.to_json())
        assert main(["run", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "frontier:" in out
        assert "of 4 configurations" in out

    def test_cache_prune_cli(self, tmp_path, capsys):
        cache_dir = _fill_cache(tmp_path, SMALL_TASKSET_SPEC)
        assert main(["cache", "stats", "--cache", cache_dir]) == 0
        assert "2 entries" in capsys.readouterr().out
        assert main(["cache", "prune", "--cache", cache_dir,
                     "--max-bytes", "0", "--dry-run"]) == 0
        assert "would remove 2" in capsys.readouterr().out
        assert main(["cache", "prune", "--cache", cache_dir,
                     "--max-bytes", "0"]) == 0
        assert "removed 2" in capsys.readouterr().out
        assert len(CellCache(cache_dir, memory=False)) == 0

    def test_cache_prune_requires_a_limit(self, tmp_path, capsys):
        assert main(["cache", "prune",
                     "--cache", str(tmp_path / "c")]) == 2
        assert "--max-bytes" in capsys.readouterr().err
