"""Unit tests for the experiment table specs."""

import pytest

from repro.core.schemes import (
    AdaptiveCCPPolicy,
    AdaptiveConfig,
    AdaptiveDVSPolicy,
    AdaptiveSCPPolicy,
    KFaultTolerantPolicy,
    PoissonArrivalPolicy,
)
from repro.errors import ConfigurationError
from repro.experiments.config import DEADLINE, all_table_specs, table_spec
from repro.experiments.paper_data import TABLE_IDS, paper_rows


class TestTableSpecs:
    def test_all_published_ids_resolvable(self):
        for table_id in TABLE_IDS:
            assert table_spec(table_id).table_id == table_id

    def test_unknown_id_rejected(self):
        with pytest.raises(ConfigurationError):
            table_spec("5a")

    def test_rows_match_paper_data(self):
        for table_id in TABLE_IDS:
            spec = table_spec(table_id)
            assert list(spec.rows) == paper_rows(table_id)

    def test_cost_families(self):
        assert table_spec("1a").costs.store_cycles == 2
        assert table_spec("2b").costs.store_cycles == 2
        assert table_spec("3a").costs.store_cycles == 20
        assert table_spec("4b").costs.compare_cycles == 2

    def test_static_frequencies(self):
        assert table_spec("1a").static_frequency == 1.0
        assert table_spec("2a").static_frequency == 2.0
        assert table_spec("3b").static_frequency == 1.0
        assert table_spec("4a").static_frequency == 2.0

    def test_fault_budgets(self):
        assert table_spec("1a").fault_budget == 5
        assert table_spec("1b").fault_budget == 1
        assert table_spec("4a").fault_budget == 5
        assert table_spec("4b").fault_budget == 1

    def test_scheme_columns(self):
        assert table_spec("1a").schemes == ("Poisson", "k-f-t", "A_D", "A_D_S")
        assert table_spec("3a").schemes == ("Poisson", "k-f-t", "A_D", "A_D_C")

    def test_task_cycles_use_reference_frequency(self):
        # Tables 1/3: N = U·f1·D; tables 2/4: N = U·f2·D.
        assert table_spec("1a").task(0.76, 1.4e-3).cycles == pytest.approx(7600)
        assert table_spec("2a").task(0.76, 1.4e-3).cycles == pytest.approx(15200)

    def test_task_carries_row_parameters(self):
        task = table_spec("1b").task(0.92, 2e-4)
        assert task.fault_rate == 2e-4
        assert task.fault_budget == 1
        assert task.deadline == DEADLINE

    def test_policy_factories_build_fresh_instances(self):
        spec = table_spec("1a")
        factory = spec.policy_factory("A_D_S")
        a, b = factory(), factory()
        assert isinstance(a, AdaptiveSCPPolicy)
        assert a is not b

    def test_policy_factory_types(self):
        spec_scp = table_spec("2a")
        spec_ccp = table_spec("4a")
        assert isinstance(spec_scp.policy_factory("Poisson")(), PoissonArrivalPolicy)
        assert isinstance(spec_scp.policy_factory("k-f-t")(), KFaultTolerantPolicy)
        assert isinstance(spec_scp.policy_factory("A_D")(), AdaptiveDVSPolicy)
        assert isinstance(spec_ccp.policy_factory("A_D_C")(), AdaptiveCCPPolicy)

    def test_static_policies_use_spec_frequency(self):
        policy = table_spec("2a").policy_factory("Poisson")()
        assert policy.frequency == 2.0

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            table_spec("1a").policy_factory("bogus")

    def test_with_adaptive_config(self):
        spec = table_spec("1a").with_adaptive_config(
            AdaptiveConfig(analysis_rate_factor=2.0)
        )
        policy = spec.policy_factory("A_D_S")()
        assert policy.config.analysis_rate_factor == 2.0

    def test_all_table_specs_ordered(self):
        assert [s.table_id for s in all_table_specs()] == list(TABLE_IDS)

    def test_invalid_variant_rejected(self):
        from repro.experiments.config import TableSpec
        from repro.core.checkpoints import CostModel

        with pytest.raises(ConfigurationError):
            TableSpec(
                table_id="x",
                title="bad",
                costs=CostModel.scp_favourable(),
                fault_budget=1,
                static_frequency=1.0,
                reference_frequency=1.0,
                rows=((0.5, 1e-4),),
                adaptive_variant="nope",
            )
