"""Unit tests for the experiment table specs."""

import pytest

from repro.core.schemes import (
    AdaptiveCCPPolicy,
    AdaptiveConfig,
    AdaptiveDVSPolicy,
    AdaptiveSCPPolicy,
    KFaultTolerantPolicy,
    PoissonArrivalPolicy,
)
from repro.errors import ConfigurationError
from repro.experiments.config import DEADLINE, all_table_specs, table_spec
from repro.experiments.paper_data import TABLE_IDS, paper_rows


class TestTableSpecs:
    def test_all_published_ids_resolvable(self):
        for table_id in TABLE_IDS:
            assert table_spec(table_id).table_id == table_id

    def test_unknown_id_rejected(self):
        with pytest.raises(ConfigurationError):
            table_spec("5a")

    def test_rows_match_paper_data(self):
        for table_id in TABLE_IDS:
            spec = table_spec(table_id)
            assert list(spec.rows) == paper_rows(table_id)

    def test_cost_families(self):
        assert table_spec("1a").costs.store_cycles == 2
        assert table_spec("2b").costs.store_cycles == 2
        assert table_spec("3a").costs.store_cycles == 20
        assert table_spec("4b").costs.compare_cycles == 2

    def test_static_frequencies(self):
        assert table_spec("1a").static_frequency == 1.0
        assert table_spec("2a").static_frequency == 2.0
        assert table_spec("3b").static_frequency == 1.0
        assert table_spec("4a").static_frequency == 2.0

    def test_fault_budgets(self):
        assert table_spec("1a").fault_budget == 5
        assert table_spec("1b").fault_budget == 1
        assert table_spec("4a").fault_budget == 5
        assert table_spec("4b").fault_budget == 1

    def test_scheme_columns(self):
        assert table_spec("1a").schemes == ("Poisson", "k-f-t", "A_D", "A_D_S")
        assert table_spec("3a").schemes == ("Poisson", "k-f-t", "A_D", "A_D_C")

    def test_task_cycles_use_reference_frequency(self):
        # Tables 1/3: N = U·f1·D; tables 2/4: N = U·f2·D.
        assert table_spec("1a").task(0.76, 1.4e-3).cycles == pytest.approx(7600)
        assert table_spec("2a").task(0.76, 1.4e-3).cycles == pytest.approx(15200)

    def test_task_carries_row_parameters(self):
        task = table_spec("1b").task(0.92, 2e-4)
        assert task.fault_rate == 2e-4
        assert task.fault_budget == 1
        assert task.deadline == DEADLINE

    def test_policy_factories_build_fresh_instances(self):
        spec = table_spec("1a")
        factory = spec.policy_factory("A_D_S")
        a, b = factory(), factory()
        assert isinstance(a, AdaptiveSCPPolicy)
        assert a is not b

    def test_policy_factory_types(self):
        spec_scp = table_spec("2a")
        spec_ccp = table_spec("4a")
        assert isinstance(spec_scp.policy_factory("Poisson")(), PoissonArrivalPolicy)
        assert isinstance(spec_scp.policy_factory("k-f-t")(), KFaultTolerantPolicy)
        assert isinstance(spec_scp.policy_factory("A_D")(), AdaptiveDVSPolicy)
        assert isinstance(spec_ccp.policy_factory("A_D_C")(), AdaptiveCCPPolicy)

    def test_static_policies_use_spec_frequency(self):
        policy = table_spec("2a").policy_factory("Poisson")()
        assert policy.frequency == 2.0

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            table_spec("1a").policy_factory("bogus")

    def test_with_adaptive_config(self):
        spec = table_spec("1a").with_adaptive_config(
            AdaptiveConfig(analysis_rate_factor=2.0)
        )
        policy = spec.policy_factory("A_D_S")()
        assert policy.config.analysis_rate_factor == 2.0

    def test_all_table_specs_ordered(self):
        assert [s.table_id for s in all_table_specs()] == list(TABLE_IDS)

    def test_invalid_variant_rejected(self):
        from repro.experiments.config import TableSpec
        from repro.core.checkpoints import CostModel

        with pytest.raises(ConfigurationError):
            TableSpec(
                table_id="x",
                title="bad",
                costs=CostModel.scp_favourable(),
                fault_budget=1,
                static_frequency=1.0,
                reference_frequency=1.0,
                rows=((0.5, 1e-4),),
                adaptive_variant="nope",
            )


class TestExecutionSettings:
    """The one validated where-does-it-run selector behind the CLI."""

    def _settings(self, **kwargs):
        from repro.experiments.config import ExecutionSettings

        return ExecutionSettings(**kwargs)

    def test_default_is_implicit_serial(self):
        settings = self._settings()
        assert settings.resolved_backend == "serial"
        assert settings.make_runner() is None

    def test_workers_imply_process(self):
        settings = self._settings(workers=4)
        assert settings.resolved_backend == "process"
        runner = settings.make_runner()
        assert runner.workers == 4
        runner.close()

    def test_workers_one_stays_serial_when_inferred(self):
        settings = self._settings(workers=1)
        assert settings.resolved_backend == "serial"
        assert settings.make_runner() is None

    def test_explicit_process_honours_workers_verbatim(self):
        from repro.sim.parallel import default_workers

        unspecified = self._settings(backend="process").make_runner()
        assert unspecified.backend.name == "process"
        assert unspecified.workers == default_workers()
        unspecified.close()
        single = self._settings(backend="process", workers=1).make_runner()
        assert single.backend.name == "process"
        assert single.workers == 1  # a genuine 1-process pool
        single.close()

    def test_workers_zero_means_all_cpus(self):
        from repro.sim.parallel import default_workers

        runner = self._settings(workers=0).make_runner()
        assert runner.workers == default_workers()
        runner.close()

    def test_chunk_size_alone_stays_serial(self):
        runner = self._settings(chunk_size=64).make_runner()
        assert runner is not None
        assert runner.block_size == 64
        assert runner.backend.name == "serial"

    def test_distributed_with_cluster(self):
        settings = self._settings(backend="distributed", cluster_workers=2)
        assert settings.resolved_backend == "distributed"
        runner = settings.make_runner()
        try:
            assert runner.backend.name == "distributed"
            assert runner.backend.cluster.size == 2
        finally:
            runner.close()

    def test_distributed_url_passthrough(self):
        settings = self._settings(backend="distributed", url="tcp://127.0.0.1:0")
        runner = settings.make_runner()
        try:
            assert runner.backend.url == "tcp://127.0.0.1:0"
            assert runner.backend.cluster is None
        finally:
            runner.close()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(backend="quantum"),
            dict(workers=-1),
            dict(chunk_size=0),
            dict(cluster_workers=-2),
            dict(backend="serial", workers=4),
            dict(backend="distributed", workers=2),
            dict(backend="distributed", workers=1),
            dict(backend="process", cluster_workers=2),
            dict(cluster_workers=2),
            dict(url="tcp://x:1"),
            dict(backend="serial", url="tcp://x:1"),
        ],
    )
    def test_contradictions_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            self._settings(**kwargs)


class TestAdaptiveBatchingSetting:
    def test_default_is_on(self):
        from repro.experiments.config import ExecutionSettings

        assert ExecutionSettings().adaptive_batching is True

    def test_forwarded_to_process_backend(self):
        from repro.experiments.config import ExecutionSettings

        runner = ExecutionSettings(
            backend="process", workers=2, adaptive_batching=False
        ).make_runner()
        try:
            assert runner.backend.adaptive_batching is False
        finally:
            runner.close()

    def test_process_backend_defaults_adaptive_on(self):
        from repro.experiments.config import ExecutionSettings

        runner = ExecutionSettings(backend="process", workers=2).make_runner()
        try:
            assert runner.backend.adaptive_batching is True
        finally:
            runner.close()

    def test_serial_ignores_the_knob(self):
        # Serial execution has no dispatch; the flag must not error.
        from repro.experiments.config import ExecutionSettings

        settings = ExecutionSettings(adaptive_batching=False)
        assert settings.make_runner() is None
