"""Fault injection against the distributed backend.

Correctness for a distributed transport *is* its failure behaviour, so
every scenario here ends the same way: whatever was killed, dropped or
never started, the merged :class:`~repro.sim.montecarlo.CellEstimate`\\ s
must be bit-identical to the :class:`~repro.sim.backends.SerialBackend`
pass over the same mixed (executor + fast-static) grid, with exact rep
counts (nothing lost, nothing double-merged).

Deterministic injection uses the worker's ``max_tasks`` crash hook
(complete N blocks, then drop the connection — mid-batch if the cap
lands there); one scenario also SIGKILLs a live worker mid-run, where
*any* interleaving must still converge to the identical answer.

The merge-idempotence property test pins the contract clause that
makes all of this sound: a recomputed block is byte-equal to the
original, so at-least-once delivery plus resolve-once collection
cannot change the moments.
"""

import random
import threading
import time
from functools import partial

import pytest

from repro.core.checkpoints import CostModel
from repro.core.schemes import KFaultTolerantPolicy, PoissonArrivalPolicy
from repro.sim.backends import (
    CellJob,
    DistributedBackend,
    SerialBackend,
    execute_block,
    plan_blocks,
)
from repro.sim.distributed import LocalCluster
from repro.sim.fastpath import StaticCellJob, static_cell_for_scheme
from repro.sim.montecarlo import CellAccumulator
from repro.sim.parallel import BatchRunner
from repro.sim.task import TaskSpec

CHUNK = 8


def _task() -> TaskSpec:
    return TaskSpec(
        cycles=7600.0,
        deadline=10_000.0,
        fault_budget=5,
        fault_rate=1.4e-3,
        costs=CostModel.scp_favourable(),
    )


def _grid_jobs():
    """The mixed grid every scenario replays (fresh instances)."""
    task = _task()
    return [
        StaticCellJob(
            spec=static_cell_for_scheme(task, "Poisson", 1.0), reps=120, seed=4
        ),
        CellJob(
            task=task,
            policy_factory=partial(PoissonArrivalPolicy, 1.0),
            reps=60,
            seed=4,
        ),
        StaticCellJob(
            spec=static_cell_for_scheme(task, "k-f-t", 1.0), reps=80, seed=9
        ),
    ]


@pytest.fixture(scope="module")
def serial_reference():
    return BatchRunner.serial(chunk_size=CHUNK).run_cells(_grid_jobs())


def _assert_identical_to_serial(estimates, serial_reference):
    jobs = _grid_jobs()
    assert [cell.reps for cell in estimates] == [job.reps for job in jobs]
    assert all(
        ours.same_values(ref)
        for ours, ref in zip(estimates, serial_reference)
    )


def _run_distributed(backend: DistributedBackend):
    runner = BatchRunner(backend=backend, chunk_size=CHUNK)
    try:
        return runner.run_cells(_grid_jobs())
    finally:
        runner.close()


def _merge_through(coordinator, tasks):
    """Run block tasks on an existing coordinator, merged in block
    order (the same fold BatchRunner.run_cells performs)."""
    results = coordinator.run_tasks(tasks)
    merged = {}
    for block_task, shard in zip(tasks, results):
        if block_task.job_index in merged:
            merged[block_task.job_index].merge(shard)
        else:
            merged[block_task.job_index] = shard
    return [merged[index].finalize() for index in range(len(merged))]


class TestWorkerFailures:
    def test_worker_killed_mid_grid(self, serial_reference):
        """One of two workers crashes after three blocks; its in-flight
        tasks requeue to the survivor and the answer is unchanged."""
        backend = DistributedBackend(
            cluster=LocalCluster(2, max_tasks=(3, None))
        )
        estimates = _run_distributed(backend)
        _assert_identical_to_serial(estimates, serial_reference)

    def test_connection_drop_after_partial_results(self, serial_reference):
        """A worker streams part of a batch, then drops the link.

        ``batch_size=4`` with ``max_tasks=2`` guarantees the crash
        lands mid-batch: two accumulators made it back, two did not.
        The delivered ones must be kept (not recomputed *and* merged
        twice), the undelivered ones must be re-run — byte-equality
        with serial proves both at once.
        """
        backend = DistributedBackend(
            cluster=LocalCluster(1, max_tasks=2), batch_size=4
        )
        estimates = _run_distributed(backend)
        _assert_identical_to_serial(estimates, serial_reference)

    def test_all_workers_die(self, serial_reference):
        """Every worker crashes almost immediately; the coordinator
        finishes the grid in-process rather than failing."""
        backend = DistributedBackend(cluster=LocalCluster(2, max_tasks=1))
        estimates = _run_distributed(backend)
        _assert_identical_to_serial(estimates, serial_reference)

    def test_zero_workers_from_the_start(self, serial_reference):
        """No cluster, nobody ever connects: the backend must still
        succeed anywhere SerialBackend would (pure local fallback)."""
        backend = DistributedBackend()
        estimates = _run_distributed(backend)
        _assert_identical_to_serial(estimates, serial_reference)

    def test_crashed_worker_respawns_and_grid_is_identical(
        self, serial_reference
    ):
        """Auto-respawn: the cluster's only worker is SIGKILLed, the
        monitor replaces it, the replacement connects to the same
        coordinator, and a grid run afterwards is bit-identical to
        serial (respawn is pure availability — seeding and merge order
        never see it)."""
        from repro.sim.distributed import Coordinator

        coordinator = Coordinator()
        cluster = LocalCluster(1, max_respawns=4, respawn_poll=0.05)
        try:
            cluster.start(coordinator.url)
            assert coordinator.wait_for_workers(1, timeout=30.0) == 1
            cluster.kill_worker(0)
            deadline = time.monotonic() + 30.0
            while cluster.respawns < 1 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert cluster.respawns >= 1, "the dead worker was never replaced"
            deadline = time.monotonic() + 30.0
            while cluster.alive() < 1 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert cluster.alive() == 1, "the replacement did not come up"
            estimates = _merge_through(
                coordinator, plan_blocks(_grid_jobs(), CHUNK)
            )
            _assert_identical_to_serial(estimates, serial_reference)
        finally:
            cluster.close()
            coordinator.close()

    def test_respawn_budget_is_bounded(self):
        """A crash-looping worker stops being replaced once the
        cluster-wide budget is spent."""
        from repro.sim.distributed import Coordinator

        coordinator = Coordinator()
        cluster = LocalCluster(1, max_respawns=2, respawn_poll=0.05)
        try:
            cluster.start(coordinator.url)
            assert coordinator.wait_for_workers(1, timeout=30.0) == 1
            for expected in (1, 2):
                cluster.kill_worker(0)
                deadline = time.monotonic() + 30.0
                while (cluster.respawns < expected
                       and time.monotonic() < deadline):
                    time.sleep(0.05)
                assert cluster.respawns == expected
            cluster.kill_worker(0)  # budget exhausted: stays dead
            time.sleep(0.5)
            assert cluster.respawns == 2
            assert cluster.alive() == 0
        finally:
            cluster.close()
            coordinator.close()

    def test_clean_exits_do_not_burn_respawn_budget(self):
        """Exit-0 workers (idle timeout, the max_tasks crash hook) are
        normal lifecycle, not crashes: the monitor leaves them down
        and keeps the budget for genuine failures."""
        from repro.sim.distributed import Coordinator

        coordinator = Coordinator()
        cluster = LocalCluster(
            1, max_tasks=1, max_respawns=4, respawn_poll=0.05
        )
        try:
            cluster.start(coordinator.url)
            assert coordinator.wait_for_workers(1, timeout=30.0) == 1
            estimates = _merge_through(
                coordinator, plan_blocks(_grid_jobs(), CHUNK)
            )
            assert [cell.reps for cell in estimates] == [
                job.reps for job in _grid_jobs()
            ]
            # The worker completed one block and exited cleanly; give
            # the monitor time to (wrongly) react, then check it kept
            # its hands off.
            deadline = time.monotonic() + 10.0
            while cluster.alive() and time.monotonic() < deadline:
                time.sleep(0.05)
            time.sleep(0.5)
            assert cluster.respawns == 0
        finally:
            cluster.close()
            coordinator.close()

    def test_respawn_off_by_default(self):
        cluster = LocalCluster(2)
        assert cluster.max_respawns == 0 and cluster.respawns == 0

    def test_sigkill_mid_run(self, serial_reference):
        """A live worker is SIGKILLed while the grid is in flight.

        Unlike the ``max_tasks`` scenarios the kill point is not
        deterministic — which is the point: *every* interleaving
        (killed before, during or after its batches) must converge to
        the identical estimates.
        """
        cluster = LocalCluster(2)
        backend = DistributedBackend(cluster=cluster)
        runner = BatchRunner(backend=backend, chunk_size=CHUNK)
        outcome = {}

        def run():
            outcome["estimates"] = runner.run_cells(_grid_jobs())

        thread = threading.Thread(target=run)
        thread.start()
        try:
            time.sleep(1.0)  # let workers connect and claim work
            cluster.kill_worker(0)
            thread.join(timeout=120.0)
            assert not thread.is_alive(), "batch never completed after kill"
        finally:
            runner.close()
        _assert_identical_to_serial(outcome["estimates"], serial_reference)


class TestMergeIdempotence:
    """Property: coordinator-side recompute cannot change the moments.

    Randomized (cells × blocks) plans where each block is recomputed
    0–2 extra times — the accumulator actually merged is the *last*
    recompute, exactly what a requeued-and-retried block looks like at
    the coordinator.  The merged estimates must be byte-equal to the
    single-execution fold, pinning the "idempotent recompute" clause
    of the DistributedBackend contract.
    """

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_recomputed_blocks_merge_identically(self, seed):
        rng = random.Random(seed)
        task = _task()
        jobs = []
        for index in range(rng.randint(2, 4)):
            reps = rng.randint(15, 60)
            job_seed = rng.randint(0, 10_000)
            if rng.random() < 0.5:
                scheme = rng.choice(["Poisson", "k-f-t"])
                jobs.append(
                    StaticCellJob(
                        spec=static_cell_for_scheme(task, scheme, 1.0),
                        reps=reps,
                        seed=job_seed,
                    )
                )
            else:
                jobs.append(
                    CellJob(
                        task=task,
                        policy_factory=partial(PoissonArrivalPolicy, 1.0),
                        reps=reps,
                        seed=job_seed,
                    )
                )
        chunk = rng.choice([8, 16, 32])
        tasks = plan_blocks(jobs, chunk)
        baseline = BatchRunner.serial(chunk_size=chunk).run_cells(jobs)

        merged = {}
        for block_task in tasks:
            accumulator = execute_block(block_task)
            for _ in range(rng.randint(0, 2)):
                accumulator = execute_block(block_task)  # retried delivery
            if block_task.job_index in merged:
                merged[block_task.job_index].merge(accumulator)
            else:
                merged[block_task.job_index] = accumulator
        replayed = [merged[index].finalize() for index in range(len(jobs))]
        assert all(
            ours.same_values(ref) for ours, ref in zip(replayed, baseline)
        )

    def test_duplicate_result_is_dropped_not_merged_twice(self):
        """Resolve-once at the accumulator level: merging a block's
        duplicate would inflate the rep count — the coordinator instead
        drops it, which the conformance rep checks also pin.  Here the
        unit-level statement: two executions of one BlockTask are
        byte-equal, so dropping either is sound."""
        tasks = plan_blocks(_grid_jobs(), CHUNK)
        chosen = tasks[len(tasks) // 2]
        first = execute_block(chosen)
        second = execute_block(chosen)
        assert isinstance(first, CellAccumulator)
        assert repr(first.finalize()) == repr(second.finalize())

    def test_local_fallback_matches_worker_execution(self):
        """The no-workers path runs the very same execute_block the
        workers run — byte-equal accumulators per task."""
        tasks = plan_blocks(_grid_jobs(), CHUNK)
        local = SerialBackend().run_tasks(tasks)
        backend = DistributedBackend()
        try:
            fallback = backend.run_tasks(tasks)
        finally:
            backend.close()
        assert [repr(a.finalize()) for a in fallback] == [
            repr(a.finalize()) for a in local
        ]
