"""Fault injection against the distributed backend.

Correctness for a distributed transport *is* its failure behaviour, so
every scenario here ends the same way: whatever was killed, dropped or
never started, the merged :class:`~repro.sim.montecarlo.CellEstimate`\\ s
must be bit-identical to the :class:`~repro.sim.backends.SerialBackend`
pass over the same mixed (executor + fast-static) grid, with exact rep
counts (nothing lost, nothing double-merged).

Deterministic injection uses the worker's ``max_tasks`` crash hook
(complete N blocks, then drop the connection — mid-batch if the cap
lands there); one scenario also SIGKILLs a live worker mid-run, where
*any* interleaving must still converge to the identical answer.

The merge-idempotence property test pins the contract clause that
makes all of this sound: a recomputed block is byte-equal to the
original, so at-least-once delivery plus resolve-once collection
cannot change the moments.
"""

import os
import random
import shutil
import signal
import socket
import subprocess
import threading
import time
from functools import partial

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoints import CostModel
from repro.core.schemes import KFaultTolerantPolicy, PoissonArrivalPolicy
from repro.errors import ConfigurationError
from repro.sim.backends import (
    CellJob,
    DistributedBackend,
    SerialBackend,
    execute_block,
    plan_blocks,
)
from repro.sim.distributed import (
    Coordinator,
    LocalCluster,
    TLSConfig,
    serve_worker,
    _authenticate_as_worker,
    _recv_msg,
    _send_msg,
)
from repro.sim.fastpath import StaticCellJob, static_cell_for_scheme
from repro.sim.montecarlo import CellAccumulator
from repro.sim.parallel import BatchRunner
from repro.sim.task import TaskSpec

CHUNK = 8


def _task() -> TaskSpec:
    return TaskSpec(
        cycles=7600.0,
        deadline=10_000.0,
        fault_budget=5,
        fault_rate=1.4e-3,
        costs=CostModel.scp_favourable(),
    )


def _grid_jobs():
    """The mixed grid every scenario replays (fresh instances)."""
    task = _task()
    return [
        StaticCellJob(
            spec=static_cell_for_scheme(task, "Poisson", 1.0), reps=120, seed=4
        ),
        CellJob(
            task=task,
            policy_factory=partial(PoissonArrivalPolicy, 1.0),
            reps=60,
            seed=4,
        ),
        StaticCellJob(
            spec=static_cell_for_scheme(task, "k-f-t", 1.0), reps=80, seed=9
        ),
    ]


@pytest.fixture(scope="module")
def serial_reference():
    return BatchRunner.serial(chunk_size=CHUNK).run_cells(_grid_jobs())


def _assert_identical_to_serial(estimates, serial_reference):
    jobs = _grid_jobs()
    assert [cell.reps for cell in estimates] == [job.reps for job in jobs]
    assert all(
        ours.same_values(ref)
        for ours, ref in zip(estimates, serial_reference)
    )


def _run_distributed(backend: DistributedBackend):
    runner = BatchRunner(backend=backend, chunk_size=CHUNK)
    try:
        return runner.run_cells(_grid_jobs())
    finally:
        runner.close()


def _merge_through(coordinator, tasks):
    """Run block tasks on an existing coordinator, merged in block
    order (the same fold BatchRunner.run_cells performs)."""
    results = coordinator.run_tasks(tasks)
    merged = {}
    for block_task, shard in zip(tasks, results):
        if block_task.job_index in merged:
            merged[block_task.job_index].merge(shard)
        else:
            merged[block_task.job_index] = shard
    return [merged[index].finalize() for index in range(len(merged))]


class TestWorkerFailures:
    def test_worker_killed_mid_grid(self, serial_reference):
        """One of two workers crashes after three blocks; its in-flight
        tasks requeue to the survivor and the answer is unchanged."""
        backend = DistributedBackend(
            cluster=LocalCluster(2, max_tasks=(3, None))
        )
        estimates = _run_distributed(backend)
        _assert_identical_to_serial(estimates, serial_reference)

    def test_connection_drop_after_partial_results(self, serial_reference):
        """A worker streams part of a batch, then drops the link.

        ``batch_size=4`` with ``max_tasks=2`` guarantees the crash
        lands mid-batch: two accumulators made it back, two did not.
        The delivered ones must be kept (not recomputed *and* merged
        twice), the undelivered ones must be re-run — byte-equality
        with serial proves both at once.
        """
        backend = DistributedBackend(
            cluster=LocalCluster(1, max_tasks=2), batch_size=4
        )
        estimates = _run_distributed(backend)
        _assert_identical_to_serial(estimates, serial_reference)

    def test_all_workers_die(self, serial_reference):
        """Every worker crashes almost immediately; the coordinator
        finishes the grid in-process rather than failing."""
        backend = DistributedBackend(cluster=LocalCluster(2, max_tasks=1))
        estimates = _run_distributed(backend)
        _assert_identical_to_serial(estimates, serial_reference)

    def test_zero_workers_from_the_start(self, serial_reference):
        """No cluster, nobody ever connects: the backend must still
        succeed anywhere SerialBackend would (pure local fallback)."""
        backend = DistributedBackend()
        estimates = _run_distributed(backend)
        _assert_identical_to_serial(estimates, serial_reference)

    def test_crashed_worker_respawns_and_grid_is_identical(
        self, serial_reference
    ):
        """Auto-respawn: the cluster's only worker is SIGKILLed, the
        monitor replaces it, the replacement connects to the same
        coordinator, and a grid run afterwards is bit-identical to
        serial (respawn is pure availability — seeding and merge order
        never see it)."""
        from repro.sim.distributed import Coordinator

        coordinator = Coordinator()
        cluster = LocalCluster(1, max_respawns=4, respawn_poll=0.05)
        try:
            cluster.start(coordinator.url)
            assert coordinator.wait_for_workers(1, timeout=30.0) == 1
            cluster.kill_worker(0)
            deadline = time.monotonic() + 30.0
            while cluster.respawns < 1 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert cluster.respawns >= 1, "the dead worker was never replaced"
            deadline = time.monotonic() + 30.0
            while cluster.alive() < 1 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert cluster.alive() == 1, "the replacement did not come up"
            estimates = _merge_through(
                coordinator, plan_blocks(_grid_jobs(), CHUNK)
            )
            _assert_identical_to_serial(estimates, serial_reference)
        finally:
            cluster.close()
            coordinator.close()

    def test_respawn_budget_is_bounded(self):
        """A crash-looping worker stops being replaced once the
        cluster-wide budget is spent."""
        from repro.sim.distributed import Coordinator

        coordinator = Coordinator()
        cluster = LocalCluster(1, max_respawns=2, respawn_poll=0.05)
        try:
            cluster.start(coordinator.url)
            assert coordinator.wait_for_workers(1, timeout=30.0) == 1
            for expected in (1, 2):
                cluster.kill_worker(0)
                deadline = time.monotonic() + 30.0
                while (cluster.respawns < expected
                       and time.monotonic() < deadline):
                    time.sleep(0.05)
                assert cluster.respawns == expected
            cluster.kill_worker(0)  # budget exhausted: stays dead
            time.sleep(0.5)
            assert cluster.respawns == 2
            assert cluster.alive() == 0
        finally:
            cluster.close()
            coordinator.close()

    def test_clean_exits_do_not_burn_respawn_budget(self):
        """Exit-0 workers (idle timeout, the max_tasks crash hook) are
        normal lifecycle, not crashes: the monitor leaves them down
        and keeps the budget for genuine failures."""
        from repro.sim.distributed import Coordinator

        coordinator = Coordinator()
        cluster = LocalCluster(
            1, max_tasks=1, max_respawns=4, respawn_poll=0.05
        )
        try:
            cluster.start(coordinator.url)
            assert coordinator.wait_for_workers(1, timeout=30.0) == 1
            estimates = _merge_through(
                coordinator, plan_blocks(_grid_jobs(), CHUNK)
            )
            assert [cell.reps for cell in estimates] == [
                job.reps for job in _grid_jobs()
            ]
            # The worker completed one block and exited cleanly; give
            # the monitor time to (wrongly) react, then check it kept
            # its hands off.
            deadline = time.monotonic() + 10.0
            while cluster.alive() and time.monotonic() < deadline:
                time.sleep(0.05)
            time.sleep(0.5)
            assert cluster.respawns == 0
        finally:
            cluster.close()
            coordinator.close()

    def test_respawn_off_by_default(self):
        cluster = LocalCluster(2)
        assert cluster.max_respawns == 0 and cluster.respawns == 0

    def test_sigkill_mid_run(self, serial_reference):
        """A live worker is SIGKILLed while the grid is in flight.

        Unlike the ``max_tasks`` scenarios the kill point is not
        deterministic — which is the point: *every* interleaving
        (killed before, during or after its batches) must converge to
        the identical estimates.
        """
        cluster = LocalCluster(2)
        backend = DistributedBackend(cluster=cluster)
        runner = BatchRunner(backend=backend, chunk_size=CHUNK)
        outcome = {}

        def run():
            outcome["estimates"] = runner.run_cells(_grid_jobs())

        thread = threading.Thread(target=run)
        thread.start()
        try:
            time.sleep(1.0)  # let workers connect and claim work
            cluster.kill_worker(0)
            thread.join(timeout=120.0)
            assert not thread.is_alive(), "batch never completed after kill"
        finally:
            runner.close()
        _assert_identical_to_serial(outcome["estimates"], serial_reference)


class TestMergeIdempotence:
    """Property: coordinator-side recompute cannot change the moments.

    Randomized (cells × blocks) plans where each block is recomputed
    0–2 extra times — the accumulator actually merged is the *last*
    recompute, exactly what a requeued-and-retried block looks like at
    the coordinator.  The merged estimates must be byte-equal to the
    single-execution fold, pinning the "idempotent recompute" clause
    of the DistributedBackend contract.
    """

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_recomputed_blocks_merge_identically(self, seed):
        rng = random.Random(seed)
        task = _task()
        jobs = []
        for index in range(rng.randint(2, 4)):
            reps = rng.randint(15, 60)
            job_seed = rng.randint(0, 10_000)
            if rng.random() < 0.5:
                scheme = rng.choice(["Poisson", "k-f-t"])
                jobs.append(
                    StaticCellJob(
                        spec=static_cell_for_scheme(task, scheme, 1.0),
                        reps=reps,
                        seed=job_seed,
                    )
                )
            else:
                jobs.append(
                    CellJob(
                        task=task,
                        policy_factory=partial(PoissonArrivalPolicy, 1.0),
                        reps=reps,
                        seed=job_seed,
                    )
                )
        chunk = rng.choice([8, 16, 32])
        tasks = plan_blocks(jobs, chunk)
        baseline = BatchRunner.serial(chunk_size=chunk).run_cells(jobs)

        merged = {}
        for block_task in tasks:
            accumulator = execute_block(block_task)
            for _ in range(rng.randint(0, 2)):
                accumulator = execute_block(block_task)  # retried delivery
            if block_task.job_index in merged:
                merged[block_task.job_index].merge(accumulator)
            else:
                merged[block_task.job_index] = accumulator
        replayed = [merged[index].finalize() for index in range(len(jobs))]
        assert all(
            ours.same_values(ref) for ours, ref in zip(replayed, baseline)
        )

    def test_duplicate_result_is_dropped_not_merged_twice(self):
        """Resolve-once at the accumulator level: merging a block's
        duplicate would inflate the rep count — the coordinator instead
        drops it, which the conformance rep checks also pin.  Here the
        unit-level statement: two executions of one BlockTask are
        byte-equal, so dropping either is sound."""
        tasks = plan_blocks(_grid_jobs(), CHUNK)
        chosen = tasks[len(tasks) // 2]
        first = execute_block(chosen)
        second = execute_block(chosen)
        assert isinstance(first, CellAccumulator)
        assert repr(first.finalize()) == repr(second.finalize())

    def test_local_fallback_matches_worker_execution(self):
        """The no-workers path runs the very same execute_block the
        workers run — byte-equal accumulators per task."""
        tasks = plan_blocks(_grid_jobs(), CHUNK)
        local = SerialBackend().run_tasks(tasks)
        backend = DistributedBackend()
        try:
            fallback = backend.run_tasks(tasks)
        finally:
            backend.close()
        assert [repr(a.finalize()) for a in fallback] == [
            repr(a.finalize()) for a in local
        ]


# ---------------------------------------------------------------------------
# transport security: TLS under the HMAC handshake


def _make_self_signed(directory, name):
    """One self-signed cert+key pair via the openssl CLI."""
    cert = str(directory / f"{name}-cert.pem")
    key = str(directory / f"{name}-key.pem")
    subprocess.run(
        [
            "openssl", "req", "-x509", "-newkey", "rsa:2048",
            "-keyout", key, "-out", cert, "-days", "2", "-nodes",
            "-subj", f"/CN=repro-test-{name}",
        ],
        check=True,
        capture_output=True,
    )
    return cert, key


@pytest.fixture(scope="module")
def tls_material(tmp_path_factory):
    """(cert, key) for the cluster plus an unrelated decoy cert."""
    if shutil.which("openssl") is None:
        pytest.skip("openssl CLI not available to mint test certificates")
    directory = tmp_path_factory.mktemp("tls")
    cert, key = _make_self_signed(directory, "cluster")
    decoy_cert, _decoy_key = _make_self_signed(directory, "decoy")
    return cert, key, decoy_cert


class TestTLS:
    def test_tls_cluster_grid_is_identical_to_serial(
        self, tls_material, serial_reference
    ):
        """Full stack over TLS — LocalCluster workers verify the
        coordinator against its own self-signed cert — and the merged
        estimates are byte-equal to serial (encryption is pure
        transport, invisible to seeding and merge order)."""
        cert, key, _ = tls_material
        config = TLSConfig(cert=cert, key=key)
        backend = DistributedBackend(
            cluster=LocalCluster(2, tls=config), tls=config
        )
        estimates = _run_distributed(backend)
        _assert_identical_to_serial(estimates, serial_reference)

    def test_worker_rejects_coordinator_with_untrusted_cert(
        self, tls_material
    ):
        """A worker whose CA anchor does not sign the coordinator's
        certificate refuses the connection — cleanly, as a
        ConfigurationError, before any handshake bytes are trusted."""
        cert, key, decoy_cert = tls_material
        with Coordinator(tls=TLSConfig(cert=cert, key=key)) as coordinator:
            with pytest.raises(ConfigurationError, match="TLS handshake"):
                serve_worker(
                    coordinator.url,
                    tls=TLSConfig(ca=decoy_cert),
                    secret=b"",
                    connect_timeout=10.0,
                )

    def test_plaintext_worker_against_tls_coordinator_fails_fast(
        self, tls_material
    ):
        """A plaintext worker dialing a TLS coordinator deadlocks at the
        protocol level (both sides wait for the other's first byte);
        the worker's bounded handshake phase turns that into a prompt
        ConnectionError instead of an idle_timeout hang."""
        cert, key, _ = tls_material
        with Coordinator(tls=TLSConfig(cert=cert, key=key)) as coordinator:
            started = time.monotonic()
            with pytest.raises(
                ConnectionError, match="did not complete the handshake"
            ):
                serve_worker(
                    coordinator.url, secret=b"", connect_timeout=1.0
                )
            assert time.monotonic() - started < 10.0

    def test_tls_worker_against_plaintext_coordinator_fails_cleanly(
        self, tls_material
    ):
        """The reverse mismatch: the plaintext coordinator answers the
        ClientHello with its HMAC nonce, which is not a TLS record —
        the worker must surface a ConfigurationError, not garbage."""
        cert, _, _ = tls_material
        with Coordinator() as coordinator:
            with pytest.raises(ConfigurationError, match="TLS handshake"):
                serve_worker(
                    coordinator.url,
                    tls=TLSConfig(ca=cert),
                    secret=b"",
                    connect_timeout=5.0,
                )

    def test_tls_config_validation(self, tls_material, tmp_path):
        cert, key, _ = tls_material
        with pytest.raises(ConfigurationError, match="together"):
            TLSConfig(cert=cert)  # cert without key
        with pytest.raises(ConfigurationError, match="at least one"):
            TLSConfig()
        with pytest.raises(ConfigurationError, match="not found"):
            TLSConfig(ca=str(tmp_path / "missing.pem"))
        with pytest.raises(ConfigurationError, match="certificate and key"):
            TLSConfig(ca=cert).server_context()  # serving needs a cert
        # The happy paths build real ssl contexts.
        assert TLSConfig(cert=cert, key=key).server_context() is not None
        assert TLSConfig(ca=cert).client_context() is not None


# ---------------------------------------------------------------------------
# stragglers: detection, speculation, resolve-once


class TestStragglers:
    def test_sigstop_mid_batch_completes_via_speculation(
        self, serial_reference
    ):
        """The hole keepalive cannot see: a SIGSTOPped worker's kernel
        still ACKs probes while its claimed blocks sit frozen forever.
        The straggler scan must flag them, speculate duplicates, and
        finish the grid byte-identical to serial."""
        coordinator = Coordinator(straggler_grace=1.0, straggler_factor=4.0)
        # Worker 0 sleeps 5 s per block so it is guaranteed mid-block
        # (tasks claimed, none returned) when the SIGSTOP lands.
        cluster = LocalCluster(2, delay=(5.0, None))
        stopped = None
        try:
            cluster.start(coordinator.url)
            assert coordinator.wait_for_workers(2, timeout=30.0) == 2
            outcome = {}

            def run():
                outcome["estimates"] = _merge_through(
                    coordinator, plan_blocks(_grid_jobs(), CHUNK)
                )

            thread = threading.Thread(target=run)
            thread.start()
            time.sleep(0.5)  # both workers have claimed their batches
            stopped = cluster.processes[0].pid
            os.kill(stopped, signal.SIGSTOP)
            thread.join(timeout=120.0)
            assert not thread.is_alive(), "grid never completed after SIGSTOP"
            assert coordinator.speculations >= 1
            _assert_identical_to_serial(
                outcome["estimates"], serial_reference
            )
        finally:
            if stopped is not None:
                # A stopped process never sees SIGTERM; kill it outright
                # so cluster.close() does not burn its terminate grace.
                try:
                    os.kill(stopped, signal.SIGKILL)
                except ProcessLookupError:
                    pass
            cluster.close()
            coordinator.close()

    def test_slow_loris_worker_is_speculated_around(self, serial_reference):
        """A worker whose link is perfectly healthy but whose compute
        barely moves (the delay hook) must not gate the batch: after
        the grace its blocks are speculated and the grid finishes at
        local speed."""
        coordinator = Coordinator(straggler_grace=0.5)
        cluster = LocalCluster(1, delay=30.0)
        try:
            cluster.start(coordinator.url)
            assert coordinator.wait_for_workers(1, timeout=30.0) == 1
            started = time.monotonic()
            estimates = _merge_through(
                coordinator, plan_blocks(_grid_jobs(), CHUNK)
            )
            elapsed = time.monotonic() - started
            assert coordinator.speculations >= 1
            assert elapsed < 25.0  # nowhere near the 30 s/block worker
            _assert_identical_to_serial(estimates, serial_reference)
        finally:
            cluster.close()
            coordinator.close()

    def test_speculation_disabled_runs_like_the_legacy_coordinator(
        self, serial_reference
    ):
        """straggler_factor=0 at the backend maps to None at the
        coordinator: no scans, no speculations, results unchanged."""
        backend = DistributedBackend(
            cluster=LocalCluster(1), straggler_factor=0
        )
        runner = BatchRunner(backend=backend, chunk_size=CHUNK)
        try:
            estimates = runner.run_cells(_grid_jobs())
            coordinator = backend._coordinator
            assert coordinator is not None
            assert coordinator.straggler_factor is None
            assert coordinator.speculations == 0
        finally:
            runner.close()
        _assert_identical_to_serial(estimates, serial_reference)

    def test_wait_for_workers_default_is_configurable(self):
        """Satellite: the historical hard-coded 10 s default is now the
        coordinator's wait_timeout, and LocalCluster carries the knob
        as an advisory attribute the backend reads."""
        with Coordinator(wait_timeout=0.3) as coordinator:
            started = time.monotonic()
            assert coordinator.wait_for_workers(1) == 0  # nobody connects
            elapsed = time.monotonic() - started
            assert 0.2 <= elapsed < 5.0
        cluster = LocalCluster(1, connect_timeout=7.5)
        assert cluster.connect_timeout == 7.5


class TestSpeculativeDuplicates:
    """Property: resolve-once collection absorbs any duplication.

    A fake worker speaks the real wire protocol (TCP, HMAC handshake,
    pickle frames) and delivers every block's result 1 + k times, k
    drawn per block — exactly what a speculated task whose original
    copy also finishes looks like.  Whatever the duplication pattern,
    each cell resolves exactly once and the merged estimates are
    byte-identical to serial.
    """

    JOBS_SEED = 11

    @staticmethod
    def _property_jobs():
        task = _task()
        return [
            StaticCellJob(
                spec=static_cell_for_scheme(task, "Poisson", 1.0),
                reps=24,
                seed=11,
            ),
            StaticCellJob(
                spec=static_cell_for_scheme(task, "k-f-t", 1.0),
                reps=24,
                seed=12,
            ),
        ]

    @classmethod
    def _serial_baseline(cls):
        if not hasattr(cls, "_baseline"):
            cls._baseline = BatchRunner.serial(chunk_size=CHUNK).run_cells(
                cls._property_jobs()
            )
        return cls._baseline

    @staticmethod
    def _fake_worker(url, copies_per_index):
        """Serve one connection, sending duplicate results on purpose."""
        from repro.sim.distributed import parse_url

        host, port = parse_url(url)
        with socket.create_connection((host, port), timeout=30.0) as sock:
            sock.settimeout(30.0)
            _authenticate_as_worker(sock, b"")
            _send_msg(sock, ("hello", os.getpid()))
            while True:
                try:
                    message = _recv_msg(sock)
                except (ConnectionError, OSError):
                    return
                kind = message[0]
                if kind == "shutdown":
                    return
                if kind == "ping":
                    _send_msg(sock, ("pong",))
                    continue
                if kind != "tasks":
                    continue
                _, epoch, batch = message
                for index, block_task in batch:
                    accumulator = execute_block(block_task)
                    copies = 1 + copies_per_index.get(index, 0)
                    for _ in range(copies):
                        _send_msg(
                            sock,
                            ("result", epoch, index, accumulator, 0.001),
                        )

    @settings(max_examples=8, deadline=None)
    @given(dups=st.lists(st.integers(0, 2), min_size=6, max_size=6))
    def test_duplicate_deliveries_resolve_once_bit_identical(self, dups):
        jobs = self._property_jobs()
        tasks = plan_blocks(jobs, CHUNK)
        assert len(tasks) == 6  # the strategy's min/max_size pin this
        copies_per_index = {index: k for index, k in enumerate(dups)}
        coordinator = Coordinator(secret=b"", straggler_factor=None)
        worker = threading.Thread(
            target=self._fake_worker,
            args=(coordinator.url, copies_per_index),
            daemon=True,
        )
        try:
            worker.start()
            assert coordinator.wait_for_workers(1, timeout=30.0) == 1
            estimates = _merge_through(coordinator, tasks)
        finally:
            coordinator.close()
            worker.join(timeout=10.0)
        baseline = self._serial_baseline()
        assert [cell.reps for cell in estimates] == [
            job.reps for job in jobs
        ]
        assert all(
            ours.same_values(ref)
            for ours, ref in zip(estimates, baseline)
        )
