"""Unit tests for the generic discrete-event engine."""

import pytest

from repro.errors import ParameterError, SimulationError
from repro.sim.engine import Engine


class TestEngine:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule(3.0, lambda: fired.append("c"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(2.0, lambda: fired.append("b"))
        engine.run()
        assert fired == ["a", "b", "c"]
        assert engine.now == 3.0

    def test_simultaneous_events_by_priority_then_fifo(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append("low"), priority=5)
        engine.schedule(1.0, lambda: fired.append("hi"), priority=0)
        engine.schedule(1.0, lambda: fired.append("low2"), priority=5)
        engine.run()
        assert fired == ["hi", "low", "low2"]

    def test_actions_can_schedule_more(self):
        engine = Engine()
        fired = []

        def chain():
            fired.append(engine.now)
            if len(fired) < 3:
                engine.schedule(10.0, chain)

        engine.schedule(0.0, chain)
        engine.run()
        assert fired == [0.0, 10.0, 20.0]

    def test_cancel(self):
        engine = Engine()
        fired = []
        keep = engine.schedule(1.0, lambda: fired.append("keep"))
        drop = engine.schedule(2.0, lambda: fired.append("drop"))
        engine.cancel(drop)
        engine.run()
        assert fired == ["keep"]
        assert keep.time == 1.0

    def test_run_until(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(5.0, lambda: fired.append(5))
        count = engine.run(until=2.0)
        assert count == 1
        assert fired == [1]
        assert engine.now == 2.0
        engine.run()
        assert fired == [1, 5]

    def test_cannot_schedule_in_past(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(ParameterError):
            engine.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ParameterError):
            Engine().schedule(-1.0, lambda: None)

    def test_runaway_loop_detected(self):
        engine = Engine()

        def forever():
            engine.schedule(0.0, forever)

        engine.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)

    def test_peek_time_skips_cancelled(self):
        engine = Engine()
        first = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.cancel(first)
        assert engine.peek_time() == 2.0

    def test_pending_counts_live_events(self):
        engine = Engine()
        a = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        assert engine.pending == 2
        engine.cancel(a)
        assert engine.pending == 1
