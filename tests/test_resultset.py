"""ResultSet round-trips, merge, CSV — including the NaN corners.

Two properties anchor the façade's persistence story:

* ``from_json(to_json(rs))`` is *bit-identical* — every float (NaN
  included, the paper's own convention for empty timely-energy cells)
  survives via JSON's shortest-repr float encoding and the ``NaN``
  literal;
* resume-after-partial equals a fresh full run cell-for-cell, for any
  subset of cells held back (cell seeds are pure functions of cell
  identity, so recomputing a subset lands on the same realisations).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import CellRecord, ResultSet, Study, StudySpec
from repro.api.results import git_describe
from repro.errors import ConfigurationError
from repro.sim.metrics import MeanEstimate, ProportionEstimate
from repro.sim.montecarlo import CellEstimate

# Full-range doubles: NaN and the infinities are legal estimate values
# (NaN is routine), and serialisation must not corrupt any of them.
any_float = st.floats(allow_nan=True, allow_infinity=True)
finite = st.floats(allow_nan=False, allow_infinity=False)
counts = st.integers(min_value=0, max_value=10**9)


@st.composite
def mean_estimates(draw):
    return MeanEstimate(
        value=draw(any_float),
        low=draw(any_float),
        high=draw(any_float),
        count=draw(counts),
    )


@st.composite
def cell_estimates(draw):
    trials = draw(st.integers(min_value=1, max_value=10**9))
    return CellEstimate(
        p_timely=ProportionEstimate(
            value=draw(any_float),
            low=draw(any_float),
            high=draw(any_float),
            trials=trials,
        ),
        energy_timely=draw(mean_estimates()),
        energy_all=draw(mean_estimates()),
        mean_finish_time_timely=draw(any_float),
        mean_detected_faults=draw(finite),
        mean_checkpoints=draw(finite),
        mean_sub_checkpoints=draw(finite),
        reps=trials,
    )


@st.composite
def cell_records(draw, index):
    return CellRecord(
        key=f"cell-{index}",
        axes={"u": draw(finite), "scheme": f"s{index}"},
        estimate=draw(cell_estimates()),
        spec_hash="abc123",
        seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
        block_size=draw(st.integers(min_value=1, max_value=4096)),
        backend=draw(st.sampled_from(["serial", "process", "distributed"])),
        git=draw(st.one_of(st.none(), st.just("v1.0-3-gabc"))),
        wall_seconds=draw(finite),
        compute_seconds=draw(finite),
    )


@st.composite
def result_sets(draw):
    size = draw(st.integers(min_value=0, max_value=6))
    records = [draw(cell_records(index)) for index in range(size)]
    return ResultSet("abc123", records, spec={"kind": "table", "table": "1a"})


class TestRoundTripProperties:
    @given(result_sets())
    @settings(max_examples=60, deadline=None)
    def test_json_round_trip_is_bit_identical(self, rs):
        again = ResultSet.from_json(rs.to_json())
        assert again.spec_hash == rs.spec_hash
        assert again.spec == rs.spec
        assert again.keys() == rs.keys()
        for key in rs.keys():
            ours, theirs = rs.record(key), again.record(key)
            # repr round-trips floats exactly and spells every NaN
            # "nan", so repr equality is bit-identity with NaN == NaN.
            assert repr(theirs.estimate) == repr(ours.estimate)
            assert theirs.axes == ours.axes or repr(theirs.axes) == repr(ours.axes)
            assert (theirs.seed, theirs.block_size, theirs.backend,
                    theirs.git) == (ours.seed, ours.block_size, ours.backend,
                                    ours.git)
            assert repr((theirs.wall_seconds, theirs.compute_seconds)) == repr(
                (ours.wall_seconds, ours.compute_seconds)
            )

    @given(result_sets())
    @settings(max_examples=20, deadline=None)
    def test_csv_has_one_line_per_record_plus_header(self, rs):
        lines = rs.to_csv().splitlines()
        assert len(lines) == len(rs) + 1

    def test_nan_cell_round_trips_through_file(self, tmp_path):
        nan_estimate = CellEstimate(
            p_timely=ProportionEstimate(0.0, 0.0, 0.1, trials=8),
            energy_timely=MeanEstimate(math.nan, math.nan, math.nan, 0),
            energy_all=MeanEstimate(5.0, 4.0, 6.0, 8),
            mean_finish_time_timely=math.nan,
            mean_detected_faults=1.5,
            mean_checkpoints=3.0,
            mean_sub_checkpoints=0.0,
            reps=8,
        )
        record = CellRecord(
            key="k", axes={"scheme": "Poisson"}, estimate=nan_estimate,
            spec_hash="h", seed=1, block_size=256, backend="serial",
            git=None, wall_seconds=0.1, compute_seconds=0.1,
        )
        rs = ResultSet("h", [record])
        path = tmp_path / "rs.json"
        rs.save(str(path))
        again = ResultSet.load(str(path))
        assert again.estimate("k").same_values(nan_estimate)
        # CSV renders NaN as empty fields, not the string "nan".
        assert ",nan," not in rs.to_csv()


class TestResumeEqualsFreshRun:
    """Any held-back subset, resumed, reproduces the fresh full run."""

    @pytest.fixture(scope="class")
    def study(self):
        return Study(
            StudySpec(kind="row", table="1a", u=0.76, lam=1.4e-3, reps=16,
                      seed=21, fast_static=True)
        )

    @pytest.fixture(scope="class")
    def fresh(self, study):
        return study.run()

    @given(mask=st.lists(st.booleans(), min_size=4, max_size=4))
    @settings(max_examples=16, deadline=None)
    def test_resume_after_partial_matches_fresh(self, study, fresh, mask):
        kept = [r for r, keep in zip(fresh.records, mask) if keep]
        partial = ResultSet(fresh.spec_hash, kept, spec=fresh.spec)
        resumed = study.run(resume=partial)
        assert resumed.keys() == fresh.keys()
        assert resumed.same_values(fresh)


class TestMergeAndValidation:
    def _record(self, key, spec_hash="h"):
        estimate = CellEstimate(
            p_timely=ProportionEstimate(1.0, 0.9, 1.0, trials=4),
            energy_timely=MeanEstimate(1.0, 0.5, 1.5, 4),
            energy_all=MeanEstimate(1.0, 0.5, 1.5, 4),
            mean_finish_time_timely=1.0,
            mean_detected_faults=0.0,
            mean_checkpoints=1.0,
            mean_sub_checkpoints=0.0,
            reps=4,
        )
        return CellRecord(
            key=key, axes={"k": key}, estimate=estimate, spec_hash=spec_hash,
            seed=0, block_size=256, backend="serial", git=None,
            wall_seconds=0.0, compute_seconds=0.0,
        )

    def test_merge_disjoint_sets(self):
        a = ResultSet("h", [self._record("a")])
        b = ResultSet("h", [self._record("b")])
        merged = a.merge(b)
        assert merged.keys() == ["a", "b"]

    def test_merge_rejects_overlap(self):
        a = ResultSet("h", [self._record("a")])
        with pytest.raises(ConfigurationError, match="overlap"):
            a.merge(ResultSet("h", [self._record("a")]))

    def test_merge_rejects_foreign_study(self):
        a = ResultSet("h", [self._record("a")])
        b = ResultSet("g", [self._record("b", spec_hash="g")])
        with pytest.raises(ConfigurationError, match="different studies"):
            a.merge(b)

    def test_records_must_carry_set_hash(self):
        with pytest.raises(ConfigurationError, match="spec hash"):
            ResultSet("h", [self._record("a", spec_hash="other")])

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            ResultSet("h", [self._record("a"), self._record("a")])

    def test_unknown_format_rejected(self):
        rs = ResultSet("h", [self._record("a")])
        payload = rs.to_json().replace("repro.resultset/1", "repro.resultset/99")
        with pytest.raises(ConfigurationError, match="format"):
            ResultSet.from_json(payload)

    def test_missing_key_lookup_raises(self):
        rs = ResultSet("h", [])
        with pytest.raises(ConfigurationError, match="no cell"):
            rs.estimate("nope")

    def test_git_describe_is_cached_and_optional(self):
        first = git_describe()
        assert git_describe() is first or git_describe() == first

    def test_save_is_atomic_over_existing_file(self, tmp_path):
        """An unwritable save must not clobber the previous file —
        the --out/--resume retry loop depends on it."""
        rs = ResultSet("h", [self._record_for_io("a")])
        path = tmp_path / "rs.json"
        rs.save(str(path))
        before = path.read_text()
        bigger = ResultSet("h", [self._record_for_io("a"),
                                 self._record_for_io("b")])
        bigger.save(str(path))
        assert len(ResultSet.load(str(path))) == 2
        assert path.read_text() != before
        # No temp droppings left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["rs.json"]

    def test_save_to_missing_directory_is_a_clean_error(self, tmp_path):
        rs = ResultSet("h", [self._record_for_io("a")])
        with pytest.raises(ConfigurationError, match="cannot write"):
            rs.save(str(tmp_path / "absent" / "rs.json"))
        with pytest.raises(ConfigurationError, match="cannot write"):
            rs.save_csv(str(tmp_path / "absent" / "rs.csv"))

    def _record_for_io(self, key):
        estimate = CellEstimate(
            p_timely=ProportionEstimate(1.0, 0.9, 1.0, trials=4),
            energy_timely=MeanEstimate(1.0, 0.5, 1.5, 4),
            energy_all=MeanEstimate(1.0, 0.5, 1.5, 4),
            mean_finish_time_timely=1.0,
            mean_detected_faults=0.0,
            mean_checkpoints=1.0,
            mean_sub_checkpoints=0.0,
            reps=4,
        )
        return CellRecord(
            key=key, axes={"k": key}, estimate=estimate, spec_hash="h",
            seed=0, block_size=256, backend="serial", git=None,
            wall_seconds=0.0, compute_seconds=0.0,
        )


class TestWallSecondsAccounting:
    """Regression: wall_seconds used to sum a *set* of floats, so two
    batches that happened to take exactly the same wall time collapsed
    into one."""

    def _record(self, key, *, wall, compute=0.5, batch=None):
        estimate = CellEstimate(
            p_timely=ProportionEstimate(1.0, 0.9, 1.0, trials=4),
            energy_timely=MeanEstimate(1.0, 0.5, 1.5, 4),
            energy_all=MeanEstimate(1.0, 0.5, 1.5, 4),
            mean_finish_time_timely=1.0,
            mean_detected_faults=0.0,
            mean_checkpoints=1.0,
            mean_sub_checkpoints=0.0,
            reps=4,
        )
        return CellRecord(
            key=key, axes={"k": key}, estimate=estimate, spec_hash="h",
            seed=0, block_size=256, backend="serial", git=None,
            wall_seconds=wall, compute_seconds=compute, batch=batch,
        )

    def test_equal_wall_clocks_in_distinct_batches_both_count(self):
        rs = ResultSet("h", [
            self._record("a", wall=2.0, batch="batch-one"),
            self._record("b", wall=2.0, batch="batch-two"),
        ])
        assert rs.wall_seconds == pytest.approx(4.0)

    def test_records_of_one_batch_count_once(self):
        # All cells of a Study.run() batch share one wall clock; it
        # must not be multiplied by the number of cells.
        rs = ResultSet("h", [
            self._record("a", wall=2.0, batch="batch-one"),
            self._record("b", wall=2.0, batch="batch-one"),
            self._record("c", wall=2.0, batch="batch-one"),
        ])
        assert rs.wall_seconds == pytest.approx(2.0)

    def test_legacy_records_fall_back_to_value_identity(self):
        # Files written before batch ids existed (batch=None): distinct
        # (wall, compute) pairs are separate batches, equal pairs are
        # conservatively deduped — the old behaviour, minus the set bug.
        rs = ResultSet("h", [
            self._record("a", wall=2.0, compute=0.1),
            self._record("b", wall=2.0, compute=0.1),
            self._record("c", wall=2.0, compute=0.9),
        ])
        assert rs.wall_seconds == pytest.approx(4.0)

    def test_batch_survives_json_round_trip(self):
        rs = ResultSet("h", [
            self._record("a", wall=2.0, batch="batch-one"),
            self._record("b", wall=2.0, batch="batch-two"),
        ])
        again = ResultSet.from_json(rs.to_json())
        assert [r.batch for r in again.records] == ["batch-one", "batch-two"]
        assert again.wall_seconds == pytest.approx(4.0)

    def test_study_run_stamps_one_batch_per_call(self):
        study = Study(
            StudySpec(kind="row", table="1a", u=0.76, lam=1.4e-3, reps=8,
                      seed=7, fast_static=True)
        )
        first = study.run()
        batches = {record.batch for record in first.records}
        assert len(batches) == 1
        assert None not in batches


class TestCsvProvenance:
    """Regression: ``to_csv`` silently dropped the ``kernel`` column, so
    CSV exports could not distinguish exact from fast estimates."""

    def _record(self, key, *, kernel="exact"):
        estimate = CellEstimate(
            p_timely=ProportionEstimate(1.0, 0.9, 1.0, trials=4),
            energy_timely=MeanEstimate(1.0, 0.5, 1.5, 4),
            energy_all=MeanEstimate(1.0, 0.5, 1.5, 4),
            mean_finish_time_timely=1.0,
            mean_detected_faults=0.0,
            mean_checkpoints=1.0,
            mean_sub_checkpoints=0.0,
            reps=4,
        )
        return CellRecord(
            key=key, axes={"k": key}, estimate=estimate, spec_hash="h",
            seed=0, block_size=256, backend="serial", git="v1",
            wall_seconds=0.5, compute_seconds=0.5, batch="b1",
            kernel=kernel,
        )

    def test_csv_columns_track_record_provenance_fields(self):
        """Every provenance field of CellRecord except the per-run
        timing/batch fields must appear as a CSV column — adding a new
        provenance field without exporting it fails here."""
        record = self._record("a")
        header = ResultSet("h", [record]).to_csv().splitlines()[0].split(",")
        per_run_only = {"wall_seconds", "compute_seconds", "batch"}
        for field in record.to_dict()["provenance"]:
            if field not in per_run_only:
                assert field in header, f"CSV is missing provenance column {field!r}"

    def test_csv_kernel_column_carries_the_kernel(self):
        rs = ResultSet("h", [self._record("a", kernel="fast")])
        lines = rs.to_csv().splitlines()
        header = lines[0].split(",")
        row = lines[1].split(",")
        assert row[header.index("kernel")] == "fast"
        assert row[header.index("backend")] == "serial"

    def test_csv_kernel_defaults_to_exact(self):
        rs = ResultSet("h", [self._record("a")])
        lines = rs.to_csv().splitlines()
        assert lines[1].split(",")[lines[0].split(",").index("kernel")] == "exact"


class TestMalformedRecordsPayload:
    """Regression: ``from_dict`` accepted any iterable for ``records`` —
    a JSON *string* iterated per character, an int died with an opaque
    TypeError.  Both must be one clean ConfigurationError (the study
    service turns it into an HTTP 400)."""

    @pytest.mark.parametrize("records", ["not-a-list", 7, {"a": 1}, True])
    def test_non_list_records_is_a_clean_error(self, records):
        payload = {
            "format": "repro.resultset/1",
            "spec_hash": "h",
            "spec": None,
            "records": records,
        }
        with pytest.raises(ConfigurationError, match="must be a list"):
            ResultSet.from_dict(payload)

    def test_list_records_still_load(self):
        rs = ResultSet("h", [])
        assert len(ResultSet.from_dict(rs.to_dict())) == 0
