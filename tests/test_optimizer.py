"""Unit tests for num_SCP / num_CCP (paper fig. 2)."""

import pytest

from repro.core.optimizer import (
    DEFAULT_MAX_SUBDIVISIONS,
    brute_force_num_ccp,
    brute_force_num_scp,
    num_ccp,
    num_scp,
)
from repro.core.renewal import ccp_interval_time_for_m, scp_interval_time_for_m
from repro.errors import ParameterError

TS, TCP = 2.0, 20.0


def scp_cases():
    """(span, rate) grid spanning the paper's operating regimes."""
    return [
        (50.0, 2.8e-3),
        (100.0, 2.8e-3),
        (177.0, 2.8e-3),  # ≈ I1 at table-1 parameters
        (200.0, 1.4e-3),
        (200.0, 2e-4),
        (400.0, 2.8e-3),
        (469.0, 2e-4),
        (1000.0, 1e-3),
        (2000.0, 5e-4),
    ]


class TestNumSCP:
    @pytest.mark.parametrize("span,rate", scp_cases())
    def test_matches_brute_force(self, span, rate):
        fast = num_scp(span, rate=rate, store=TS, compare=TCP)
        exact = brute_force_num_scp(span, rate=rate, store=TS, compare=TCP)
        # fig. 2 only compares ⌊T/T̃1⌋ with its successor; allow a tie in
        # expected time but never a worse outcome beyond float noise.
        assert fast.expected_time == pytest.approx(
            exact.expected_time, rel=1e-9
        ) or fast.expected_time <= exact.expected_time * (1 + 1e-6)

    @pytest.mark.parametrize("span,rate", scp_cases())
    def test_result_is_locally_optimal(self, span, rate):
        plan = num_scp(span, rate=rate, store=TS, compare=TCP)

        def objective(m):
            return scp_interval_time_for_m(
                m, span=span, rate=rate, store=TS, compare=TCP
            )

        assert plan.expected_time == pytest.approx(objective(plan.m))
        assert objective(plan.m) <= objective(plan.m + 1) + 1e-9
        if plan.m > 1:
            assert objective(plan.m) <= objective(plan.m - 1) + 1e-9

    def test_m_is_one_when_no_subdivision_helps(self):
        # Tiny rate: extra stores cannot pay for themselves.
        plan = num_scp(50.0, rate=1e-9, store=TS, compare=TCP)
        assert plan.m == 1

    def test_zero_rate_shortcut(self):
        plan = num_scp(200.0, rate=0.0, store=TS, compare=TCP)
        assert plan.m == 1
        assert plan.sublength == 200.0

    def test_free_store_clamps_to_max(self):
        plan = num_scp(200.0, rate=1e-3, store=0.0, compare=TCP, max_m=64)
        assert plan.m == 64

    def test_subdivides_at_paper_parameters(self):
        # Table 1(a): high λT → the optimiser must insert SCPs.
        plan = num_scp(177.0, rate=2.8e-3, store=2.0, compare=20.0)
        assert plan.m > 1

    def test_sublength_times_m_is_span(self):
        plan = num_scp(300.0, rate=1e-3, store=TS, compare=TCP)
        assert plan.m * plan.sublength == pytest.approx(300.0)

    def test_rejects_bad_span(self):
        with pytest.raises(ParameterError):
            num_scp(0.0, rate=1e-3, store=TS, compare=TCP)
        with pytest.raises(ParameterError):
            num_scp(float("inf"), rate=1e-3, store=TS, compare=TCP)

    def test_rejects_bad_max_m(self):
        with pytest.raises(ParameterError):
            num_scp(100.0, rate=1e-3, store=TS, compare=TCP, max_m=0)


class TestNumCCP:
    @pytest.mark.parametrize("span,rate", scp_cases())
    def test_matches_brute_force(self, span, rate):
        # CCP-favourable costs (paper §4.2): cheap compares.
        fast = num_ccp(span, rate=rate, store=20.0, compare=2.0)
        exact = brute_force_num_ccp(span, rate=rate, store=20.0, compare=2.0)
        assert fast.expected_time <= exact.expected_time * (1 + 1e-6)

    @pytest.mark.parametrize("span,rate", scp_cases())
    def test_result_is_locally_optimal(self, span, rate):
        plan = num_ccp(span, rate=rate, store=20.0, compare=2.0)

        def objective(m):
            return ccp_interval_time_for_m(
                m, span=span, rate=rate, store=20.0, compare=2.0
            )

        assert objective(plan.m) <= objective(plan.m + 1) + 1e-9
        if plan.m > 1:
            assert objective(plan.m) <= objective(plan.m - 1) + 1e-9

    def test_zero_rate_shortcut(self):
        plan = num_ccp(200.0, rate=0.0, store=20.0, compare=2.0)
        assert plan.m == 1

    def test_free_compare_clamps_to_max(self):
        plan = num_ccp(200.0, rate=1e-3, store=20.0, compare=0.0, max_m=32)
        assert plan.m == 32

    def test_subdivides_at_paper_parameters(self):
        plan = num_ccp(177.0, rate=2.8e-3, store=20.0, compare=2.0)
        assert plan.m > 1

    def test_expensive_compare_discourages_subdivision(self):
        cheap = num_ccp(200.0, rate=2.8e-3, store=20.0, compare=2.0)
        pricey = num_ccp(200.0, rate=2.8e-3, store=20.0, compare=40.0)
        assert pricey.m <= cheap.m


class TestBruteForce:
    def test_brute_force_really_is_argmin_scp(self):
        span, rate = 200.0, 2.8e-3
        plan = brute_force_num_scp(span, rate=rate, store=TS, compare=TCP, max_m=64)
        values = [
            scp_interval_time_for_m(m, span=span, rate=rate, store=TS, compare=TCP)
            for m in range(1, 65)
        ]
        assert plan.m == values.index(min(values)) + 1

    def test_brute_force_really_is_argmin_ccp(self):
        span, rate = 200.0, 2.8e-3
        plan = brute_force_num_ccp(
            span, rate=rate, store=20.0, compare=2.0, max_m=64
        )
        values = [
            ccp_interval_time_for_m(
                m, span=span, rate=rate, store=20.0, compare=2.0
            )
            for m in range(1, 65)
        ]
        assert plan.m == values.index(min(values)) + 1

    def test_default_max_is_sane(self):
        assert DEFAULT_MAX_SUBDIVISIONS >= 1024
