"""The fast kernel's contract, pinned from both sides.

Exact side: under *scripted* (deterministic) faults the vectorised
engine must reproduce the exact executor's semantics — identical
counters, energies equal to float tolerance — for every scenario of
the golden matrix, with the replan table at ``resolution=0`` (no
quantisation).  Fallback scenarios (non-zero rollback cost, fault
processes without block pre-draws) must produce *bit-identical*
estimates, because they run the exact engine per block.

Statistical side: under stochastic faults the fast kernel draws
different (equally valid) streams, so the contract is equivalence, not
identity — the 99 % confidence intervals of exact and fast estimates
must overlap for every scheme × fault-process pair of the golden
matrix.

Determinism side: fast mode is *block-deterministic* — for a fixed
(seed, block size), every backend and worker count produces identical
estimates.
"""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.core.checkpoints import CostModel
from repro.core.schemes import (
    AdaptiveSCPPolicy,
    PoissonArrivalPolicy,
    ReplanTable,
    replan_table_for,
)
from repro.errors import ParameterError
from repro.experiments.config import table_spec
from repro.goldens.scenarios import GOLDEN_SCENARIOS
from repro.sim import kernel as kernel_mod
from repro.sim.backends import ProcessBackend, SerialBackend
from repro.sim.faults import BurstyFaults, PoissonFaults, ScriptedFaults
from repro.sim.kernel import (
    KERNEL_NAMES,
    accumulate_range_fast,
    kernel_supported,
)
from repro.sim.montecarlo import accumulate_range
from repro.sim.parallel import BatchRunner
from repro.sim.task import TaskSpec

#: Fault times as deadline fractions, chosen away from typical window
#: boundaries so float association differences cannot flip a
#: classification between the scalar and vectorised engines.
_SCRIPT_FRACTIONS = (
    0.0731, 0.1917, 0.2203, 0.3541, 0.4483,
    0.5659, 0.6211, 0.7907, 0.8677, 0.9341,
)

_REPS = 3


def _scripted(scen):
    return ScriptedFaults(
        tuple(f * scen.task.deadline for f in _SCRIPT_FRACTIONS)
    )


def _close(a, b, rel=1e-9):
    if a is None and b is None:
        return True
    if a is None or b is None:
        return False
    if math.isnan(a) and math.isnan(b):
        return True
    return math.isclose(a, b, rel_tol=rel, abs_tol=1e-12)


def _run_both(scen, faults, *, fdo):
    factory = scen.build_policy
    exact = accumulate_range(
        scen.task,
        factory,
        start=0,
        stop=_REPS,
        seed=scen.seed,
        faults=faults,
        faults_during_overhead=fdo,
    ).finalize()
    fast = accumulate_range_fast(
        scen.task,
        factory,
        start=0,
        stop=_REPS,
        seed=scen.seed,
        faults=faults,
        faults_during_overhead=fdo,
        resolution=0,
    ).finalize()
    return exact, fast


@pytest.mark.parametrize(
    "scen", GOLDEN_SCENARIOS, ids=lambda s: s.name
)
@pytest.mark.parametrize("fdo", [False, True], ids=["fdo-off", "fdo-on"])
def test_scripted_conformance_matches_exact_engine(scen, fdo):
    """Deterministic faults: fast (resolution=0) == exact, per scenario."""
    exact, fast = _run_both(scen, _scripted(scen), fdo=fdo)
    # Integer-derived statistics must agree exactly.
    assert fast.p_timely.trials == exact.p_timely.trials
    assert fast.p == exact.p
    assert fast.mean_detected_faults == exact.mean_detected_faults
    assert fast.mean_checkpoints == exact.mean_checkpoints
    assert fast.mean_sub_checkpoints == exact.mean_sub_checkpoints
    # Float accumulations may associate differently: tolerance 1e-9.
    assert _close(fast.energy_all.value, exact.energy_all.value)
    assert _close(fast.e, exact.e)
    assert _close(
        fast.mean_finish_time_timely, exact.mean_finish_time_timely
    )


# ---------------------------------------------------------------------------
# fallback scenarios run the exact engine — bit-identical


def _fallback_task(**cost_overrides):
    costs = CostModel(**cost_overrides) if cost_overrides else CostModel()
    return TaskSpec(
        cycles=8_000.0,
        deadline=10_000.0,
        fault_budget=5,
        fault_rate=1.4e-3,
        costs=costs,
    )


def test_rollback_cost_falls_back_to_exact_bit_identically():
    task = _fallback_task(rollback_cycles=5.0)
    assert not kernel_supported(task, AdaptiveSCPPolicy(), PoissonFaults(task.fault_rate))
    exact = accumulate_range(
        task, AdaptiveSCPPolicy, start=0, stop=32, seed=7
    ).finalize()
    fast = accumulate_range_fast(
        task, AdaptiveSCPPolicy, start=0, stop=32, seed=7
    ).finalize()
    assert fast.same_values(exact)


def test_bursty_faults_fall_back_to_exact_bit_identically():
    task = _fallback_task()
    faults = BurstyFaults(
        quiet_rate=2e-4, burst_rate=8e-3, quiet_dwell=4_000.0, burst_dwell=400.0
    )
    assert not kernel_supported(task, AdaptiveSCPPolicy(), faults)
    exact = accumulate_range(
        task, AdaptiveSCPPolicy, start=0, stop=32, seed=7, faults=faults
    ).finalize()
    fast = accumulate_range_fast(
        task, AdaptiveSCPPolicy, start=0, stop=32, seed=7, faults=faults
    ).finalize()
    assert fast.same_values(exact)


# ---------------------------------------------------------------------------
# block determinism: same (seed, chunk size) => same estimates anywhere


def test_fast_mode_is_block_deterministic_across_backends():
    spec = table_spec("1a")
    job = dataclasses.replace(
        spec.cell_job(0.80, 1.4e-3, "A_D_S", reps=512, seed=11),
        kernel="fast",
    )
    serial_backend = SerialBackend()
    serial = BatchRunner(backend=serial_backend, chunk_size=128).run_cells(
        [job]
    )[0]
    process_backend = ProcessBackend(2)
    try:
        sharded = BatchRunner(
            backend=process_backend, chunk_size=128
        ).run_cells([job])[0]
    finally:
        process_backend.close()
    assert sharded.same_values(serial)


def test_fast_mode_repeats_itself_in_process():
    spec = table_spec("1a")
    job = dataclasses.replace(
        spec.cell_job(0.78, 1.6e-3, "A_D", reps=256, seed=3), kernel="fast"
    )
    first = job.run_block(0, 0, 256).finalize()
    second = job.run_block(0, 0, 256).finalize()
    assert first.same_values(second)


# ---------------------------------------------------------------------------
# statistical equivalence: 99% CI overlap per scheme x fault process


def _intervals_overlap(low_a, high_a, low_b, high_b, pad):
    if any(math.isnan(v) for v in (low_a, high_a, low_b, high_b)):
        # NaN bounds mean no timely runs on that side; equivalence then
        # requires both sides to be empty, checked by the caller.
        return False
    return (low_a - pad) <= high_b and (low_b - pad) <= high_a


_EQUIV_REPS = 400


@pytest.mark.parametrize(
    "scen",
    [
        s
        for s in GOLDEN_SCENARIOS
        if kernel_supported(s.task, s.build_policy(), s.faults)
        # Scripted faults are deterministic: every rep is identical, the
        # CIs are zero-width, and replan quantisation legitimately moves
        # the point value.  The scripted contract is the *exact*
        # conformance test above (resolution=0), not CI overlap.
        and not isinstance(s.faults, ScriptedFaults)
    ],
    ids=lambda s: s.name,
)
def test_statistical_equivalence_99ci_overlap(scen):
    """Exact and fast 99% CIs overlap for timeliness and energy."""
    factory = scen.build_policy
    exact = accumulate_range(
        scen.task,
        factory,
        start=0,
        stop=_EQUIV_REPS,
        seed=scen.seed,
        faults=scen.faults,
        faults_during_overhead=scen.faults_during_overhead,
    )
    fast = accumulate_range_fast(
        scen.task,
        factory,
        start=0,
        stop=_EQUIV_REPS,
        seed=scen.seed,
        faults=scen.faults,
        faults_during_overhead=scen.faults_during_overhead,
    )
    p_exact = exact.timely.estimate(0.99)
    p_fast = fast.timely.estimate(0.99)
    assert _intervals_overlap(
        p_exact.low, p_exact.high, p_fast.low, p_fast.high, pad=1e-9
    ), f"p_timely CIs disjoint: {p_exact} vs {p_fast}"
    e_exact = exact.energy_all.estimate(0.99)
    e_fast = fast.energy_all.estimate(0.99)
    pad = 1e-6 * max(abs(e_exact.value), abs(e_fast.value), 1.0)
    assert _intervals_overlap(
        e_exact.low, e_exact.high, e_fast.low, e_fast.high, pad=pad
    ), f"energy_all CIs disjoint: {e_exact} vs {e_fast}"
    # Timely-conditional energy: compare only when both sides have
    # timely runs (an empty side makes the mean NaN by convention).
    if exact.energy_timely.count and fast.energy_timely.count:
        t_exact = exact.energy_timely.estimate(0.99)
        t_fast = fast.energy_timely.estimate(0.99)
        pad = 1e-6 * max(abs(t_exact.value), abs(t_fast.value), 1.0)
        assert _intervals_overlap(
            t_exact.low, t_exact.high, t_fast.low, t_fast.high, pad=pad
        ), f"energy_timely CIs disjoint: {t_exact} vs {t_fast}"


# ---------------------------------------------------------------------------
# the replan table


def _table(resolution):
    task = _fallback_task()
    return ReplanTable(AdaptiveSCPPolicy(), task, resolution=resolution), task


def test_replan_table_resolution_zero_is_exact():
    table, task = _table(0)
    exact_table, _ = _table(0)
    for rc, dl, fl in [(5000.0, 7000.0, 3.0), (123.4, 9999.0, 1.0)]:
        assert table.lookup(rc, dl, fl) == exact_table.lookup(rc, dl, fl)
    assert table.entries == 0  # resolution 0 never memoises


def test_replan_table_off_table_states_evaluate_exactly():
    table, task = _table(64)
    exact, _ = _table(0)
    # Beyond the task's own cycle/deadline ranges -> no bucketing.
    for rc, dl, fl in [
        (task.cycles * 2.0, 5000.0, 2.0),
        (5000.0, task.deadline * 3.0, 2.0),
        (5000.0, -1.0, 2.0),
    ]:
        assert table.lookup(rc, dl, fl) == exact.lookup(rc, dl, fl)


def test_replan_table_is_fill_order_independent():
    queries = [
        (6000.0, 8000.0, 4.0),
        (6001.0, 8001.0, 4.0),  # same bucket as above at res=64
        (100.0, 300.0, 1.0),
        (7900.0, 9900.0, 5.0),
    ]
    forward, _ = _table(64)
    backward, _ = _table(64)
    a = [forward.lookup(*q) for q in queries]
    b = list(reversed([backward.lookup(*q) for q in reversed(queries)]))
    assert a == b


def test_replan_table_lookup_many_matches_elementwise_lookup():
    import numpy as np

    table, task = _table(64)
    scalar, _ = _table(64)
    rng = np.random.default_rng(5)
    rc = rng.uniform(1.0, task.cycles * 1.5, size=40)
    dl = rng.uniform(-100.0, task.deadline * 1.5, size=40)
    fl = rng.integers(0, 6, size=40).astype(float)
    rows = table.lookup_many(rc, dl, fl)
    assert rows == [scalar.lookup(r, d, f) for r, d, f in zip(rc, dl, fl)]


def test_replan_table_for_static_policy_is_none():
    task = _fallback_task()
    assert replan_table_for(PoissonArrivalPolicy(1.0), task) is None
    assert replan_table_for(AdaptiveSCPPolicy(), task) is not None


def test_replan_table_for_returns_one_shared_table_across_threads():
    """Concurrent registry lookups must converge on ONE table per key —
    the cross-block sharing the registry exists for."""
    import threading

    from repro.core import schemes as schemes_mod

    task = _fallback_task()
    schemes_mod._REPLAN_TABLES.clear()
    tables = [None] * 16
    barrier = threading.Barrier(8)

    def grab(i):
        barrier.wait()
        tables[i] = replan_table_for(AdaptiveSCPPolicy(), task)
        barrier.wait()
        tables[8 + i] = replan_table_for(AdaptiveSCPPolicy(), task)

    threads = [threading.Thread(target=grab, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert all(t is tables[0] for t in tables)


def test_replan_table_concurrent_lookups_are_fill_order_independent():
    """Stress one shared table from many threads: every thread's rows
    must equal a serially-filled table's, regardless of which thread
    won each bucket's first evaluation.  Guards the ``_eval`` lock —
    unlocked, concurrent evaluations corrupt the shared mutable
    ExecutionState and produce rows from a *mixture* of queries."""
    import threading

    import numpy as np

    table, task = _table(64)
    reference, _ = _table(64)
    rng = np.random.default_rng(17)
    n = 300
    rc = rng.uniform(1.0, task.cycles, size=n)
    dl = rng.uniform(1.0, task.deadline, size=n)
    fl = rng.integers(1, 6, size=n).astype(float)
    queries = list(zip(rc.tolist(), dl.tolist(), fl.tolist()))
    expected = [reference.lookup(*q) for q in queries]

    n_threads = 8
    results = [None] * n_threads
    errors = []
    barrier = threading.Barrier(n_threads)

    def hammer(i):
        # Each thread walks the queries from a different offset, so
        # threads race to fill different buckets first.
        order = queries[i * 37 % n:] + queries[: i * 37 % n]
        index = {id(q): pos for pos, q in enumerate(queries)}
        barrier.wait()
        try:
            rows = [None] * n
            for q in order:
                rows[index[id(q)]] = table.lookup(*q)
            results[i] = rows
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    for rows in results:
        assert rows == expected


# ---------------------------------------------------------------------------
# the compiled static loop's pure-Python twin


def test_static_twin_drives_engine_identically(monkeypatch):
    """_run_static_compiled(pure twin) == the vectorised NumPy engine.

    Numba is optional; wiring the *uncompiled* twin through the
    compiled dispatch path proves both that the scalar arithmetic is
    engine-identical and that the dispatch/refill plumbing works
    without numba installed.
    """
    task = _fallback_task()
    factory = lambda: PoissonArrivalPolicy(1.0)  # noqa: E731

    monkeypatch.setattr(kernel_mod, "_static_rep_compiled", None)
    numpy_engine = accumulate_range_fast(
        task, factory, start=0, stop=128, seed=21
    ).finalize()

    monkeypatch.setattr(
        kernel_mod, "_static_rep_compiled", kernel_mod._static_rep_outcome
    )
    twin = accumulate_range_fast(
        task, factory, start=0, stop=128, seed=21
    ).finalize()
    # Integer-derived statistics must agree exactly; the vectorised
    # engine's bulk-skip collapses clean intervals in closed form, so
    # clock/energy sums may differ from the interval-at-a-time twin in
    # the last ulp.
    assert twin.p_timely.trials == numpy_engine.p_timely.trials
    assert twin.p == numpy_engine.p
    assert twin.mean_detected_faults == numpy_engine.mean_detected_faults
    assert twin.mean_checkpoints == numpy_engine.mean_checkpoints
    assert twin.mean_sub_checkpoints == numpy_engine.mean_sub_checkpoints
    assert _close(twin.energy_all.value, numpy_engine.energy_all.value)
    assert _close(twin.e, numpy_engine.e)
    assert _close(
        twin.mean_finish_time_timely, numpy_engine.mean_finish_time_timely
    )


def test_broken_compiled_path_degrades_to_numpy(monkeypatch):
    task = _fallback_task()
    factory = lambda: PoissonArrivalPolicy(1.0)  # noqa: E731
    monkeypatch.setattr(kernel_mod, "_static_rep_compiled", None)
    want = accumulate_range_fast(
        task, factory, start=0, stop=64, seed=2
    ).finalize()

    def explode(*_args, **_kwargs):
        raise RuntimeError("compiled kernel corrupted")

    monkeypatch.setattr(kernel_mod, "_static_rep_compiled", explode)
    got = accumulate_range_fast(
        task, factory, start=0, stop=64, seed=2
    ).finalize()
    assert got.same_values(want)
    # The failure permanently disabled the compiled path.
    assert kernel_mod._static_rep_compiled is None


# ---------------------------------------------------------------------------
# dispatch plumbing


def test_accumulate_range_kernel_names():
    assert KERNEL_NAMES == ("exact", "fast")
    task = _fallback_task()
    with pytest.raises(ParameterError):
        accumulate_range(
            task, AdaptiveSCPPolicy, start=0, stop=4, kernel="bogus"
        )


def test_accumulate_range_fast_kernel_dispatches():
    task = _fallback_task()
    via_param = accumulate_range(
        task, AdaptiveSCPPolicy, start=0, stop=64, seed=9, kernel="fast"
    ).finalize()
    direct = accumulate_range_fast(
        task, AdaptiveSCPPolicy, start=0, stop=64, seed=9
    ).finalize()
    assert via_param.same_values(direct)


def test_empty_range_returns_empty_accumulator():
    task = _fallback_task()
    acc = accumulate_range_fast(task, AdaptiveSCPPolicy, start=5, stop=5)
    assert acc.reps == 0
    with pytest.raises(ParameterError):
        accumulate_range_fast(task, AdaptiveSCPPolicy, start=5, stop=4)
