"""Unit tests for the DVS machinery (t_est and speed ladders)."""

import math

import pytest

from repro.core.dvs import SpeedLadder, estimated_completion_time
from repro.errors import ParameterError


class TestEstimatedCompletionTime:
    def test_formula_value(self):
        # t_est = Rc(1 + sqrt(λc/f)) / (f(1 − sqrt(λc/f)))
        rc, f, lam, c = 9200.0, 1.0, 1e-4, 22.0
        loss = math.sqrt(lam * c / f)
        expected = rc * (1 + loss) / (f * (1 - loss))
        assert estimated_completion_time(
            rc, f, rate=lam, checkpoint_cycles=c
        ) == pytest.approx(expected)

    def test_paper_feasibility_case(self):
        # Table 1(b), U = 0.92: t_est at f1 just misses the deadline —
        # this is why A_D starts at the high speed there.
        t_est = estimated_completion_time(9200.0, 1.0, rate=1e-4, checkpoint_cycles=22)
        assert t_est > 10_000
        t_est_f2 = estimated_completion_time(
            9200.0, 2.0, rate=1e-4, checkpoint_cycles=22
        )
        assert t_est_f2 < 10_000

    def test_zero_rate_is_pure_work(self):
        assert estimated_completion_time(
            1000.0, 2.0, rate=0.0, checkpoint_cycles=22
        ) == pytest.approx(500.0)

    def test_zero_work(self):
        assert estimated_completion_time(0.0, 1.0, rate=1e-3, checkpoint_cycles=22) == 0.0

    def test_infeasible_when_overhead_saturates(self):
        # λc/f ≥ 1 → no finite estimate.
        assert estimated_completion_time(
            100.0, 1.0, rate=0.05, checkpoint_cycles=22
        ) == math.inf

    def test_monotone_in_work(self):
        a = estimated_completion_time(1000.0, 1.0, rate=1e-3, checkpoint_cycles=22)
        b = estimated_completion_time(2000.0, 1.0, rate=1e-3, checkpoint_cycles=22)
        assert b > a

    def test_faster_speed_is_faster(self):
        slow = estimated_completion_time(1000.0, 1.0, rate=1e-3, checkpoint_cycles=22)
        fast = estimated_completion_time(1000.0, 2.0, rate=1e-3, checkpoint_cycles=22)
        assert fast < slow

    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError):
            estimated_completion_time(-1.0, 1.0, rate=1e-3, checkpoint_cycles=22)
        with pytest.raises(ParameterError):
            estimated_completion_time(1.0, 0.0, rate=1e-3, checkpoint_cycles=22)
        with pytest.raises(ParameterError):
            estimated_completion_time(1.0, 1.0, rate=-1e-3, checkpoint_cycles=22)
        with pytest.raises(ParameterError):
            estimated_completion_time(1.0, 1.0, rate=1e-3, checkpoint_cycles=-1)


class TestSpeedLadder:
    def test_paper_two_level(self):
        ladder = SpeedLadder.paper_two_level()
        assert ladder.frequencies == (1.0, 2.0)
        assert ladder.minimum == 1.0
        assert ladder.maximum == 2.0
        # Calibrated voltages: V = sqrt(2f) → energy/cycle 2f.
        assert ladder.voltage_of(1.0) == pytest.approx(math.sqrt(2))
        assert ladder.voltage_of(2.0) == pytest.approx(2.0)

    def test_select_slowest_feasible(self):
        ladder = SpeedLadder.paper_two_level()
        # Loose deadline: low speed suffices.
        assert ladder.select_speed(
            1000.0, 10_000.0, rate=1e-4, checkpoint_cycles=22
        ) == 1.0
        # Tight deadline: must escalate (paper fig. 6 line 2).
        assert ladder.select_speed(
            9200.0, 10_000.0, rate=1e-4, checkpoint_cycles=22
        ) == 2.0

    def test_returns_fastest_when_nothing_feasible(self):
        ladder = SpeedLadder.paper_two_level()
        assert ladder.select_speed(
            50_000.0, 100.0, rate=1e-4, checkpoint_cycles=22
        ) == 2.0

    def test_multi_level_selects_intermediate(self):
        ladder = SpeedLadder.from_frequencies((1.0, 1.25, 1.5, 2.0))
        chosen = ladder.select_speed(
            11_000.0, 10_000.0, rate=1e-4, checkpoint_cycles=22
        )
        assert chosen == 1.25

    def test_voltage_of_unknown_frequency(self):
        ladder = SpeedLadder.paper_two_level()
        with pytest.raises(ParameterError):
            ladder.voltage_of(3.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            SpeedLadder(frequencies=(), voltages=())
        with pytest.raises(ParameterError):
            SpeedLadder(frequencies=(1.0, 2.0), voltages=(1.0,))
        with pytest.raises(ParameterError):
            SpeedLadder(frequencies=(2.0, 1.0), voltages=(1.0, 2.0))
        with pytest.raises(ParameterError):
            SpeedLadder(frequencies=(0.0, 1.0), voltages=(1.0, 2.0))
        with pytest.raises(ParameterError):
            SpeedLadder(frequencies=(1.0, 2.0), voltages=(1.0, -2.0))

    def test_linear_voltage_exponent(self):
        ladder = SpeedLadder.from_frequencies((1.0, 2.0), voltage_exponent=1.0)
        # V = sqrt(2)·f
        assert ladder.voltage_of(2.0) == pytest.approx(2.0 * math.sqrt(2))
