"""Bit-equality of the executor hot paths and the slab accumulation.

Three identities underpin the PR-4 performance overhaul, and each is
pinned here exactly (``repr`` equality — float-for-float, NaN-aware):

1. **traced ≡ fused** — :func:`simulate_run` with a recorder attached
   takes the reference object-based loop; without one it takes the
   fused local-variable loop.  Same :class:`RunResult`, bit for bit.
2. **execute_once ≡ simulate_run** — the slab-facing entry point skips
   the ``cycles_by_frequency`` map and the ``RunResult``, changing
   nothing it does report.
3. **slab ≡ per-rep accumulation** — folding a block through
   :func:`accumulate_range`'s NumPy scratch equals per-rep
   ``CellAccumulator.add`` over :func:`run_range`'s results, which is
   what keeps ``CellEstimate``\\ s bit-identical to the seed across
   every backend.
"""

from functools import partial

import pytest

from repro.core.schemes import (
    AdaptiveCCPPolicy,
    AdaptiveDVSPolicy,
    AdaptiveSCPPolicy,
    KFaultTolerantPolicy,
    PoissonArrivalPolicy,
)
from repro.core.checkpoints import CostModel
from repro.sim.faults import BurstyFaults, PoissonFaults, WeibullFaults
from repro.sim.montecarlo import (
    CellAccumulator,
    RunSlab,
    accumulate_range,
    run_range,
)
from repro.sim.executor import execute_once, simulate_run
from repro.sim.rng import RandomSource
from repro.sim.task import TaskSpec
from repro.sim.trace import Trace

REPS = 60


def _task(ccp: bool = False) -> TaskSpec:
    return TaskSpec(
        cycles=8200.0,
        deadline=10_000.0,
        fault_budget=5,
        fault_rate=1.6e-3,
        costs=CostModel.ccp_favourable() if ccp else CostModel.scp_favourable(),
    )


FACTORIES = [
    ("Poisson", partial(PoissonArrivalPolicy, 1.0), False),
    ("k-f-t", partial(KFaultTolerantPolicy, 1.0), False),
    ("A_D", AdaptiveDVSPolicy, False),
    ("A_D_S", AdaptiveSCPPolicy, False),
    ("A_D_C", AdaptiveCCPPolicy, True),
]


@pytest.mark.parametrize(
    "factory,ccp", [(f, c) for _, f, c in FACTORIES], ids=[n for n, _, _ in FACTORIES]
)
class TestHotPathIdentity:
    def test_traced_equals_fused(self, factory, ccp):
        """A Trace recorder must not change a single result bit."""
        task = _task(ccp)
        for rep in range(25):
            rng_a = RandomSource(11).substream(rep)
            rng_b = RandomSource(11).substream(rep)
            fused = simulate_run(task, factory(), PoissonFaults(task.fault_rate), rng=rng_a)
            traced = simulate_run(
                task,
                factory(),
                PoissonFaults(task.fault_rate),
                rng=rng_b,
                recorder=Trace(),
            )
            assert repr(fused) == repr(traced)

    def test_traced_equals_fused_with_overhead_faults(self, factory, ccp):
        task = _task(ccp)
        for rep in range(15):
            rng_a = RandomSource(5).substream(rep)
            rng_b = RandomSource(5).substream(rep)
            fused = simulate_run(
                task,
                factory(),
                PoissonFaults(0.01),
                rng=rng_a,
                faults_during_overhead=True,
            )
            traced = simulate_run(
                task,
                factory(),
                PoissonFaults(0.01),
                rng=rng_b,
                faults_during_overhead=True,
                recorder=Trace(),
            )
            assert repr(fused) == repr(traced)

    def test_execute_once_matches_simulate_run(self, factory, ccp):
        task = _task(ccp)
        for rep in range(25):
            rng_a = RandomSource(3).substream(rep)
            rng_b = RandomSource(3).substream(rep)
            full = simulate_run(task, factory(), PoissonFaults(task.fault_rate), rng=rng_a)
            lean = execute_once(task, factory(), PoissonFaults(task.fault_rate), rng=rng_b)
            assert lean.completed == full.completed
            assert lean.timely == full.timely
            assert repr(lean.finish_time) == repr(full.finish_time)
            assert repr(lean.energy) == repr(full.energy)
            assert lean.detected_faults == full.detected_faults
            assert lean.injected_faults == full.injected_faults
            assert lean.checkpoints == full.checkpoints
            assert lean.sub_checkpoints == full.sub_checkpoints
            assert lean.rollbacks == full.rollbacks


@pytest.mark.parametrize(
    "factory,ccp", [(f, c) for _, f, c in FACTORIES], ids=[n for n, _, _ in FACTORIES]
)
def test_slab_equals_per_rep_accumulation(factory, ccp):
    """accumulate_range ≡ CellAccumulator.add over run_range, bit for bit."""
    task = _task(ccp)
    per_rep = CellAccumulator().add_all(
        run_range(task, factory, start=0, stop=REPS, seed=2006)
    )
    slab = accumulate_range(task, factory, start=0, stop=REPS, seed=2006)
    assert repr(slab.finalize()) == repr(per_rep.finalize())


@pytest.mark.parametrize(
    "faults",
    [
        WeibullFaults(shape=0.8, scale=700.0),
        BurstyFaults(
            quiet_rate=2e-4, burst_rate=9e-3, quiet_dwell=2500.0, burst_dwell=350.0
        ),
    ],
    ids=["weibull", "bursty"],
)
def test_slab_identity_with_alternate_fault_processes(faults):
    task = _task()
    per_rep = CellAccumulator().add_all(
        run_range(task, AdaptiveSCPPolicy, start=0, stop=40, seed=9, faults=faults)
    )
    slab = accumulate_range(
        task, AdaptiveSCPPolicy, start=0, stop=40, seed=9, faults=faults
    )
    assert repr(slab.finalize()) == repr(per_rep.finalize())


def test_slab_block_split_invariance():
    """Merging slab blocks in rep order equals one big slab block."""
    task = _task()
    whole = accumulate_range(task, AdaptiveSCPPolicy, start=0, stop=REPS, seed=4)
    left = accumulate_range(task, AdaptiveSCPPolicy, start=0, stop=23, seed=4)
    right = accumulate_range(task, AdaptiveSCPPolicy, start=23, stop=REPS, seed=4)
    assert repr(left.merge(right).finalize()) == repr(whole.finalize())


def test_slab_reuse_does_not_leak_between_blocks():
    """A worker's slab is reused; stale rows must never contaminate a
    later, smaller block."""
    task = _task()
    slab = RunSlab(8)
    big = accumulate_range(
        task, AdaptiveSCPPolicy, start=0, stop=30, seed=7, slab=slab
    )
    small = accumulate_range(
        task, PoissonArrivalPolicy, start=5, stop=12, seed=7, slab=slab
    )
    reference = CellAccumulator().add_all(
        run_range(task, PoissonArrivalPolicy, start=5, stop=12, seed=7)
    )
    assert small.reps == 7
    assert repr(small.finalize()) == repr(reference.finalize())
    assert big.reps == 30  # earlier fold untouched by later reuse


def test_empty_range_yields_empty_accumulator():
    task = _task()
    accumulator = accumulate_range(task, AdaptiveSCPPolicy, start=5, stop=5, seed=0)
    assert accumulator.reps == 0
