"""The vectorised static fast path against the event executor.

The two implementations share no code in the hot path, so agreement is
strong evidence both are right.
"""

import math

import pytest

from repro.core.checkpoints import CostModel
from repro.core.schemes import KFaultTolerantPolicy, PoissonArrivalPolicy
from repro.errors import ParameterError
from repro.sim.fastpath import (
    StaticCellSpec,
    simulate_static_cell,
    static_cell_for_scheme,
)
from repro.sim.montecarlo import estimate
from repro.sim.rng import RandomSource
from repro.sim.task import TaskSpec

COSTS = CostModel.scp_favourable()


def make_task(**overrides):
    params = dict(
        cycles=9200.0,
        deadline=10_000.0,
        fault_budget=1,
        fault_rate=1e-4,
        costs=COSTS,
    )
    params.update(overrides)
    return TaskSpec(**params)


class TestSpecConstruction:
    def test_poisson_spec_interval(self):
        task = make_task()
        spec = static_cell_for_scheme(task, "Poisson", 1.0)
        assert spec.interval_time == pytest.approx(math.sqrt(2 * 22 / 1e-4))

    def test_kft_spec_interval(self):
        task = make_task(fault_budget=5)
        spec = static_cell_for_scheme(task, "k-f-t", 1.0)
        assert spec.interval_time == pytest.approx(math.sqrt(9200 * 22 / 5))

    def test_interval_clamped_to_work(self):
        task = make_task(fault_rate=1e-9)
        spec = static_cell_for_scheme(task, "Poisson", 1.0)
        assert spec.interval_time == pytest.approx(9200.0)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ParameterError):
            static_cell_for_scheme(make_task(), "A_D", 1.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            StaticCellSpec(task=make_task(), interval_time=0.0)
        with pytest.raises(ParameterError):
            StaticCellSpec(task=make_task(), interval_time=10.0, frequency=0.0)


class TestAgreementWithExecutor:
    @pytest.mark.parametrize(
        "scheme,policy_cls,kw",
        [
            ("Poisson", PoissonArrivalPolicy, dict()),
            ("k-f-t", KFaultTolerantPolicy, dict(fault_budget=5)),
        ],
    )
    def test_p_and_e_match(self, scheme, policy_cls, kw):
        task = make_task(fault_rate=1.4e-3, **kw)
        slow = estimate(
            task, lambda: policy_cls(1.0), reps=3000, seed=71
        )
        spec = static_cell_for_scheme(task, scheme, 1.0)
        fast = simulate_static_cell(
            spec, reps=30_000, rng=RandomSource(72).generator()
        )
        # Different samplers: agree within combined Monte-Carlo noise.
        # (energy_all is intentionally NOT compared: the executor
        # truncates doomed runs early, the fast path runs them out —
        # see the fastpath module docstring.)
        assert fast.p == pytest.approx(slow.p, abs=0.03)
        if not math.isnan(slow.e) and not math.isnan(fast.e):
            assert fast.e == pytest.approx(slow.e, rel=0.02)
            assert fast.mean_finish_time_timely == pytest.approx(
                slow.mean_finish_time_timely, rel=0.02
            )

    def test_matches_published_cell(self):
        # Table 1(b) U=0.92, λ=1e-4: published Poisson P = 0.3914.
        task = make_task()
        spec = static_cell_for_scheme(task, "Poisson", 1.0)
        fast = simulate_static_cell(
            spec, reps=50_000, rng=RandomSource(73).generator()
        )
        assert fast.p == pytest.approx(0.3914, abs=0.03)
        assert fast.e == pytest.approx(38_032, rel=0.02)

    def test_fault_free_is_exact(self):
        task = make_task(fault_rate=0.0, cycles=1000.0)
        spec = StaticCellSpec(task=task, interval_time=100.0)
        fast = simulate_static_cell(
            spec, reps=100, rng=RandomSource(74).generator()
        )
        assert fast.p == 1.0
        assert fast.e == pytest.approx(4 * (1000 + 10 * 22))

    def test_frequency_two(self):
        task = make_task(fault_rate=1.4e-3, cycles=15_200.0, fault_budget=5)
        slow = estimate(task, lambda: PoissonArrivalPolicy(2.0), reps=2000, seed=75)
        spec = static_cell_for_scheme(task, "Poisson", 2.0)
        fast = simulate_static_cell(
            spec, reps=20_000, rng=RandomSource(76).generator()
        )
        assert fast.p == pytest.approx(slow.p, abs=0.04)
        assert fast.e == pytest.approx(slow.e, rel=0.02)

    def test_nan_when_never_timely(self):
        task = make_task(cycles=10_000.0)
        spec = static_cell_for_scheme(task, "Poisson", 1.0)
        fast = simulate_static_cell(
            spec, reps=500, rng=RandomSource(77).generator()
        )
        assert fast.p == 0.0
        assert math.isnan(fast.e)

    def test_reps_validated(self):
        spec = static_cell_for_scheme(make_task(), "Poisson", 1.0)
        with pytest.raises(ParameterError):
            simulate_static_cell(spec, reps=0, rng=RandomSource(0).generator())


class TestSpeed:
    def test_fast_path_is_much_faster(self):
        import time

        task = make_task(fault_rate=1.4e-3, fault_budget=5)
        spec = static_cell_for_scheme(task, "Poisson", 1.0)
        t0 = time.perf_counter()
        simulate_static_cell(spec, reps=20_000, rng=RandomSource(1).generator())
        fast_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        estimate(task, lambda: PoissonArrivalPolicy(1.0), reps=2000, seed=1)
        slow_time = time.perf_counter() - t0
        # 10× the reps in (much) less wall time.
        assert fast_time < slow_time
