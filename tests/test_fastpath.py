"""The vectorised static fast path against the event executor.

The two implementations share no code in the hot path, so agreement is
strong evidence both are right.  Also under test here: the seeded
chunk-stable sampler (block-keyed draws ⇒ static cells shard across
processes bit-identically) and the exact per-run counter bookkeeping
derived from the sampled failure counts.
"""

import math
from functools import partial

import pytest

from repro.core.checkpoints import CostModel
from repro.core.schemes import KFaultTolerantPolicy, PoissonArrivalPolicy
from repro.errors import ParameterError
from repro.sim.fastpath import (
    StaticCellJob,
    StaticCellSpec,
    simulate_static_cell,
    static_cell_for_scheme,
)
from repro.sim.montecarlo import estimate
from repro.sim.parallel import BatchRunner
from repro.sim.rng import RandomSource
from repro.sim.task import TaskSpec

COSTS = CostModel.scp_favourable()


def make_task(**overrides):
    params = dict(
        cycles=9200.0,
        deadline=10_000.0,
        fault_budget=1,
        fault_rate=1e-4,
        costs=COSTS,
    )
    params.update(overrides)
    return TaskSpec(**params)


class TestSpecConstruction:
    def test_poisson_spec_interval(self):
        task = make_task()
        spec = static_cell_for_scheme(task, "Poisson", 1.0)
        assert spec.interval_time == pytest.approx(math.sqrt(2 * 22 / 1e-4))

    def test_kft_spec_interval(self):
        task = make_task(fault_budget=5)
        spec = static_cell_for_scheme(task, "k-f-t", 1.0)
        assert spec.interval_time == pytest.approx(math.sqrt(9200 * 22 / 5))

    def test_interval_clamped_to_work(self):
        task = make_task(fault_rate=1e-9)
        spec = static_cell_for_scheme(task, "Poisson", 1.0)
        assert spec.interval_time == pytest.approx(9200.0)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ParameterError):
            static_cell_for_scheme(make_task(), "A_D", 1.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            StaticCellSpec(task=make_task(), interval_time=0.0)
        with pytest.raises(ParameterError):
            StaticCellSpec(task=make_task(), interval_time=10.0, frequency=0.0)


class TestAgreementWithExecutor:
    @pytest.mark.parametrize(
        "scheme,policy_cls,kw",
        [
            ("Poisson", PoissonArrivalPolicy, dict()),
            ("k-f-t", KFaultTolerantPolicy, dict(fault_budget=5)),
        ],
    )
    def test_p_and_e_match(self, scheme, policy_cls, kw):
        task = make_task(fault_rate=1.4e-3, **kw)
        slow = estimate(
            task, lambda: policy_cls(1.0), reps=3000, seed=71
        )
        spec = static_cell_for_scheme(task, scheme, 1.0)
        fast = simulate_static_cell(
            spec, reps=30_000, rng=RandomSource(72).generator()
        )
        # Different samplers: agree within combined Monte-Carlo noise.
        # (energy_all is intentionally NOT compared: the executor
        # truncates doomed runs early, the fast path runs them out —
        # see the fastpath module docstring.)
        assert fast.p == pytest.approx(slow.p, abs=0.03)
        if not math.isnan(slow.e) and not math.isnan(fast.e):
            assert fast.e == pytest.approx(slow.e, rel=0.02)
            assert fast.mean_finish_time_timely == pytest.approx(
                slow.mean_finish_time_timely, rel=0.02
            )

    def test_matches_published_cell(self):
        # Table 1(b) U=0.92, λ=1e-4: published Poisson P = 0.3914.
        task = make_task()
        spec = static_cell_for_scheme(task, "Poisson", 1.0)
        fast = simulate_static_cell(
            spec, reps=50_000, rng=RandomSource(73).generator()
        )
        assert fast.p == pytest.approx(0.3914, abs=0.03)
        assert fast.e == pytest.approx(38_032, rel=0.02)

    def test_fault_free_is_exact(self):
        task = make_task(fault_rate=0.0, cycles=1000.0)
        spec = StaticCellSpec(task=task, interval_time=100.0)
        fast = simulate_static_cell(
            spec, reps=100, rng=RandomSource(74).generator()
        )
        assert fast.p == 1.0
        assert fast.e == pytest.approx(4 * (1000 + 10 * 22))

    def test_frequency_two(self):
        task = make_task(fault_rate=1.4e-3, cycles=15_200.0, fault_budget=5)
        slow = estimate(task, lambda: PoissonArrivalPolicy(2.0), reps=2000, seed=75)
        spec = static_cell_for_scheme(task, "Poisson", 2.0)
        fast = simulate_static_cell(
            spec, reps=20_000, rng=RandomSource(76).generator()
        )
        assert fast.p == pytest.approx(slow.p, abs=0.04)
        assert fast.e == pytest.approx(slow.e, rel=0.02)

    def test_nan_when_never_timely(self):
        task = make_task(cycles=10_000.0)
        spec = static_cell_for_scheme(task, "Poisson", 1.0)
        fast = simulate_static_cell(
            spec, reps=500, rng=RandomSource(77).generator()
        )
        assert fast.p == 0.0
        assert math.isnan(fast.e)

    def test_reps_validated(self):
        spec = static_cell_for_scheme(make_task(), "Poisson", 1.0)
        with pytest.raises(ParameterError):
            simulate_static_cell(spec, reps=0, rng=RandomSource(0).generator())


class TestSeededSharding:
    """Block-keyed draws: static cells shard without changing a bit."""

    def spec(self, **overrides):
        return static_cell_for_scheme(
            make_task(fault_rate=1.4e-3, **overrides), "Poisson", 1.0
        )

    def test_workers_1_vs_4_identical(self):
        spec = self.spec()
        serial = simulate_static_cell(spec, reps=2000, seed=11)
        pooled = simulate_static_cell(
            spec, reps=2000, seed=11, runner=BatchRunner(workers=4)
        )
        assert serial.same_values(pooled)

    def test_every_block_size_invariant_across_workers(self):
        spec = self.spec()
        for block in (2000, 300, 97, 1):
            estimates = [
                simulate_static_cell(
                    spec,
                    reps=2000,
                    seed=5,
                    runner=BatchRunner(workers=w, chunk_size=block),
                )
                for w in (1, 4)
            ]
            assert estimates[0].same_values(estimates[1])

    def test_block_size_changes_draws_not_statistics(self):
        # Unlike the executor path, the static sampler draws *per
        # block*, so different block sizes are different (equally
        # valid) realisations — close statistically, not bitwise.
        spec = self.spec(cycles=7600.0, fault_budget=5)
        a = simulate_static_cell(spec, reps=4000, seed=3, block_size=256)
        b = simulate_static_cell(spec, reps=4000, seed=3, block_size=500)
        assert a.p == pytest.approx(b.p, abs=0.05)
        assert a.e == pytest.approx(b.e, rel=0.02)

    def test_seed_reproducible_and_distinct(self):
        spec = self.spec()
        again = simulate_static_cell(spec, reps=500, seed=21)
        assert simulate_static_cell(spec, reps=500, seed=21).same_values(again)
        assert not simulate_static_cell(spec, reps=500, seed=22).same_values(
            again
        )

    def test_mixed_static_and_adaptive_grid(self):
        # One batch, both job kinds, any backend: the unified seam.
        from repro.core.schemes import AdaptiveSCPPolicy
        from repro.sim.parallel import CellJob

        task = make_task(fault_rate=1.4e-3, fault_budget=5)
        jobs = [
            StaticCellJob(spec=self.spec(fault_budget=5), reps=400, seed=2),
            CellJob(
                task=task, policy_factory=AdaptiveSCPPolicy, reps=60, seed=2
            ),
        ]
        serial = BatchRunner.serial().run_cells(jobs)
        pooled = BatchRunner(workers=2).run_cells(jobs)
        assert all(s.same_values(p) for s, p in zip(serial, pooled))

    def test_legacy_rng_is_exclusive(self):
        spec = self.spec()
        generator = RandomSource(0).generator()
        with pytest.raises(ParameterError):
            simulate_static_cell(spec, reps=10, rng=generator, seed=1)
        with pytest.raises(ParameterError):
            simulate_static_cell(
                spec, reps=10, rng=generator, runner=BatchRunner.serial()
            )
        with pytest.raises(ParameterError):
            simulate_static_cell(spec, reps=10)  # neither rng nor seed

    def test_block_size_goes_to_the_runner_not_both(self):
        spec = self.spec()
        with pytest.raises(ParameterError):
            simulate_static_cell(
                spec,
                reps=10,
                seed=0,
                block_size=5,
                runner=BatchRunner.serial(),
            )


class TestExactCounters:
    """mean_checkpoints / mean_detected_faults from sampled failures."""

    def test_fault_free_counts_are_exact(self):
        task = make_task(fault_rate=0.0, cycles=1000.0)
        spec = StaticCellSpec(task=task, interval_time=100.0)
        fast = simulate_static_cell(spec, reps=64, seed=0)
        # 10 intervals, no retries: exactly 10 closing CSCPs, 0 faults.
        assert fast.mean_checkpoints == 10.0
        assert fast.mean_detected_faults == 0.0

    def test_counter_parity_with_executor(self):
        # A cell where every run is timely, so the executor never
        # truncates doomed runs and the two samplers estimate the same
        # expectations: E[checkpoints] = n_intervals + E[failures],
        # E[detected] = E[failures].
        task = make_task(cycles=3000.0, fault_rate=5e-4, fault_budget=5)
        slow = estimate(
            task, partial(PoissonArrivalPolicy, 1.0), reps=1500, seed=31
        )
        spec = static_cell_for_scheme(task, "Poisson", 1.0)
        fast = simulate_static_cell(spec, reps=15_000, seed=32)
        assert slow.p == 1.0 == fast.p
        assert fast.mean_detected_faults == pytest.approx(
            slow.mean_detected_faults, abs=0.2
        )
        assert fast.mean_checkpoints == pytest.approx(
            slow.mean_checkpoints, abs=0.2
        )
        # The two counters are rigidly linked, run by run.
        assert (
            fast.mean_checkpoints - fast.mean_detected_faults
        ) == pytest.approx(
            slow.mean_checkpoints - slow.mean_detected_faults, abs=1e-9
        )

    def test_retries_count_once_per_failure(self):
        # Force a measurable fault pressure and check the identity
        # checkpoints = n_intervals + detected exactly (both are exact
        # integer sums divided by reps).
        task = make_task(cycles=3000.0, fault_rate=2e-3, fault_budget=5)
        spec = static_cell_for_scheme(task, "Poisson", 1.0)
        fast = simulate_static_cell(spec, reps=2048, seed=9)
        work = task.cycles / spec.frequency
        n_full = int(work / spec.interval_time + 1e-12)
        n_intervals = n_full + (
            1 if work - n_full * spec.interval_time > 1e-9 else 0
        )
        assert fast.mean_detected_faults > 0.5
        assert fast.mean_checkpoints == pytest.approx(
            n_intervals + fast.mean_detected_faults, abs=1e-9
        )


class TestSpeed:
    def test_fast_path_is_much_faster(self):
        import time

        task = make_task(fault_rate=1.4e-3, fault_budget=5)
        spec = static_cell_for_scheme(task, "Poisson", 1.0)
        t0 = time.perf_counter()
        simulate_static_cell(spec, reps=20_000, rng=RandomSource(1).generator())
        fast_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        estimate(task, lambda: PoissonArrivalPolicy(1.0), reps=2000, seed=1)
        slow_time = time.perf_counter() - t0
        # 10× the reps in (much) less wall time.
        assert fast_time < slow_time
