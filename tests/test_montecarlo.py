"""Unit tests for the Monte-Carlo harness."""

import math

import pytest

from repro.core.checkpoints import CostModel
from repro.core.schemes import AdaptiveSCPPolicy, PoissonArrivalPolicy
from repro.errors import ParameterError
from repro.sim.montecarlo import estimate, run_many, summarize
from repro.sim.task import TaskSpec

from tests.conftest import make_fixed_policy


@pytest.fixture
def task():
    return TaskSpec(
        cycles=1000.0,
        deadline=2000.0,
        fault_budget=5,
        fault_rate=1e-3,
        costs=CostModel.scp_favourable(),
    )


class TestRunMany:
    def test_reproducible_with_seed(self, task):
        a = run_many(task, lambda: PoissonArrivalPolicy(1.0), reps=50, seed=9)
        b = run_many(task, lambda: PoissonArrivalPolicy(1.0), reps=50, seed=9)
        assert [r.finish_time for r in a] == [r.finish_time for r in b]
        assert [r.energy for r in a] == [r.energy for r in b]

    def test_different_seed_differs(self, task):
        a = run_many(task, lambda: PoissonArrivalPolicy(1.0), reps=50, seed=1)
        b = run_many(task, lambda: PoissonArrivalPolicy(1.0), reps=50, seed=2)
        assert [r.finish_time for r in a] != [r.finish_time for r in b]

    def test_prefix_stability(self, task):
        # Growing reps must not change earlier runs.
        short = run_many(task, lambda: PoissonArrivalPolicy(1.0), reps=20, seed=3)
        long = run_many(task, lambda: PoissonArrivalPolicy(1.0), reps=40, seed=3)
        assert [r.finish_time for r in short] == [
            r.finish_time for r in long[:20]
        ]

    def test_rejects_zero_reps(self, task):
        with pytest.raises(ParameterError):
            run_many(task, AdaptiveSCPPolicy, reps=0)


class TestEstimate:
    def test_fields_populated(self, task):
        cell = estimate(task, AdaptiveSCPPolicy, reps=100, seed=5)
        assert 0.0 <= cell.p <= 1.0
        assert cell.reps == 100
        assert cell.p_timely.low <= cell.p <= cell.p_timely.high
        assert cell.mean_checkpoints > 0

    def test_energy_nan_when_never_timely(self):
        # U = 1 at f1 with any overhead: impossible (the paper's NaN cells).
        task = TaskSpec(
            cycles=10_000.0,
            deadline=10_000.0,
            fault_budget=1,
            fault_rate=1e-4,
            costs=CostModel.scp_favourable(),
        )
        cell = estimate(
            task, lambda: PoissonArrivalPolicy(1.0), reps=50, seed=0
        )
        assert cell.p == 0.0
        assert math.isnan(cell.e)
        assert not math.isnan(cell.energy_all.value)

    def test_deterministic_task_probability_one(self):
        task = TaskSpec(
            cycles=100.0,
            deadline=1000.0,
            fault_budget=1,
            fault_rate=0.0,
            costs=CostModel.scp_favourable(),
        )
        cell = estimate(
            task, lambda: make_fixed_policy(interval_time=100.0), reps=20, seed=0
        )
        assert cell.p == 1.0
        assert cell.e == pytest.approx(4 * 122.0)
        assert cell.energy_all.value == pytest.approx(cell.e)
        assert cell.mean_finish_time_timely == pytest.approx(122.0)


class TestSummarize:
    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            summarize([])

    def test_counts(self, task):
        results = run_many(
            task, lambda: PoissonArrivalPolicy(1.0), reps=30, seed=4
        )
        cell = summarize(results)
        timely = sum(1 for r in results if r.timely)
        assert cell.p == pytest.approx(timely / 30)
        assert cell.reps == 30
