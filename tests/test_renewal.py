"""Unit tests for the renewal models R1/R2 (paper eqs. 1 and 2)."""

import math

import numpy as np
import pytest

from repro.core.renewal import (
    ccp_interval_time,
    ccp_interval_time_derivative,
    ccp_interval_time_for_m,
    cscp_interval_time,
    expected_faults_per_interval,
    scp_interval_time,
    scp_interval_time_for_m,
    scp_optimal_sublength,
)
from repro.errors import ParameterError

SPAN = 200.0
RATE = 2 * 1.4e-3  # the paper's 2λ DMR analysis rate
TS, TCP = 2.0, 20.0


class TestExpectedFaults:
    def test_zero_rate(self):
        assert expected_faults_per_interval(100.0, 0.0) == 0.0

    def test_matches_expm1(self):
        assert expected_faults_per_interval(100.0, 1e-3) == pytest.approx(
            math.expm1(0.1)
        )

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            expected_faults_per_interval(-1.0, 1e-3)
        with pytest.raises(ParameterError):
            expected_faults_per_interval(1.0, -1e-3)


class TestPaperLimits:
    """The limiting cases the paper states explicitly."""

    def test_r1_at_full_span_is_classical_renewal(self):
        # T1 = T ⇒ R1 = (T + ts + tcp)·e^{rT}
        value = scp_interval_time(SPAN, span=SPAN, rate=RATE, store=TS, compare=TCP)
        assert value == pytest.approx((SPAN + TS + TCP) * math.exp(RATE * SPAN))

    def test_r2_at_full_span_is_classical_renewal(self):
        value = ccp_interval_time(SPAN, span=SPAN, rate=RATE, store=TS, compare=TCP)
        assert value == pytest.approx((SPAN + TS + TCP) * math.exp(RATE * SPAN))

    def test_both_agree_with_cscp_interval_time_at_m1(self):
        reference = cscp_interval_time(SPAN, rate=RATE, store=TS, compare=TCP)
        assert scp_interval_time_for_m(
            1, span=SPAN, rate=RATE, store=TS, compare=TCP
        ) == pytest.approx(reference)
        assert ccp_interval_time_for_m(
            1, span=SPAN, rate=RATE, store=TS, compare=TCP
        ) == pytest.approx(reference)

    def test_r1_diverges_as_sublength_vanishes(self):
        small = scp_interval_time(
            1e-4, span=SPAN, rate=RATE, store=TS, compare=TCP
        )
        smaller = scp_interval_time(
            1e-6, span=SPAN, rate=RATE, store=TS, compare=TCP
        )
        assert smaller > small > 10 * SPAN

    def test_r2_diverges_as_sublength_vanishes(self):
        small = ccp_interval_time(1e-4, span=SPAN, rate=RATE, store=TS, compare=TCP)
        smaller = ccp_interval_time(
            1e-6, span=SPAN, rate=RATE, store=TS, compare=TCP
        )
        assert smaller > small > 10 * SPAN

    def test_rollback_term(self):
        base = cscp_interval_time(SPAN, rate=RATE, store=TS, compare=TCP)
        with_rb = cscp_interval_time(
            SPAN, rate=RATE, store=TS, compare=TCP, rollback=5.0
        )
        faults = math.expm1(RATE * SPAN)
        assert with_rb - base == pytest.approx(5.0 * faults)


class TestFaultFreeBehaviour:
    def test_r1_zero_rate_is_pure_overhead(self):
        # m stores + one compare + the work.
        value = scp_interval_time_for_m(
            4, span=SPAN, rate=0.0, store=TS, compare=TCP
        )
        assert value == pytest.approx(SPAN + 4 * TS + TCP)

    def test_r2_zero_rate_is_pure_overhead(self):
        # m compares (the last belongs to the CSCP) + one store + work.
        value = ccp_interval_time_for_m(
            4, span=SPAN, rate=0.0, store=TS, compare=TCP
        )
        assert value == pytest.approx(SPAN + 4 * TCP + TS)

    def test_more_subdivision_costs_more_without_faults(self):
        values = [
            scp_interval_time_for_m(m, span=SPAN, rate=0.0, store=TS, compare=TCP)
            for m in (1, 2, 4, 8)
        ]
        assert values == sorted(values)


class TestSubdivisionPaysUnderFaults:
    def test_r1_improves_with_m_at_paper_parameters(self):
        r1 = scp_interval_time_for_m(1, span=SPAN, rate=RATE, store=TS, compare=TCP)
        r4 = scp_interval_time_for_m(4, span=SPAN, rate=RATE, store=TS, compare=TCP)
        assert r4 < r1

    def test_r2_improves_with_m_when_compares_cheap(self):
        r1 = ccp_interval_time_for_m(1, span=SPAN, rate=RATE, store=20.0, compare=2.0)
        r4 = ccp_interval_time_for_m(4, span=SPAN, rate=RATE, store=20.0, compare=2.0)
        assert r4 < r1


class TestOptimalSublength:
    def test_closed_form(self):
        expected = math.sqrt(SPAN * TS / math.tanh(RATE * SPAN / 2.0))
        assert scp_optimal_sublength(SPAN, rate=RATE, store=TS) == pytest.approx(
            expected
        )

    def test_is_a_stationary_point_of_r1(self):
        opt = scp_optimal_sublength(SPAN, rate=RATE, store=TS)
        eps = 1e-4

        def r1(t1):
            return scp_interval_time(
                t1, span=SPAN, rate=RATE, store=TS, compare=TCP
            )

        derivative = (r1(opt + eps) - r1(opt - eps)) / (2 * eps)
        assert abs(derivative) < 1e-6

    def test_is_a_minimum(self):
        opt = scp_optimal_sublength(SPAN, rate=RATE, store=TS)

        def r1(t1):
            return scp_interval_time(
                t1, span=SPAN, rate=RATE, store=TS, compare=TCP
            )

        if opt < SPAN:
            assert r1(opt) <= r1(opt * 0.8)
            assert r1(opt) <= r1(min(SPAN, opt * 1.2))

    def test_degenerate_zero_rate(self):
        assert scp_optimal_sublength(SPAN, rate=0.0, store=TS) == math.inf

    def test_degenerate_free_store(self):
        assert scp_optimal_sublength(SPAN, rate=RATE, store=0.0) == 0.0


class TestCCPDerivative:
    def test_matches_numeric_derivative(self):
        for t2 in (10.0, 40.0, 120.0):
            eps = 1e-5
            numeric = (
                ccp_interval_time(t2 + eps, span=SPAN, rate=RATE, store=TS, compare=TCP)
                - ccp_interval_time(
                    t2 - eps, span=SPAN, rate=RATE, store=TS, compare=TCP
                )
            ) / (2 * eps)
            analytic = ccp_interval_time_derivative(
                t2, span=SPAN, rate=RATE, store=TS, compare=TCP
            )
            assert analytic == pytest.approx(numeric, rel=1e-4, abs=1e-6)

    def test_zero_rate_branch(self):
        value = ccp_interval_time_derivative(
            50.0, span=SPAN, rate=0.0, store=TS, compare=TCP
        )
        assert value == pytest.approx(-SPAN * TCP / 2500.0)


class TestMonteCarloAgreement:
    """The renewal models predict simulated interval times."""

    def _simulate_cscp(self, span, rate, store, compare, reps, seed):
        rng = np.random.default_rng(seed)
        total = 0.0
        for _ in range(reps):
            t = 0.0
            while True:
                t += span + store + compare
                if rng.random() < math.exp(-rate * span):
                    break
            total += t
        return total / reps

    def test_cscp_interval_time_matches_simulation(self):
        expected = cscp_interval_time(SPAN, rate=RATE, store=TS, compare=TCP)
        simulated = self._simulate_cscp(SPAN, RATE, TS, TCP, reps=20_000, seed=42)
        assert simulated == pytest.approx(expected, rel=0.02)

    def _simulate_ccp(self, m, span, rate, store, compare, reps, seed):
        rng = np.random.default_rng(seed)
        sub = span / m
        p = math.exp(-rate * sub)
        total = 0.0
        for _ in range(reps):
            t = 0.0
            completed = 0
            while completed < m:
                # walk sub-intervals; a failure restarts the interval
                i = 0
                failed = False
                while i < m:
                    i += 1
                    cost = sub + (compare if i < m else store + compare)
                    t += cost
                    if rng.random() >= p:
                        failed = True
                        break
                if not failed:
                    completed = m
            total += t
        return total / reps

    def test_r2_matches_simulation(self):
        m = 4
        expected = ccp_interval_time_for_m(
            m, span=SPAN, rate=RATE, store=TS, compare=TCP
        )
        simulated = self._simulate_ccp(
            m, SPAN, RATE, TS, TCP, reps=20_000, seed=7
        )
        assert simulated == pytest.approx(expected, rel=0.03)


class TestValidation:
    def test_sublength_must_be_in_range(self):
        with pytest.raises(ParameterError):
            scp_interval_time(0.0, span=SPAN, rate=RATE, store=TS, compare=TCP)
        with pytest.raises(ParameterError):
            scp_interval_time(SPAN * 2, span=SPAN, rate=RATE, store=TS, compare=TCP)
        with pytest.raises(ParameterError):
            ccp_interval_time(-1.0, span=SPAN, rate=RATE, store=TS, compare=TCP)

    def test_m_must_be_positive(self):
        with pytest.raises(ParameterError):
            scp_interval_time_for_m(0, span=SPAN, rate=RATE, store=TS, compare=TCP)
        with pytest.raises(ParameterError):
            ccp_interval_time_for_m(0, span=SPAN, rate=RATE, store=TS, compare=TCP)

    def test_negative_costs_rejected(self):
        with pytest.raises(ParameterError):
            cscp_interval_time(SPAN, rate=RATE, store=-1.0, compare=TCP)
