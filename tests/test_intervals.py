"""Unit tests for the interval formulas and the fig.-4 procedure."""

import math

import pytest

from repro.core.intervals import (
    checkpoint_interval,
    deadline_interval,
    k_fault_interval,
    k_fault_threshold,
    poisson_interval,
    poisson_threshold,
)
from repro.errors import InfeasibleError, ParameterError


class TestPoissonInterval:
    def test_formula_value(self):
        # I1 = sqrt(2·22/1.4e-3) — the paper's table 1 setting.
        assert poisson_interval(22.0, 1.4e-3) == pytest.approx(
            math.sqrt(2 * 22 / 1.4e-3)
        )

    def test_decreases_with_rate(self):
        assert poisson_interval(22.0, 2e-3) < poisson_interval(22.0, 1e-3)

    def test_increases_with_cost(self):
        assert poisson_interval(44.0, 1e-3) > poisson_interval(22.0, 1e-3)

    def test_rejects_non_positive(self):
        with pytest.raises(ParameterError):
            poisson_interval(0.0, 1e-3)
        with pytest.raises(ParameterError):
            poisson_interval(22.0, 0.0)


class TestKFaultInterval:
    def test_formula_value(self):
        assert k_fault_interval(7600.0, 5, 22.0) == pytest.approx(
            math.sqrt(7600 * 22 / 5)
        )

    def test_accepts_fractional_faults(self):
        # The adaptive procedure passes expected faults λ·Rt.
        assert k_fault_interval(1000.0, 0.5, 22.0) == pytest.approx(
            math.sqrt(1000 * 22 / 0.5)
        )

    def test_decreases_with_faults(self):
        assert k_fault_interval(1000, 10, 22) < k_fault_interval(1000, 1, 22)

    def test_rejects_zero_faults(self):
        with pytest.raises(ParameterError):
            k_fault_interval(1000.0, 0, 22.0)


class TestDeadlineInterval:
    def test_formula_value(self):
        # I3 = 2NC/(D + C − N)
        assert deadline_interval(9000.0, 10_000.0, 22.0) == pytest.approx(
            2 * 9000 * 22 / (10_000 + 22 - 9000)
        )

    def test_shrinks_as_slack_vanishes(self):
        roomy = deadline_interval(5000.0, 10_000.0, 22.0)
        tight = deadline_interval(9900.0, 10_000.0, 22.0)
        assert tight > roomy  # less slack → longer intervals (fewer ckpts)

    def test_infeasible_when_no_slack(self):
        with pytest.raises(InfeasibleError):
            deadline_interval(10_000.0, 9000.0, 22.0)

    def test_boundary_exactly_zero_slack(self):
        with pytest.raises(InfeasibleError):
            deadline_interval(10_022.0, 10_000.0, 22.0)


class TestThresholds:
    def test_poisson_threshold_value(self):
        # Th_λ = (Rd + C)/(1 + sqrt(λC/2))
        expected = (10_000 + 22) / (1 + math.sqrt(1.4e-3 * 22 / 2))
        assert poisson_threshold(10_000.0, 1.4e-3, 22.0) == pytest.approx(expected)

    def test_poisson_threshold_below_deadline(self):
        assert poisson_threshold(10_000.0, 1e-3, 22.0) < 10_000 + 22

    def test_k_fault_threshold_closed_form_matches_expansion(self):
        # (sqrt(Rd+(Rf+1)C) − sqrt((Rf+1)C))² ==
        # Rd + 2RfC + 2C − 2·sqrt((RfC+C)(Rd+RfC+C))   (paper's print)
        rd, rf, c = 10_000.0, 5.0, 22.0
        compact = k_fault_threshold(rd, rf, c)
        expanded = (
            rd + 2 * rf * c + 2 * c
            - 2 * math.sqrt((rf * c + c) * (rd + rf * c + c))
        )
        assert compact == pytest.approx(expanded)

    def test_k_fault_threshold_is_feasibility_boundary(self):
        # At Rt = Th the k-fault worst case Rt + 2·sqrt(Rt(Rf+1)C)
        # exactly consumes the deadline.
        rd, rf, c = 10_000.0, 5.0, 22.0
        th = k_fault_threshold(rd, rf, c)
        worst = th + 2 * math.sqrt(th * (rf + 1) * c)
        assert worst == pytest.approx(rd, rel=1e-12)

    def test_k_fault_threshold_decreases_with_faults(self):
        assert k_fault_threshold(10_000, 10, 22) < k_fault_threshold(10_000, 1, 22)

    def test_k_fault_threshold_zero_when_deadline_gone(self):
        assert k_fault_threshold(0.0, 5, 22.0) == 0.0


class TestCheckpointIntervalProcedure:
    """Branch coverage of the fig.-4 decision procedure."""

    def test_deadline_branch_when_work_above_poisson_threshold(self):
        # Huge Rt close to Rd → I3.
        rd, rt, c, rf, lam = 10_000.0, 9800.0, 22.0, 50.0, 1e-3
        assert rt > poisson_threshold(rd, lam, c)
        assert rt * lam <= rf
        expected = deadline_interval(rt, rd, c)
        assert checkpoint_interval(rd, rt, c, rf, lam) == pytest.approx(expected)

    def test_expected_fault_branch_between_thresholds(self):
        rd, c, lam, rf = 10_000.0, 22.0, 1e-4, 1.0
        th_l = poisson_threshold(rd, lam, c)
        th_k = k_fault_threshold(rd, rf, c)
        rt = (th_l + th_k) / 2
        assert th_k < rt <= th_l
        assert lam * rt <= rf
        expected = k_fault_interval(rt, lam * rt, c)
        assert checkpoint_interval(rd, rt, c, rf, lam) == pytest.approx(expected)

    def test_budget_branch_below_both_thresholds(self):
        rd, c, lam, rf = 10_000.0, 22.0, 1e-5, 3.0
        rt = 1000.0
        assert rt <= k_fault_threshold(rd, rf, c)
        assert lam * rt <= rf
        expected = k_fault_interval(rt, rf, c)
        assert checkpoint_interval(rd, rt, c, rf, lam) == pytest.approx(expected)

    def test_poisson_branch_when_budget_exceeded(self):
        # λ·Rt > Rf and below the Poisson threshold → I1.
        rd, c, lam, rf = 100_000.0, 22.0, 1e-2, 1.0
        rt = 5_000.0
        assert lam * rt > rf
        assert rt <= poisson_threshold(rd, lam, c)
        expected = poisson_interval(c, lam)
        assert checkpoint_interval(rd, rt, c, rf, lam) == pytest.approx(expected)

    def test_deadline_branch_when_budget_exceeded(self):
        rd, c, lam, rf = 10_000.0, 22.0, 2e-3, 0.0
        rt = 9_900.0
        assert lam * rt > rf
        assert rt > poisson_threshold(rd, lam, c)
        expected = deadline_interval(rt, rd, c)
        assert checkpoint_interval(rd, rt, c, rf, lam) == pytest.approx(expected)

    def test_clamped_to_remaining_work(self):
        # Tiny work: whatever the rule says, never exceed Rt.
        interval = checkpoint_interval(10_000.0, 5.0, 22.0, 5.0, 1e-4)
        assert 0 < interval <= 5.0

    def test_zero_rate_returns_whole_work(self):
        assert checkpoint_interval(10_000.0, 500.0, 22.0, 5.0, 0.0) == 500.0

    def test_negative_fault_budget_falls_to_poisson_family(self):
        # After many faults Rf can go below zero; procedure must survive.
        interval = checkpoint_interval(10_000.0, 5_000.0, 22.0, -2.0, 1e-3)
        assert 0 < interval <= 5_000.0

    def test_doomed_state_still_returns_positive(self):
        # Rt beyond any feasibility: fall back to "one checkpoint at end".
        interval = checkpoint_interval(100.0, 5_000.0, 22.0, 5.0, 1e-3)
        assert 0 < interval <= 5_000.0

    def test_rejects_bad_work(self):
        with pytest.raises(ParameterError):
            checkpoint_interval(10_000.0, 0.0, 22.0, 5.0, 1e-3)
