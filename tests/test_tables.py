"""Unit tests for the table runners (reduced reps)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import table_spec
from repro.experiments.tables import run_row, run_table
from repro.sim.rng import RandomSource


@pytest.fixture(scope="module")
def small_table():
    return run_table("1a", reps=60, seed=99)


class TestRunTable:
    def test_all_rows_and_schemes_present(self, small_table):
        spec = table_spec("1a")
        assert len(small_table.rows) == len(spec.rows)
        for row in small_table.rows:
            assert set(row.cells) == set(spec.schemes)

    def test_paper_cells_attached(self, small_table):
        cell = small_table.rows[0].cell("Poisson")
        assert cell.paper is not None
        assert cell.paper.p == 0.1185

    def test_reproducible(self):
        a = run_table("1b", reps=30, seed=7)
        b = run_table("1b", reps=30, seed=7)
        for row_a, row_b in zip(a.rows, b.rows):
            for scheme in a.schemes:
                assert row_a.cell(scheme).p == row_b.cell(scheme).p
                ea, eb = row_a.cell(scheme).e, row_b.cell(scheme).e
                assert (math.isnan(ea) and math.isnan(eb)) or ea == eb

    def test_accepts_spec_object(self):
        spec = table_spec("2b")
        result = run_table(spec, reps=20, seed=1)
        assert result.spec is spec

    def test_row_lookup(self, small_table):
        row = small_table.row(0.76, 1.4e-3)
        assert row.u == 0.76
        with pytest.raises(ConfigurationError):
            small_table.row(0.5, 1.0)

    def test_cell_error_metrics(self, small_table):
        cell = small_table.rows[0].cell("A_D_S")
        assert not math.isnan(cell.p_error)
        # e_ratio NaN only if our E is NaN (possible at tiny reps for
        # near-zero-P static cells, but not for the adaptive scheme).
        assert cell.e_ratio == pytest.approx(cell.e / cell.paper.e)

    def test_unknown_scheme_lookup_rejected(self, small_table):
        with pytest.raises(ConfigurationError):
            small_table.rows[0].cell("bogus")


class TestRunRow:
    def test_single_row(self):
        spec = table_spec("3b")
        row = run_row(spec, 0.92, 1e-4, reps=30, source=RandomSource(5))
        assert set(row.cells) == {"Poisson", "k-f-t", "A_D", "A_D_C"}

    def test_different_cells_get_independent_streams(self):
        spec = table_spec("1a")
        row = run_row(spec, 0.76, 1.4e-3, reps=30, source=RandomSource(5))
        # Poisson and k-f-t see different fault realisations (they have
        # nearly identical intervals, so identical streams would give
        # identical P with high probability across many reps).
        p_a = row.cell("Poisson").measured
        p_b = row.cell("k-f-t").measured
        assert (
            p_a.mean_finish_time_timely != p_b.mean_finish_time_timely
            or p_a.p != p_b.p
        )
