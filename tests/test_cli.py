"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _make_runner, build_parser, main
from repro.sim.parallel import BatchRunner, default_workers


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_defaults(self):
        args = build_parser().parse_args(["table", "1a"])
        assert args.table_id == "1a"
        assert args.reps == 2000
        assert args.seed == 2006

    def test_rejects_unknown_table(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "7q"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "1a" in out and "4b" in out

    def test_table_text(self, capsys):
        assert main(["table", "2b", "--reps", "25", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table 2b" in out
        assert "A_D_S" in out

    def test_table_json(self, capsys):
        assert main(["table", "2b", "--reps", "25", "--seed", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["table"] == "2b"
        assert len(payload["rows"]) == 4
        first = payload["rows"][0]["cells"]["Poisson"]
        assert set(first) == {"p", "e", "paper_p", "paper_e"}

    def test_table_markdown(self, capsys):
        assert main(["table", "2b", "--reps", "25", "--markdown"]) == 0
        assert "| U | λ | scheme |" in capsys.readouterr().out

    def test_table_without_paper_columns(self, capsys):
        assert main(["table", "2b", "--reps", "25", "--no-paper"]) == 0
        assert "P paper" not in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo", "--scheme", "A_D_S", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "completed=" in out

    def test_demo_every_scheme(self, capsys):
        for scheme in ("Poisson", "k-f-t", "A_D", "A_D_S", "A_D_C"):
            assert main(["demo", "--scheme", scheme, "--seed", "1"]) == 0
        assert "scheme=" in capsys.readouterr().out

    def test_json_nan_serialised_as_null(self, capsys):
        # Table 1b has U=1.0 rows with NaN energies for static schemes.
        assert main(["table", "1b", "--reps", "25", "--seed", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        u1_rows = [r for r in payload["rows"] if r["u"] == 1.0]
        assert u1_rows
        assert u1_rows[0]["cells"]["Poisson"]["e"] is None


class TestWorkersFlag:
    def test_defaults_to_serial(self):
        args = build_parser().parse_args(["table", "1a"])
        assert args.workers is None  # unspecified, distinct from --workers 1
        assert _make_runner(args) is None

    def test_explicit_workers_one_is_serial_too(self):
        args = build_parser().parse_args(["table", "1a", "--workers", "1"])
        assert _make_runner(args) is None

    def test_parses_worker_count(self):
        args = build_parser().parse_args(["table", "1a", "--workers", "4"])
        assert args.workers == 4
        runner = _make_runner(args)
        assert isinstance(runner, BatchRunner)
        assert runner.workers == 4

    def test_zero_means_cpu_count(self):
        args = build_parser().parse_args(["validate", "--workers", "0"])
        assert _make_runner(args).workers == default_workers()

    def test_accepted_on_validate_and_sweep(self):
        assert build_parser().parse_args(
            ["validate", "--workers", "2"]
        ).workers == 2
        assert build_parser().parse_args(
            ["sweep", "fixed-m", "--workers", "2"]
        ).workers == 2

    def test_table_output_byte_identical_across_worker_counts(self, capsys):
        base = ["table", "2b", "--reps", "20", "--seed", "3"]
        assert main(base + ["--workers", "1"]) == 0
        serial_out = capsys.readouterr().out
        assert main(base + ["--workers", "2"]) == 0
        pooled_out = capsys.readouterr().out
        assert pooled_out == serial_out

    def test_json_output_byte_identical_across_worker_counts(self, capsys):
        base = ["table", "1b", "--reps", "15", "--seed", "9", "--json"]
        assert main(base) == 0  # omitted flag = serial fallback
        serial_out = capsys.readouterr().out
        assert main(base + ["--workers", "3"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_sweep_fixed_m_with_workers(self, capsys):
        assert main(
            ["sweep", "fixed-m", "--reps", "20", "--workers", "2"]
        ) == 0
        assert "adaptive" in capsys.readouterr().out


class TestChunkSizeFlag:
    def test_defaults_to_none(self):
        args = build_parser().parse_args(["table", "1a"])
        assert args.chunk_size is None

    def test_parses_block_size(self):
        args = build_parser().parse_args(
            ["table", "1a", "--chunk-size", "128"]
        )
        assert args.chunk_size == 128
        runner = _make_runner(args)
        assert isinstance(runner, BatchRunner)
        assert runner.block_size == 128
        assert runner.workers == 1  # block size alone keeps serial

    def test_combines_with_workers(self):
        args = build_parser().parse_args(
            ["validate", "--workers", "3", "--chunk-size", "50"]
        )
        runner = _make_runner(args)
        assert runner.workers == 3
        assert runner.block_size == 50

    @pytest.mark.parametrize("bad", ["0", "-4", "two"])
    def test_rejects_invalid_values(self, bad):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "1a", "--chunk-size", bad])

    def test_accepted_on_validate_and_sweep(self):
        assert build_parser().parse_args(
            ["validate", "--chunk-size", "99"]
        ).chunk_size == 99
        assert build_parser().parse_args(
            ["sweep", "fixed-m", "--chunk-size", "99"]
        ).chunk_size == 99

    def test_output_byte_identical_across_workers_for_fixed_block(
        self, capsys
    ):
        base = ["table", "2b", "--reps", "20", "--seed", "3",
                "--chunk-size", "7"]
        assert main(base + ["--workers", "1"]) == 0
        serial_out = capsys.readouterr().out
        assert main(base + ["--workers", "2"]) == 0
        assert capsys.readouterr().out == serial_out


class TestFastStaticFlag:
    def test_table_runs_with_fast_static(self, capsys):
        assert main(
            ["table", "1a", "--reps", "30", "--seed", "1", "--fast-static"]
        ) == 0
        out = capsys.readouterr().out
        assert "Poisson" in out and "A_D_S" in out

    def test_fast_static_json_shape_unchanged(self, capsys):
        assert main(
            ["table", "2b", "--reps", "25", "--seed", "1", "--json",
             "--fast-static"]
        ) == 0
        import json as json_mod

        payload = json_mod.loads(capsys.readouterr().out)
        first = payload["rows"][0]["cells"]["Poisson"]
        assert set(first) == {"p", "e", "paper_p", "paper_e"}


class TestRunCommand:
    """The declarative study runner and the --out/--resume flags."""

    def _write_spec(self, tmp_path, payload):
        path = tmp_path / "study.spec.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_run_table_spec_renders_and_saves(self, tmp_path, capsys):
        spec = self._write_spec(
            tmp_path,
            {"kind": "table", "table": "2b", "reps": 16, "seed": 1,
             "fast_static": True},
        )
        out = str(tmp_path / "results.json")
        assert main(["run", spec, "--out", out]) == 0
        text = capsys.readouterr().out
        assert "16 cells (16 computed, 0 reused)" in text
        assert "Table 2b" in text
        from repro.api import ResultSet

        saved = ResultSet.load(out)
        assert len(saved) == 16

    def test_run_resume_reuses_everything(self, tmp_path, capsys):
        spec = self._write_spec(
            tmp_path,
            {"kind": "fixed_m", "table": "1a", "ms": [1, 2], "reps": 16,
             "seed": 3},
        )
        out = str(tmp_path / "results.json")
        assert main(["run", spec, "--out", out, "--quiet"]) == 0
        assert main(["run", spec, "--out", out, "--resume", out,
                     "--quiet"]) == 0
        text = capsys.readouterr().out
        assert "(0 computed, 3 reused)" in text

    def test_run_resume_missing_file_starts_fresh(self, tmp_path, capsys):
        spec = self._write_spec(
            tmp_path,
            {"kind": "rate_factor", "table": "1a", "factors": [1.0],
             "reps": 16, "seed": 3},
        )
        missing = str(tmp_path / "nope.json")
        assert main(["run", spec, "--resume", missing, "--quiet"]) == 0
        captured = capsys.readouterr()
        assert "starting fresh" in captured.err
        assert "(1 computed, 0 reused)" in captured.out

    def test_run_csv_export(self, tmp_path):
        spec = self._write_spec(
            tmp_path,
            {"kind": "rate_factor", "table": "1a", "factors": [1.0],
             "reps": 16, "seed": 3},
        )
        csv_path = tmp_path / "results.csv"
        assert main(["run", spec, "--csv", str(csv_path), "--quiet"]) == 0
        lines = csv_path.read_text().splitlines()
        assert len(lines) == 2 and lines[0].startswith("factor,")

    def test_run_bad_spec_exits_2(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path, {"kind": "warp-drive"})
        assert main(["run", spec]) == 2
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "payload",
        [
            {"kind": "utilization", "table": "1a", "u_grid": 5,
             "lam": 1e-4},
            {"kind": "table", "table": "1a", "reps": "lots"},
            {"kind": "table", "table": "1a", "seed": 1.5},
        ],
    )
    def test_run_malformed_spec_types_exit_2(self, tmp_path, capsys,
                                             payload):
        spec = self._write_spec(tmp_path, payload)
        assert main(["run", spec]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_missing_spec_file_exits_2(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "absent.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_unwritable_out_fails_before_computing(self, tmp_path,
                                                       capsys):
        spec = self._write_spec(
            tmp_path,
            {"kind": "rate_factor", "table": "1a", "factors": [1.0],
             "reps": 16, "seed": 3},
        )
        bad = str(tmp_path / "absent-dir" / "r.json")
        assert main(["run", spec, "--out", bad, "--quiet"]) == 2
        err = capsys.readouterr().err
        assert "does not exist" in err

    def test_table_out_and_resume_round_trip(self, tmp_path, capsys):
        out = str(tmp_path / "t.json")
        assert main(["table", "2b", "--reps", "16", "--fast-static",
                     "--out", out]) == 0
        first = capsys.readouterr().out
        assert main(["table", "2b", "--reps", "16", "--fast-static",
                     "--resume", out]) == 0
        second = capsys.readouterr().out
        # Resume reused every cell; the rendered table is identical.
        assert first == second

    def test_resume_from_different_study_exits_2(self, tmp_path, capsys):
        out = str(tmp_path / "t.json")
        assert main(["table", "2b", "--reps", "16", "--fast-static",
                     "--out", out]) == 0
        capsys.readouterr()
        assert main(["table", "2b", "--reps", "17", "--fast-static",
                     "--resume", out]) == 2
        assert "different study" in capsys.readouterr().err

    def test_run_resume_hash_mismatch_names_both_hashes(self, tmp_path,
                                                        capsys):
        """``run --resume`` against a foreign result file: exit 2 and a
        message naming the file's spec hash AND this study's, so the
        user can see which side to fix."""
        from repro.api import Study

        payload_a = {"kind": "fixed_m", "table": "1a", "ms": [1, 2],
                     "reps": 16, "seed": 3}
        payload_b = dict(payload_a, seed=4)
        spec_a = self._write_spec(tmp_path, payload_a)
        out = str(tmp_path / "a.json")
        assert main(["run", spec_a, "--out", out, "--quiet"]) == 0
        capsys.readouterr()

        path_b = tmp_path / "b.spec.json"
        path_b.write_text(json.dumps(payload_b))
        assert main(["run", str(path_b), "--resume", out, "--quiet"]) == 2
        err = capsys.readouterr().err
        hash_a = Study(payload_a).spec_hash
        hash_b = Study(payload_b).spec_hash
        assert hash_a != hash_b
        assert hash_a in err and hash_b in err
        assert "different study" in err


class TestSweepCommand:
    def test_cost_ratio(self, capsys):
        assert main(["sweep", "cost-ratio"]) == 0
        out = capsys.readouterr().out
        assert "m_SCP" in out and "m_CCP" in out

    def test_benefit(self, capsys):
        assert main(["sweep", "benefit"]) == 0
        out = capsys.readouterr().out
        assert "λ·T" in out
        assert "%" in out

    def test_fixed_m(self, capsys):
        assert main(["sweep", "fixed-m", "--reps", "30"]) == 0
        out = capsys.readouterr().out
        assert "adaptive" in out

    def test_operating_map(self, capsys):
        assert main(["sweep", "operating-map", "--reps", "20"]) == 0
        out = capsys.readouterr().out
        assert "winner per" in out

    def test_sweep_out_resume(self, tmp_path, capsys):
        out = str(tmp_path / "fm.json")
        assert main(["sweep", "fixed-m", "--reps", "20", "--out", out]) == 0
        first = capsys.readouterr().out
        assert main(["sweep", "fixed-m", "--reps", "20", "--resume", out]) == 0
        assert capsys.readouterr().out == first

    def test_analytic_sweep_rejects_out(self, tmp_path, capsys):
        assert main(["sweep", "cost-ratio", "--out",
                     str(tmp_path / "x.json")]) == 2
        assert "only apply to Monte-Carlo" in capsys.readouterr().err

    def test_unknown_study_rejected(self):
        import pytest

        with pytest.raises(SystemExit):
            main(["sweep", "bogus"])


class TestBackendFlag:
    def test_defaults(self):
        args = build_parser().parse_args(["table", "1a"])
        assert args.backend is None
        assert args.cluster_workers == 0

    def test_explicit_process_backend(self):
        args = build_parser().parse_args(
            ["table", "1a", "--backend", "process", "--workers", "3"]
        )
        runner = _make_runner(args)
        assert runner.workers == 3
        assert runner.backend.name == "process"
        runner.close()

    def test_explicit_serial_backend_is_implicit_default(self):
        args = build_parser().parse_args(["table", "1a", "--backend", "serial"])
        assert _make_runner(args) is None

    def test_explicit_process_backend_without_workers_uses_all_cpus(self):
        args = build_parser().parse_args(["table", "1a", "--backend", "process"])
        runner = _make_runner(args)
        try:
            assert runner.backend.name == "process"
            assert runner.workers == default_workers()
        finally:
            runner.close()

    def test_explicit_process_backend_with_one_worker_is_a_real_pool(self):
        args = build_parser().parse_args(
            ["table", "1a", "--backend", "process", "--workers", "1"]
        )
        runner = _make_runner(args)
        try:
            assert runner.backend.name == "process"
            assert runner.workers == 1
        finally:
            runner.close()

    def test_distributed_backend_builds_cluster_runner(self):
        args = build_parser().parse_args(
            ["table", "1a", "--backend", "distributed", "--cluster-workers", "2"]
        )
        runner = _make_runner(args)
        try:
            assert runner.backend.name == "distributed"
            assert runner.backend.cluster.size == 2
        finally:
            runner.close()

    def test_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "1a", "--backend", "quantum"])

    def test_contradictory_flags_exit_2(self):
        assert main(
            ["table", "1a", "--backend", "serial", "--workers", "4"]
        ) == 2
        assert main(
            ["table", "1a", "--backend", "distributed", "--workers", "4"]
        ) == 2
        assert main(["table", "1a", "--cluster-workers", "2"]) == 2

    def test_accepted_on_validate_and_sweep(self):
        assert build_parser().parse_args(
            ["validate", "--backend", "process"]
        ).backend == "process"
        assert build_parser().parse_args(
            ["sweep", "fixed-m", "--backend", "distributed",
             "--cluster-workers", "1"]
        ).cluster_workers == 1

    def test_table_output_byte_identical_distributed_vs_serial(self, capsys):
        """The CLI acceptance path: a 2-worker loopback cluster renders
        the very bytes the serial run renders."""
        base = ["table", "2b", "--reps", "24", "--seed", "3",
                "--chunk-size", "8", "--no-paper"]
        assert main(base) == 0
        serial_out = capsys.readouterr().out
        assert main(base + ["--backend", "distributed",
                            "--cluster-workers", "2"]) == 0
        assert capsys.readouterr().out == serial_out


class TestWorkerCommand:
    def test_parses_url_and_flags(self):
        args = build_parser().parse_args(
            ["worker", "tcp://10.1.2.3:8642", "--idle-timeout", "7.5",
             "--max-tasks", "3"]
        )
        assert args.url == "tcp://10.1.2.3:8642"
        assert args.idle_timeout == 7.5
        assert args.max_tasks == 3

    def test_invalid_url_exits_2(self):
        assert main(["worker", "http://nope:1"]) == 2

    @pytest.mark.parametrize("bad", ["0", "-3", "soon"])
    def test_rejects_nonpositive_idle_timeout(self, bad):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["worker", "tcp://h:1", "--idle-timeout", bad]
            )

    def test_unreachable_coordinator_exits_1(self):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # guaranteed-free port: nobody listens
        assert main(["worker", f"tcp://127.0.0.1:{port}"]) == 1


class TestNoAdaptiveBatchFlag:
    def test_flag_parses_and_reaches_settings(self):
        args = build_parser().parse_args(
            ["table", "1a", "--workers", "2", "--no-adaptive-batch"]
        )
        runner = _make_runner(args)
        try:
            assert runner.backend.adaptive_batching is False
        finally:
            runner.close()

    def test_default_leaves_adaptive_on(self):
        args = build_parser().parse_args(["table", "1a", "--workers", "2"])
        runner = _make_runner(args)
        try:
            assert runner.backend.adaptive_batching is True
        finally:
            runner.close()

    def test_flag_is_harmless_for_serial(self):
        args = build_parser().parse_args(["table", "1a", "--no-adaptive-batch"])
        assert _make_runner(args) is None
