"""Property-based tests (hypothesis) for the core invariants."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.checkpoints import CheckpointKind, CostModel
from repro.core.intervals import (
    checkpoint_interval,
    k_fault_threshold,
    poisson_threshold,
)
from repro.core.optimizer import brute_force_num_scp, num_ccp, num_scp
from repro.core.renewal import (
    ccp_interval_time_for_m,
    cscp_interval_time,
    scp_interval_time_for_m,
)
from repro.sim.executor import simulate_run
from repro.sim.faults import ScriptedFaults
from repro.sim.metrics import wilson_interval
from repro.sim.task import TaskSpec

from tests.conftest import make_fixed_policy

positive_work = st.floats(min_value=10.0, max_value=50_000.0)
deadline_left = st.floats(min_value=10.0, max_value=100_000.0)
cost = st.floats(min_value=0.5, max_value=200.0)
rate = st.floats(min_value=1e-6, max_value=5e-2)
faults = st.floats(min_value=0.0, max_value=50.0)
span = st.floats(min_value=5.0, max_value=5_000.0)
small_cost = st.floats(min_value=0.1, max_value=50.0)


class TestIntervalProperties:
    @given(deadline_left, positive_work, cost, faults, rate)
    @settings(max_examples=200)
    def test_interval_always_positive_and_bounded(self, rd, rt, c, rf, lam):
        interval = checkpoint_interval(rd, rt, c, rf, lam)
        assert 0 < interval <= rt

    @given(deadline_left, cost, rate)
    @settings(max_examples=100)
    def test_poisson_threshold_below_deadline_plus_cost(self, rd, c, lam):
        assert 0 < poisson_threshold(rd, lam, c) <= rd + c

    @given(deadline_left, cost, st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=100)
    def test_k_fault_threshold_monotone_in_deadline(self, rd, c, rf):
        lo = k_fault_threshold(rd, rf, c)
        hi = k_fault_threshold(rd * 2 + 1, rf, c)
        assert hi >= lo >= 0

    @given(deadline_left, cost, st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=100)
    def test_k_fault_threshold_never_exceeds_deadline(self, rd, c, rf):
        assert k_fault_threshold(rd, rf, c) <= rd


class TestRenewalProperties:
    @given(span, rate, small_cost, small_cost, st.integers(1, 64))
    @settings(max_examples=200)
    def test_r1_at_least_fault_free_cost(self, t, r, ts, tcp, m):
        value = scp_interval_time_for_m(m, span=t, rate=r, store=ts, compare=tcp)
        assert value >= t + m * ts + tcp - 1e-9

    @given(span, rate, small_cost, small_cost, st.integers(1, 64))
    @settings(max_examples=200)
    def test_r2_at_least_fault_free_cost(self, t, r, ts, tcp, m):
        value = ccp_interval_time_for_m(m, span=t, rate=r, store=ts, compare=tcp)
        assert value >= t + m * tcp + ts - 1e-9

    @given(span, rate, small_cost, small_cost)
    @settings(max_examples=150)
    def test_r_models_agree_at_m1(self, t, r, ts, tcp):
        reference = cscp_interval_time(t, rate=r, store=ts, compare=tcp)
        r1 = scp_interval_time_for_m(1, span=t, rate=r, store=ts, compare=tcp)
        r2 = ccp_interval_time_for_m(1, span=t, rate=r, store=ts, compare=tcp)
        assert math.isclose(r1, reference, rel_tol=1e-9)
        assert math.isclose(r2, reference, rel_tol=1e-9)

    @given(span, rate, small_cost, small_cost)
    @settings(max_examples=150)
    def test_r1_monotone_in_rate(self, t, r, ts, tcp):
        lo = scp_interval_time_for_m(4, span=t, rate=r, store=ts, compare=tcp)
        hi = scp_interval_time_for_m(4, span=t, rate=r * 2, store=ts, compare=tcp)
        assert hi >= lo - 1e-9


class TestOptimizerProperties:
    @given(span, rate, small_cost, small_cost)
    @settings(max_examples=100, deadline=None)
    def test_num_scp_never_worse_than_m1(self, t, r, ts, tcp):
        plan = num_scp(t, rate=r, store=ts, compare=tcp, max_m=256)
        m1 = scp_interval_time_for_m(1, span=t, rate=r, store=ts, compare=tcp)
        assert plan.expected_time <= m1 + 1e-9

    @given(span, rate, small_cost, small_cost)
    @settings(max_examples=60, deadline=None)
    def test_num_scp_close_to_brute_force(self, t, r, ts, tcp):
        fast = num_scp(t, rate=r, store=ts, compare=tcp, max_m=256)
        exact = brute_force_num_scp(t, rate=r, store=ts, compare=tcp, max_m=256)
        # fig. 2's floor/ceil rule may be off the true argmin by a hair;
        # the expected-time gap must stay within half a percent.
        assert fast.expected_time <= exact.expected_time * 1.005

    @given(span, rate, small_cost, small_cost)
    @settings(max_examples=60, deadline=None)
    def test_num_ccp_never_worse_than_m1(self, t, r, ts, tcp):
        plan = num_ccp(t, rate=r, store=ts, compare=tcp, max_m=256)
        m1 = ccp_interval_time_for_m(1, span=t, rate=r, store=ts, compare=tcp)
        assert plan.expected_time <= m1 + 1e-9


class TestExecutorProperties:
    @given(
        st.floats(min_value=50.0, max_value=500.0),
        st.floats(min_value=20.0, max_value=200.0),
        st.integers(1, 6),
        st.sampled_from([CheckpointKind.CSCP, CheckpointKind.SCP, CheckpointKind.CCP]),
        st.lists(
            st.floats(min_value=1.0, max_value=2_000.0),
            max_size=4,
            unique=True,
        ),
    )
    @settings(max_examples=150, deadline=None)
    def test_run_invariants(self, cycles, interval, m, kind, fault_times):
        task = TaskSpec(
            cycles=cycles,
            deadline=1e7,
            fault_budget=10,
            fault_rate=1e-3,
            costs=CostModel.scp_favourable(),
        )
        policy = make_fixed_policy(interval_time=interval, m=m, sub_kind=kind)
        result = simulate_run(task, policy, ScriptedFaults(sorted(fault_times)))
        # With an unbounded deadline and finitely many faults the task
        # always completes...
        assert result.completed and result.timely
        # ...having executed at least its own cycles...
        assert result.cycles_executed >= cycles - 1e-6
        # ...with time = cycles at f1 and energy = 4·cycles.
        assert result.finish_time == result.cycles_executed
        assert math.isclose(result.energy, 4 * result.cycles_executed)
        # Detection count never exceeds injections.
        assert result.detected_faults <= result.injected_faults
        assert result.rollbacks == result.detected_faults

    @given(
        st.floats(min_value=50.0, max_value=300.0),
        st.floats(min_value=10.0, max_value=400.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_fault_free_time_is_exact(self, cycles, interval):
        task = TaskSpec(
            cycles=cycles,
            deadline=1e7,
            fault_budget=1,
            fault_rate=0.0,
            costs=CostModel.scp_favourable(),
        )
        policy = make_fixed_policy(interval_time=interval)
        result = simulate_run(task, policy, ScriptedFaults([]))
        n_intervals = math.ceil(round(cycles / min(interval, cycles), 9))
        expected = cycles + n_intervals * 22.0
        assert math.isclose(result.finish_time, expected, rel_tol=1e-9)


class TestMetricsProperties:
    @given(st.integers(0, 500), st.integers(1, 500))
    @settings(max_examples=200)
    def test_wilson_bounds_contain_estimate(self, successes, trials):
        assume(successes <= trials)
        low, high = wilson_interval(successes, trials)
        p = successes / trials
        assert 0.0 <= low <= p + 1e-12
        assert p - 1e-12 <= high <= 1.0
