"""Integrity tests for the transcribed published tables."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.paper_data import (
    TABLE_IDS,
    paper_cell,
    paper_rows,
    paper_schemes,
)


class TestStructure:
    def test_all_eight_tables_present(self):
        assert TABLE_IDS == ("1a", "1b", "2a", "2b", "3a", "3b", "4a", "4b")

    @pytest.mark.parametrize("table_id", TABLE_IDS)
    def test_every_row_has_every_scheme(self, table_id):
        for u, lam in paper_rows(table_id):
            for scheme in paper_schemes(table_id):
                cell = paper_cell(table_id, u, lam, scheme)
                assert cell is not None
                assert 0.0 <= cell.p <= 1.0
                assert cell.e_is_nan or cell.e > 0

    def test_row_counts_match_publication(self):
        assert len(paper_rows("1a")) == 8
        assert len(paper_rows("1b")) == 6
        assert len(paper_rows("2a")) == 8
        assert len(paper_rows("2b")) == 4
        assert len(paper_rows("3a")) == 8
        assert len(paper_rows("3b")) == 6
        assert len(paper_rows("4a")) == 8
        assert len(paper_rows("4b")) == 4

    def test_scheme_families(self):
        assert paper_schemes("1a")[-1] == "A_D_S"
        assert paper_schemes("2b")[-1] == "A_D_S"
        assert paper_schemes("3a")[-1] == "A_D_C"
        assert paper_schemes("4b")[-1] == "A_D_C"

    def test_unknown_table_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_rows("9z")
        with pytest.raises(ConfigurationError):
            paper_cell("9z", 0.76, 1.4e-3, "A_D")

    def test_unknown_scheme_returns_none(self):
        assert paper_cell("1a", 0.76, 1.4e-3, "A_D_C") is None

    def test_unknown_row_returns_none(self):
        assert paper_cell("1a", 0.5, 1.4e-3, "A_D") is None


class TestSpotValues:
    """A few cells checked character-by-character against the PDF text."""

    def test_table_1a_first_row(self):
        assert paper_cell("1a", 0.76, 1.4e-3, "Poisson").p == 0.1185
        assert paper_cell("1a", 0.76, 1.4e-3, "Poisson").e == 39015
        assert paper_cell("1a", 0.76, 1.4e-3, "A_D_S").p == 0.9999
        assert paper_cell("1a", 0.76, 1.4e-3, "A_D_S").e == 52863

    def test_table_1b_nan_cells(self):
        cell = paper_cell("1b", 1.00, 1e-4, "Poisson")
        assert cell.p == 0.0
        assert math.isnan(cell.e)
        assert cell.e_is_nan

    def test_table_2a_adaptive_wins_P(self):
        row = [
            paper_cell("2a", 0.80, 1.6e-3, s).p for s in paper_schemes("2a")
        ]
        assert row == [0.1264, 0.1207, 0.1617, 0.4864]

    def test_table_3a_ccp_scheme(self):
        assert paper_cell("3a", 0.76, 1.4e-3, "A_D_C").e == 52862

    def test_table_4b_last_row(self):
        assert paper_cell("4b", 0.95, 2e-4, "A_D_C").p == 0.2850
        assert paper_cell("4b", 0.95, 2e-4, "A_D_C").e == 155597


class TestPublishedShape:
    """The paper's own numbers satisfy the shape criteria we test ours
    against — guarding the criteria themselves against transcription
    slips."""

    @pytest.mark.parametrize("table_id", ["1a", "1b", "3a", "3b"])
    def test_adaptive_beats_static_at_f1(self, table_id):
        ours = paper_schemes(table_id)[-1]
        for u, lam in paper_rows(table_id):
            own = paper_cell(table_id, u, lam, ours)
            ad = paper_cell(table_id, u, lam, "A_D")
            poisson = paper_cell(table_id, u, lam, "Poisson")
            assert own.p >= ad.p - 1e-9
            assert own.p > poisson.p
            if not own.e_is_nan and not ad.e_is_nan:
                # One published row (3b, U=1.0, λ=1e-4) has the proposed
                # scheme 0.3% above A_D; the claim is "no more energy"
                # within noise, not strict dominance on every row.
                assert own.e <= ad.e * 1.01

    @pytest.mark.parametrize("table_id", ["2a", "2b", "4a", "4b"])
    def test_proposed_scheme_beats_ad_at_f2(self, table_id):
        ours = paper_schemes(table_id)[-1]
        for u, lam in paper_rows(table_id):
            own = paper_cell(table_id, u, lam, ours)
            ad = paper_cell(table_id, u, lam, "A_D")
            assert own.p >= ad.p - 1e-9
