"""The study service: cell identity, the cache, the scheduler, HTTP.

The correctness wall this suite pins, layer by layer:

* a cell's identity key captures everything that determines its
  estimate (job content, block size, kernel) and nothing that doesn't
  (study membership, axis labels) — so overlapping studies share cells
  and ``exact``/``fast`` can never alias;
* a cache hit is served **verbatim**: the estimate bytes equal the
  ones recomputation would produce, and resubmitting an identical spec
  yields a byte-identical ResultSet payload;
* concurrent submissions compute each unique cell exactly once — the
  scheduler's claim/wait arbitration plus the content-addressed store.
"""

import json
import os
import threading
import time

import pytest

from repro.api import ResultSet, Session, Study
from repro.api.plans import (
    UncacheableCell,
    cell_identity,
    describe_cell_component,
)
from repro.api.results import json_dumps_exact
from repro.api.scheduler import CellScheduler
from repro.errors import ConfigurationError
from repro.service import (
    CellCache,
    StudyService,
    fetch_stats,
    make_server,
    submit_study,
    wait_until_ready,
)

ROW_SPEC = {"kind": "row", "table": "1a", "reps": 16, "seed": 9,
            "u": 0.8, "lam": 1.4e-3}
#: Contains ROW_SPEC's row: same table, same seed -> shared cells.
TABLE_SPEC = {"kind": "table", "table": "1a", "reps": 16, "seed": 9}


def _plans(spec=ROW_SPEC):
    return Study(spec).cells()


# ---------------------------------------------------------------------------
# cell identity


class TestCellIdentity:
    def test_identity_is_stable_and_content_addressed(self):
        plans_a = _plans()
        plans_b = _plans()
        ids_a = [cell_identity(p.job, block_size=256) for p in plans_a]
        ids_b = [cell_identity(p.job, block_size=256) for p in plans_b]
        assert ids_a == ids_b  # same content, fresh objects
        assert len(set(ids_a)) == len(ids_a)  # distinct cells, distinct keys

    def test_identity_excludes_study_membership(self):
        """The same physical cell in two different studies has ONE
        identity — that is what lets overlapping studies share work."""
        row_ids = {
            cell_identity(p.job, block_size=256) for p in _plans(ROW_SPEC)
        }
        table_ids = {
            cell_identity(p.job, block_size=256) for p in _plans(TABLE_SPEC)
        }
        assert row_ids <= table_ids
        assert len(table_ids - row_ids) == len(table_ids) - len(row_ids)

    def test_block_size_changes_the_identity(self):
        job = _plans()[0].job
        assert cell_identity(job, block_size=256) != cell_identity(
            job, block_size=128
        )

    def test_exact_and_fast_kernels_never_alias(self):
        import dataclasses

        job = _plans()[0].job
        fast = dataclasses.replace(job, kernel="fast")
        assert cell_identity(job, block_size=256) != cell_identity(
            fast, block_size=256
        )

    def test_closure_components_are_uncacheable_not_misidentified(self):
        def local_factory():  # a '<locals>' qualname — no stable identity
            return None

        with pytest.raises(UncacheableCell):
            describe_cell_component(local_factory)
        import dataclasses

        job = dataclasses.replace(
            _plans()[0].job, policy_factory=local_factory
        )
        assert cell_identity(job, block_size=256) is None

    def test_float_identity_is_exact_not_stringly_rounded(self):
        assert describe_cell_component(0.1) != describe_cell_component(
            0.1 + 2 ** -54
        )


# ---------------------------------------------------------------------------
# the content-addressed store


def _one_record():
    study = Study(ROW_SPEC)
    return study.run().records[0]


class TestCellCache:
    def test_round_trip_preserves_the_record_exactly(self, tmp_path):
        cache = CellCache(str(tmp_path / "cells"))
        record = _one_record()
        cache.put("ab" + "0" * 62, record)
        # A cold cache (fresh memory map) must reproduce it from disk.
        cold = CellCache(str(tmp_path / "cells"))
        again = cold.get("ab" + "0" * 62)
        assert again is not None
        assert json_dumps_exact(again.to_dict()) == json_dumps_exact(
            record.to_dict()
        )

    def test_miss_is_none(self, tmp_path):
        cache = CellCache(str(tmp_path / "cells"))
        assert cache.get("cd" + "0" * 62) is None
        assert ("cd" + "0" * 62) not in cache

    def test_corrupt_entry_reads_as_a_miss(self, tmp_path):
        cache = CellCache(str(tmp_path / "cells"), memory=False)
        identity = "ef" + "0" * 62
        cache.put(identity, _one_record())
        path = cache.path_for(identity)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{torn json")
        assert cache.get(identity) is None

    def test_foreign_format_reads_as_a_miss(self, tmp_path):
        cache = CellCache(str(tmp_path / "cells"), memory=False)
        identity = "01" + "0" * 62
        cache.put(identity, _one_record())
        path = cache.path_for(identity)
        payload = json.loads(open(path, encoding="utf-8").read())
        payload["format"] = "somebody.else/9"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload))
        assert cache.get(identity) is None

    def test_first_writer_wins(self, tmp_path):
        cache = CellCache(str(tmp_path / "cells"), memory=False)
        identity = "23" + "0" * 62
        record = _one_record()
        cache.put(identity, record)
        first_bytes = open(cache.path_for(identity), "rb").read()
        cache.put(identity, record)  # duplicate put: no rewrite
        assert open(cache.path_for(identity), "rb").read() == first_bytes
        assert len(cache) == 1

    def test_unwritable_directory_is_a_clean_error(self, tmp_path):
        target = tmp_path / "file-not-dir"
        target.write_text("x")
        with pytest.raises(ConfigurationError, match="cell cache"):
            CellCache(str(target))


# ---------------------------------------------------------------------------
# the scheduler


class TestCellScheduler:
    def test_study_via_scheduler_equals_direct_run(self):
        direct = Study(ROW_SPEC).run()
        with Session() as session:
            scheduler = CellScheduler(session)
            via = Study(ROW_SPEC).run(scheduler=scheduler)
        assert via.same_values(direct)
        for a, b in zip(direct.records, via.records):
            assert json_dumps_exact(a.to_dict()["estimate"]) == \
                json_dumps_exact(b.to_dict()["estimate"])

    def test_session_and_scheduler_are_mutually_exclusive(self):
        with Session() as session:
            scheduler = CellScheduler(session)
            with pytest.raises(ConfigurationError, match="not both"):
                Study(ROW_SPEC).run(session, scheduler=scheduler)

    def test_cache_hit_is_byte_identical_to_recomputation(self, tmp_path):
        """THE correctness wall: a hit's estimate bytes equal the ones
        recomputing the cell would produce."""
        cache = CellCache(str(tmp_path / "cells"))
        with Session() as session:
            warm = Study(ROW_SPEC).run(
                scheduler=CellScheduler(session, cache=cache)
            )
            hit = Study(ROW_SPEC).run(
                scheduler=CellScheduler(session, cache=cache)
            )
        recomputed = Study(ROW_SPEC).run()
        assert json_dumps_exact(hit.to_dict()) == json_dumps_exact(
            warm.to_dict()
        )  # the full set, provenance included, served verbatim
        for a, b in zip(recomputed.records, hit.records):
            assert json_dumps_exact(a.to_dict()["estimate"]) == \
                json_dumps_exact(b.to_dict()["estimate"])

    def test_overlapping_studies_share_cached_cells(self, tmp_path):
        cache = CellCache(str(tmp_path / "cells"))
        with Session() as session:
            scheduler = CellScheduler(session, cache=cache)
            row = Study(ROW_SPEC).run(scheduler=scheduler)
            assert scheduler.hits == 0
            table = Study(TABLE_SPEC).run(scheduler=scheduler)
        assert scheduler.hits == len(row)
        assert scheduler.misses == len(table)
        # The shared cells' estimates are served verbatim.
        table_by_scheme = {
            r.axes["scheme"]: r for r in table.records
            if r.axes.get("u") == ROW_SPEC["u"]
            and r.axes.get("lam") == ROW_SPEC["lam"]
        }
        for record in row.records:
            shared = table_by_scheme[record.axes["scheme"]]
            assert json_dumps_exact(shared.to_dict()["estimate"]) == \
                json_dumps_exact(record.to_dict()["estimate"])

    def test_concurrent_submissions_compute_each_cell_once(self, tmp_path):
        """N threads, same study, one scheduler: the backend sees each
        unique cell exactly once (claims + cache, not luck)."""
        from repro.api import scheduler as scheduler_mod

        computed = []
        computed_lock = threading.Lock()
        real = scheduler_mod.timed_run_cells

        def counting(session, jobs):
            with computed_lock:
                computed.extend(jobs)
            return real(session, jobs)

        cache = CellCache(str(tmp_path / "cells"))
        n_threads = 4
        outputs = [None] * n_threads
        errors = []
        barrier = threading.Barrier(n_threads)
        try:
            scheduler_mod.timed_run_cells = counting
            with Session() as session:
                scheduler = CellScheduler(session, cache=cache)

                def run(i):
                    barrier.wait()
                    try:
                        outputs[i] = Study(ROW_SPEC).run(scheduler=scheduler)
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)

                threads = [
                    threading.Thread(target=run, args=(i,))
                    for i in range(n_threads)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
        finally:
            scheduler_mod.timed_run_cells = real
        assert not errors
        assert len(computed) == len(_plans())  # each unique cell once
        baseline = Study(ROW_SPEC).run()
        for result in outputs:
            assert result is not None and result.same_values(baseline)

    def test_exact_and_fast_results_never_alias_in_the_cache(self, tmp_path):
        from repro.experiments.config import ExecutionSettings

        cache = CellCache(str(tmp_path / "cells"))
        with Session() as session:
            exact = Study(ROW_SPEC).run(
                scheduler=CellScheduler(session, cache=cache)
            )
        fast_settings = ExecutionSettings(kernel="fast")
        with Session(fast_settings) as session:
            scheduler = CellScheduler(session, cache=cache)
            fast = Study(ROW_SPEC).run(scheduler=scheduler)
            # Nothing the exact run cached may be served to a fast run.
            assert scheduler.hits == 0
        assert {r.kernel for r in exact.records} == {"exact"}
        assert {r.kernel for r in fast.records} == {"fast"}


# ---------------------------------------------------------------------------
# the HTTP service


@pytest.fixture()
def service_url(tmp_path):
    service = StudyService(cache_dir=str(tmp_path / "cells"))
    server = make_server(service, "http://127.0.0.1:0")
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = f"http://{host}:{port}"
    wait_until_ready(url, timeout=10.0)
    try:
        yield url
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=5.0)


class TestHTTPService:
    def test_submit_returns_the_resultset_and_counts(self, service_url):
        envelope = submit_study(service_url, ROW_SPEC)
        assert envelope["computed"] == envelope["cells"]
        assert envelope["cached"] == 0
        via = ResultSet.from_dict(envelope["result"])
        assert via.same_values(Study(ROW_SPEC).run())

    def test_resubmission_is_all_hits_and_byte_identical(self, service_url):
        first = submit_study(service_url, ROW_SPEC)
        second = submit_study(service_url, ROW_SPEC)
        assert second["computed"] == 0
        assert second["cached"] == second["cells"]
        assert json_dumps_exact(first["result"]) == json_dumps_exact(
            second["result"]
        )

    def test_overlapping_submissions_share_cells(self, service_url):
        row = submit_study(service_url, ROW_SPEC)
        table = submit_study(service_url, TABLE_SPEC)
        assert table["cached"] == row["cells"]
        assert table["computed"] == table["cells"] - row["cells"]
        stats = fetch_stats(service_url)
        assert stats["scheduler"]["hits"] == row["cells"]
        assert stats["cache"]["entries"] == table["cells"]
        assert stats["submissions"] == 2

    def test_streaming_reports_every_cell_then_the_result(self, service_url):
        events = []
        envelope = submit_study(
            service_url, ROW_SPEC, stream=True, on_event=events.append
        )
        tags = [event["event"] for event in events]
        assert tags[0] == "accepted"
        assert tags[-1] == "result"
        cell_events = [e for e in events if e["event"] == "cell"]
        assert len(cell_events) == envelope["cells"]
        assert ResultSet.from_dict(envelope["result"]).same_values(
            Study(ROW_SPEC).run()
        )

    def test_malformed_spec_is_a_clean_400(self, service_url):
        with pytest.raises(ConfigurationError, match="rejected"):
            submit_study(service_url, {"kind": "warp-drive"})

    def test_malformed_json_body_is_a_clean_400(self, service_url):
        from urllib.error import HTTPError
        from urllib.request import Request, urlopen

        request = Request(
            service_url + "/studies",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(HTTPError) as excinfo:
            urlopen(request, timeout=10.0)
        assert excinfo.value.code == 400

    def test_unknown_endpoint_is_404(self, service_url):
        from urllib.error import HTTPError
        from urllib.request import urlopen

        with pytest.raises(HTTPError) as excinfo:
            urlopen(service_url + "/nope", timeout=10.0)
        assert excinfo.value.code == 404

    def test_unreachable_service_is_a_clean_error(self):
        with pytest.raises(ConfigurationError, match="cannot reach"):
            submit_study(
                "http://127.0.0.1:1", ROW_SPEC, timeout=2.0
            )


# ---------------------------------------------------------------------------
# the CLI verbs


class TestSubmitCommand:
    def test_submit_saves_a_resultset_compatible_with_run(
        self, tmp_path, service_url, capsys
    ):
        from repro.cli import main

        spec_path = tmp_path / "row.spec.json"
        spec_path.write_text(json.dumps(ROW_SPEC))
        out = tmp_path / "via-service.json"
        csv = tmp_path / "via-service.csv"
        assert main([
            "submit", str(spec_path), "--url", service_url,
            "--out", str(out), "--csv", str(csv), "--stream",
        ]) == 0
        text = capsys.readouterr().out
        assert "computed" in text and "spec_hash" in text
        saved = ResultSet.load(str(out))
        assert saved.same_values(Study(ROW_SPEC).run())
        header = csv.read_text().splitlines()[0]
        assert "kernel" in header.split(",")

    def test_submit_against_nothing_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "row.spec.json"
        spec_path.write_text(json.dumps(ROW_SPEC))
        assert main([
            "submit", str(spec_path), "--url", "http://127.0.0.1:1",
            "--timeout", "2",
        ]) == 2
        assert "cannot reach" in capsys.readouterr().err

    def test_submit_missing_spec_file_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "submit", str(tmp_path / "absent.json"),
            "--url", "http://127.0.0.1:1",
        ]) == 2
        assert "cannot read spec file" in capsys.readouterr().err


class TestServeEntrypoint:
    def test_serve_forever_binds_and_reports_readiness(self, tmp_path, capsys):
        from repro.service.server import serve_forever

        ready = threading.Event()
        holder = {}

        def run():
            # Port 0: the OS picks; the readiness line reports it.
            holder["rc"] = serve_forever(
                None, str(tmp_path / "cells"), "http://127.0.0.1:0",
                ready=ready,
            )

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(10.0)
        # The daemon is actually serving; shut it down via its socket.
        out = capsys.readouterr().out
        assert "repro-serve: listening on http://127.0.0.1:" in out
        url = out.split("listening on ")[1].split()[0]
        wait_until_ready(url, timeout=10.0)
        submit_study(url, ROW_SPEC)
        # serve_forever only exits on KeyboardInterrupt; the daemon
        # thread is reaped with the test process.


# ---------------------------------------------------------------------------
# hostile clients: malformed framing, saturation, stalled connections


def _raw_http(url, request_bytes, *, timeout=10.0):
    """One raw-socket HTTP exchange (for requests urllib refuses to send)."""
    import socket

    host, port = url.replace("http://", "").split(":")
    with socket.create_connection((host, int(port)), timeout=timeout) as sock:
        sock.sendall(request_bytes)
        sock.settimeout(timeout)
        data = b""
        while True:
            try:
                chunk = sock.recv(4096)
            except TimeoutError:
                break
            if not chunk:
                break
            data += chunk
        return data


class TestHostileClients:
    def test_negative_content_length_is_a_clean_400(self, service_url):
        """``Content-Length: -1`` must be rejected before any body read
        — a negative length reaching ``rfile.read`` means read-to-EOF,
        i.e. a connection the sender controls forever."""
        response = _raw_http(
            service_url,
            b"POST /studies HTTP/1.1\r\n"
            b"Host: test\r\nConnection: close\r\n"
            b"Content-Length: -1\r\n\r\n",
        )
        assert response.startswith(b"HTTP/1.1 400")
        assert b"Content-Length" in response
        # The service survived the malformed request.
        assert fetch_stats(service_url)["submissions"] == 0

    def test_non_integer_content_length_is_a_clean_400(self, service_url):
        for value in (b"banana", b"12.5", b"1e3", b"+7"):
            response = _raw_http(
                service_url,
                b"POST /studies HTTP/1.1\r\n"
                b"Host: test\r\nConnection: close\r\n"
                b"Content-Length: " + value + b"\r\n\r\n",
            )
            assert response.startswith(b"HTTP/1.1 400"), value
        assert fetch_stats(service_url)["submissions"] == 0

    def test_admission_bound_rejects_with_503_and_retry_after(
        self, tmp_path, monkeypatch
    ):
        """With max_pending=1 and one submission parked in compute, the
        next POST gets an immediate 503 carrying Retry-After, the
        rejected counter ticks, and the parked submission still
        completes normally."""
        from urllib.error import HTTPError
        from urllib.request import Request, urlopen

        from repro.api import scheduler as scheduler_mod
        from repro.errors import ServiceUnavailableError

        entered = threading.Event()
        release = threading.Event()
        real = scheduler_mod.timed_run_cells

        def blocking(session, jobs):
            entered.set()
            assert release.wait(30.0)
            return real(session, jobs)

        monkeypatch.setattr(scheduler_mod, "timed_run_cells", blocking)
        service = StudyService(
            cache_dir=str(tmp_path / "cells"), max_pending=1
        )
        server = make_server(service, "http://127.0.0.1:0")
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        first = {}

        def submit_first():
            first["envelope"] = submit_study(url, ROW_SPEC, retries=0)

        first_thread = threading.Thread(target=submit_first)
        try:
            wait_until_ready(url, timeout=10.0)
            first_thread.start()
            assert entered.wait(10.0)
            body = json_dumps_exact(ROW_SPEC).encode()
            with pytest.raises(HTTPError) as excinfo:
                urlopen(
                    Request(url + "/studies", data=body), timeout=10.0
                ).read()
            assert excinfo.value.code == 503
            assert excinfo.value.headers.get("Retry-After") == "2"
            # The client maps exhausted 503s to ServiceUnavailableError.
            with pytest.raises(ServiceUnavailableError, match="saturated"):
                submit_study(url, ROW_SPEC, retries=0)
            stats = fetch_stats(url)
            assert stats["max_pending"] == 1
            assert stats["active"] == 1
            assert stats["rejected"] >= 2
        finally:
            release.set()
            first_thread.join(timeout=30.0)
            server.shutdown()
            server.server_close()
            service.close()
            thread.join(timeout=5.0)
        assert first["envelope"]["cells"] == len(_plans())

    def test_client_retries_through_503_until_capacity_frees(
        self, tmp_path, monkeypatch
    ):
        """The retry loop turns a transient 503 into success once the
        parked submission releases its admission slot."""
        from repro.api import scheduler as scheduler_mod

        entered = threading.Event()
        release = threading.Event()
        real = scheduler_mod.timed_run_cells

        def blocking(session, jobs):
            entered.set()
            assert release.wait(30.0)
            return real(session, jobs)

        monkeypatch.setattr(scheduler_mod, "timed_run_cells", blocking)
        service = StudyService(
            cache_dir=str(tmp_path / "cells"), max_pending=1
        )
        server = make_server(service, "http://127.0.0.1:0")
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        outcomes = {}

        def submit_named(name):
            outcomes[name] = submit_study(url, ROW_SPEC, retries=8)

        try:
            wait_until_ready(url, timeout=10.0)
            holder = threading.Thread(target=submit_named, args=("holder",))
            holder.start()
            assert entered.wait(10.0)
            retrier = threading.Thread(
                target=submit_named, args=("retrier",)
            )
            retrier.start()
            time.sleep(0.5)  # let the retrier eat at least one 503
            release.set()
            holder.join(timeout=30.0)
            retrier.join(timeout=30.0)
            stats = fetch_stats(url)
        finally:
            release.set()
            server.shutdown()
            server.server_close()
            service.close()
            thread.join(timeout=5.0)
        assert not holder.is_alive() and not retrier.is_alive()
        assert outcomes["holder"]["cells"] == len(_plans())
        assert outcomes["retrier"]["cells"] == len(_plans())
        assert stats["rejected"] >= 1  # the retrier really was bounced
        baseline = Study(ROW_SPEC).run()
        for envelope in outcomes.values():
            assert ResultSet.from_dict(envelope["result"]).same_values(
                baseline
            )

    def test_client_retries_through_a_service_restart(self, tmp_path):
        """Connection-refused is transient during a daemon restart; the
        retry loop rides it out once the service comes back."""
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        url = f"http://127.0.0.1:{port}"
        holder = {}

        def start_late():
            time.sleep(0.6)
            service = StudyService(cache_dir=str(tmp_path / "cells"))
            server = make_server(service, url)
            holder["server"] = server
            holder["service"] = service
            holder["up"] = True
            server.serve_forever()

        thread = threading.Thread(target=start_late, daemon=True)
        thread.start()
        try:
            envelope = submit_study(url, ROW_SPEC, retries=8)
            assert envelope["cells"] == len(_plans())
        finally:
            if holder.get("up"):
                holder["server"].shutdown()
                holder["server"].server_close()
                holder["service"].close()
            thread.join(timeout=5.0)

    def test_stalled_request_body_is_reaped_by_the_timeout(self, tmp_path):
        """A client that promises a body and never sends it must not pin
        a handler thread: the per-connection timeout closes it, and the
        server keeps serving."""
        import socket

        service = StudyService(cache_dir=str(tmp_path / "cells"))
        server = make_server(
            service, "http://127.0.0.1:0", request_timeout=0.5
        )
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            wait_until_ready(url, timeout=10.0)
            started = time.monotonic()
            with socket.create_connection((host, port), timeout=10.0) as sock:
                sock.sendall(
                    b"POST /studies HTTP/1.1\r\n"
                    b"Host: test\r\nContent-Length: 100\r\n\r\nstall"
                )
                sock.settimeout(10.0)
                # The server's read times out and it closes the
                # connection without a response.
                assert sock.recv(4096) == b""
            assert time.monotonic() - started < 8.0
            # The service is still healthy for well-behaved clients.
            assert fetch_stats(url)["submissions"] == 0
        finally:
            server.shutdown()
            server.server_close()
            service.close()
            thread.join(timeout=5.0)

    def test_stats_expose_the_admission_counters(self, tmp_path):
        service = StudyService(
            cache_dir=str(tmp_path / "cells"), max_pending=5, fair_share=3
        )
        try:
            stats = service.stats()
            assert stats["max_pending"] == 5
            assert stats["active"] == 0
            assert stats["rejected"] == 0
            assert stats["scheduler"]["fair_share"] == 3
        finally:
            service.close()
        unbounded = StudyService(cache_dir=str(tmp_path / "cells2"))
        try:
            assert unbounded.stats()["max_pending"] is None
        finally:
            unbounded.close()


# ---------------------------------------------------------------------------
# fair-share scheduling


class TestFairShare:
    def test_fair_share_chunks_the_compute_batches(self, monkeypatch):
        """fair_share=2 turns one N-cell batch into ceil(N/2) chunks —
        same cells, same results, chunked turnstile turns."""
        from repro.api import scheduler as scheduler_mod

        sizes = []
        real = scheduler_mod.timed_run_cells

        def recording(session, jobs):
            sizes.append(len(jobs))
            return real(session, jobs)

        monkeypatch.setattr(scheduler_mod, "timed_run_cells", recording)
        with Session() as session:
            scheduler = CellScheduler(session, fair_share=2)
            result = Study(ROW_SPEC).run(scheduler=scheduler)
        n = len(_plans())
        expected = [2] * (n // 2) + ([n % 2] if n % 2 else [])
        assert sizes == expected
        assert result.same_values(Study(ROW_SPEC).run())

    def test_fair_share_must_be_positive(self):
        from repro.errors import ParameterError

        with Session() as session:
            with pytest.raises(ParameterError, match="fair_share"):
                CellScheduler(session, fair_share=0)

    def test_small_study_is_not_starved_behind_a_big_one(self, monkeypatch):
        """The FIFO turnstile interleaves chunked submissions: a small
        study arriving mid-way through a big one finishes before the
        big one's tail instead of queueing behind the whole thing."""
        from repro.api import scheduler as scheduler_mod

        # Disjoint seeds so the two studies share no cell identities
        # (shared cells would dedupe instead of compete for turns).
        big_spec = {"kind": "table", "table": "1a", "reps": 16, "seed": 21}
        small_spec = {"kind": "row", "table": "1a", "reps": 16, "seed": 22,
                      "u": 0.8, "lam": 1.4e-3}
        order = []
        order_lock = threading.Lock()
        real = scheduler_mod.timed_run_cells

        def recording(session, jobs):
            with order_lock:
                order.append(threading.current_thread().name)
            time.sleep(0.05)  # widen the interleaving window
            return real(session, jobs)

        monkeypatch.setattr(scheduler_mod, "timed_run_cells", recording)
        errors = []
        with Session() as session:
            scheduler = CellScheduler(session, fair_share=1)

            def run(name, spec):
                try:
                    Study(spec).run(scheduler=scheduler)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            big = threading.Thread(
                target=run, args=("big", big_spec), name="big"
            )
            big.start()
            while not order:  # the big study is mid-chunk
                time.sleep(0.005)
            small = threading.Thread(
                target=run, args=("small", small_spec), name="small"
            )
            small.start()
            small.join(timeout=60.0)
            big.join(timeout=60.0)
        assert not errors
        assert not big.is_alive() and not small.is_alive()
        # The small study's chunks ran before the big study finished.
        last_small = max(
            i for i, name in enumerate(order) if name == "small"
        )
        last_big = max(i for i, name in enumerate(order) if name == "big")
        assert last_small < last_big
