"""Determinism and merge semantics of the parallel batch runner.

The contract under test: for a fixed seed and block size, a cell's
:class:`CellEstimate` is *identical* — field for field, bit for bit —
whatever the worker count, and identical to the plain serial harness.
(In practice the compensated moment accumulators agree across block
sizes too; that stronger property is pinned here with fixed seeds.)
Plus the reduction layer: merged accumulators equal single-pass
statistics with an O(1) payload, including the paper's ``NaN``
convention when every block comes back with zero timely runs.
"""

import math
import pickle
from functools import partial

import pytest

from repro.core.checkpoints import CostModel
from repro.core.schemes import AdaptiveSCPPolicy, PoissonArrivalPolicy
from repro.errors import ParameterError
from repro.sim.backends import plan_blocks
from repro.sim.executor import RunResult
from repro.sim.montecarlo import CellAccumulator, estimate, run_many, summarize
from repro.sim.parallel import (
    DEFAULT_BLOCK_SIZE,
    BatchRunner,
    CellJob,
    default_workers,
)
from repro.sim.task import TaskSpec

COSTS = CostModel.scp_favourable()


@pytest.fixture
def task():
    return TaskSpec(
        cycles=7600.0,
        deadline=10_000.0,
        fault_budget=5,
        fault_rate=1.4e-3,
        costs=COSTS,
    )


def make_result(
    timely: bool,
    energy: float,
    finish: float = 100.0,
    faults: int = 0,
    checkpoints: int = 3,
    subs: int = 1,
) -> RunResult:
    return RunResult(
        completed=timely,
        timely=timely,
        finish_time=finish,
        energy=energy,
        cycles_executed=finish,
        cycles_by_frequency={1.0: finish},
        detected_faults=faults,
        injected_faults=faults,
        checkpoints=checkpoints,
        sub_checkpoints=subs,
        rollbacks=faults,
    )


class TestDeterminism:
    """Same seed ⇒ same CellEstimate, whatever the topology."""

    def test_workers_1_vs_4_identical(self, task):
        job = CellJob(task=task, policy_factory=AdaptiveSCPPolicy, reps=64, seed=5)
        one = BatchRunner(workers=1).run_cell(job)
        four = BatchRunner(workers=4).run_cell(job)
        assert one.same_values(four)

    def test_block_size_invariant_across_worker_counts(self, task):
        # The hard guarantee: for each fixed block size, every worker
        # count performs the same accumulations in the same order.
        job = CellJob(task=task, policy_factory=AdaptiveSCPPolicy, reps=60, seed=8)
        for block in (60, 7, 13, 1, None):
            estimates = [
                BatchRunner(workers=w, chunk_size=block).run_cell(job)
                for w in (1, 2, 4)
            ]
            assert all(e.same_values(estimates[0]) for e in estimates)

    def test_chunk_size_irrelevant(self, task):
        # The practical (compensated-arithmetic) guarantee: different
        # block sizes change the merge tree but not the final bits.
        job = CellJob(task=task, policy_factory=AdaptiveSCPPolicy, reps=60, seed=8)
        estimates = [
            BatchRunner(workers=w, chunk_size=c).run_cell(job)
            for w, c in [(1, 60), (1, 7), (2, 13), (4, 1), (3, None)]
        ]
        assert all(e.same_values(estimates[0]) for e in estimates)

    def test_matches_plain_serial_estimate(self, task):
        serial = estimate(task, AdaptiveSCPPolicy, reps=50, seed=11)
        via_runner = estimate(
            task,
            AdaptiveSCPPolicy,
            reps=50,
            seed=11,
            runner=BatchRunner(workers=2, chunk_size=9),
        )
        assert serial.same_values(via_runner)

    def test_different_seed_differs(self, task):
        runner = BatchRunner(workers=2)
        a = runner.run_cell(
            CellJob(task=task, policy_factory=AdaptiveSCPPolicy, reps=50, seed=1)
        )
        b = runner.run_cell(
            CellJob(task=task, policy_factory=AdaptiveSCPPolicy, reps=50, seed=2)
        )
        assert a != b

    def test_grid_preserves_job_order(self, task):
        jobs = [
            CellJob(
                task=task,
                policy_factory=partial(PoissonArrivalPolicy, 1.0),
                reps=40,
                seed=s,
            )
            for s in (3, 4, 5)
        ]
        pooled = BatchRunner(workers=3, chunk_size=11).run_cells(jobs)
        serial = [BatchRunner(workers=1).run_cell(j) for j in jobs]
        assert all(p.same_values(s) for p, s in zip(pooled, serial))


class TestMergeSemantics:
    """Merged accumulators equal single-pass statistics exactly."""

    def test_merge_equals_single_pass(self):
        results = [
            make_result(True, 101.5, finish=90.25, faults=1),
            make_result(False, 407.125, finish=600.0, faults=3),
            make_result(True, 99.75, finish=88.5),
            make_result(True, 250.0625, finish=95.0, faults=2, subs=4),
            make_result(False, 333.5, finish=700.0, faults=5),
        ]
        single = CellAccumulator().add_all(results).finalize()
        for split in range(1, len(results)):
            left = CellAccumulator().add_all(results[:split])
            right = CellAccumulator().add_all(results[split:])
            assert left.merge(right).finalize() == single

    def test_merge_equals_summarize(self, task):
        results = run_many(
            task, partial(PoissonArrivalPolicy, 1.0), reps=30, seed=21
        )
        merged = (
            CellAccumulator()
            .add_all(results[:13])
            .merge(CellAccumulator().add_all(results[13:]))
            .finalize()
        )
        assert merged == summarize(results)

    def test_empty_accumulator_rejected(self):
        with pytest.raises(ParameterError):
            CellAccumulator().finalize()


class TestEmptyTimelyNaN:
    """Regression: all-empty chunks must yield NaN, not raise."""

    def test_all_empty_chunks_merge_to_nan(self):
        chunks = [
            CellAccumulator().add_all([make_result(False, 50.0, finish=900.0)])
            for _ in range(3)
        ]
        merged = chunks[0].merge(chunks[1]).merge(chunks[2])
        cell = merged.finalize()
        assert cell.p == 0.0
        assert math.isnan(cell.e)
        assert math.isnan(cell.energy_timely.value)
        assert math.isnan(cell.mean_finish_time_timely)
        assert cell.energy_timely.count == 0

    def test_never_timely_cell_through_pool(self):
        # U = 1 at f = 1: checkpoint overhead alone blows the deadline,
        # so no run is ever timely and E must come back NaN.
        doomed = TaskSpec(
            cycles=10_000.0,
            deadline=10_000.0,
            fault_budget=1,
            fault_rate=1e-4,
            costs=COSTS,
        )
        cell = BatchRunner(workers=2, chunk_size=10).run_cell(
            CellJob(
                task=doomed,
                policy_factory=partial(PoissonArrivalPolicy, 1.0),
                reps=30,
                seed=6,
            )
        )
        assert cell.p == 0.0
        assert math.isnan(cell.e)


class TestFallbacks:
    def test_unpicklable_factory_falls_back_to_serial(self, task):
        factory = lambda: PoissonArrivalPolicy(1.0)  # noqa: E731 - closure on purpose
        job = CellJob(task=task, policy_factory=factory, reps=40, seed=7)
        pooled = BatchRunner(workers=4).run_cell(job)
        serial = BatchRunner(workers=1).run_cell(job)
        assert pooled.same_values(serial)

    def test_mixed_grid_keeps_order(self, task):
        picklable = CellJob(
            task=task, policy_factory=partial(PoissonArrivalPolicy, 1.0),
            reps=30, seed=1,
        )
        closure = CellJob(
            task=task, policy_factory=lambda: PoissonArrivalPolicy(1.0),
            reps=30, seed=1,
        )
        pooled = BatchRunner(workers=2).run_cells([picklable, closure])
        assert pooled[0].same_values(pooled[1])

    def test_empty_grid(self):
        assert BatchRunner(workers=2).run_cells([]) == []

    def test_pool_is_reused_across_batches_and_closeable(self, task):
        job = CellJob(
            task=task, policy_factory=partial(PoissonArrivalPolicy, 1.0),
            reps=30, seed=2,
        )
        with BatchRunner(workers=2) as runner:
            first = runner.run_cell(job)
            pool = runner.backend._pool
            second = runner.run_cell(job)
            assert runner.backend._pool is pool  # same executor, no restart
            assert first.same_values(second)
        assert runner.backend._pool is None
        # close() is idempotent and the pool recreates lazily after it.
        runner.close()
        assert runner.run_cell(job).same_values(first)

    def test_serial_constructor(self):
        runner = BatchRunner.serial()
        assert runner.workers == 1
        assert runner.backend.name == "serial"
        assert runner.block_size == DEFAULT_BLOCK_SIZE

    def test_broken_pool_recovers_in_process(self, task):
        # Kill the workers out from under the runner: the batch must
        # still complete (in-process recompute), produce the same
        # estimate, and the poisoned executor must not be reused.
        job = CellJob(
            task=task, policy_factory=partial(PoissonArrivalPolicy, 1.0),
            reps=30, seed=4,
        )
        runner = BatchRunner(workers=2, chunk_size=10)
        expected = BatchRunner.serial(chunk_size=10).run_cell(job)
        pool = runner.backend._ensure_pool()
        pool.submit(int, 0).result()  # spin the workers up
        for process in pool._processes.values():
            process.terminate()
        assert runner.run_cell(job).same_values(expected)
        # fresh executor after the break
        assert runner.backend._pool is not pool
        assert runner.run_cell(job).same_values(expected)

    def test_workers_none_means_cpu_count(self):
        assert BatchRunner(workers=None).workers == default_workers()


class TestValidation:
    def test_bad_workers(self):
        with pytest.raises(ParameterError):
            BatchRunner(workers=0)

    def test_bad_chunk_size(self):
        with pytest.raises(ParameterError):
            BatchRunner(workers=1, chunk_size=0)

    def test_bad_reps(self, task):
        with pytest.raises(ParameterError):
            CellJob(task=task, policy_factory=AdaptiveSCPPolicy, reps=0)

    def test_planned_blocks_cover_range_exactly(self, task):
        job = CellJob(task=task, policy_factory=AdaptiveSCPPolicy, reps=20, seed=0)
        tasks = plan_blocks([job], 7)
        assert [(t.block, t.start, t.stop) for t in tasks] == [
            (0, 0, 7), (1, 7, 14), (2, 14, 20)
        ]
        assert all(t.job_index == 0 and t.job is job for t in tasks)


class TestPayloadSize:
    """Accumulator payloads must be O(1) in the rep count."""

    def test_shard_payload_does_not_grow_with_reps(self, task):
        factory = partial(PoissonArrivalPolicy, 1.0)
        small = CellAccumulator().add_all(
            run_many(task, factory, reps=20, seed=1)
        )
        large = CellAccumulator().add_all(
            run_many(task, factory, reps=400, seed=1)
        )
        small_bytes = len(pickle.dumps(small))
        large_bytes = len(pickle.dumps(large))
        # 20× the reps, same payload (up to integer encoding widths).
        assert large_bytes <= small_bytes + 32
