"""Tests for the TMR, multi-speed and secure-checkpointing extensions."""

import math

import pytest

from repro.core.checkpoints import CostModel
from repro.core.renewal import cscp_interval_time
from repro.core.schemes import AdaptiveCCPPolicy, AdaptiveDVSPolicy, AdaptiveSCPPolicy
from repro.errors import ParameterError
from repro.extensions.multi_speed import (
    compare_ladders,
    paper_ladder,
    uniform_ladder,
)
from repro.extensions.security import secure_cost_model, security_sweep
from repro.extensions.tmr import (
    simulate_tmr_run,
    tmr_interval_time,
    tmr_success_probability,
)
from repro.sim.rng import RandomSource
from repro.sim.task import TaskSpec

COSTS = CostModel.scp_favourable()


def make_task(**overrides):
    params = dict(
        cycles=7600.0,
        deadline=10_000.0,
        fault_budget=5,
        fault_rate=1.4e-3,
        costs=COSTS,
    )
    params.update(overrides)
    return TaskSpec(**params)


class TestTMRAnalysis:
    def test_success_probability_formula(self):
        p = math.exp(-1e-3 * 100.0)
        assert tmr_success_probability(100.0, 1e-3) == pytest.approx(
            p * p * (3 - 2 * p)
        )

    def test_success_probability_bounds(self):
        assert tmr_success_probability(0.0, 1e-3) == 1.0
        assert 0.0 < tmr_success_probability(1e4, 1e-3) < 1.0

    def test_tmr_beats_dmr_per_interval(self):
        # Same per-processor rate: TMR's masking makes the interval
        # cheaper in expectation than DMR's 2λ divergence.
        span, rate = 200.0, 1.4e-3
        tmr = tmr_interval_time(span, rate_per_processor=rate, cost=22.0)
        dmr = cscp_interval_time(span, rate=2 * rate, store=2.0, compare=20.0)
        assert tmr < dmr

    def test_interval_time_monotone_in_rate(self):
        low = tmr_interval_time(200.0, rate_per_processor=1e-4, cost=22.0)
        high = tmr_interval_time(200.0, rate_per_processor=1e-2, cost=22.0)
        assert high > low

    def test_rollback_term(self):
        base = tmr_interval_time(200.0, rate_per_processor=1e-3, cost=22.0)
        with_rb = tmr_interval_time(
            200.0, rate_per_processor=1e-3, cost=22.0, rollback=5.0
        )
        q = tmr_success_probability(200.0, 1e-3)
        assert with_rb - base == pytest.approx(5.0 * (1 / q - 1))

    def test_validation(self):
        with pytest.raises(ParameterError):
            tmr_interval_time(0.0, rate_per_processor=1e-3, cost=22.0)
        with pytest.raises(ParameterError):
            tmr_success_probability(-1.0, 1e-3)


class TestTMRSimulation:
    def test_masks_single_faults(self):
        # Moderate per-processor rate: DMR would roll back often; TMR
        # should mask most single-processor faults.
        task = make_task(fault_rate=1e-3)
        rollbacks = 0
        injected = 0
        timely = 0
        reps = 150
        for i in range(reps):
            result = simulate_tmr_run(
                task, AdaptiveDVSPolicy(), rng=RandomSource(17).substream(i)
            )
            timely += result.timely
            rollbacks += result.rollbacks
            injected += result.injected_faults
        assert timely / reps > 0.95
        # Most faults are outvoted: only coincident two-processor
        # corruption forces a rollback.
        assert rollbacks < 0.25 * injected

    def test_energy_uses_three_processors(self):
        task = make_task(fault_rate=0.0)
        result = simulate_tmr_run(
            task, AdaptiveDVSPolicy(), rng=RandomSource(3).generator()
        )
        # Fault-free at f1: energy = 3 proc · 2 · cycles.
        assert result.energy == pytest.approx(6 * result.cycles_executed)

    def test_ccp_subdivision_supported(self):
        task = make_task(costs=CostModel.ccp_favourable(), fault_rate=1e-3)
        result = simulate_tmr_run(
            task, AdaptiveCCPPolicy(), rng=RandomSource(5).generator()
        )
        assert result.completed

    def test_scp_subdivision_rejected(self):
        task = make_task(fault_rate=1.4e-3)
        with pytest.raises(ParameterError):
            simulate_tmr_run(
                task, AdaptiveSCPPolicy(), rng=RandomSource(7).generator()
            )

    def test_double_fault_rolls_back(self):
        # Astronomic rate: two processors always diverge per interval.
        task = make_task(cycles=500.0, deadline=1e6, fault_rate=0.05)
        result = simulate_tmr_run(
            task,
            AdaptiveDVSPolicy(),
            rate_per_processor=0.05,
            rng=RandomSource(11).generator(),
        )
        assert result.rollbacks > 0


class TestMultiSpeed:
    def test_uniform_ladder_endpoints(self):
        ladder = uniform_ladder(4)
        assert ladder.frequencies[0] == 1.0
        assert ladder.frequencies[-1] == 2.0
        assert ladder.frequencies == pytest.approx((1.0, 4 / 3, 5 / 3, 2.0))

    def test_two_levels_is_paper_ladder(self):
        assert uniform_ladder(2).frequencies == paper_ladder().frequencies

    def test_validation(self):
        with pytest.raises(ParameterError):
            uniform_ladder(1)
        with pytest.raises(ParameterError):
            uniform_ladder(3, f_max=1.0)

    def test_finer_ladder_saves_energy_on_tight_task(self):
        # U=0.92 at f1 is infeasible: the 2-level ladder must jump to
        # f2; a 4-level ladder settles near 1.33.
        task = make_task(cycles=9_200.0, fault_rate=1e-4, fault_budget=1)
        comparison = compare_ladders(
            task,
            {"2-level": paper_ladder(), "4-level": uniform_ladder(4)},
            reps=120,
            seed=23,
        )
        saving = comparison.energy_saving_vs("2-level", "4-level")
        assert saving > 0.10
        assert comparison.results["4-level"].p >= 0.9

    def test_empty_ladders_rejected(self):
        with pytest.raises(ParameterError):
            compare_ladders(make_task(), {}, reps=10, seed=0)


class TestSecurity:
    def test_secure_cost_model_inflates(self):
        secured = secure_cost_model(COSTS, mac_cycles=30.0, verify_cycles=5.0)
        assert secured.store_cycles == 32.0
        assert secured.compare_cycles == 25.0
        assert secured.rollback_cycles == COSTS.rollback_cycles

    def test_negative_costs_rejected(self):
        with pytest.raises(ParameterError):
            secure_cost_model(COSTS, mac_cycles=-1.0)

    def test_sweep_shifts_optimum_down(self):
        # Heavier stores → fewer SCPs per interval.
        task = make_task()
        points = security_sweep(
            task, mac_grid=[0.0, 20.0, 80.0], interval=200.0, reps=60, seed=1
        )
        ms = [p.optimal_m for p in points]
        assert ms[0] >= ms[-1]
        assert ms[0] > 1  # unsecured optimum subdivides

    def test_sweep_costs_energy(self):
        task = make_task()
        points = security_sweep(
            task, mac_grid=[0.0, 80.0], interval=200.0, reps=120, seed=2
        )
        assert points[1].e >= points[0].e * 0.99  # roughly monotone

    def test_empty_grid_rejected(self):
        with pytest.raises(ParameterError):
            security_sweep(make_task(), mac_grid=[], reps=10, seed=0)
