"""Backend-conformance suite: one contract, every backend.

The :class:`~repro.sim.backends.ExecutionBackend` contract —
input-order results, block-size-fixed bit-identical estimates whatever
the worker topology, in-process fallback for unshippable jobs, ``[]``
for empty input, idempotent ``close()`` — is exercised here against
*every* shipped backend: :class:`SerialBackend` (the reference),
:class:`ProcessBackend` over a 2-process pool, and
:class:`DistributedBackend` over a real 2-worker loopback
:class:`~repro.sim.distributed.LocalCluster`.  A new backend earns its
place by passing this module unchanged.

The shared grid deliberately mixes an executor :class:`CellJob` with
vectorised :class:`~repro.sim.fastpath.StaticCellJob` cells — the
acceptance shape for the distributed transport — and the per-backend
fixtures are module-scoped, so the distributed backend also proves
that one coordinator/cluster survives many consecutive batches (the
``validate`` usage pattern).
"""

from functools import partial

import pytest

from repro.core.checkpoints import CostModel
from repro.core.schemes import KFaultTolerantPolicy, PoissonArrivalPolicy
from repro.sim.backends import (
    CellJob,
    DistributedBackend,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    plan_blocks,
)
from repro.sim.distributed import LocalCluster
from repro.sim.fastpath import StaticCellJob, static_cell_for_scheme
from repro.sim.parallel import BatchRunner
from repro.sim.task import TaskSpec

BACKEND_NAMES = ["serial", "process", "distributed"]
CHUNK = 16


def _task() -> TaskSpec:
    return TaskSpec(
        cycles=7600.0,
        deadline=10_000.0,
        fault_budget=5,
        fault_rate=1.4e-3,
        costs=CostModel.scp_favourable(),
    )


def _mixed_jobs():
    """A small mixed (executor + fast-static) grid, fresh per call."""
    task = _task()
    return [
        StaticCellJob(
            spec=static_cell_for_scheme(task, "Poisson", 1.0), reps=90, seed=4
        ),
        CellJob(
            task=task,
            policy_factory=partial(PoissonArrivalPolicy, 1.0),
            reps=50,
            seed=4,
        ),
        StaticCellJob(
            spec=static_cell_for_scheme(task, "k-f-t", 1.0), reps=70, seed=11
        ),
        CellJob(
            task=task,
            policy_factory=partial(KFaultTolerantPolicy, 1.0),
            reps=40,
            seed=7,
        ),
    ]


def _make_backend(name: str) -> ExecutionBackend:
    if name == "serial":
        return SerialBackend()
    if name == "process":
        return ProcessBackend(2)
    return DistributedBackend(cluster=LocalCluster(2))


@pytest.fixture(scope="module", params=BACKEND_NAMES)
def backend(request):
    """One long-lived backend per flavour, shared across the module.

    Sharing is part of the test: every backend must serve several
    independent batches from one instance (the pool is reused, the
    distributed coordinator and its workers persist across batches).
    """
    instance = _make_backend(request.param)
    yield instance
    instance.close()


@pytest.fixture(scope="module")
def reference_task_results():
    """Per-task accumulators from the serial reference, in input order."""
    tasks = plan_blocks(_mixed_jobs(), CHUNK)
    return [repr(acc.finalize()) for acc in SerialBackend().run_tasks(tasks)]


@pytest.fixture(scope="module")
def reference_estimates():
    """Whole-grid estimates from the serial runner at the shared chunk."""
    return BatchRunner.serial(chunk_size=CHUNK).run_cells(_mixed_jobs())


class TestSharedContract:
    def test_satisfies_protocol(self, backend):
        assert isinstance(backend, ExecutionBackend)
        assert isinstance(backend.name, str) and backend.name

    def test_results_align_with_input_order(
        self, backend, reference_task_results
    ):
        """One accumulator per task, position i answering task i.

        Completion order is scrambled by real pools and sockets; the
        per-index comparison against the serial reference proves the
        backend re-aligned them.
        """
        tasks = plan_blocks(_mixed_jobs(), CHUNK)
        results = backend.run_tasks(tasks)
        assert len(results) == len(tasks)
        for index, accumulator in enumerate(results):
            assert accumulator.reps == tasks[index].stop - tasks[index].start
            assert repr(accumulator.finalize()) == reference_task_results[index]

    def test_estimates_bit_identical_across_backends(
        self, backend, reference_estimates
    ):
        """Fixed block size ⇒ the merged grid matches serial exactly.

        Serial runs one worker, the pool two processes, the cluster two
        socket workers — three different topologies, byte-equal
        estimates.
        """
        runner = BatchRunner(backend=backend, chunk_size=CHUNK)
        estimates = runner.run_cells(_mixed_jobs())
        assert all(
            ours.same_values(ref)
            for ours, ref in zip(estimates, reference_estimates)
        )

    def test_no_task_lost_or_double_merged(self, backend):
        """Merged rep counts are exact — at-least-once delivery never
        inflates or starves a cell."""
        jobs = _mixed_jobs()
        runner = BatchRunner(backend=backend, chunk_size=CHUNK)
        estimates = runner.run_cells(jobs)
        assert [cell.reps for cell in estimates] == [job.reps for job in jobs]

    def test_empty_task_list_returns_empty(self, backend):
        assert backend.run_tasks([]) == []

    def test_unpicklable_job_falls_back_in_process(self, backend):
        """A closure factory cannot ship; the backend must still answer
        (in-process) and agree with the serial reference."""
        job = CellJob(
            task=_task(),
            policy_factory=lambda: PoissonArrivalPolicy(1.0),  # not picklable
            reps=30,
            seed=3,
        )
        reference = BatchRunner.serial(chunk_size=CHUNK).run_cells([job])[0]
        runner = BatchRunner(backend=backend, chunk_size=CHUNK)
        estimate = runner.run_cells([job])[0]
        assert estimate.same_values(reference)


class TestLifecycle:
    """close() semantics need fresh instances (the shared fixture must
    stay open for the other tests)."""

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_close_is_idempotent(self, name):
        instance = _make_backend(name)
        instance.close()
        instance.close()

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_empty_input_needs_no_resources(self, name):
        """run_tasks([]) must not spin up pools, clusters or sockets."""
        instance = _make_backend(name)
        try:
            assert instance.run_tasks([]) == []
            if isinstance(instance, DistributedBackend):
                assert instance.coordinator_url is None
            if isinstance(instance, ProcessBackend):
                assert instance._pool is None
        finally:
            instance.close()


class TestAdaptiveDispatch:
    """Latency-adaptive batching is dispatch-only.

    Whatever the EWMA state, whether it is on or off, and whatever the
    coordinator's claim size, the merged estimates must be bit-identical
    to the serial reference — batching changes how many blocks ride one
    message, never block boundaries or merge order.
    """

    def test_process_adaptive_off_matches_serial(self, reference_estimates):
        backend = ProcessBackend(2, adaptive_batching=False)
        try:
            estimates = BatchRunner(backend=backend, chunk_size=CHUNK).run_cells(
                _mixed_jobs()
            )
        finally:
            backend.close()
        assert all(
            ours.same_values(ref)
            for ours, ref in zip(estimates, reference_estimates)
        )

    def test_process_warm_ewma_still_matches(self, reference_estimates):
        """A second grid through the same backend runs with converged
        latency statistics (bigger groups) — results cannot move."""
        backend = ProcessBackend(2, adaptive_batching=True)
        try:
            runner = BatchRunner(backend=backend, chunk_size=CHUNK)
            first = runner.run_cells(_mixed_jobs())
            assert backend.dispatch_stats.block_latency("StaticCellJob") is not None
            second = runner.run_cells(_mixed_jobs())
        finally:
            backend.close()
        for cold, warm, ref in zip(first, second, reference_estimates):
            assert cold.same_values(ref)
            assert warm.same_values(ref)

    def test_distributed_adaptive_off_matches(self, reference_estimates):
        backend = DistributedBackend(
            cluster=LocalCluster(2), adaptive_batching=False
        )
        try:
            estimates = BatchRunner(backend=backend, chunk_size=CHUNK).run_cells(
                _mixed_jobs()
            )
        finally:
            backend.close()
        assert all(
            ours.same_values(ref)
            for ours, ref in zip(estimates, reference_estimates)
        )

    @pytest.mark.parametrize("batch_size", [1, 7])
    def test_coordinator_claim_size_is_result_free(
        self, batch_size, reference_estimates
    ):
        backend = DistributedBackend(
            cluster=LocalCluster(2),
            batch_size=batch_size,
            adaptive_batching=False,
        )
        try:
            estimates = BatchRunner(backend=backend, chunk_size=CHUNK).run_cells(
                _mixed_jobs()
            )
        finally:
            backend.close()
        assert all(
            ours.same_values(ref)
            for ours, ref in zip(estimates, reference_estimates)
        )

    def test_grouping_never_mixes_kinds(self):
        """A dispatch group holds one job kind only, however large the
        EWMA would let it grow."""
        from collections import deque

        from repro.sim.backends import DispatchStats, dispatch_kind, plan_blocks

        backend = ProcessBackend(2, adaptive_batching=True)
        # Pretend static blocks are very cheap: batch size maxes out.
        backend.dispatch_stats.observe("StaticCellJob", 1e-6)
        backend.dispatch_stats.observe("CellJob", 1e-6)
        tasks = plan_blocks(_mixed_jobs(), CHUNK)
        pending = deque(range(len(tasks)))
        while pending:
            group, kind = backend._next_group(tasks, pending)
            assert group  # progress
            assert {dispatch_kind(tasks[i]) for i in group} == {kind}
        backend.close()


class TestDispatchStats:
    def test_batch_size_tracks_latency(self):
        from repro.sim.backends import DispatchStats

        stats = DispatchStats(target_seconds=0.1, max_batch=16)
        assert stats.batch_size("x") == 1  # no data yet
        stats.observe("x", 0.01)
        assert stats.batch_size("x") == 10
        stats.observe("y", 10.0)
        assert stats.batch_size("y") == 1  # expensive blocks go alone
        stats.observe("z", 1e-9)
        assert stats.batch_size("z") == 16  # clamped at max_batch

    def test_ewma_converges(self):
        from repro.sim.backends import DispatchStats

        stats = DispatchStats(alpha=0.5)
        for _ in range(20):
            stats.observe("k", 0.02)
        assert stats.block_latency("k") == pytest.approx(0.02)

    def test_rejects_bad_parameters(self):
        from repro.errors import ParameterError
        from repro.sim.backends import DispatchStats

        with pytest.raises(ParameterError):
            DispatchStats(target_seconds=0.0)
        with pytest.raises(ParameterError):
            DispatchStats(alpha=0.0)
        with pytest.raises(ParameterError):
            DispatchStats(max_batch=0)
