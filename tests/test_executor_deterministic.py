"""Exact executor semantics, pinned with scripted fault times.

Every test here computes the full timeline by hand; any drift in
detection, rollback, overhead placement or energy accounting fails
loudly.  Cost model throughout: t_s=2, t_cp=20 (CSCP = 22 cycles),
t_r=0; paper energy model (4·cycles at f1, 8·cycles at f2).
"""

import pytest

from repro.core.checkpoints import CheckpointKind, CostModel
from repro.errors import ParameterError
from repro.sim.executor import SimulationLimits, simulate_run
from repro.sim.faults import PoissonFaults, ScriptedFaults
from repro.sim.task import TaskSpec
from repro.sim.trace import Trace

from tests.conftest import make_fixed_policy


def make_task(cycles=100.0, deadline=10_000.0, costs=None, **kw):
    return TaskSpec(
        cycles=cycles,
        deadline=deadline,
        fault_budget=kw.pop("fault_budget", 5),
        fault_rate=kw.pop("fault_rate", 1e-3),
        costs=costs or CostModel.scp_favourable(),
    )


class TestFaultFreeRuns:
    def test_single_interval_timing_and_energy(self):
        task = make_task(cycles=100.0)
        policy = make_fixed_policy(interval_time=100.0)
        result = simulate_run(task, policy, ScriptedFaults([]))
        # 100 exec + 22 CSCP = 122 cycles = 122 time units at f1.
        assert result.completed and result.timely
        assert result.finish_time == pytest.approx(122.0)
        assert result.energy == pytest.approx(4 * 122.0)
        assert result.checkpoints == 1
        assert result.detected_faults == 0

    def test_multiple_intervals(self):
        task = make_task(cycles=100.0)
        policy = make_fixed_policy(interval_time=50.0)
        result = simulate_run(task, policy, ScriptedFaults([]))
        # Two intervals of (50 + 22).
        assert result.finish_time == pytest.approx(144.0)
        assert result.checkpoints == 2

    def test_tail_interval_shorter(self):
        task = make_task(cycles=100.0)
        policy = make_fixed_policy(interval_time=40.0)
        result = simulate_run(task, policy, ScriptedFaults([]))
        # (40+22) + (40+22) + (20+22) = 166.
        assert result.finish_time == pytest.approx(166.0)
        assert result.checkpoints == 3

    def test_scp_subdivision_overhead(self):
        task = make_task(cycles=100.0)
        policy = make_fixed_policy(
            interval_time=100.0, m=4, sub_kind=CheckpointKind.SCP
        )
        result = simulate_run(task, policy, ScriptedFaults([]))
        # 100 exec + 3 interior stores (2 each) + CSCP 22.
        assert result.finish_time == pytest.approx(128.0)
        assert result.sub_checkpoints == 3
        assert result.checkpoints == 1

    def test_ccp_subdivision_overhead(self):
        task = make_task(cycles=100.0)
        policy = make_fixed_policy(
            interval_time=100.0, m=4, sub_kind=CheckpointKind.CCP
        )
        result = simulate_run(task, policy, ScriptedFaults([]))
        # 100 exec + 3 interior compares (20 each) + CSCP 22.
        assert result.finish_time == pytest.approx(182.0)
        assert result.sub_checkpoints == 3

    def test_high_speed_halves_time_doubles_energy_rate(self):
        task = make_task(cycles=100.0)
        policy = make_fixed_policy(interval_time=100.0, frequency=2.0)
        result = simulate_run(task, policy, ScriptedFaults([]))
        # 122 cycles at f2 → 61 time units, energy 8·122.
        assert result.finish_time == pytest.approx(61.0)
        assert result.energy == pytest.approx(8 * 122.0)
        assert result.cycles_by_frequency == {2.0: pytest.approx(122.0)}


class TestCscpRollback:
    def test_fault_detected_at_interval_end_rolls_back_whole_interval(self):
        task = make_task(cycles=100.0)
        policy = make_fixed_policy(interval_time=50.0)
        result = simulate_run(task, policy, ScriptedFaults([30.0]))
        # Interval 1 (fails): 50 exec + 22 CSCP = 72.
        # Intervals 2,3 succeed: 2·72 = 144.  Total 216.
        assert result.finish_time == pytest.approx(216.0)
        assert result.detected_faults == 1
        assert result.rollbacks == 1
        assert result.checkpoints == 3
        assert result.completed and result.timely

    def test_two_faults_two_retries(self):
        task = make_task(cycles=100.0)
        policy = make_fixed_policy(interval_time=50.0)
        # Second fault lands in the retry of interval 1 (72..122 exec window).
        result = simulate_run(task, policy, ScriptedFaults([30.0, 100.0]))
        # Attempts: 72 (fail), 72 (fail), 72 (ok), 72 (ok) = 288.
        assert result.finish_time == pytest.approx(288.0)
        assert result.detected_faults == 2

    def test_fault_during_overhead_ignored_by_default(self):
        task = make_task(cycles=100.0)
        policy = make_fixed_policy(interval_time=50.0)
        # 55.0 falls inside the first CSCP window (50, 72].
        result = simulate_run(task, policy, ScriptedFaults([55.0]))
        assert result.detected_faults == 0
        assert result.finish_time == pytest.approx(144.0)
        assert result.injected_faults == 1  # consumed but harmless

    def test_fault_during_overhead_corrupts_when_enabled(self):
        task = make_task(cycles=100.0)
        policy = make_fixed_policy(interval_time=50.0)
        result = simulate_run(
            task, policy, ScriptedFaults([55.0]), faults_during_overhead=True
        )
        # Detected at the same CSCP that contains it: interval 1 repeats.
        assert result.detected_faults == 1
        assert result.finish_time == pytest.approx(216.0)

    def test_rollback_cost_charged(self):
        costs = CostModel(store_cycles=2, compare_cycles=20, rollback_cycles=10)
        task = make_task(cycles=100.0, costs=costs)
        policy = make_fixed_policy(interval_time=50.0)
        result = simulate_run(task, policy, ScriptedFaults([30.0]))
        assert result.finish_time == pytest.approx(216.0 + 10.0)

    def test_policy_notified_of_fault(self):
        task = make_task(cycles=100.0)
        policy = make_fixed_policy(interval_time=50.0)
        simulate_run(task, policy, ScriptedFaults([30.0]))
        assert policy.fault_notifications == 1


class TestScpRollback:
    def test_rolls_back_to_last_clean_store(self):
        task = make_task(cycles=100.0)
        policy = make_fixed_policy(
            interval_time=100.0, m=4, sub_kind=CheckpointKind.SCP
        )
        # Timeline: exec(0,25) s(25,27) exec(27,52) s(52,54) exec(54,79)
        # s(79,81) exec(81,106) CSCP(106,128).  Fault at 60 → sub 3.
        result = simulate_run(task, policy, ScriptedFaults([60.0]))
        # Clean boundary = 2 → 50 cycles commit; 50 remain.
        # Retry interval: min(100, 50)=50 with m=4: 50 exec + 3·2 + 22 = 78.
        assert result.finish_time == pytest.approx(128.0 + 78.0)
        assert result.detected_faults == 1
        assert result.completed

    def test_fault_in_first_subinterval_commits_nothing(self):
        task = make_task(cycles=100.0)
        policy = make_fixed_policy(
            interval_time=100.0, m=4, sub_kind=CheckpointKind.SCP
        )
        result = simulate_run(task, policy, ScriptedFaults([10.0]))
        # Nothing committed: full interval repeats (128 + 128).
        assert result.finish_time == pytest.approx(256.0)

    def test_fault_in_last_subinterval_commits_three_quarters(self):
        task = make_task(cycles=100.0)
        policy = make_fixed_policy(
            interval_time=100.0, m=4, sub_kind=CheckpointKind.SCP
        )
        result = simulate_run(task, policy, ScriptedFaults([90.0]))
        # Clean boundary 3 → 75 committed; retry 25 cycles with m=4
        # (clamped sub-lengths 6.25): 25 + 3·2 + 22 = 53.
        assert result.finish_time == pytest.approx(128.0 + 53.0)

    def test_detection_waits_for_cscp(self):
        # Unlike CCP, an SCP boundary does not detect: time runs to the
        # interval end even though the fault happened early.
        task = make_task(cycles=100.0)
        policy = make_fixed_policy(
            interval_time=100.0, m=4, sub_kind=CheckpointKind.SCP
        )
        trace = Trace()
        simulate_run(task, policy, ScriptedFaults([10.0]), recorder=trace)
        assert trace.rollbacks[0].time == pytest.approx(128.0)


class TestCcpRollback:
    def test_early_detection_at_next_compare(self):
        task = make_task(cycles=100.0)
        policy = make_fixed_policy(
            interval_time=100.0, m=4, sub_kind=CheckpointKind.CCP
        )
        # Timeline: exec(0,25) c(25,45) exec(45,70) c(70,90) ...
        # Fault at 60 → detected at the compare ending 90.
        trace = Trace()
        result = simulate_run(
            task, policy, ScriptedFaults([60.0]), recorder=trace
        )
        assert trace.rollbacks[0].time == pytest.approx(90.0)
        # Nothing committed; retry the full interval:
        # 90 + (100 + 3·20 + 22) = 272.
        assert result.finish_time == pytest.approx(272.0)
        assert result.detected_faults == 1

    def test_fault_after_last_ccp_detected_at_cscp(self):
        task = make_task(cycles=100.0)
        policy = make_fixed_policy(
            interval_time=100.0, m=4, sub_kind=CheckpointKind.CCP
        )
        # Last sub-interval is (135, 160) in the fault-free timeline:
        # exec(0,25) c(25,45) exec(45,70) c(70,90) exec(90,115) c(115,135)
        # exec(135,160) CSCP(160,182).
        trace = Trace()
        result = simulate_run(
            task, policy, ScriptedFaults([150.0]), recorder=trace
        )
        assert trace.rollbacks[0].time == pytest.approx(182.0)
        assert result.finish_time == pytest.approx(182.0 + 182.0)

    def test_ccp_commits_nothing_on_any_fault(self):
        task = make_task(cycles=100.0)
        policy = make_fixed_policy(
            interval_time=100.0, m=4, sub_kind=CheckpointKind.CCP
        )
        result = simulate_run(task, policy, ScriptedFaults([10.0]))
        # Detected at first compare (ends 45); retry full interval (182).
        assert result.finish_time == pytest.approx(45.0 + 182.0)


class TestDeadlineHandling:
    def test_timely_false_when_finishing_late(self):
        task = make_task(cycles=100.0, deadline=130.0)
        policy = make_fixed_policy(interval_time=50.0)
        result = simulate_run(task, policy, ScriptedFaults([30.0]))
        # Completion at 216 > 130, but the infeasibility break fires
        # first: remaining work can't fit.
        assert not result.timely
        assert not result.completed
        assert result.failure_reason == "deadline_infeasible"

    def test_completion_exactly_at_deadline_is_timely(self):
        task = make_task(cycles=100.0, deadline=122.0)
        policy = make_fixed_policy(interval_time=100.0)
        result = simulate_run(task, policy, ScriptedFaults([]))
        assert result.timely

    def test_infeasible_task_fails_immediately(self):
        task = make_task(cycles=200.0, deadline=100.0)
        policy = make_fixed_policy(interval_time=50.0)
        result = simulate_run(task, policy, ScriptedFaults([]))
        assert not result.completed
        assert result.finish_time == 0.0

    def test_fast_policy_rescues_tight_deadline(self):
        task = make_task(cycles=200.0, deadline=150.0)
        policy = make_fixed_policy(interval_time=100.0, frequency=2.0)
        result = simulate_run(task, policy, ScriptedFaults([]))
        # 222 cycles at f2 = 111 ≤ 150.
        assert result.timely


class TestSafetyLimits:
    def test_max_intervals_guard(self):
        task = make_task(cycles=1e6, deadline=1e12, fault_rate=0.0)
        policy = make_fixed_policy(interval_time=1.0)
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            simulate_run(
                task,
                policy,
                ScriptedFaults([]),
                limits=SimulationLimits(max_intervals=10),
            )

    def test_horizon_guard_breaks_runaway_runs(self):
        # Brutal fault rate: the task never converges; the horizon
        # (here below the generous deadline) stops it.
        task = make_task(cycles=100.0, deadline=1e5, fault_rate=1.0)
        policy = make_fixed_policy(interval_time=100.0)
        result = simulate_run(
            task,
            policy,
            PoissonFaults(1.0),
            rng=__import__("numpy").random.default_rng(0),
            limits=SimulationLimits(horizon_factor=0.5),
        )
        assert not result.completed
        assert result.failure_reason == "horizon"


class TestAccountingInvariants:
    def test_energy_equals_cycles_times_rate_single_speed(self):
        task = make_task(cycles=100.0)
        policy = make_fixed_policy(interval_time=30.0)
        result = simulate_run(task, policy, ScriptedFaults([40.0, 90.0]))
        assert result.energy == pytest.approx(4 * result.cycles_executed)

    def test_injected_faults_counts_all_arrivals(self):
        task = make_task(cycles=100.0)
        policy = make_fixed_policy(interval_time=50.0)
        result = simulate_run(
            task, policy, ScriptedFaults([30.0, 55.0, 100.0])
        )
        # 30 corrupts interval 1; 55 lands in its CSCP (ignored); 100
        # lands in the retry's execution (72..122) and corrupts it.
        assert result.injected_faults == 3
        assert result.detected_faults == 2

    def test_negative_interval_plan_rejected(self):
        with pytest.raises(ParameterError):
            make_fixed_policy(interval_time=-5.0)
