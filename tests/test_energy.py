"""Unit tests for the energy model and account."""

import pytest

from repro.core.dvs import SpeedLadder
from repro.errors import ParameterError
from repro.sim.energy import EnergyAccount, EnergyModel


class TestEnergyModel:
    def test_paper_dmr_calibration(self):
        # E = 2 proc · V² · cycles with V = sqrt(2f):
        # 4·cycles at f1, 8·cycles at f2 — the published table scale.
        model = EnergyModel.paper_dmr()
        assert model.segment_energy(1.0, 100.0) == pytest.approx(400.0)
        assert model.segment_energy(2.0, 100.0) == pytest.approx(800.0)

    def test_linear_voltage(self):
        model = EnergyModel.linear_voltage()
        assert model.segment_energy(1.0, 100.0) == pytest.approx(200.0)
        assert model.segment_energy(2.0, 100.0) == pytest.approx(800.0)

    def test_from_ladder_uses_ladder_voltages(self):
        ladder = SpeedLadder(frequencies=(1.0, 2.0), voltages=(1.0, 3.0))
        model = EnergyModel.from_ladder(ladder)
        assert model.segment_energy(2.0, 10.0) == pytest.approx(2 * 9 * 10)

    def test_single_processor(self):
        model = EnergyModel(voltage_of=lambda f: 1.0, n_processors=1)
        assert model.segment_energy(1.0, 50.0) == pytest.approx(50.0)

    def test_rejects_negative_cycles(self):
        with pytest.raises(ParameterError):
            EnergyModel.paper_dmr().segment_energy(1.0, -1.0)

    def test_rejects_zero_processors(self):
        with pytest.raises(ParameterError):
            EnergyModel(voltage_of=lambda f: 1.0, n_processors=0)


class TestEnergyAccount:
    def test_accumulates_by_frequency(self):
        account = EnergyAccount(EnergyModel.paper_dmr())
        account.charge(1.0, 100.0)
        account.charge(2.0, 50.0)
        account.charge(1.0, 25.0)
        assert account.total == pytest.approx(4 * 125 + 8 * 50)
        assert account.cycles_by_frequency == {1.0: 125.0, 2.0: 50.0}
        assert account.total_cycles == pytest.approx(175.0)

    def test_charge_returns_segment_energy(self):
        account = EnergyAccount(EnergyModel.paper_dmr())
        assert account.charge(2.0, 10.0) == pytest.approx(80.0)
