"""The declarative façade: Session/StudySpec/Study vs the direct calls.

The acceptance bar for ``repro.api``: every legacy experiment
entrypoint is expressible as a :class:`~repro.api.StudySpec`, the
façade's estimates are *bit-identical* to the direct call's
(``CellEstimate.same_values``), and resume-from-partial reuses records
verbatim while recomputing only what is missing.
"""

import warnings

import pytest

from repro.api import ResultSet, Session, Study, StudySpec
from repro.errors import ConfigurationError
from repro.experiments.config import ExecutionSettings, table_spec
from repro.experiments.sensitivity import operating_map
from repro.experiments.sweeps import (
    fixed_m_study,
    rate_factor_study,
    utilization_sweep,
)
from repro.experiments.tables import run_row, run_table
from repro.sim.montecarlo import estimate
from repro.sim.parallel import BatchRunner, runner_scope
from repro.sim.rng import RandomSource

REPS = 12


def _axes(plan):
    return dict(plan.axes)


class TestTableConformance:
    def test_table_study_matches_run_table(self):
        direct = run_table("1b", reps=REPS, seed=11, fast_static=True)
        study = Study(
            StudySpec(
                kind="table", table="1b", reps=REPS, seed=11, fast_static=True
            )
        )
        results = study.run()
        for plan in study.cells():
            axes = _axes(plan)
            expected = direct.row(axes["u"], axes["lam"]).cell(axes["scheme"])
            assert results.estimate(plan.key).same_values(expected.measured)

    def test_row_study_matches_run_row(self):
        spec = table_spec("1a")
        u, lam = spec.rows[0]
        direct = run_row(
            spec, u, lam, reps=REPS, source=RandomSource(5), fast_static=True
        )
        study = Study(
            StudySpec(
                kind="row", table="1a", u=u, lam=lam, reps=REPS, seed=5,
                fast_static=True,
            )
        )
        results = study.run()
        for plan in study.cells():
            scheme = _axes(plan)["scheme"]
            assert results.estimate(plan.key).same_values(
                direct.cell(scheme).measured
            )

    def test_custom_table_spec_flows_through_study(self):
        from dataclasses import replace

        custom = replace(table_spec("1a"), rows=table_spec("1a").rows[:1])
        direct = run_table(custom, reps=REPS, seed=3, fast_static=True)
        study = Study(
            StudySpec(
                kind="table", table=custom.table_id, reps=REPS, seed=3,
                fast_static=True,
            ),
            table=custom,
        )
        results = study.run()
        assert len(results) == len(custom.schemes)
        for plan in study.cells():
            axes = _axes(plan)
            expected = direct.row(axes["u"], axes["lam"]).cell(axes["scheme"])
            assert results.estimate(plan.key).same_values(expected.measured)
        # No declarative form: the spec payload is absent, the hash is
        # salted so resume against a different table is rejected.
        assert results.spec is None
        assert "+" in results.spec_hash


class TestStudyConformance:
    def test_fixed_m_matches_direct(self):
        spec = table_spec("1a")
        task = spec.task(*spec.rows[0])
        direct = fixed_m_study(task, ms=[1, 2], reps=REPS, seed=9)
        results = Study(
            StudySpec(kind="fixed_m", table="1a", ms=(1, 2), reps=REPS, seed=9)
        ).run()
        for key, expected in (("m=1", direct["m=1"]),
                              ("m=2", direct["m=2"]),
                              ("adaptive", direct["adaptive"])):
            assert results.estimate(key).same_values(expected)

    def test_rate_factor_matches_direct(self):
        spec = table_spec("1a")
        task = spec.task(*spec.rows[0])
        direct = rate_factor_study(task, factors=(1.0, 2.0), reps=REPS, seed=2)
        results = Study(
            StudySpec(kind="rate_factor", table="1a", factors=(1.0, 2.0),
                      reps=REPS, seed=2)
        ).run()
        for factor, expected in direct.items():
            assert results.estimate(f"factor={factor!r}").same_values(expected)

    def test_utilization_matches_direct(self):
        spec = table_spec("1a")
        u_grid = (0.6, 0.8)
        direct = utilization_sweep(
            spec, u_grid, 1.4e-3, reps=REPS, seed=4, fast_static=True
        )
        study = Study(
            StudySpec(kind="utilization", table="1a", u_grid=u_grid,
                      lam=1.4e-3, reps=REPS, seed=4, fast_static=True)
        )
        results = study.run()
        for plan in study.cells():
            axes = _axes(plan)
            expected = dict(direct[axes["scheme"]])[axes["u"]]
            assert results.estimate(plan.key).same_values(expected)

    def test_operating_map_matches_direct(self):
        spec = table_spec("1a")
        u_grid, lam_grid = (0.6, 0.8), (1e-4, 1.4e-3)
        direct = operating_map(
            spec, u_grid, lam_grid, reps=REPS, seed=6, fast_static=True
        )
        study = Study(
            StudySpec(kind="operating_map", table="1a", u_grid=u_grid,
                      lam_grid=lam_grid, reps=REPS, seed=6, fast_static=True)
        )
        results = study.run()
        lookup = {(p.u, p.lam): p for p in direct}
        for plan in study.cells():
            axes = _axes(plan)
            expected = lookup[(axes["u"], axes["lam"])].cell(axes["scheme"])
            assert results.estimate(plan.key).same_values(expected)


class TestResume:
    def test_resume_reuses_records_verbatim_and_completes(self):
        study = Study(
            StudySpec(kind="fixed_m", table="1a", ms=(1, 2), reps=REPS, seed=1)
        )
        fresh = study.run()
        kept = fresh.records[:2]
        partial = ResultSet(fresh.spec_hash, kept, spec=fresh.spec)
        resumed = study.run(resume=partial)
        assert resumed.same_values(fresh)
        assert resumed.keys() == fresh.keys()
        # Reused records are the partial set's objects, untouched — the
        # proof nothing already present was recomputed.
        for record in kept:
            assert resumed.record(record.key) is record

    def test_resume_against_other_study_rejected(self):
        study_a = Study(StudySpec(kind="fixed_m", table="1a", ms=(1,),
                                  reps=REPS, seed=1))
        study_b = Study(StudySpec(kind="fixed_m", table="1a", ms=(1,),
                                  reps=REPS, seed=2))
        partial = study_a.run()
        with pytest.raises(ConfigurationError):
            study_b.run(resume=partial)

    def test_missing_lists_only_uncovered_cells(self):
        study = Study(StudySpec(kind="fixed_m", table="1a", ms=(1, 2),
                                reps=REPS, seed=1))
        fresh = study.run()
        partial = ResultSet(fresh.spec_hash, fresh.records[1:],
                            spec=fresh.spec)
        missing = study.missing(partial)
        assert [plan.key for plan in missing] == [fresh.records[0].key]


class TestSession:
    def test_owned_session_closes_its_runner(self):
        with Session(chunk_size=16) as session:
            assert session.block_size == 16
            assert session.backend_name == "serial"
        assert session.closed
        with pytest.raises(ConfigurationError):
            session.run_cells([])

    def test_borrowed_runner_left_open(self):
        runner = BatchRunner.serial(chunk_size=8)
        session = Session(runner=runner)
        session.close()
        # Still usable: the session never owned it.
        assert runner.run_cells([]) == []

    def test_runner_and_settings_are_exclusive(self):
        with pytest.raises(ConfigurationError):
            Session(ExecutionSettings(), runner=BatchRunner.serial())
        with pytest.raises(ConfigurationError):
            Session(ExecutionSettings(), backend="process")

    def test_session_estimate_matches_module_estimate(self):
        from repro.core.schemes import AdaptiveSCPPolicy

        task = table_spec("1a").task(0.76, 1.4e-3)
        direct = estimate(task, AdaptiveSCPPolicy, reps=REPS, seed=13)
        with Session() as session:
            ours = session.estimate(task, AdaptiveSCPPolicy, reps=REPS, seed=13)
        assert ours.same_values(direct)

    def test_session_reused_across_studies(self):
        with Session() as session:
            a = session.run(StudySpec(kind="fixed_m", table="1a", ms=(1,),
                                      reps=REPS, seed=1))
            b = session.run(StudySpec(kind="rate_factor", table="1a",
                                      factors=(1.0,), reps=REPS, seed=1))
        assert len(a) == 2 and len(b) == 1

    def test_describe_names_backend_and_block_size(self):
        with Session(chunk_size=64) as session:
            assert session.describe() == "serial/64"


class TestStudySpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            StudySpec(kind="nope")

    def test_row_needs_point(self):
        with pytest.raises(ConfigurationError):
            StudySpec(kind="row", table="1a", u=0.8)

    def test_utilization_needs_grid_and_lam(self):
        with pytest.raises(ConfigurationError):
            StudySpec(kind="utilization", table="1a", lam=1e-3)
        with pytest.raises(ConfigurationError):
            StudySpec(kind="utilization", table="1a", u_grid=(0.8,))

    def test_operating_map_needs_both_grids(self):
        with pytest.raises(ConfigurationError):
            StudySpec(kind="operating_map", table="1a", u_grid=(0.8,))

    def test_fast_static_rejected_for_adaptive_only_kinds(self):
        with pytest.raises(ConfigurationError):
            StudySpec(kind="fixed_m", table="1a", fast_static=True)

    def test_stray_axis_fields_rejected(self):
        # A silently-ignored axis would still perturb spec_hash and
        # break resume between semantically identical specs.
        with pytest.raises(ConfigurationError, match="do not apply"):
            StudySpec(kind="table", table="1a", u=0.5)
        with pytest.raises(ConfigurationError, match="do not apply"):
            StudySpec(kind="utilization", table="1a", u_grid=(0.8,),
                      lam=1e-3, ms=(1, 2))
        with pytest.raises(ConfigurationError, match="do not apply"):
            StudySpec(kind="operating_map", table="1a", u_grid=(0.8,),
                      lam_grid=(1e-4,), u=0.8)

    def test_unknown_json_field_rejected(self):
        with pytest.raises(ConfigurationError):
            StudySpec.from_json('{"kind": "table", "tabel": "1a"}')

    @pytest.mark.parametrize(
        "payload",
        [
            {"kind": "utilization", "table": "1a", "u_grid": 5, "lam": 1e-4},
            {"kind": "table", "table": "1a", "reps": "lots"},
            {"kind": "table", "table": "1a", "seed": 1.5},
            {"kind": "fixed_m", "table": "1a", "ms": [1.5]},
            {"kind": "table", "table": "1a", "fast_static": "yes"},
            {"kind": "table", "table": 1},
        ],
    )
    def test_malformed_field_types_fail_cleanly(self, payload):
        # A raw TypeError would escape the CLI's ReproError handler;
        # a truncated seed (1.5 -> 1) would compute seed-1 estimates
        # under a different spec hash.  Both must be clean rejections.
        with pytest.raises(ConfigurationError):
            StudySpec.from_dict(payload)

    def test_duplicate_grid_values_rejected_up_front(self):
        # Duplicates would collide on cell keys only *after* the whole
        # study had been computed.
        with pytest.raises(ConfigurationError, match="duplicate"):
            StudySpec(kind="fixed_m", table="1a", ms=(2, 2))
        with pytest.raises(ConfigurationError, match="duplicate"):
            StudySpec(kind="utilization", table="1a", u_grid=(0.8, 0.8),
                      lam=1e-3)

    def test_numeric_spellings_hash_identically(self):
        a = StudySpec(kind="fixed_m", table="1a", ms=(1, 2),
                      factors=(), u=1, lam=1e-3)
        b = StudySpec(kind="fixed_m", table="1a", ms=(1, 2),
                      factors=(), u=1.0, lam=1e-3)
        assert a.spec_hash == b.spec_hash

    def test_cells_are_cached_per_study(self):
        study = Study(StudySpec(kind="fixed_m", table="1a", ms=(1,),
                                reps=REPS, seed=1))
        first, second = study.cells(), study.cells()
        assert first is not second  # callers get their own list
        assert [a.key for a in first] == [b.key for b in second]
        assert all(a is b for a, b in zip(first, second))  # shared plans

    def test_defaults_resolve_to_legacy_entrypoint_defaults(self):
        resolved = StudySpec(kind="table").resolved()
        assert (resolved.reps, resolved.seed) == (2000, 2006)
        resolved = StudySpec(kind="operating_map", u_grid=(0.8,),
                             lam_grid=(1e-4,)).resolved()
        assert (resolved.reps, resolved.seed) == (300, 0)
        resolved = StudySpec(kind="fixed_m").resolved()
        assert resolved.ms == (1, 2, 4, 8, 16)
        assert (resolved.u, resolved.lam) == table_spec("1a").rows[0]

    def test_hash_stable_across_default_spelling(self):
        minimal = StudySpec(kind="table", table="2a")
        explicit = StudySpec(kind="table", table="2a", reps=2000, seed=2006)
        assert minimal.spec_hash == explicit.spec_hash
        assert minimal.spec_hash != StudySpec(kind="table", table="2b").spec_hash

    def test_json_round_trip(self):
        spec = StudySpec(kind="operating_map", table="3a", reps=40, seed=7,
                         u_grid=(0.6, 0.8), lam_grid=(1e-4,), fast_static=True)
        again = StudySpec.from_json(spec.to_json())
        assert again.resolved() == spec.resolved()
        assert again.spec_hash == spec.spec_hash


class TestDeprecatedScatteredKwargs:
    """The scattered per-call execution kwargs warn and keep working."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 1},
            {"chunk_size": 64},
            {"workers": 1, "chunk_size": 32},
        ],
    )
    def test_runner_scope_kwargs_warn(self, kwargs):
        with pytest.warns(DeprecationWarning, match="ExecutionSettings"):
            with runner_scope(None, **kwargs) as scoped:
                assert scoped.run_cells([]) == []

    def test_runner_and_backend_paths_stay_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with runner_scope(BatchRunner.serial()) as scoped:
                assert scoped.run_cells([]) == []
            with runner_scope(None, backend="serial") as scoped:
                assert scoped.run_cells([]) == []

    def test_execution_settings_is_the_replacement(self):
        settings = ExecutionSettings(chunk_size=64)
        with Session(settings) as session:
            assert session.block_size == 64
