"""Golden-trace record/replay: round-trip, drift localisation, CLI.

The contract under test (ISSUE 6 / ROADMAP "Golden-trace replay and
drift detection"):

* ``write → read`` round-trips every event type bit-exactly, including
  NaN/inf payload floats (property-tested);
* replaying a freshly recorded golden on the same tree is clean for
  every curated scenario;
* a perturbed executor is caught with a report naming the *first*
  diverging event's index, kind and expected/actual values — never a
  bare pass/fail bit;
* truncated / corrupted / wrong-format golden files raise
  ``ConfigurationError`` (CLI exit 2), not tracebacks.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core.checkpoints import CheckpointKind
from repro.errors import ConfigurationError
from repro.goldens import (
    GOLDEN_SCENARIOS,
    GoldenScenario,
    JsonlTraceWriter,
    RecordingRecorder,
    TraceEvent,
    TraceHeader,
    read_golden,
    record_golden,
    record_matrix,
    replay,
    replay_paths,
    scenario,
    scenario_names,
)
from repro.goldens.events import payload_diff, same_scalar
from repro.sim.energy import EnergyModel
from repro.sim.trace import NULL_RECORDER, TeeRecorder, Trace

import repro.sim.executor as executor_mod


# ---------------------------------------------------------------------------
# helpers


def _record_one(tmp_path, name="adaptive-scp-poisson"):
    return record_golden(scenario(name), str(tmp_path))


def _rewrite(path, lines):
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")


def _lines(path):
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read().splitlines()


# ---------------------------------------------------------------------------
# event model


class TestEventEquality:
    def test_nan_equals_nan(self):
        assert same_scalar(float("nan"), float("nan"))

    def test_signed_zero_differs(self):
        assert not same_scalar(0.0, -0.0)

    def test_int_is_not_float(self):
        # An int smuggled where a float belongs is a codec bug, not a
        # match.
        assert not same_scalar(1, 1.0)

    def test_payload_diff_reports_absent_fields(self):
        diffs = payload_diff({"a": 1.0}, {"b": 2.0})
        assert ("a", 1.0, "<absent>") in diffs
        assert ("b", "<absent>", 2.0) in diffs

    def test_event_same_values(self):
        a = TraceEvent("fault", {"time": 1.5, "corrupting": True})
        b = TraceEvent("fault", {"time": 1.5, "corrupting": True})
        c = TraceEvent("fault", {"time": 1.5, "corrupting": False})
        assert a.same_values(b)
        assert not a.same_values(c)
        assert not a.same_values(TraceEvent("speed", dict(a.payload)))


class TestTeeRecorder:
    def test_fans_out_in_order(self):
        first, second = RecordingRecorder(), RecordingRecorder()
        tee = TeeRecorder(first, second)
        tee.speed(0.0, 2.0)
        tee.fault(1.0, corrupting=True)
        assert [e.kind for e in first.events] == ["speed", "fault"]
        assert [e.kind for e in second.events] == ["speed", "fault"]

    def test_null_children_are_dropped(self):
        tee = TeeRecorder(NULL_RECORDER, NULL_RECORDER)
        assert tee._children == ()

    def test_raising_child_aborts_fan_out(self):
        class Boom(Exception):
            pass

        class Raiser(RecordingRecorder):
            def speed(self, time, frequency):
                raise Boom()

        witness = RecordingRecorder()
        late = RecordingRecorder()
        tee = TeeRecorder(witness, Raiser(), late)
        with pytest.raises(Boom):
            tee.speed(0.0, 1.0)
        # Earlier children saw the event; later ones did not.
        assert [e.kind for e in witness.events] == ["speed"]
        assert late.events == []


# ---------------------------------------------------------------------------
# write → read round-trip (property)


_floats = st.floats(allow_nan=True, allow_infinity=True)

_events = st.one_of(
    st.builds(
        lambda f, s, e, c, label: TraceEvent(
            "segment",
            {"label": label, "frequency": f, "start": s, "end": e, "cycles": c},
        ),
        _floats, _floats, _floats, _floats,
        st.sampled_from(["exec", "scp", "ccp", "cscp", "rollback"]),
    ),
    st.builds(
        lambda t, k: TraceEvent("checkpoint", {"time": t, "checkpoint": k}),
        _floats, st.sampled_from(["scp", "ccp", "cscp"]),
    ),
    st.builds(
        lambda t, c: TraceEvent("fault", {"time": t, "corrupting": c}),
        _floats, st.booleans(),
    ),
    st.builds(
        lambda t, c: TraceEvent("rollback", {"time": t, "committed_cycles": c}),
        _floats, _floats,
    ),
    st.builds(
        lambda t, f: TraceEvent("speed", {"time": t, "frequency": f}),
        _floats, _floats,
    ),
    st.builds(
        lambda t, c, y: TraceEvent(
            "finish", {"time": t, "completed": c, "timely": y}
        ),
        _floats, st.booleans(), st.booleans(),
    ),
)


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(events=st.lists(_events, max_size=30), result_energy=_floats)
    def test_every_event_type_round_trips_bit_exactly(
        self, tmp_path_factory, events, result_energy
    ):
        path = str(tmp_path_factory.mktemp("golden") / "trace.jsonl")
        header = TraceHeader(
            scenario=GOLDEN_SCENARIOS[0].to_payload(), git="test-tree"
        )
        with JsonlTraceWriter(path, header) as writer:
            for event in events:
                _dispatch(writer, event)
            writer.result({"energy": result_energy, "completed": True})
        again_header, again_events = read_golden(path)
        assert again_header.git == "test-tree"
        assert len(again_events) == len(events) + 1
        for original, reloaded in zip(events, again_events):
            assert original.same_values(reloaded), (original, reloaded)
        result = again_events[-1]
        assert result.kind == "result"
        assert same_scalar(result.payload["energy"], result_energy)

    def test_writer_is_a_recorder(self, tmp_path):
        # Events written through the TraceRecorder interface match the
        # RecordingRecorder normalisation exactly.
        path = str(tmp_path / "t.jsonl")
        header = TraceHeader(scenario=GOLDEN_SCENARIOS[0].to_payload())
        reference = RecordingRecorder()
        with JsonlTraceWriter(path, header) as writer:
            for recorder in (writer, reference):
                recorder.speed(0.0, 2.0)
                recorder.segment("exec", 2.0, 0.0, 1.25, 2.5)
                recorder.checkpoint(1.25, CheckpointKind.CSCP)
                recorder.fault(0.5, corrupting=True)
                recorder.rollback(1.25, 0.0)
                recorder.finish(1.25, completed=False, timely=False)
        _header, events = read_golden(path)
        assert len(events) == len(reference.events)
        for written, normalised in zip(events, reference.events):
            assert written.same_values(normalised)

    def test_closed_writer_rejects_events(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        writer = JsonlTraceWriter(
            path, TraceHeader(scenario=GOLDEN_SCENARIOS[0].to_payload())
        )
        writer.close()
        writer.close()  # idempotent
        with pytest.raises(ConfigurationError):
            writer.speed(0.0, 1.0)


def _dispatch(recorder, event):
    """Feed one TraceEvent through the recorder callback interface."""
    payload = event.payload
    if event.kind == "segment":
        recorder.segment(
            payload["label"], payload["frequency"], payload["start"],
            payload["end"], payload["cycles"],
        )
    elif event.kind == "checkpoint":
        recorder.checkpoint(
            payload["time"], CheckpointKind(payload["checkpoint"])
        )
    elif event.kind == "fault":
        recorder.fault(payload["time"], corrupting=payload["corrupting"])
    elif event.kind == "rollback":
        recorder.rollback(payload["time"], payload["committed_cycles"])
    elif event.kind == "speed":
        recorder.speed(payload["time"], payload["frequency"])
    elif event.kind == "finish":
        recorder.finish(
            payload["time"],
            completed=payload["completed"],
            timely=payload["timely"],
        )
    else:  # pragma: no cover - strategy bug
        raise AssertionError(event.kind)


# ---------------------------------------------------------------------------
# scenarios


class TestScenarios:
    def test_every_scenario_payload_round_trips(self):
        for scen in GOLDEN_SCENARIOS:
            again = GoldenScenario.from_payload(scen.to_payload())
            assert again == scen

    def test_payload_survives_json(self):
        for scen in GOLDEN_SCENARIOS:
            again = GoldenScenario.from_payload(
                json.loads(json.dumps(scen.to_payload()))
            )
            assert again.task == scen.task
            assert again.faults == scen.faults

    def test_unknown_scenario_name(self):
        with pytest.raises(ConfigurationError, match="unknown golden scenario"):
            scenario("nope")

    def test_unknown_scheme_rejected(self):
        base = GOLDEN_SCENARIOS[0]
        with pytest.raises(ConfigurationError, match="unknown scheme"):
            GoldenScenario(
                name="x", scheme="B_A_D", task=base.task, faults=base.faults,
                seed=1,
            )

    def test_names_are_unique(self):
        names = scenario_names()
        assert len(names) == len(set(names)) == len(GOLDEN_SCENARIOS)


# ---------------------------------------------------------------------------
# replay: clean path


class TestReplayClean:
    def test_fresh_recording_replays_identically(self, tmp_path):
        paths = record_matrix(str(tmp_path))
        reports = replay_paths([str(tmp_path)])
        assert len(reports) == len(paths) == len(GOLDEN_SCENARIOS)
        for report in reports:
            assert report.ok, report.render()
            assert report.divergence is None
            assert report.fast_diffs is None
            assert "OK" in report.render()

    def test_committed_goldens_replay_identically(self):
        # The same check CI runs: the committed matrix against the
        # current tree.
        from repro.goldens import default_golden_dir

        reports = replay_paths([default_golden_dir()])
        drifted = [r.scenario_name for r in reports if not r.ok]
        assert not drifted, "\n\n".join(
            r.render() for r in reports if not r.ok
        )


# ---------------------------------------------------------------------------
# replay: drift localisation (the acceptance criterion)


class TestDriftLocalisation:
    def test_flipped_energy_coefficient_is_named(self, tmp_path, monkeypatch):
        """A perturbed energy coefficient yields a report naming the
        first diverging event's index, kind and expected/actual values."""
        path = _record_one(tmp_path)
        _header, events = read_golden(path)
        perturbed = EnergyModel(
            voltage_of=lambda f: ((2.0 * f) ** 0.5) * 1.0000001,
            n_processors=2,
        )
        monkeypatch.setattr(
            executor_mod, "default_energy_model", lambda: perturbed
        )
        report = replay(path)
        assert not report.ok
        d = report.divergence
        # Energy appears in no timeline event, so the inflection point
        # is the final result record — at a definite index.
        assert d is not None
        assert d.index == len(events) - 1
        assert d.kind == "result"
        diffs = dict(
            (field, (expected, actual))
            for field, expected, actual in d.field_diffs()
        )
        assert set(diffs) == {"energy"}
        expected, actual = diffs["energy"]
        assert expected != actual
        text = report.render()
        assert "DRIFT at event" in text
        assert "field energy" in text

    def test_timing_perturbation_pinpoints_first_segment(
        self, tmp_path, monkeypatch
    ):
        path = _record_one(tmp_path)
        original = executor_mod._effective_subdivisions
        monkeypatch.setattr(
            executor_mod,
            "_effective_subdivisions",
            lambda m, cycles: original(m + 1, cycles),
        )
        report = replay(path)
        assert not report.ok
        d = report.divergence
        assert d is not None
        assert d.reason == "mismatch"
        assert d.kind == "segment"
        # The very first execution segment already has the wrong span.
        assert d.index <= 2
        fields = {field for field, _e, _a in d.field_diffs()}
        assert "end" in fields or "cycles" in fields
        # The report carries context and a rendered timeline excerpt.
        assert report.context
        assert report.timeline is not None
        assert "[unfinished]" in report.timeline

    def test_fast_path_only_drift_is_reported(self, tmp_path, monkeypatch):
        """Traced loop clean, fused loop perturbed → FAST-PATH DRIFT."""
        path = _record_one(tmp_path)
        original = executor_mod._execute_fast

        def perturbed(*args, **kwargs):
            state, energy, failure = original(*args, **kwargs)
            return state, energy * 1.0000001, failure

        monkeypatch.setattr(executor_mod, "_execute_fast", perturbed)
        report = replay(path)
        assert report.divergence is None  # traced replay matched
        assert report.fast_diffs
        assert not report.ok
        assert [field for field, _e, _a in report.fast_diffs] == ["energy"]
        assert "FAST-PATH DRIFT" in report.render()

    def test_golden_with_extra_trailing_event(self, tmp_path):
        # Golden claims one more event than the run produces → the
        # report points at the first missing event, not a bare fail.
        path = _record_one(tmp_path)
        lines = _lines(path)
        sentinel = json.loads(lines[-1])
        # Duplicate the last checkpoint event before finish/result.
        duplicated = lines[-4]
        lines = lines[:-3] + [duplicated] + lines[-3:]
        sentinel["events"] += 1
        lines[-1] = json.dumps(sentinel)
        _rewrite(path, lines)
        report = replay(path)
        assert not report.ok
        assert report.divergence.reason in ("mismatch", "missing-event")

    def test_run_longer_than_golden(self, tmp_path):
        # Golden cut short (consistently: sentinel fixed up) → the
        # replay's surplus event is the inflection point.
        path = _record_one(tmp_path)
        lines = _lines(path)
        sentinel = json.loads(lines[-1])
        removed = 4
        lines = lines[: -(removed + 1)] + [lines[-1]]
        sentinel["events"] -= removed
        lines[-1] = json.dumps(sentinel)
        _rewrite(path, lines)
        report = replay(path)
        assert not report.ok
        assert report.divergence.reason == "extra-event"
        assert report.divergence.actual is not None


# ---------------------------------------------------------------------------
# malformed files → ConfigurationError (CLI exit 2)


class TestMalformedGoldens:
    def test_truncated_file(self, tmp_path):
        path = _record_one(tmp_path)
        lines = _lines(path)
        _rewrite(path, lines[:-1])  # drop the end sentinel
        with pytest.raises(ConfigurationError, match="truncated"):
            replay(path)

    def test_truncated_mid_line(self, tmp_path):
        path = _record_one(tmp_path)
        text = open(path, encoding="utf-8").read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text[: len(text) // 2])
        with pytest.raises(ConfigurationError):
            replay(path)

    def test_event_count_mismatch(self, tmp_path):
        path = _record_one(tmp_path)
        lines = _lines(path)
        del lines[5]  # remove an event, keep the sentinel count
        _rewrite(path, lines)
        with pytest.raises(ConfigurationError, match="corrupt"):
            replay(path)

    def test_invalid_json_line(self, tmp_path):
        path = _record_one(tmp_path)
        lines = _lines(path)
        lines[3] = '{"kind": "segment", not json'
        _rewrite(path, lines)
        with pytest.raises(ConfigurationError, match="line 4"):
            replay(path)

    def test_wrong_format_version(self, tmp_path):
        path = _record_one(tmp_path)
        lines = _lines(path)
        header = json.loads(lines[0])
        header["format"] = "repro.golden-trace/99"
        lines[0] = json.dumps(header)
        _rewrite(path, lines)
        with pytest.raises(ConfigurationError, match="unsupported"):
            replay(path)

    def test_missing_header(self, tmp_path):
        path = _record_one(tmp_path)
        lines = _lines(path)
        _rewrite(path, lines[1:])
        with pytest.raises(ConfigurationError, match="header"):
            replay(path)

    def test_unknown_event_kind(self, tmp_path):
        path = _record_one(tmp_path)
        lines = _lines(path)
        lines[3] = json.dumps({"kind": "quantum-leap", "time": 1.0})
        _rewrite(path, lines)
        with pytest.raises(ConfigurationError, match="unknown kind"):
            replay(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ConfigurationError, match="empty"):
            replay(str(path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            replay(str(tmp_path / "nope.jsonl"))

    def test_non_object_line(self, tmp_path):
        path = _record_one(tmp_path)
        lines = _lines(path)
        lines[3] = "[1, 2, 3]"
        _rewrite(path, lines)
        with pytest.raises(ConfigurationError, match="expected a JSON object"):
            replay(path)

    def test_result_mid_stream(self, tmp_path):
        path = _record_one(tmp_path)
        lines = _lines(path)
        result_line = lines[-2]
        lines.insert(3, result_line)
        sentinel = json.loads(lines[-1])
        sentinel["events"] += 1
        lines[-1] = json.dumps(sentinel)
        _rewrite(path, lines)
        with pytest.raises(ConfigurationError, match="result record"):
            replay(path)

    def test_malformed_scenario_payload(self, tmp_path):
        path = _record_one(tmp_path)
        lines = _lines(path)
        header = json.loads(lines[0])
        del header["scenario"]["task"]
        lines[0] = json.dumps(header)
        _rewrite(path, lines)
        with pytest.raises(ConfigurationError, match="malformed golden scenario"):
            replay(path)


# ---------------------------------------------------------------------------
# CLI verbs


class TestCli:
    def test_record_and_replay_round_trip(self, tmp_path, capsys):
        directory = str(tmp_path / "goldens")
        assert main(
            ["record-golden", "--dir", directory,
             "--scenario", "poisson-static-f1",
             "--scenario", "adaptive-scp-poisson"]
        ) == 0
        out = capsys.readouterr().out
        assert "recorded" in out
        assert main(["replay", directory]) == 0
        out = capsys.readouterr().out
        assert "replay identically" in out

    def test_replay_report_file(self, tmp_path):
        directory = str(tmp_path / "goldens")
        main(["record-golden", "--dir", directory,
              "--scenario", "kft-static-f2"])
        report_path = tmp_path / "drift.txt"
        assert main(
            ["replay", directory, "--report", str(report_path)]
        ) == 0
        assert "OK" in report_path.read_text()

    def test_replay_detects_drift_exit_1(self, tmp_path, monkeypatch, capsys):
        directory = str(tmp_path / "goldens")
        main(["record-golden", "--dir", directory,
              "--scenario", "adaptive-scp-poisson"])
        original = executor_mod._effective_subdivisions
        monkeypatch.setattr(
            executor_mod,
            "_effective_subdivisions",
            lambda m, cycles: original(m + 1, cycles),
        )
        report_path = tmp_path / "drift.txt"
        assert main(
            ["replay", directory, "--report", str(report_path)]
        ) == 1
        captured = capsys.readouterr()
        assert "DRIFT at event" in captured.out
        assert "drifted" in captured.err
        assert "DRIFT at event" in report_path.read_text()

    def test_replay_corrupt_file_exit_2(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json at all\n")
        assert main(["replay", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_replay_empty_directory_exit_2(self, tmp_path, capsys):
        assert main(["replay", str(tmp_path)]) == 2
        assert "no golden traces" in capsys.readouterr().err

    def test_list_scenarios(self, capsys):
        assert main(["record-golden", "--list"]) == 0
        out = capsys.readouterr().out.split()
        assert list(scenario_names()) == out
