"""Unit tests for the task model."""

import pytest

from repro.core.checkpoints import CostModel
from repro.errors import ParameterError
from repro.sim.task import TaskSpec


def make(costs=None, **overrides):
    params = dict(
        cycles=7600.0,
        deadline=10_000.0,
        fault_budget=5,
        fault_rate=1.4e-3,
        costs=costs or CostModel.scp_favourable(),
    )
    params.update(overrides)
    return TaskSpec(**params)


class TestTaskSpec:
    def test_utilization_at_reference_speeds(self):
        task = make()
        assert task.utilization(1.0) == pytest.approx(0.76)
        assert task.utilization(2.0) == pytest.approx(0.38)

    def test_from_utilization_round_trips_f1(self):
        task = TaskSpec.from_utilization(
            0.76,
            deadline=10_000,
            frequency=1.0,
            fault_budget=5,
            fault_rate=1.4e-3,
            costs=CostModel.scp_favourable(),
        )
        assert task.cycles == pytest.approx(7600.0)

    def test_from_utilization_round_trips_f2(self):
        # Tables 2/4 define U against f2: N = U·f2·D.
        task = TaskSpec.from_utilization(
            0.76,
            deadline=10_000,
            frequency=2.0,
            fault_budget=5,
            fault_rate=1.4e-3,
            costs=CostModel.scp_favourable(),
        )
        assert task.cycles == pytest.approx(15_200.0)

    def test_with_fault_rate(self):
        task = make().with_fault_rate(5e-4)
        assert task.fault_rate == 5e-4
        assert task.cycles == 7600.0

    def test_with_cycles(self):
        task = make().with_cycles(1234.0)
        assert task.cycles == 1234.0
        assert task.fault_rate == 1.4e-3

    @pytest.mark.parametrize(
        "field,value",
        [
            ("cycles", 0.0),
            ("cycles", -1.0),
            ("deadline", 0.0),
            ("fault_budget", -1),
            ("fault_rate", -0.1),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ParameterError):
            make(**{field: value})

    def test_utilization_requires_positive_frequency(self):
        with pytest.raises(ParameterError):
            make().utilization(0.0)

    def test_from_utilization_validation(self):
        with pytest.raises(ParameterError):
            TaskSpec.from_utilization(
                0.0,
                deadline=10_000,
                frequency=1.0,
                fault_budget=5,
                fault_rate=1e-3,
                costs=CostModel.scp_favourable(),
            )
