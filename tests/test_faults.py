"""Unit tests for the fault-arrival processes."""

import math

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.sim.faults import (
    BurstyFaults,
    DualPoissonFaults,
    PoissonFaults,
    ScriptedFaults,
    WeibullFaults,
)


def collect(stream, horizon):
    times = []
    while stream.peek() <= horizon:
        times.append(stream.pop())
    return times


class TestFaultStream:
    def test_peek_does_not_consume(self):
        stream = ScriptedFaults([5.0, 9.0]).stream()
        assert stream.peek() == 5.0
        assert stream.peek() == 5.0
        assert stream.pop() == 5.0
        assert stream.peek() == 9.0

    def test_exhausted_stream_reports_inf(self):
        stream = ScriptedFaults([1.0]).stream()
        stream.pop()
        assert stream.peek() == math.inf

    def test_advance_past(self):
        stream = ScriptedFaults([1.0, 2.0, 3.0, 10.0]).stream()
        assert stream.advance_past(3.0) == 3
        assert stream.peek() == 10.0


class TestPoissonFaults:
    def test_empirical_rate(self):
        process = PoissonFaults(rate=0.01)
        rng = np.random.default_rng(0)
        horizon = 100_000.0
        count = len(collect(process.stream(rng), horizon))
        # ~1000 expected, σ≈32 → 5σ window.
        assert abs(count - 1000) < 160

    def test_strictly_increasing(self):
        stream = PoissonFaults(rate=0.1).stream(np.random.default_rng(1))
        times = [stream.pop() for _ in range(200)]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_zero_rate_never_fires(self):
        stream = PoissonFaults(rate=0.0).stream(np.random.default_rng(2))
        assert stream.peek() == math.inf

    def test_mean_rate(self):
        assert PoissonFaults(rate=0.25).mean_rate == 0.25

    def test_rejects_negative_rate(self):
        with pytest.raises(ParameterError):
            PoissonFaults(rate=-1.0)

    def test_exponential_gap_distribution(self):
        # Mean inter-arrival should be 1/rate.
        stream = PoissonFaults(rate=0.05).stream(np.random.default_rng(3))
        times = [stream.pop() for _ in range(4000)]
        gaps = [b - a for a, b in zip([0.0] + times, times)]
        assert np.mean(gaps) == pytest.approx(20.0, rel=0.1)


class TestDualPoissonFaults:
    def test_merged_rate_is_doubled(self):
        process = DualPoissonFaults(rate_per_processor=0.005)
        assert process.mean_rate == pytest.approx(0.01)
        rng = np.random.default_rng(4)
        count = len(collect(process.stream(rng), 100_000.0))
        assert abs(count - 1000) < 160

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            DualPoissonFaults(rate_per_processor=-0.1)


class TestWeibullFaults:
    def test_shape_one_is_exponential(self):
        process = WeibullFaults(shape=1.0, scale=100.0)
        assert process.mean_rate == pytest.approx(0.01)
        rng = np.random.default_rng(5)
        count = len(collect(process.stream(rng), 100_000.0))
        assert abs(count - 1000) < 160

    def test_mean_rate_uses_gamma(self):
        process = WeibullFaults(shape=2.0, scale=100.0)
        expected = 1.0 / (100.0 * math.gamma(1.5))
        assert process.mean_rate == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ParameterError):
            WeibullFaults(shape=0.0, scale=1.0)
        with pytest.raises(ParameterError):
            WeibullFaults(shape=1.0, scale=0.0)


class TestBurstyFaults:
    def test_mean_rate_weighted_by_dwell(self):
        process = BurstyFaults(
            quiet_rate=0.001, burst_rate=0.1, quiet_dwell=900.0, burst_dwell=100.0
        )
        expected = (0.001 * 900 + 0.1 * 100) / 1000
        assert process.mean_rate == pytest.approx(expected)

    def test_empirical_rate_close_to_mean(self):
        process = BurstyFaults(
            quiet_rate=0.001, burst_rate=0.05, quiet_dwell=500.0, burst_dwell=100.0
        )
        rng = np.random.default_rng(6)
        horizon = 200_000.0
        count = len(collect(process.stream(rng), horizon))
        expected = process.mean_rate * horizon
        # MMPP counts are over-dispersed relative to Poisson; allow a
        # generous (but still diagnostic) 25% relative window.
        assert abs(count - expected) < 0.25 * expected

    def test_burstiness_visible(self):
        # Arrivals cluster: variance of per-window counts exceeds the
        # Poisson variance (index of dispersion > 1).
        process = BurstyFaults(
            quiet_rate=0.0005, burst_rate=0.1, quiet_dwell=2000.0, burst_dwell=200.0
        )
        rng = np.random.default_rng(7)
        stream = process.stream(rng)
        window = 500.0
        counts = []
        t = 0.0
        for _ in range(400):
            t += window
            counts.append(stream.advance_past(t))
        counts = np.array(counts)
        dispersion = counts.var() / max(counts.mean(), 1e-9)
        assert dispersion > 1.5

    def test_validation(self):
        with pytest.raises(ParameterError):
            BurstyFaults(quiet_rate=-1, burst_rate=1, quiet_dwell=1, burst_dwell=1)
        with pytest.raises(ParameterError):
            BurstyFaults(quiet_rate=1, burst_rate=1, quiet_dwell=0, burst_dwell=1)


class TestScriptedFaults:
    def test_replays_exact_times(self):
        stream = ScriptedFaults([1.5, 3.25, 10.0]).stream()
        assert [stream.pop() for _ in range(3)] == [1.5, 3.25, 10.0]
        assert stream.peek() == math.inf

    def test_requires_increasing(self):
        with pytest.raises(ParameterError):
            ScriptedFaults([2.0, 1.0])
        with pytest.raises(ParameterError):
            ScriptedFaults([1.0, 1.0])

    def test_requires_non_negative(self):
        with pytest.raises(ParameterError):
            ScriptedFaults([-1.0])

    def test_empty_script(self):
        stream = ScriptedFaults([]).stream()
        assert stream.peek() == math.inf
        assert ScriptedFaults([]).mean_rate == 0.0
