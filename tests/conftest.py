"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.checkpoints import CheckpointKind, CostModel
from repro.core.schemes import CheckpointPolicy, Plan
from repro.sim.task import TaskSpec


class FixedPlanPolicy(CheckpointPolicy):
    """Test scaffold: a policy with a pinned plan and frequency.

    Lets executor tests exercise exact rollback/timing semantics
    without involving the adaptive machinery.
    """

    name = "fixed-plan"

    def __init__(
        self,
        interval_time: float,
        m: int = 1,
        sub_kind: CheckpointKind = CheckpointKind.CSCP,
        frequency: float = 1.0,
    ) -> None:
        self._plan = Plan(interval_time=interval_time, m=m, sub_kind=sub_kind)
        self._frequency = frequency
        self.fault_notifications = 0

    def start(self, state) -> None:
        state.frequency = self._frequency

    def plan(self, state) -> Plan:
        return self._plan

    def on_fault(self, state) -> None:
        self.fault_notifications += 1


@pytest.fixture
def scp_costs() -> CostModel:
    """Paper §4.1 costs: t_s=2, t_cp=20 (c=22)."""
    return CostModel.scp_favourable()


@pytest.fixture
def ccp_costs() -> CostModel:
    """Paper §4.2 costs: t_s=20, t_cp=2 (c=22)."""
    return CostModel.ccp_favourable()


@pytest.fixture
def paper_task_1a(scp_costs) -> TaskSpec:
    """Table 1(a) first row: U=0.76, λ=1.4e-3, k=5."""
    return TaskSpec(
        cycles=7600.0,
        deadline=10_000.0,
        fault_budget=5,
        fault_rate=1.4e-3,
        costs=scp_costs,
    )


@pytest.fixture
def small_task(scp_costs) -> TaskSpec:
    """A tiny task for deterministic executor tests."""
    return TaskSpec(
        cycles=100.0,
        deadline=10_000.0,
        fault_budget=5,
        fault_rate=1e-3,
        costs=scp_costs,
    )


def make_fixed_policy(
    interval_time: float,
    m: int = 1,
    sub_kind: CheckpointKind = CheckpointKind.CSCP,
    frequency: float = 1.0,
) -> FixedPlanPolicy:
    return FixedPlanPolicy(interval_time, m, sub_kind, frequency)
