"""Unit tests for the statistical summaries."""

import math

import pytest
from scipy.stats import norm

from repro.errors import ParameterError
from repro.sim.metrics import (
    MeanAccumulator,
    MeanEstimate,
    ProportionAccumulator,
    ProportionEstimate,
    mean_interval,
    wilson_interval,
)


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.30 < high

    def test_narrows_with_trials(self):
        low1, high1 = wilson_interval(30, 100)
        low2, high2 = wilson_interval(300, 1000)
        assert (high2 - low2) < (high1 - low1)

    def test_zero_successes_stays_in_unit_interval(self):
        low, high = wilson_interval(0, 50)
        assert low == 0.0
        assert 0 < high < 0.15

    def test_all_successes(self):
        low, high = wilson_interval(50, 50)
        assert high == pytest.approx(1.0, abs=1e-9)
        assert 0.85 < low < 1.0

    def test_symmetric_at_half(self):
        low, high = wilson_interval(50, 100)
        assert low + high == pytest.approx(1.0, abs=1e-9)

    def test_matches_textbook_value(self):
        # Wilson 95% for 8/10 ≈ (0.490, 0.943).
        low, high = wilson_interval(8, 10)
        assert low == pytest.approx(0.490, abs=0.01)
        assert high == pytest.approx(0.943, abs=0.01)

    def test_validation(self):
        with pytest.raises(ParameterError):
            wilson_interval(1, 0)
        with pytest.raises(ParameterError):
            wilson_interval(5, 4)
        with pytest.raises(ParameterError):
            wilson_interval(-1, 4)


class TestMeanInterval:
    def test_empty_is_nan(self):
        low, high = mean_interval([])
        assert math.isnan(low) and math.isnan(high)

    def test_single_value_collapses(self):
        low, high = mean_interval([4.2])
        assert low == high == 4.2

    def test_contains_mean(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        low, high = mean_interval(values)
        assert low < 3.0 < high

    def test_half_width_matches_normal_theory(self):
        values = list(range(100))
        low, high = mean_interval(values, confidence=0.95)
        import statistics

        half = 1.959964 * statistics.stdev(values) / 10
        assert (high - low) / 2 == pytest.approx(half, rel=1e-3)


class TestNormalQuantileApproximation:
    @pytest.mark.parametrize("confidence", [0.8, 0.9, 0.95, 0.99, 0.999])
    def test_against_scipy(self, confidence):
        from repro.sim.metrics import _z_value

        expected = norm.ppf(1 - (1 - confidence) / 2)
        assert _z_value(confidence) == pytest.approx(expected, abs=2e-4)

    def test_invalid_confidence(self):
        from repro.sim.metrics import _z_value

        with pytest.raises(ParameterError):
            _z_value(0.0)
        with pytest.raises(ParameterError):
            _z_value(1.0)


class TestEstimates:
    def test_proportion_from_counts(self):
        est = ProportionEstimate.from_counts(25, 100)
        assert est.value == 0.25
        assert est.low < 0.25 < est.high
        assert est.trials == 100

    def test_mean_from_values(self):
        est = MeanEstimate.from_values([2.0, 4.0, 6.0])
        assert est.value == pytest.approx(4.0)
        assert est.count == 3

    def test_mean_empty_is_nan(self):
        est = MeanEstimate.from_values([])
        assert est.is_nan
        assert est.count == 0


class TestProportionAccumulator:
    def test_add_and_estimate_match_from_counts(self):
        acc = ProportionAccumulator()
        for success in [True, False, True, True, False]:
            acc.add(success)
        assert acc.estimate() == ProportionEstimate.from_counts(3, 5)

    def test_merge_is_exact(self):
        left = ProportionAccumulator(successes=7, trials=10)
        right = ProportionAccumulator(successes=2, trials=15)
        merged = left.merge(right)
        assert merged is left
        assert merged.estimate() == ProportionEstimate.from_counts(9, 25)

    def test_validation(self):
        with pytest.raises(ParameterError):
            ProportionAccumulator(successes=5, trials=3)
        with pytest.raises(ParameterError):
            ProportionAccumulator(successes=-1, trials=3)

    def test_empty_estimate_rejected(self):
        with pytest.raises(ParameterError):
            ProportionAccumulator().estimate()


class TestMeanAccumulator:
    def test_merge_equals_single_pass_exactly(self):
        values = [1.25, -3.5, 7.0625, 0.1, 2.2, 9.75, -0.875]
        single = MeanAccumulator(values).estimate()
        for split in range(len(values) + 1):
            left = MeanAccumulator(values[:split])
            right = MeanAccumulator(values[split:])
            assert left.merge(right).estimate() == single

    def test_merge_preserves_order(self):
        left = MeanAccumulator([1.0, 2.0])
        right = MeanAccumulator([3.0])
        assert left.merge(right).values == (1.0, 2.0, 3.0)

    def test_empty_merge_is_nan_not_error(self):
        # Regression: merging all-empty chunks (a cell where no run was
        # ever timely) must finalise to the paper's NaN, not raise.
        merged = MeanAccumulator().merge(MeanAccumulator()).merge(
            MeanAccumulator()
        )
        est = merged.estimate()
        assert est.is_nan
        assert math.isnan(est.low) and math.isnan(est.high)
        assert est.count == 0

    def test_count_tracks_observations(self):
        acc = MeanAccumulator()
        assert acc.count == 0
        acc.add(4.5)
        acc.add(5.5)
        assert acc.count == 2
        assert acc.estimate().value == pytest.approx(5.0)
