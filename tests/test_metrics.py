"""Unit tests for the statistical summaries."""

import math

import numpy as np
import pytest
from scipy.stats import norm

from repro.errors import ParameterError
from repro.sim.metrics import (
    MeanEstimate,
    MomentAccumulator,
    ProportionAccumulator,
    ProportionEstimate,
    mean_interval,
    wilson_interval,
)


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.30 < high

    def test_narrows_with_trials(self):
        low1, high1 = wilson_interval(30, 100)
        low2, high2 = wilson_interval(300, 1000)
        assert (high2 - low2) < (high1 - low1)

    def test_zero_successes_stays_in_unit_interval(self):
        low, high = wilson_interval(0, 50)
        assert low == 0.0
        assert 0 < high < 0.15

    def test_all_successes(self):
        low, high = wilson_interval(50, 50)
        assert high == pytest.approx(1.0, abs=1e-9)
        assert 0.85 < low < 1.0

    def test_symmetric_at_half(self):
        low, high = wilson_interval(50, 100)
        assert low + high == pytest.approx(1.0, abs=1e-9)

    def test_matches_textbook_value(self):
        # Wilson 95% for 8/10 ≈ (0.490, 0.943).
        low, high = wilson_interval(8, 10)
        assert low == pytest.approx(0.490, abs=0.01)
        assert high == pytest.approx(0.943, abs=0.01)

    def test_validation(self):
        with pytest.raises(ParameterError):
            wilson_interval(1, 0)
        with pytest.raises(ParameterError):
            wilson_interval(5, 4)
        with pytest.raises(ParameterError):
            wilson_interval(-1, 4)


class TestMeanInterval:
    def test_empty_is_nan(self):
        low, high = mean_interval([])
        assert math.isnan(low) and math.isnan(high)

    def test_single_value_collapses(self):
        low, high = mean_interval([4.2])
        assert low == high == 4.2

    def test_contains_mean(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        low, high = mean_interval(values)
        assert low < 3.0 < high

    def test_half_width_matches_normal_theory(self):
        values = list(range(100))
        low, high = mean_interval(values, confidence=0.95)
        import statistics

        half = 1.959964 * statistics.stdev(values) / 10
        assert (high - low) / 2 == pytest.approx(half, rel=1e-3)


class TestNormalQuantileApproximation:
    @pytest.mark.parametrize("confidence", [0.8, 0.9, 0.95, 0.99, 0.999])
    def test_against_scipy(self, confidence):
        from repro.sim.metrics import _z_value

        expected = norm.ppf(1 - (1 - confidence) / 2)
        assert _z_value(confidence) == pytest.approx(expected, abs=2e-4)

    def test_invalid_confidence(self):
        from repro.sim.metrics import _z_value

        with pytest.raises(ParameterError):
            _z_value(0.0)
        with pytest.raises(ParameterError):
            _z_value(1.0)


class TestEstimates:
    def test_proportion_from_counts(self):
        est = ProportionEstimate.from_counts(25, 100)
        assert est.value == 0.25
        assert est.low < 0.25 < est.high
        assert est.trials == 100

    def test_mean_from_values(self):
        est = MeanEstimate.from_values([2.0, 4.0, 6.0])
        assert est.value == pytest.approx(4.0)
        assert est.count == 3

    def test_mean_empty_is_nan(self):
        est = MeanEstimate.from_values([])
        assert est.is_nan
        assert est.count == 0


class TestProportionAccumulator:
    def test_add_and_estimate_match_from_counts(self):
        acc = ProportionAccumulator()
        for success in [True, False, True, True, False]:
            acc.add(success)
        assert acc.estimate() == ProportionEstimate.from_counts(3, 5)

    def test_merge_is_exact(self):
        left = ProportionAccumulator(successes=7, trials=10)
        right = ProportionAccumulator(successes=2, trials=15)
        merged = left.merge(right)
        assert merged is left
        assert merged.estimate() == ProportionEstimate.from_counts(9, 25)

    def test_validation(self):
        with pytest.raises(ParameterError):
            ProportionAccumulator(successes=5, trials=3)
        with pytest.raises(ParameterError):
            ProportionAccumulator(successes=-1, trials=3)

    def test_empty_estimate_rejected(self):
        with pytest.raises(ParameterError):
            ProportionAccumulator().estimate()


class TestMomentAccumulator:
    def test_merge_equals_single_pass_exactly(self):
        values = [1.25, -3.5, 7.0625, 0.1, 2.2, 9.75, -0.875]
        single = MomentAccumulator(values).estimate()
        for split in range(len(values) + 1):
            left = MomentAccumulator(values[:split])
            right = MomentAccumulator(values[split:])
            assert left.merge(right).estimate() == single

    def test_payload_is_constant_size(self):
        # The whole point of the streaming refactor: state never grows
        # with the observation count (no raw values are retained).
        import pickle

        small = MomentAccumulator(range(10))
        large = MomentAccumulator(range(100_000))
        # Identical up to the integer count's own encoding width.
        assert len(pickle.dumps(large)) <= len(pickle.dumps(small)) + 8

    def test_empty_merge_is_nan_not_error(self):
        # Regression: merging all-empty blocks (a cell where no run was
        # ever timely) must finalise to the paper's NaN, not raise.
        merged = MomentAccumulator().merge(MomentAccumulator()).merge(
            MomentAccumulator()
        )
        est = merged.estimate()
        assert est.is_nan
        assert math.isnan(est.low) and math.isnan(est.high)
        assert est.count == 0

    def test_empty_blocks_amid_data_preserve_nan_convention(self):
        # Empty blocks interleaved with data blocks are no-ops, and
        # mean/variance stay those of the data alone.
        acc = MomentAccumulator()
        acc.merge(MomentAccumulator([2.0, 4.0]))
        acc.merge(MomentAccumulator())
        acc.merge(MomentAccumulator([6.0]))
        assert acc.count == 3
        assert acc.mean == pytest.approx(4.0)

    def test_count_tracks_observations(self):
        acc = MomentAccumulator()
        assert acc.count == 0
        acc.add(4.5)
        acc.add(5.5)
        assert acc.count == 2
        assert acc.estimate().value == pytest.approx(5.0)

    def test_add_and_add_many_are_bit_identical(self):
        values = [0.1, 0.2, 0.3, 1e8, -1e8, 7.7]
        one_by_one = MomentAccumulator()
        for v in values:
            one_by_one.add(v)
        bulk = MomentAccumulator().add_many(np.array(values))
        assert repr(one_by_one.estimate()) == repr(bulk.estimate())

    def test_accepts_numpy_arrays_without_copies(self):
        array = np.linspace(10.0, 20.0, 101)
        acc = MomentAccumulator(array)
        assert acc.count == 101
        assert acc.mean == pytest.approx(15.0)
        assert acc.variance == pytest.approx(float(np.var(array, ddof=1)))


class TestMomentNumerics:
    """Compensated-sum behaviour the value-carrying baseline got free."""

    def test_large_offset_variance_survives_cancellation(self):
        # mean/σ ≈ 3e9: a naive Σx² - (Σx)²/n in doubles returns noise
        # (relative error ~2⁻⁵²·(mean/σ)² ≈ 2000); the compensated sums
        # keep it at rounding level.
        offset = 1e9
        # Dyadic noise so offset + v is exactly representable and the
        # reference variance is the true one.
        noise = [0.125 * i for i in range(1, 9)]
        acc = MomentAccumulator(offset + v for v in noise)
        import statistics

        exact = statistics.variance(noise)  # offset-free reference
        assert acc.variance == pytest.approx(exact, rel=1e-9)

    def test_large_offset_variance_after_blocked_merge(self):
        offset = 4e8
        values = [offset + i * 0.125 for i in range(64)]
        whole = MomentAccumulator(values)
        merged = MomentAccumulator()
        for start in range(0, 64, 16):
            merged.merge(MomentAccumulator(values[start:start + 16]))
        import statistics

        exact = statistics.variance(values)
        assert whole.variance == pytest.approx(exact, rel=1e-9)
        assert merged.variance == pytest.approx(exact, rel=1e-9)
        # And the two reduction shapes agree to the bit in practice.
        assert repr(whole.estimate()) == repr(merged.estimate())

    def test_near_cancellation_sum(self):
        # Alternating huge ± values with a tiny residual: the naive sum
        # loses the residual entirely.
        acc = MomentAccumulator([1e16, 1.0, -1e16, 1.0])
        assert acc.sum == pytest.approx(2.0)
        assert acc.mean == pytest.approx(0.5)

    def test_m2_never_negative(self):
        acc = MomentAccumulator([5.0] * 1000)
        assert acc.m2 == 0.0
        assert acc.variance == 0.0

    def test_variance_nan_below_two(self):
        assert math.isnan(MomentAccumulator().variance)
        assert math.isnan(MomentAccumulator([3.0]).variance)


class TestVectorisedAddMany:
    """The NumPy block path of add_many is bit-identical to scalar add."""

    def _state(self, acc):
        return (acc.count, acc._sum_hi, acc._sum_lo, acc._sq_hi, acc._sq_lo)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize(
        "offset,spread", [(0.0, 1.0), (40_000.0, 500.0), (1e12, 1.0)]
    )
    def test_array_path_matches_scalar_add(self, seed, offset, spread):
        rng = np.random.default_rng(seed)
        values = rng.normal(offset, spread, size=513)
        scalar = MomentAccumulator()
        for value in values:
            scalar.add(float(value))
        vectorised = MomentAccumulator()
        vectorised.add_many(values)  # ndarray: the NumPy block path
        assert self._state(vectorised) == self._state(scalar)

    def test_array_path_matches_generic_iterable_path(self):
        values = np.random.default_rng(7).exponential(3.0, size=257)
        from_list = MomentAccumulator().add_many(list(values))
        from_array = MomentAccumulator().add_many(values)
        assert self._state(from_array) == self._state(from_list)

    def test_integer_arrays_accumulate_exactly(self):
        values = np.arange(100, dtype=np.int64)
        acc = MomentAccumulator().add_many(values)
        assert acc.count == 100
        assert acc.sum == float(values.sum())

    def test_empty_array_is_a_noop(self):
        acc = MomentAccumulator()
        acc.add_many(np.empty(0))
        assert acc.count == 0
        assert math.isnan(acc.mean)

    def test_chained_blocks_match_one_pass(self):
        values = np.random.default_rng(3).normal(10.0, 2.0, size=400)
        one_pass = MomentAccumulator().add_many(values)
        blocked = MomentAccumulator()
        blocked.add_many(values[:137])
        blocked.add_many(values[137:])
        assert self._state(blocked) == self._state(one_pass)


class TestProportionAddMany:
    def test_matches_scalar_add(self):
        flags = np.random.default_rng(0).random(301) < 0.4
        scalar = ProportionAccumulator()
        for flag in flags:
            scalar.add(bool(flag))
        block = ProportionAccumulator().add_many(flags)
        assert (block.successes, block.trials) == (scalar.successes, scalar.trials)

    def test_accepts_plain_sequences(self):
        acc = ProportionAccumulator().add_many([True, False, True, True])
        assert (acc.successes, acc.trials) == (3, 4)

    def test_merge_after_add_many_is_exact(self):
        left = ProportionAccumulator().add_many(np.array([True, False]))
        right = ProportionAccumulator().add_many(np.array([True, True, False]))
        merged = left.merge(right)
        assert (merged.successes, merged.trials) == (3, 5)
