"""Unit tests for the five checkpointing scheme policies."""

import math

import pytest

from repro.core.checkpoints import CheckpointKind, CostModel
from repro.core.dvs import SpeedLadder
from repro.core.intervals import checkpoint_interval, k_fault_interval, poisson_interval
from repro.core.optimizer import num_ccp, num_scp
from repro.core.schemes import (
    AdaptiveCCPPolicy,
    AdaptiveConfig,
    AdaptiveDVSPolicy,
    AdaptiveSCPPolicy,
    KFaultTolerantPolicy,
    Plan,
    PoissonArrivalPolicy,
)
from repro.errors import ParameterError
from repro.sim.state import ExecutionState
from repro.sim.task import TaskSpec


def make_task(**overrides):
    params = dict(
        cycles=7600.0,
        deadline=10_000.0,
        fault_budget=5,
        fault_rate=1.4e-3,
        costs=CostModel.scp_favourable(),
    )
    params.update(overrides)
    return TaskSpec(**params)


def started(policy, task):
    state = ExecutionState.fresh(task)
    policy.start(state)
    return state


class TestPlan:
    def test_validation(self):
        with pytest.raises(ParameterError):
            Plan(interval_time=0.0, m=1, sub_kind=CheckpointKind.CSCP)
        with pytest.raises(ParameterError):
            Plan(interval_time=10.0, m=0, sub_kind=CheckpointKind.CSCP)


class TestPoissonArrivalPolicy:
    def test_interval_is_i1(self):
        task = make_task()
        policy = PoissonArrivalPolicy(1.0)
        state = started(policy, task)
        plan = policy.plan(state)
        assert plan.interval_time == pytest.approx(
            poisson_interval(22.0, task.fault_rate)
        )
        assert plan.m == 1
        assert state.frequency == 1.0

    def test_interval_scales_with_frequency(self):
        task = make_task()
        slow = PoissonArrivalPolicy(1.0)
        fast = PoissonArrivalPolicy(2.0)
        plan_slow = slow.plan(started(slow, task))
        plan_fast = fast.plan(started(fast, task))
        # C halves at f2 → interval shrinks by sqrt(2).
        assert plan_fast.interval_time == pytest.approx(
            plan_slow.interval_time / math.sqrt(2)
        )

    def test_zero_rate_single_checkpoint(self):
        task = make_task(fault_rate=0.0)
        policy = PoissonArrivalPolicy(1.0)
        plan = policy.plan(started(policy, task))
        assert plan.interval_time == pytest.approx(task.cycles)

    def test_never_replans(self):
        task = make_task()
        policy = PoissonArrivalPolicy(1.0)
        state = started(policy, task)
        before = policy.plan(state)
        state.faults_left -= 1
        policy.on_fault(state)
        assert policy.plan(state) is before

    def test_rejects_bad_frequency(self):
        with pytest.raises(ParameterError):
            PoissonArrivalPolicy(0.0)


class TestKFaultTolerantPolicy:
    def test_interval_is_i2(self):
        task = make_task()
        policy = KFaultTolerantPolicy(1.0)
        plan = policy.plan(started(policy, task))
        assert plan.interval_time == pytest.approx(
            k_fault_interval(7600.0, 5, 22.0)
        )

    def test_zero_budget_single_checkpoint(self):
        task = make_task(fault_budget=0)
        policy = KFaultTolerantPolicy(1.0)
        plan = policy.plan(started(policy, task))
        assert plan.interval_time == pytest.approx(task.cycles)


class TestAdaptiveDVSPolicy:
    def test_speed_selection_start_low_when_feasible(self):
        task = make_task(cycles=5_000.0, fault_rate=1e-4)
        policy = AdaptiveDVSPolicy()
        state = started(policy, task)
        assert state.frequency == 1.0

    def test_speed_selection_start_high_when_tight(self):
        # Table 1(b) U=0.92: t_est(f1) > D.
        task = make_task(cycles=9_200.0, fault_rate=1e-4, fault_budget=1)
        policy = AdaptiveDVSPolicy()
        state = started(policy, task)
        assert state.frequency == 2.0

    def test_interval_matches_procedure(self):
        task = make_task(cycles=5_000.0, fault_rate=1e-4)
        policy = AdaptiveDVSPolicy()
        state = started(policy, task)
        plan = policy.plan(state)
        expected = checkpoint_interval(
            10_000.0, 5_000.0, 22.0, 5.0, 1e-4
        )
        assert plan.interval_time == pytest.approx(expected)
        assert plan.m == 1
        assert plan.sub_kind is CheckpointKind.CSCP

    def test_replans_on_fault(self):
        task = make_task(cycles=5_000.0, fault_rate=1e-4)
        policy = AdaptiveDVSPolicy()
        state = started(policy, task)
        before = policy.plan(state)
        # Simulate progress then a fault.
        state.clock = 2_000.0
        state.remaining_cycles = 4_000.0
        state.faults_left -= 1
        policy.on_fault(state)
        after = policy.plan(state)
        assert after is not before
        expected = checkpoint_interval(8_000.0, 4_000.0, 22.0, 4.0, 1e-4)
        assert after.interval_time == pytest.approx(expected)

    def test_speed_can_escalate_on_fault(self):
        task = make_task(cycles=9_000.0, fault_rate=1e-4, fault_budget=1)
        policy = AdaptiveDVSPolicy()
        state = started(policy, task)
        assert state.frequency == 1.0
        # A late fault leaves too little time at f1.
        state.clock = 8_000.0
        state.remaining_cycles = 5_000.0
        state.faults_left = 0
        policy.on_fault(state)
        assert state.frequency == 2.0

    def test_speed_can_deescalate_when_slack_returns(self):
        # Paper fig. 6 line 15 re-evaluates t_est(Rc, f1) ≤ Rd afresh.
        task = make_task(cycles=9_200.0, fault_rate=1e-4, fault_budget=1)
        policy = AdaptiveDVSPolicy()
        state = started(policy, task)
        assert state.frequency == 2.0
        state.clock = 1_000.0
        state.remaining_cycles = 7_200.0
        policy.on_fault(state)
        assert state.frequency == 1.0

    def test_survives_overshot_deadline(self):
        task = make_task()
        policy = AdaptiveDVSPolicy()
        state = started(policy, task)
        state.clock = 11_000.0  # past the deadline
        state.remaining_cycles = 100.0
        policy.on_fault(state)  # must not raise
        assert policy.plan(state).interval_time > 0


class TestAdaptiveSCPPolicy:
    def test_m_matches_num_scp(self):
        task = make_task()
        policy = AdaptiveSCPPolicy()
        state = started(policy, task)
        plan = policy.plan(state)
        frequency = state.frequency
        expected_interval = checkpoint_interval(
            10_000.0,
            7600.0 / frequency,
            22.0 / frequency,
            5.0,
            task.fault_rate,
        )
        expected_m = num_scp(
            expected_interval,
            rate=task.fault_rate,  # default analysis_rate_factor = 1.0
            store=2.0 / frequency,
            compare=20.0 / frequency,
            rollback=0.0,
        ).m
        assert plan.interval_time == pytest.approx(expected_interval)
        assert plan.m == expected_m
        assert plan.sub_kind is CheckpointKind.SCP

    def test_subdivides_at_paper_parameters(self):
        task = make_task()
        policy = AdaptiveSCPPolicy()
        plan = policy.plan(started(policy, task))
        assert plan.m > 1

    def test_analysis_rate_factor_enters_model(self):
        task = make_task()
        one = AdaptiveSCPPolicy(AdaptiveConfig(analysis_rate_factor=1.0))
        two = AdaptiveSCPPolicy(AdaptiveConfig(analysis_rate_factor=2.0))
        m1 = one.plan(started(one, task)).m
        m2 = two.plan(started(two, task)).m
        # Doubling the modelled rate pushes toward more stores.
        assert m2 >= m1

    def test_custom_ladder(self):
        ladder = SpeedLadder.from_frequencies((1.0, 1.5, 2.0))
        task = make_task(cycles=9_200.0, fault_rate=1e-4, fault_budget=1)
        policy = AdaptiveSCPPolicy(AdaptiveConfig(ladder=ladder))
        state = started(policy, task)
        assert state.frequency == 1.5  # intermediate speed suffices


class TestAdaptiveCCPPolicy:
    def test_m_matches_num_ccp(self):
        task = make_task(costs=CostModel.ccp_favourable())
        policy = AdaptiveCCPPolicy()
        state = started(policy, task)
        plan = policy.plan(state)
        frequency = state.frequency
        expected_interval = checkpoint_interval(
            10_000.0,
            7600.0 / frequency,
            22.0 / frequency,
            5.0,
            task.fault_rate,
        )
        expected_m = num_ccp(
            expected_interval,
            rate=task.fault_rate,
            store=20.0 / frequency,
            compare=2.0 / frequency,
            rollback=0.0,
        ).m
        assert plan.m == expected_m
        assert plan.sub_kind is CheckpointKind.CCP


class TestAdaptiveConfig:
    def test_validation(self):
        with pytest.raises(ParameterError):
            AdaptiveConfig(analysis_rate_factor=0.0)
        with pytest.raises(ParameterError):
            AdaptiveConfig(max_m=0)
