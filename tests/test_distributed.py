"""Unit tests for the socket transport plumbing itself.

The conformance and fault-injection suites prove end-to-end behaviour;
this module pins the smaller moving parts — URL parsing, framing,
worker lifecycle (idle timeout, bad addresses), coordinator lifecycle
(wait timeout, closed-state errors), cluster validation, and the
string backend selector.
"""

import socket
import struct
import threading

import pytest

from repro.errors import ParameterError, SimulationError
from repro.sim.backends import (
    DistributedBackend,
    ProcessBackend,
    SerialBackend,
    make_backend,
)
from repro.sim.distributed import (
    DEFAULT_PORT,
    Coordinator,
    LocalCluster,
    _recv_msg,
    _send_msg,
    parse_url,
    serve_worker,
)


class TestParseUrl:
    def test_full_tcp_url(self):
        assert parse_url("tcp://10.0.0.5:8642") == ("10.0.0.5", 8642)

    def test_bare_host_port(self):
        assert parse_url("localhost:17") == ("localhost", 17)

    def test_port_defaults(self):
        assert parse_url("tcp://somehost") == ("somehost", DEFAULT_PORT)

    def test_port_zero_allowed_for_bind(self):
        assert parse_url("tcp://127.0.0.1:0") == ("127.0.0.1", 0)

    @pytest.mark.parametrize(
        "bad", ["http://h:1", "tcp://:4", "tcp://h:notaport", "tcp://h:70000"]
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ParameterError):
            parse_url(bad)


class TestFraming:
    def test_roundtrip_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            message = ("result", 3, 7, {"payload": list(range(50))})
            _send_msg(left, message)
            assert _recv_msg(right) == message
        finally:
            left.close()
            right.close()

    def test_eof_raises_connection_error(self):
        left, right = socket.socketpair()
        left.close()
        try:
            with pytest.raises(ConnectionError):
                _recv_msg(right)
        finally:
            right.close()

    def test_oversized_frame_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">Q", 1 << 40))
            with pytest.raises(ConnectionError, match="protocol limit"):
                _recv_msg(right)
        finally:
            left.close()
            right.close()


class TestWorkerLoop:
    def test_idle_timeout_exits_cleanly(self):
        """A worker nobody talks to gives up after idle_timeout."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen()
        host, port = listener.getsockname()
        hello = {}

        def silent_coordinator():
            from repro.sim.distributed import _authenticate_as_server

            conn, _ = listener.accept()
            assert _authenticate_as_server(conn, b"")
            hello["msg"] = _recv_msg(conn)
            # ... and then say nothing at all.
            threading.Event().wait(2.0)
            conn.close()

        server = threading.Thread(target=silent_coordinator, daemon=True)
        server.start()
        try:
            code = serve_worker(
                f"tcp://127.0.0.1:{port}", idle_timeout=0.3
            )
            assert code == 0
            assert hello["msg"][0] == "hello"
        finally:
            listener.close()

    def test_rejects_port_zero(self):
        with pytest.raises(ParameterError):
            serve_worker("tcp://127.0.0.1:0")

    def test_unreachable_coordinator_raises_oserror(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        listener.close()  # nothing listens here any more
        with pytest.raises(OSError):
            serve_worker(f"tcp://127.0.0.1:{port}", connect_timeout=0.5)


class TestCoordinatorLifecycle:
    def test_reports_resolved_url(self):
        with Coordinator("tcp://127.0.0.1:0") as coordinator:
            assert coordinator.url.startswith("tcp://127.0.0.1:")
            assert coordinator.port != 0
            assert coordinator.workers == 0

    def test_wait_for_workers_times_out_to_zero(self):
        with Coordinator("tcp://127.0.0.1:0") as coordinator:
            assert coordinator.wait_for_workers(1, timeout=0.2) == 0

    def test_empty_batch_needs_no_workers(self):
        with Coordinator("tcp://127.0.0.1:0") as coordinator:
            assert coordinator.run_tasks([]) == []

    def test_run_after_close_raises(self):
        coordinator = Coordinator("tcp://127.0.0.1:0")
        coordinator.close()
        coordinator.close()  # idempotent
        with pytest.raises(SimulationError, match="closed"):
            coordinator.run_tasks([object()])

    def test_validates_parameters(self):
        with pytest.raises(ParameterError):
            Coordinator("tcp://127.0.0.1:0", batch_size=0)
        with pytest.raises(ParameterError):
            Coordinator("tcp://127.0.0.1:0", max_retries=0)


class TestLocalCluster:
    def test_validates_worker_count(self):
        with pytest.raises(ParameterError):
            LocalCluster(-1)

    def test_validates_max_tasks_length(self):
        with pytest.raises(ParameterError):
            LocalCluster(2, max_tasks=(1,))

    def test_scalar_max_tasks_broadcasts(self):
        cluster = LocalCluster(3, max_tasks=5)
        assert cluster.max_tasks == [5, 5, 5]

    def test_close_before_start_is_fine(self):
        cluster = LocalCluster(2)
        cluster.close()
        cluster.close()
        assert cluster.alive() == 0


class TestAuthentication:
    """Nothing gets unpickled from a peer that fails the handshake."""

    def test_worker_with_wrong_secret_is_rejected(self):
        with Coordinator("tcp://127.0.0.1:0", secret=b"right") as coordinator:
            with pytest.raises(ConnectionError):
                serve_worker(
                    coordinator.url, secret=b"wrong", idle_timeout=2.0
                )
            assert coordinator.workers == 0

    def test_matched_secret_connects(self):
        with Coordinator("tcp://127.0.0.1:0", secret=b"s3cret") as coordinator:
            done = {}

            def worker():
                done["code"] = serve_worker(
                    coordinator.url, secret=b"s3cret", idle_timeout=30.0
                )

            thread = threading.Thread(target=worker, daemon=True)
            thread.start()
            assert coordinator.wait_for_workers(1, timeout=10.0) == 1
        thread.join(timeout=10.0)  # close() releases the worker
        assert done.get("code") == 0

    def test_non_loopback_bind_requires_secret(self):
        with pytest.raises(ParameterError, match="secret"):
            Coordinator("tcp://0.0.0.0:0")

    def test_non_loopback_bind_with_secret_allowed(self):
        with Coordinator("tcp://0.0.0.0:0", secret=b"k") as coordinator:
            assert coordinator.port != 0

    def test_env_var_is_the_default_secret(self, monkeypatch):
        from repro.sim.distributed import SECRET_ENV, _default_secret

        monkeypatch.setenv(SECRET_ENV, "from-env")
        assert _default_secret() == b"from-env"
        coordinator = Coordinator("tcp://0.0.0.0:0")  # env secret suffices
        coordinator.close()


class TestClusterSpawnFailure:
    def test_no_worker_ever_connecting_fails_loudly(self):
        """A cluster whose workers cannot even start must raise, not
        silently compute the whole grid in-process (that would let a
        worker-entry-point regression masquerade as a passing run)."""
        from repro.core.checkpoints import CostModel
        from repro.sim.backends import plan_blocks
        from repro.sim.fastpath import StaticCellJob, static_cell_for_scheme
        from repro.sim.task import TaskSpec

        task = TaskSpec(
            cycles=7600.0,
            deadline=10_000.0,
            fault_budget=5,
            fault_rate=1.4e-3,
            costs=CostModel.scp_favourable(),
        )
        jobs = [
            StaticCellJob(
                spec=static_cell_for_scheme(task, "Poisson", 1.0),
                reps=40,
                seed=1,
            )
        ]
        backend = DistributedBackend(
            cluster=LocalCluster(2, python="/bin/false"),
            connect_timeout=1.0,
        )
        try:
            with pytest.raises(SimulationError, match="connected"):
                backend.run_tasks(plan_blocks(jobs, 32))
        finally:
            backend.close()


class TestMakeBackend:
    def test_names_resolve(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        pool = make_backend("process", workers=2)
        assert isinstance(pool, ProcessBackend) and pool.workers == 2
        dist = make_backend("distributed", cluster_workers=2)
        assert isinstance(dist, DistributedBackend)
        assert isinstance(dist.cluster, LocalCluster)
        assert dist.cluster.size == 2
        dist.close()

    def test_instance_passes_through(self):
        instance = SerialBackend()
        assert make_backend(instance) is instance

    def test_instance_with_topology_knobs_rejected(self):
        with pytest.raises(ParameterError, match="already-constructed"):
            make_backend(DistributedBackend(), cluster_workers=2)
        with pytest.raises(ParameterError, match="already-constructed"):
            make_backend(SerialBackend(), workers=4)

    def test_unknown_name_rejected(self):
        with pytest.raises(ParameterError, match="unknown backend"):
            make_backend("quantum")
        with pytest.raises(ParameterError):
            make_backend(42)

    def test_inapplicable_topology_knobs_rejected(self):
        with pytest.raises(ParameterError, match="cluster_workers"):
            make_backend("serial", cluster_workers=2)
        with pytest.raises(ParameterError, match="cluster_workers"):
            make_backend("process", url="tcp://h:1")
        with pytest.raises(ParameterError, match="workers"):
            make_backend("distributed", workers=2)
        with pytest.raises(ParameterError, match="workers"):
            make_backend("serial", workers=2)

    def test_batchrunner_defaults_process_pool_to_all_cpus(self):
        from repro.sim.backends import default_workers
        from repro.sim.parallel import BatchRunner

        unspecified = BatchRunner(backend="process")
        assert unspecified.workers == default_workers()
        unspecified.close()
        single = BatchRunner(workers=1, backend="process")
        assert single.workers == 1  # explicit 1 = a real 1-process pool
        single.close()

    def test_int_cluster_shorthand(self):
        backend = DistributedBackend(cluster=2)
        assert isinstance(backend.cluster, LocalCluster)
        assert backend.cluster.size == 2
        backend.close()
