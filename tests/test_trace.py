"""Unit tests for execution traces."""

import pytest

from repro.core.checkpoints import CheckpointKind, CostModel
from repro.sim.executor import simulate_run
from repro.sim.faults import ScriptedFaults
from repro.sim.task import TaskSpec
from repro.sim.trace import Trace

from tests.conftest import make_fixed_policy


def run_traced(fault_times=(), **policy_kw):
    task = TaskSpec(
        cycles=100.0,
        deadline=10_000.0,
        fault_budget=5,
        fault_rate=1e-3,
        costs=CostModel.scp_favourable(),
    )
    trace = Trace()
    policy_kw.setdefault("interval_time", 50.0)
    result = simulate_run(
        task,
        make_fixed_policy(**policy_kw),
        ScriptedFaults(list(fault_times)),
        recorder=trace,
    )
    return trace, result


class TestTraceRecording:
    def test_segments_cover_finish_time(self):
        trace, result = run_traced()
        assert trace.segments[0].start == 0.0
        assert trace.segments[-1].end == pytest.approx(result.finish_time)
        # Contiguity: each segment starts where the previous ended.
        for a, b in zip(trace.segments, trace.segments[1:]):
            assert b.start == pytest.approx(a.end)

    def test_overhead_and_exec_split(self):
        trace, _result = run_traced()
        # 100 exec + 2 CSCPs of 22.
        assert trace.total_execution_time == pytest.approx(100.0)
        assert trace.total_overhead_time == pytest.approx(44.0)

    def test_checkpoints_recorded(self):
        trace, _result = run_traced()
        kinds = [c.kind for c in trace.checkpoints]
        assert kinds == [CheckpointKind.CSCP, CheckpointKind.CSCP]

    def test_fault_and_rollback_recorded(self):
        trace, _result = run_traced(fault_times=[30.0])
        assert len([f for f in trace.faults if f.corrupting]) == 1
        assert len(trace.rollbacks) == 1
        assert trace.rollbacks[0].time == pytest.approx(72.0)

    def test_finish_recorded(self):
        trace, result = run_traced()
        assert trace.completed is True
        assert trace.timely is True
        assert trace.finish_time == pytest.approx(result.finish_time)

    def test_speed_recorded(self):
        trace, _result = run_traced(frequency=2.0)
        assert trace.speeds[0].frequency == 2.0

    def test_scp_boundaries_recorded(self):
        trace, _result = run_traced(
            interval_time=100.0, m=4, sub_kind=CheckpointKind.SCP
        )
        scps = [c for c in trace.checkpoints if c.kind is CheckpointKind.SCP]
        assert len(scps) == 3


class TestRender:
    def test_render_contains_outcome_and_glyphs(self):
        trace, _result = run_traced(fault_times=[30.0])
        text = trace.render(width=60)
        assert "timely" in text
        assert "=" in text
        assert "#" in text
        assert "!" in text

    def test_render_empty(self):
        assert Trace().render() == "(empty trace)"

    def test_render_failed_run(self):
        # Deadline admits some progress before the infeasibility break.
        task = TaskSpec(
            cycles=200.0,
            deadline=250.0,
            fault_budget=5,
            fault_rate=1e-3,
            costs=CostModel.scp_favourable(),
        )
        trace = Trace()
        simulate_run(
            task,
            make_fixed_policy(interval_time=50.0),
            ScriptedFaults([]),
            recorder=trace,
        )
        assert "failed" in trace.render()


class TestRenderUnfinished:
    def test_unfinished_trace_renders_without_crashing(self):
        # A trace cut short before finish() (aborted run, replay halted
        # at a divergence) must still render, flagged as unfinished.
        trace = Trace()
        trace.speed(0.0, 1.0)
        trace.segment("exec", 1.0, 0.0, 50.0, 50.0)
        trace.checkpoint(50.0, CheckpointKind.CSCP)
        text = trace.render(width=40)
        assert text.startswith("[unfinished] t=?")
        assert "=" in text

    def test_unfinished_header_keeps_totals(self):
        trace = Trace()
        trace.segment("exec", 1.0, 0.0, 10.0, 10.0)
        trace.fault(5.0, corrupting=True)
        trace.rollback(10.0, 0.0)
        text = trace.render(width=20)
        assert "faults=1" in text
        assert "rollbacks=1" in text


class TestFaultGlyphPriority:
    def _trace(self):
        trace = Trace()
        trace.segment("exec", 1.0, 0.0, 10.0, 10.0)
        trace.segment("rollback", 1.0, 10.0, 20.0, 0.0)
        trace.finish(20.0, completed=True, timely=True)
        return trace

    def test_fault_marker_outranks_every_glyph(self):
        trace = self._trace()
        trace.fault(15.0, corrupting=True)  # lands on the rollback span
        timeline = trace.render(width=20).splitlines()[1]
        assert "!" in timeline
        assert timeline.count("!") == 1

    def test_non_corrupting_faults_leave_timeline_alone(self):
        trace = self._trace()
        trace.fault(15.0, corrupting=False)
        timeline = trace.render(width=20).splitlines()[1]
        assert "!" not in timeline

    def test_coincident_faults_are_stable(self):
        # Two corrupting faults in one bucket: the second must not
        # disturb the first's marker (equal priority does not rewrite).
        trace = self._trace()
        trace.fault(15.0, corrupting=True)
        once = trace.render(width=20)
        trace.fault(15.2, corrupting=True)
        twice = trace.render(width=20).splitlines()[1]
        assert once.splitlines()[1] == twice
