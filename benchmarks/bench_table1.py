"""Paper Table 1 — adapchp-dvs-SCPs vs baselines, static schemes at f1.

Costs t_s=2, t_cp=20, c=22; D=10000.  (a): k=5, λ ∈ {1.4e-3, 1.6e-3},
U ∈ {0.76..0.82}; (b): k=1, λ ∈ {1e-4, 2e-4}, U ∈ {0.92, 0.95, 1.00}.

Expected shape (published): static P < 0.2 (a) / ≤ 0.4 (b) with
E ≈ 39k; A_D and A_D_S at P ≈ 1 with E ≈ 53k-85k; A_D_S below A_D on
energy; U=1.0 infeasible for static schemes (P=0, E=NaN).
"""


def test_table_1a(benchmark, table_runner):
    table_runner(benchmark, "1a")


def test_table_1b(benchmark, table_runner):
    table_runner(benchmark, "1b")
