"""Shared machinery for the benchmark harness.

Every paper table gets one benchmark that (a) regenerates it with the
Monte-Carlo harness, (b) prints the paper-vs-measured comparison,
(c) asserts the reproduction shape criteria, and (d) reports the key
numbers through ``benchmark.extra_info`` so they land in the
pytest-benchmark table.

``REPRO_BENCH_REPS`` (default 800) sets the Monte-Carlo repetitions per
cell; the paper used 10,000 — raise it for tighter confidence intervals
at proportionally higher runtime.
"""

from __future__ import annotations

import math
import os

import pytest

from repro.experiments.report import format_table, shape_checks
from repro.experiments.tables import run_table

DEFAULT_REPS = 800
SEED = 2006


def bench_reps() -> int:
    return int(os.environ.get("REPRO_BENCH_REPS", DEFAULT_REPS))


@pytest.fixture
def table_runner():
    """Run one table inside the benchmark, then validate its shape."""

    def runner(benchmark, table_id: str):
        reps = bench_reps()

        def regenerate():
            return run_table(table_id, reps=reps, seed=SEED)

        result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
        print()
        print(format_table(result))
        checks = shape_checks(result)
        failed = [c for c in checks if not c.passed]
        assert not failed, "shape criteria failed:\n" + "\n".join(
            str(c) for c in failed
        )

        ours = result.schemes[-1]
        mean_dp = _mean(
            abs(row.cell(s).p_error)
            for row in result.rows
            for s in result.schemes
            if row.cell(s).paper is not None
        )
        mean_eratio = _mean(
            row.cell(ours).e_ratio
            for row in result.rows
            if not math.isnan(row.cell(ours).e_ratio)
        )
        benchmark.extra_info["reps_per_cell"] = reps
        benchmark.extra_info["mean_abs_P_error"] = round(mean_dp, 4)
        benchmark.extra_info[f"mean_E_ratio_{ours}"] = round(mean_eratio, 4)
        benchmark.extra_info["shape_checks"] = f"{len(checks)} passed"
        return result

    return runner


def _mean(values) -> float:
    values = [v for v in values if not math.isnan(v)]
    return sum(values) / len(values) if values else math.nan
