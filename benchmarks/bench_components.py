"""Micro-benchmarks of the hot components.

These justify the simulator's throughput claims (a full paper table at
10k reps/cell in minutes) and catch performance regressions in the
per-run loop and the analytic optimisers.
"""

from __future__ import annotations

from repro.core.checkpoints import CostModel
from repro.core.intervals import checkpoint_interval
from repro.core.optimizer import num_ccp, num_scp
from repro.core.schemes import AdaptiveSCPPolicy
from repro.sim.executor import simulate_run
from repro.sim.faults import PoissonFaults
from repro.sim.montecarlo import estimate
from repro.sim.rng import RandomSource
from repro.sim.task import TaskSpec

TASK = TaskSpec(
    cycles=7600.0,
    deadline=10_000.0,
    fault_budget=5,
    fault_rate=1.4e-3,
    costs=CostModel.scp_favourable(),
)


def test_checkpoint_interval_procedure(benchmark):
    """fig.-4 interval() — called on every fault of every run."""
    result = benchmark(
        checkpoint_interval, 10_000.0, 7_600.0, 22.0, 5.0, 1.4e-3
    )
    assert 0 < result <= 7_600.0


def test_num_scp(benchmark):
    """num_SCP with the closed-form T̃1 (fig. 2)."""
    plan = benchmark(
        num_scp, 177.0, rate=2.8e-3, store=2.0, compare=20.0
    )
    assert plan.m >= 1


def test_num_ccp(benchmark):
    """num_CCP with the bounded Brent search."""
    plan = benchmark(
        num_ccp, 177.0, rate=2.8e-3, store=20.0, compare=2.0
    )
    assert plan.m >= 1


def test_single_run_a_d_s(benchmark):
    """One full A_D_S task execution (the Monte-Carlo unit of work)."""
    source = RandomSource(7)
    counter = [0]

    def run():
        counter[0] += 1
        return simulate_run(
            TASK,
            AdaptiveSCPPolicy(),
            PoissonFaults(TASK.fault_rate),
            rng=source.substream(counter[0] % 4096),
        )

    result = benchmark(run)
    assert result.completed or result.failure_reason


def test_monte_carlo_cell_100(benchmark):
    """A 100-rep Monte-Carlo cell end to end."""

    def cell():
        return estimate(TASK, AdaptiveSCPPolicy, reps=100, seed=3)

    cell_result = benchmark.pedantic(cell, rounds=1, iterations=1)
    assert cell_result.reps == 100
