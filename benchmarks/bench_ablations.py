"""Ablation benches for the design choices DESIGN.md calls out.

These are not published tables; they quantify the *mechanisms* behind
the paper's results: the value of optimising ``m`` (fig. 2), the
analysis-rate convention, the fig.-2 curves themselves, and the two
extension axes (TMR redundancy, finer DVS ladders).
"""

from __future__ import annotations

import os

from repro.core.checkpoints import CostModel
from repro.core.schemes import AdaptiveDVSPolicy
from repro.experiments.sweeps import (
    fixed_m_study,
    optimal_m_curves,
    rate_factor_study,
)
from repro.extensions.multi_speed import compare_ladders, paper_ladder, uniform_ladder
from repro.extensions.security import security_sweep
from repro.extensions.tmr import simulate_tmr_run
from repro.sim.faults import DualPoissonFaults
from repro.sim.montecarlo import run_many, summarize
from repro.sim.rng import RandomSource
from repro.sim.task import TaskSpec


def _reps(divisor: int = 2) -> int:
    return max(100, int(os.environ.get("REPRO_BENCH_REPS", 800)) // divisor)


def _paper_task(**overrides) -> TaskSpec:
    params = dict(
        cycles=7600.0,
        deadline=10_000.0,
        fault_budget=5,
        fault_rate=1.4e-3,
        costs=CostModel.scp_favourable(),
    )
    params.update(overrides)
    return TaskSpec(**params)


def test_optimal_m_curves(benchmark):
    """Regenerate the fig.-2 analysis: R1(m)/R2(m) with marked optima."""

    def curves():
        return optimal_m_curves(
            [100.0, 177.0, 300.0, 500.0],
            rate=2 * 1.4e-3,
            store=2.0,
            compare=20.0,
            max_m=16,
        )

    result = benchmark(curves)
    print()
    for curve in result:
        best = curve.optimal_value
        print(
            f"R_{curve.kind}(m) span={curve.span:5.0f}: optimum m={curve.optimal_m} "
            f"value={best:7.1f}  (m=1 gives {curve.values[0]:7.1f}, "
            f"saving {1 - best / curve.values[0]:.1%})"
        )
        assert best <= curve.values[0]
    scp_opts = {c.span: c.optimal_m for c in result if c.kind == "scp"}
    # Longer intervals under fault pressure want more subdivision.
    assert scp_opts[500.0] >= scp_opts[100.0]
    benchmark.extra_info["scp_optima"] = str(scp_opts)


def test_fixed_vs_adaptive_m(benchmark):
    """Is procedure num_SCP worth it vs any fixed m?  (table 1a row 1)"""
    task = _paper_task()
    reps = _reps()

    def study():
        return fixed_m_study(task, ms=[1, 2, 4, 8, 16], reps=reps, seed=41)

    results = benchmark.pedantic(study, rounds=1, iterations=1)
    print()
    for name, cell in sorted(results.items()):
        print(f"  {name:>9}: P={cell.p:.4f} E={cell.e:9.0f}")
    adaptive = results["adaptive"]
    best_fixed = min(
        (cell for name, cell in results.items() if name != "adaptive"),
        key=lambda c: c.e if c.p > 0.95 else float("inf"),
    )
    # The adaptive choice must be within noise of the best fixed m...
    assert adaptive.e <= best_fixed.e * 1.03
    # ...and clearly better than no subdivision.
    assert adaptive.e < results["m=1"].e
    benchmark.extra_info["adaptive_E"] = round(adaptive.e)
    benchmark.extra_info["m1_E"] = round(results["m=1"].e)


def test_rate_factor(benchmark):
    """Analysis rate λ (simulation-consistent) vs 2λ (paper equations)."""
    task = _paper_task()
    reps = _reps()

    def study():
        return rate_factor_study(task, factors=(1.0, 2.0), reps=reps, seed=43)

    results = benchmark.pedantic(study, rounds=1, iterations=1)
    print()
    for factor, cell in sorted(results.items()):
        print(f"  rate×{factor:.0f}: P={cell.p:.4f} E={cell.e:9.0f}")
    # The convention must not change the story: both factors keep the
    # scheme at P≈1, energies within 2%.
    assert results[1.0].p > 0.98 and results[2.0].p > 0.98
    assert abs(results[1.0].e - results[2.0].e) < 0.02 * results[1.0].e
    benchmark.extra_info["E_factor1"] = round(results[1.0].e)
    benchmark.extra_info["E_factor2"] = round(results[2.0].e)


def test_tmr_vs_dmr(benchmark):
    """Redundancy ablation: TMR voting vs DMR comparison.

    Same per-processor fault rate (λ each).  TMR masks single faults
    (higher P under heavy faults) but burns 1.5× energy per cycle.
    """
    rate = 1.4e-3
    task = _paper_task(fault_rate=rate)
    reps = _reps(4)

    def study():
        dmr = summarize(
            run_many(
                task,
                AdaptiveDVSPolicy,
                reps=reps,
                seed=47,
                faults=DualPoissonFaults(rate),
            )
        )
        tmr_runs = [
            simulate_tmr_run(
                task,
                AdaptiveDVSPolicy(),
                rate_per_processor=rate,
                rng=RandomSource(48).substream(i),
            )
            for i in range(reps)
        ]
        return dmr, tmr_runs

    dmr, tmr_runs = benchmark.pedantic(study, rounds=1, iterations=1)
    tmr_p = sum(1 for r in tmr_runs if r.timely) / len(tmr_runs)
    tmr_timely = [r.energy for r in tmr_runs if r.timely]
    tmr_e = sum(tmr_timely) / len(tmr_timely) if tmr_timely else float("nan")
    tmr_rollbacks = sum(r.rollbacks for r in tmr_runs) / len(tmr_runs)
    print()
    print(f"  DMR (2 proc, compare): P={dmr.p:.4f} E={dmr.e:9.0f} "
          f"rollbacks/run={dmr.mean_detected_faults:.2f}")
    print(f"  TMR (3 proc, vote):    P={tmr_p:.4f} E={tmr_e:9.0f} "
          f"rollbacks/run={tmr_rollbacks:.2f}")
    # Voting masks most faults: far fewer rollbacks...
    assert tmr_rollbacks < 0.5 * dmr.mean_detected_faults
    # ...at a visible energy premium.
    assert tmr_e > dmr.e
    benchmark.extra_info["dmr_P"] = round(dmr.p, 4)
    benchmark.extra_info["tmr_P"] = round(tmr_p, 4)


def test_multi_speed(benchmark):
    """DVS ladder ablation: the paper's 2 levels vs finer ladders."""
    task = _paper_task(cycles=9_200.0, fault_rate=1e-4, fault_budget=1)
    reps = _reps(2)

    def study():
        return compare_ladders(
            task,
            {
                "2-level": paper_ladder(),
                "3-level": uniform_ladder(3),
                "4-level": uniform_ladder(4),
            },
            reps=reps,
            seed=53,
        )

    comparison = benchmark.pedantic(study, rounds=1, iterations=1)
    print()
    for label in ("2-level", "3-level", "4-level"):
        cell = comparison.results[label]
        print(f"  {label}: P={cell.p:.4f} E={cell.e:9.0f}")
    saving = comparison.energy_saving_vs("2-level", "4-level")
    print(f"  4-level saves {saving:.1%} energy over the paper's ladder")
    assert saving > 0.05
    benchmark.extra_info["saving_4_vs_2"] = f"{saving:.1%}"


def test_security_overhead(benchmark):
    """Future-work probe: authenticated checkpoints shift the optimum."""
    task = _paper_task()
    reps = _reps(4)

    def study():
        return security_sweep(
            task, mac_grid=[0.0, 10.0, 40.0, 160.0], interval=177.0,
            reps=reps, seed=59,
        )

    points = benchmark.pedantic(study, rounds=1, iterations=1)
    print()
    for point in points:
        print(
            f"  mac={point.mac_cycles:5.0f} cycles: optimal m={point.optimal_m} "
            f"P={point.p:.4f} E={point.e:9.0f}"
        )
    assert points[0].optimal_m >= points[-1].optimal_m
    benchmark.extra_info["m_unsecured"] = points[0].optimal_m
    benchmark.extra_info["m_most_secured"] = points[-1].optimal_m


def test_operating_map(benchmark):
    """Sensitivity map: which scheme wins across the (U, λ) plane.

    The paper's tables sample four high-pressure points; this bench
    shows the whole frontier — statics win the easy corner on energy,
    the paper's scheme owns the hard corner on timeliness.
    """
    from repro.experiments.config import table_spec
    from repro.experiments.sensitivity import operating_map, render_operating_map

    spec = table_spec("1a")
    reps = _reps(4)

    def build():
        return operating_map(
            spec,
            u_grid=[0.55, 0.70, 0.80, 0.90],
            lam_grid=[1e-4, 6e-4, 1.4e-3],
            reps=reps,
            seed=61,
        )

    points = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(render_operating_map(points, spec.schemes))
    hard = next(p for p in points if p.u == 0.90 and p.lam == 1.4e-3)
    easy = next(p for p in points if p.u == 0.55 and p.lam == 1e-4)
    assert hard.winner in ("A_D_S", "A_D")
    assert easy.winner in ("Poisson", "k-f-t")
    benchmark.extra_info["hard_corner_winner"] = hard.winner
    benchmark.extra_info["easy_corner_winner"] = easy.winner
