"""Scaling benchmark for the parallel Monte-Carlo batch runner.

Times a paper-scale *adaptive* cell grid — the workload the event
executor cannot vectorise and therefore the one that parallel sharding
exists for — serially and across a worker pool, and verifies that every
parallel estimate is identical to its serial counterpart (the
determinism contract of :mod:`repro.sim.parallel`).

Run standalone (not under pytest)::

    python benchmarks/bench_parallel.py                 # full grid
    python benchmarks/bench_parallel.py --workers 4
    python benchmarks/bench_parallel.py --quick         # CI smoke run

``--quick`` shrinks the grid to seconds: it checks the machinery and
the serial/parallel identity, not the speedup (which needs real cores —
on a single-CPU container process sharding cannot beat the serial
pass).  Exit status is non-zero if any parallel estimate diverges from
the serial one.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Tuple

from repro.experiments.config import table_spec
from repro.sim.montecarlo import CellEstimate
from repro.sim.parallel import BatchRunner, CellJob, default_workers


def build_grid(table_id: str, reps: int, rows: int) -> List[CellJob]:
    """An adaptive-scheme cell grid: (row × adaptive scheme) jobs."""
    spec = table_spec(table_id)
    adaptive = [s for s in spec.schemes if s.startswith("A_")]
    return [
        CellJob(
            task=spec.task(u, lam),
            policy_factory=spec.policy_factory(scheme),
            reps=reps,
            seed=2006 + index,
        )
        for index, (u, lam) in enumerate(spec.rows[:rows])
        for scheme in adaptive
    ]


def timed(runner: BatchRunner, jobs: List[CellJob]) -> Tuple[float, List[CellEstimate]]:
    start = time.perf_counter()
    estimates = runner.run_cells(jobs)
    return time.perf_counter() - start, estimates


def identical(a: List[CellEstimate], b: List[CellEstimate]) -> bool:
    """NaN-aware field-for-field identity over whole grids."""
    return len(a) == len(b) and all(
        x.same_values(y) for x, y in zip(a, b)
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers", type=int, default=0,
        help="pool size for the parallel pass (0 = one per CPU)",
    )
    parser.add_argument(
        "--reps", type=int, default=2000, help="Monte-Carlo reps per cell"
    )
    parser.add_argument(
        "--rows", type=int, default=4, help="table rows in the grid"
    )
    parser.add_argument("--table", default="1a", help="table spec for the grid")
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny smoke grid: verify identity, skip speedup claims",
    )
    args = parser.parse_args(argv)

    workers = args.workers or default_workers()
    reps = 60 if args.quick else args.reps
    rows = 2 if args.quick else args.rows
    jobs = build_grid(args.table, reps, rows)

    print(
        f"grid: table {args.table}, {len(jobs)} adaptive cells × {reps} reps "
        f"({os.cpu_count()} CPUs visible)"
    )
    serial_time, serial = timed(BatchRunner(workers=1), jobs)
    print(f"serial (workers=1):   {serial_time:8.2f}s")
    parallel_time, parallel = timed(BatchRunner(workers=workers), jobs)
    speedup = serial_time / parallel_time if parallel_time > 0 else float("inf")
    print(f"pooled (workers={workers}):  {parallel_time:8.2f}s   "
          f"speedup ×{speedup:.2f}")

    if not identical(serial, parallel):
        bad = sum(
            1 for a, b in zip(serial, parallel) if not a.same_values(b)
        )
        print(f"FAIL: {bad}/{len(jobs)} parallel estimates diverge from serial")
        return 1
    print("estimates: parallel output identical to serial (bitwise)")

    if not args.quick and workers > 1 and (os.cpu_count() or 1) >= workers:
        # On real hardware the grid is embarrassingly parallel; anything
        # under ~2× on 4 workers signals a sharding regression.
        target = 2.0 if workers >= 4 else 1.2
        if speedup < target:
            print(f"WARN: speedup ×{speedup:.2f} below ×{target} target")
    return 0


if __name__ == "__main__":
    sys.exit(main())
