"""Streaming-moment statistics vs the value-carrying baseline.

PR 2 replaced the `MeanAccumulator` that kept every observation (O(reps)
floats per shard, shipped through the process pool) with the streaming
`MomentAccumulator` (O(1): count + compensated sums).  This benchmark
quantifies the trade and guards the properties the refactor promised:

* **payload** — pickled accumulator bytes must be flat in the number of
  observations (the value-carrying baseline grows linearly);
* **memory** — peak allocations during a blocked accumulate+merge must
  be bounded by the block, not the rep count;
* **throughput** — values/second through add/merge/finalize for both
  implementations (moments trade some single-thread speed for the O(1)
  payload; the number is recorded, not asserted);
* **agreement** — the moment estimate must match the value-carrying
  one to float noise.

Run standalone (not under pytest)::

    python benchmarks/bench_stats.py                # full sizes
    python benchmarks/bench_stats.py --quick        # CI smoke run
    python benchmarks/bench_stats.py --json out.json

Results are written to ``BENCH_stats.json`` (override with ``--json``).
Exit status is non-zero if a guarded property fails.
"""

from __future__ import annotations

import argparse
import json
import math
import pickle
import statistics
import sys
import time
import tracemalloc
from typing import Dict, List

import numpy as np

from repro.sim.metrics import MomentAccumulator

BLOCK = 256  # reps per block, mirroring DEFAULT_BLOCK_SIZE


class ValueCarryingBaseline:
    """The pre-refactor discipline: keep and concatenate observations.

    Re-implemented here (it no longer exists in the library) so the
    benchmark keeps comparing against the real alternative.
    """

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: List[float] = []

    def add_many(self, values) -> "ValueCarryingBaseline":
        self.values.extend(float(v) for v in values)
        return self

    def merge(self, other: "ValueCarryingBaseline") -> "ValueCarryingBaseline":
        self.values.extend(other.values)
        return self

    def finalize(self):
        n = len(self.values)
        mean = sum(self.values) / n
        var = sum((v - mean) ** 2 for v in self.values) / (n - 1)
        return mean, var


def _blocked_reduce(make, values) -> object:
    """Accumulate per fixed-size block, merge in block order."""
    total = make()
    for start in range(0, len(values), BLOCK):
        total.merge(make().add_many(values[start:start + BLOCK]))
    return total


def _measure(make, values) -> Dict[str, float]:
    # Throughput and peak allocations are measured in separate passes:
    # tracemalloc intercepts every allocation, which slows NumPy-heavy
    # code by an order of magnitude and would corrupt the timing.
    t0 = time.perf_counter()
    _blocked_reduce(make, values)
    elapsed = time.perf_counter() - t0
    tracemalloc.start()
    acc = _blocked_reduce(make, values)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    payload = len(pickle.dumps(acc))
    if isinstance(acc, MomentAccumulator):
        mean, var = acc.mean, acc.variance
    else:
        mean, var = acc.finalize()
    return {
        "values_per_sec": len(values) / elapsed if elapsed > 0 else math.inf,
        "peak_alloc_bytes": peak,
        "payload_bytes": payload,
        "mean": mean,
        "variance": var,
    }


def run(sizes: List[int], seed: int = 2006) -> Dict:
    rng = np.random.default_rng(seed)
    report: Dict = {"block": BLOCK, "sizes": {}}
    for size in sizes:
        # Energies-like values: large offset, modest spread — the
        # regime where naive sum-of-squares cancels.
        values = rng.normal(40_000.0, 500.0, size=size)
        moment = _measure(MomentAccumulator, values)
        legacy = _measure(ValueCarryingBaseline, values)
        # The PR-4 satellite metric: streaming-moment throughput as a
        # fraction of the value-carrying baseline (the seed recorded
        # ~0.31; the vectorised add_many block path closes the gap).
        ratio = (
            moment["values_per_sec"] / legacy["values_per_sec"]
            if legacy["values_per_sec"]
            else math.inf
        )
        report["sizes"][str(size)] = {
            "moment": moment,
            "legacy": legacy,
            "moment_over_legacy_throughput": ratio,
        }
        print(
            f"n={size:>9,}: moment {moment['values_per_sec']:>12,.0f} v/s "
            f"{moment['payload_bytes']:>7,} B payload "
            f"{moment['peak_alloc_bytes']:>12,} B peak | "
            f"legacy {legacy['values_per_sec']:>12,.0f} v/s "
            f"{legacy['payload_bytes']:>9,} B payload "
            f"{legacy['peak_alloc_bytes']:>12,} B peak | "
            f"moment/legacy x{ratio:.2f}"
        )
    return report


def check(report: Dict) -> List[str]:
    """The guarded properties; returns human-readable failures."""
    failures: List[str] = []
    sizes = sorted(int(s) for s in report["sizes"])
    moment_payloads = [
        report["sizes"][str(s)]["moment"]["payload_bytes"] for s in sizes
    ]
    if max(moment_payloads) > min(moment_payloads) + 32:
        failures.append(
            f"moment payload grows with reps: {dict(zip(sizes, moment_payloads))}"
        )
    largest = report["sizes"][str(sizes[-1])]
    if largest["moment"]["payload_bytes"] * 4 > largest["legacy"]["payload_bytes"]:
        failures.append(
            "moment payload not clearly smaller than value-carrying at "
            f"n={sizes[-1]}: {largest['moment']['payload_bytes']} vs "
            f"{largest['legacy']['payload_bytes']} bytes"
        )
    if largest["moment"]["peak_alloc_bytes"] > (
        largest["legacy"]["peak_alloc_bytes"] / 2
    ):
        failures.append(
            "moment peak allocations not clearly below value-carrying at "
            f"n={sizes[-1]}: {largest['moment']['peak_alloc_bytes']} vs "
            f"{largest['legacy']['peak_alloc_bytes']} bytes"
        )
    for size in sizes:
        entry = report["sizes"][str(size)]
        m, l = entry["moment"], entry["legacy"]
        if not math.isclose(m["mean"], l["mean"], rel_tol=1e-12):
            failures.append(f"mean disagrees at n={size}: {m['mean']} vs {l['mean']}")
        if not math.isclose(m["variance"], l["variance"], rel_tol=1e-6):
            failures.append(
                f"variance disagrees at n={size}: {m['variance']} vs {l['variance']}"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small sizes: verify the guarded properties, skip scale",
    )
    parser.add_argument(
        "--json", default="BENCH_stats.json",
        help="where to write the machine-readable report",
    )
    parser.add_argument("--seed", type=int, default=2006)
    args = parser.parse_args(argv)

    sizes = [2_000, 20_000] if args.quick else [10_000, 100_000, 1_000_000]
    report = run(sizes, seed=args.seed)
    failures = check(report)
    report["failures"] = failures

    with open(args.json, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"report: {args.json}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    largest = str(max(int(s) for s in report["sizes"]))
    ratio = (
        report["sizes"][largest]["legacy"]["payload_bytes"]
        / report["sizes"][largest]["moment"]["payload_bytes"]
    )
    print(
        f"ok: payload O(1) "
        f"({report['sizes'][largest]['moment']['payload_bytes']} B, "
        f"×{ratio:,.0f} smaller than value-carrying at n={largest}); "
        "estimates agree"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
