"""Executor hot-path throughput: reps/s per scheme, path and backend.

PR 4 overhauled the Monte-Carlo executor hot path — batched fault
streams, a fused interval loop, slab accumulation, latency-adaptive
dispatch — while keeping every ``CellEstimate`` bit-identical.  This
benchmark is the performance contract that overhaul created:

* **reps/s per scheme** on the reference executor grid (table 1a's
  hardest row, all four scheme columns as event-executor cells), for

  - the **slab** path (``CellJob.run_block`` → ``accumulate_range``:
    the production path every backend runs), and
  - the **runresult** path (``run_range`` + per-rep
    ``CellAccumulator.add``: the pre-slab accumulation discipline,
    kept in-tree as the comparison baseline);

* **grid reps/s per backend** (serial / 2-process pool / 2-worker
  loopback cluster), with the cross-backend estimates checked for
  bit-identity while the clock runs;

* a **regression gate**: with ``--baseline BENCH_executor.json`` the
  run fails if any scheme's serial slab throughput drops more than 2×
  below the committed baseline *scaled to this machine* (the same-run
  runresult path is the machine yardstick, so CI's shared runners do
  not flake on hardware difference), or below half the same-run
  runresult path.

Run standalone (not under pytest)::

    python benchmarks/bench_executor.py              # full sizes
    python benchmarks/bench_executor.py --quick      # CI smoke run
    python benchmarks/bench_executor.py --baseline BENCH_executor.json

Results are written to ``BENCH_executor.json`` (override with
``--json``).  Exit status is non-zero when the agreement check or the
baseline gate fails.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from typing import Dict, List, Optional

from repro.experiments.config import table_spec
from repro.sim.backends import DistributedBackend, ProcessBackend, SerialBackend
from repro.sim.montecarlo import CellAccumulator, run_range
from repro.sim.parallel import BatchRunner

TABLE = "1a"
ROW = (0.82, 0.0016)  # the grid's hardest (U, λ) row
SEED = 2006


def _grid_jobs(reps: int):
    spec = table_spec(TABLE)
    u, lam = ROW
    return spec.schemes, [
        spec.cell_job(u, lam, scheme, reps=reps, seed=SEED)
        for scheme in spec.schemes
    ]


def _best_rate(callable_, reps: int, rounds: int) -> float:
    best = 0.0
    for _ in range(rounds):
        started = time.perf_counter()
        callable_()
        elapsed = time.perf_counter() - started
        if elapsed > 0:
            best = max(best, reps / elapsed)
    return best


def bench_schemes(reps: int, rounds: int) -> Dict[str, Dict[str, float]]:
    """Serial slab vs runresult reps/s, per scheme column."""
    schemes, jobs = _grid_jobs(reps)
    report: Dict[str, Dict[str, float]] = {}
    for scheme, job in zip(schemes, jobs):
        job.run_block(0, 0, min(reps, 128))  # warm caches and pools

        def slab():
            return job.run_block(0, 0, reps)

        def runresult():
            return CellAccumulator().add_all(
                run_range(
                    job.task,
                    job.policy_factory,
                    start=0,
                    stop=reps,
                    seed=job.seed,
                )
            )

        slab_rate = _best_rate(slab, reps, rounds)
        runresult_rate = _best_rate(runresult, reps, rounds)
        report[scheme] = {
            "slab_reps_per_sec": slab_rate,
            "runresult_reps_per_sec": runresult_rate,
            "slab_over_runresult": (
                slab_rate / runresult_rate if runresult_rate else math.inf
            ),
        }
        print(
            f"{scheme:>8}: slab {slab_rate:>10,.0f} reps/s | "
            f"runresult {runresult_rate:>10,.0f} reps/s "
            f"(x{report[scheme]['slab_over_runresult']:.2f})"
        )
    return report


def bench_backends(
    reps: int, include_distributed: bool
) -> Dict[str, Dict[str, float]]:
    """Whole-grid reps/s per backend + cross-backend bit-identity."""
    report: Dict[str, Dict[str, float]] = {}
    reference = None
    backends = [("serial", lambda: SerialBackend()),
                ("process", lambda: ProcessBackend(2))]
    if include_distributed:
        backends.append(("distributed", lambda: DistributedBackend(cluster=2)))
    for name, build in backends:
        _, jobs = _grid_jobs(reps)
        backend = build()
        runner = BatchRunner(backend=backend)
        try:
            runner.run_cells(_grid_jobs(min(reps, 128))[1])  # warm up
            started = time.perf_counter()
            estimates = runner.run_cells(jobs)
            elapsed = time.perf_counter() - started
        finally:
            backend.close()
        total = reps * len(jobs)
        agrees = True
        if reference is None:
            reference = estimates
        else:
            agrees = all(
                ours.same_values(ref) for ours, ref in zip(estimates, reference)
            )
        report[name] = {
            "grid_reps_per_sec": total / elapsed if elapsed else math.inf,
            "agrees_with_serial": agrees,
        }
        print(
            f"backend {name:>11}: {report[name]['grid_reps_per_sec']:>10,.0f} "
            f"reps/s (grid) agree={agrees}"
        )
    return report


def check(report: Dict, baseline: Optional[Dict]) -> List[str]:
    """Guarded properties; returns human-readable failures.

    The baseline gate is **machine-relative**: the committed numbers
    come from a different machine than CI's shared runners, so raw
    reps/s comparisons would flake on hardware difference alone.  The
    per-rep ``runresult`` path measured in the *same run* serves as the
    machine yardstick — its baseline ratio estimates how fast this
    machine is, and the slab path must stay within 2× of the
    correspondingly scaled baseline.  A structural same-run invariant
    (slab ≥ half of runresult) backstops the case where both paths
    regress together.
    """
    failures: List[str] = []
    for name, entry in report["backends"].items():
        if not entry["agrees_with_serial"]:
            failures.append(
                f"backend {name} produced estimates that differ from serial"
            )
    for scheme, entry in report["schemes"].items():
        if entry["slab_reps_per_sec"] < entry["runresult_reps_per_sec"] / 2.0:
            failures.append(
                f"{scheme}: slab path ({entry['slab_reps_per_sec']:,.0f} "
                f"reps/s) fell below half the per-rep RunResult path "
                f"({entry['runresult_reps_per_sec']:,.0f} reps/s) in the "
                f"same run"
            )
    if baseline:
        factors = [
            report["schemes"][s]["runresult_reps_per_sec"]
            / baseline["schemes"][s]["runresult_reps_per_sec"]
            for s in report["schemes"]
            if s in baseline.get("schemes", {})
            and baseline["schemes"][s].get("runresult_reps_per_sec")
        ]
        machine = sorted(factors)[len(factors) // 2] if factors else 1.0
        report["machine_factor_vs_baseline"] = machine
        for scheme, entry in report["schemes"].items():
            reference = baseline.get("schemes", {}).get(scheme)
            if not reference:
                continue
            floor = reference["slab_reps_per_sec"] * machine / 2.0
            if entry["slab_reps_per_sec"] < floor:
                failures.append(
                    f"{scheme}: {entry['slab_reps_per_sec']:,.0f} reps/s is "
                    f">2x below the committed baseline scaled to this "
                    f"machine ({reference['slab_reps_per_sec']:,.0f} reps/s "
                    f"x {machine:.2f})"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small rep counts and no cluster: the CI smoke run",
    )
    parser.add_argument(
        "--json", default="BENCH_executor.json",
        help="where to write the machine-readable report",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=(
            "committed BENCH_executor.json to gate against: fail when a "
            "scheme's serial slab reps/s regresses more than 2x"
        ),
    )
    parser.add_argument(
        "--rounds", type=int, default=None,
        help="timing rounds per measurement (best-of; default 3, quick 2)",
    )
    args = parser.parse_args(argv)

    reps = 256 if args.quick else 1024
    rounds = args.rounds or (2 if args.quick else 3)

    print(f"reference grid: table {TABLE} row {ROW}, {reps} reps per cell")
    report: Dict = {
        "table": TABLE,
        "row": list(ROW),
        "reps": reps,
        "schemes": bench_schemes(reps, rounds),
        "backends": bench_backends(reps, include_distributed=not args.quick),
    }

    baseline = None
    if args.baseline:
        try:
            with open(args.baseline) as handle:
                baseline = json.load(handle)
        except FileNotFoundError:
            print(f"note: no baseline at {args.baseline}; gate skipped")
    failures = check(report, baseline)
    report["failures"] = failures

    with open(args.json, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"report: {args.json}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("ok: backends agree bit-for-bit"
          + ("; baseline gate passed" if baseline else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
