"""Executor hot-path throughput: reps/s per scheme, path and backend.

PR 4 overhauled the Monte-Carlo executor hot path — batched fault
streams, a fused interval loop, slab accumulation, latency-adaptive
dispatch — while keeping every ``CellEstimate`` bit-identical.  This
benchmark is the performance contract that overhaul created:

* **reps/s per scheme** on the reference executor grid (table 1a's
  hardest row, all four scheme columns as event-executor cells), for

  - the **slab** path (``CellJob.run_block`` → ``accumulate_range``:
    the production path every backend runs), and
  - the **runresult** path (``run_range`` + per-rep
    ``CellAccumulator.add``: the pre-slab accumulation discipline,
    kept in-tree as the comparison baseline);

* **grid reps/s per backend** (serial / 2-process pool / 2-worker
  loopback cluster), with the cross-backend estimates checked for
  bit-identity while the clock runs;

* a **regression gate**: with ``--baseline BENCH_executor.json`` the
  run fails if any scheme's serial slab throughput drops more than 2×
  below the committed baseline *scaled to this machine* (the same-run
  runresult path is the machine yardstick, so CI's shared runners do
  not flake on hardware difference), or below half the same-run
  runresult path.

PR 7 added the **fast kernel** (``repro.sim.kernel``): a vectorised,
block-deterministic peer of the exact engine.  The benchmark now
measures both kernels — per-scheme reps/s and the whole-grid
aggregate — and gates the contract both ways: the exact numbers keep
their baseline gate (the kernel must cost the exact path nothing), and
the fast kernel must clear a grid-throughput floor (full runs) or a
speedup-over-exact floor (``--min-fast-speedup``, the machine-relative
CI form).

Run standalone (not under pytest)::

    python benchmarks/bench_executor.py              # full sizes
    python benchmarks/bench_executor.py --quick      # CI smoke run
    python benchmarks/bench_executor.py --baseline BENCH_executor.json
    python benchmarks/bench_executor.py --fresh-process   # cold starts

Results are written to ``BENCH_executor.json`` (override with
``--json``); the fast-kernel section is additionally written to a
``*_fast.json`` sibling so CI can upload the two kernel variants as
separate artifacts.  ``--fresh-process`` times each scheme once per
*subprocess* — a cold interpreter with empty caches — so per-rep
setup cost (the ~13 µs/rep ``SeedSequence`` construction the fast
kernel's batched spawn removes) stays visible instead of being
amortised away by warm in-process best-of rounds.  Exit status is
non-zero when the agreement check or any gate fails.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import subprocess
import sys
import time
from typing import Dict, List, Optional

from repro.experiments.config import table_spec
from repro.sim.backends import DistributedBackend, ProcessBackend, SerialBackend
from repro.sim.montecarlo import CellAccumulator, run_range
from repro.sim.parallel import BatchRunner

TABLE = "1a"
ROW = (0.82, 0.0016)  # the grid's hardest (U, λ) row
SEED = 2006

#: Acceptance floor for the fast kernel's serial whole-grid throughput
#: (full runs only; quick CI runs use the machine-relative speedup gate).
FAST_GRID_FLOOR = 50_000.0


def _grid_jobs(reps: int):
    spec = table_spec(TABLE)
    u, lam = ROW
    return spec.schemes, [
        spec.cell_job(u, lam, scheme, reps=reps, seed=SEED)
        for scheme in spec.schemes
    ]


def _best_rate(callable_, reps: int, rounds: int) -> float:
    best = 0.0
    for _ in range(rounds):
        started = time.perf_counter()
        callable_()
        elapsed = time.perf_counter() - started
        if elapsed > 0:
            best = max(best, reps / elapsed)
    return best


def bench_schemes(reps: int, rounds: int) -> Dict[str, Dict[str, float]]:
    """Serial slab vs runresult reps/s, per scheme column."""
    schemes, jobs = _grid_jobs(reps)
    report: Dict[str, Dict[str, float]] = {}
    for scheme, job in zip(schemes, jobs):
        job.run_block(0, 0, min(reps, 128))  # warm caches and pools

        def slab():
            return job.run_block(0, 0, reps)

        def runresult():
            return CellAccumulator().add_all(
                run_range(
                    job.task,
                    job.policy_factory,
                    start=0,
                    stop=reps,
                    seed=job.seed,
                )
            )

        slab_rate = _best_rate(slab, reps, rounds)
        runresult_rate = _best_rate(runresult, reps, rounds)
        report[scheme] = {
            "slab_reps_per_sec": slab_rate,
            "runresult_reps_per_sec": runresult_rate,
            "slab_over_runresult": (
                slab_rate / runresult_rate if runresult_rate else math.inf
            ),
        }
        print(
            f"{scheme:>8}: slab {slab_rate:>10,.0f} reps/s | "
            f"runresult {runresult_rate:>10,.0f} reps/s "
            f"(x{report[scheme]['slab_over_runresult']:.2f})"
        )
    return report


def bench_kernels(reps: int, rounds: int) -> Dict[str, object]:
    """Fast-kernel reps/s per scheme + whole-grid aggregate, both kernels.

    Warm methodology: every job runs one full block before its timed
    rounds (the fast kernel memoises replan tables per process — a
    one-time cost that would otherwise dominate the first round), then
    best-of-``rounds``.  The cold half of the story is
    ``--fresh-process``.
    """
    schemes, jobs = _grid_jobs(reps)
    fast_jobs = [dataclasses.replace(job, kernel="fast") for job in jobs]
    per_scheme: Dict[str, Dict[str, float]] = {}
    for scheme, job in zip(schemes, fast_jobs):
        job.run_block(0, 0, reps)  # warm: replan tables, caches
        rate = _best_rate(lambda: job.run_block(0, 0, reps), reps, rounds)
        per_scheme[scheme] = {"fast_reps_per_sec": rate}
        print(f"{scheme:>8}: fast {rate:>10,.0f} reps/s")

    def run_grid(grid_jobs):
        for job in grid_jobs:
            job.run_block(0, 0, reps)

    total = reps * len(jobs)
    run_grid(jobs)  # warm the exact path too (standalone invocations)
    exact_grid = _best_rate(lambda: run_grid(jobs), total, rounds)
    fast_grid = _best_rate(lambda: run_grid(fast_jobs), total, rounds)
    speedup = fast_grid / exact_grid if exact_grid else math.inf
    print(
        f"    grid: exact {exact_grid:>10,.0f} reps/s | "
        f"fast {fast_grid:>10,.0f} reps/s (x{speedup:.1f})"
    )
    return {
        "schemes": per_scheme,
        "grid_reps_per_sec": fast_grid,
        "exact_grid_reps_per_sec": exact_grid,
        "speedup_over_exact": speedup,
    }


def _fresh_process_rate(scheme: str, reps: int, kernel: str) -> float:
    """Time one block in a cold subprocess (caches empty, nothing warm).

    This is the number a user's first block actually sees: per-rep
    ``SeedSequence`` construction on the exact path, table building on
    the fast path — costs the warm in-process rounds amortise away.
    """
    u, lam = ROW
    code = (
        f"import sys, time, dataclasses\n"
        f"sys.path[:0] = {sys.path!r}\n"
        f"from repro.experiments.config import table_spec\n"
        f"job = table_spec({TABLE!r}).cell_job({u!r}, {lam!r}, {scheme!r}, "
        f"reps={reps!r}, seed={SEED!r})\n"
        f"job = dataclasses.replace(job, kernel={kernel!r})\n"
        f"started = time.perf_counter()\n"
        f"job.run_block(0, 0, {reps!r})\n"
        f"print({reps!r} / (time.perf_counter() - started))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True
    )
    if out.returncode != 0:
        raise RuntimeError(
            f"fresh-process measurement failed for {scheme}/{kernel}:\n"
            f"{out.stderr}"
        )
    return float(out.stdout.strip())


def bench_fresh_process(reps: int) -> Dict[str, Dict[str, float]]:
    """Cold-start reps/s per scheme and kernel, one subprocess each."""
    schemes, _jobs = _grid_jobs(reps)
    report: Dict[str, Dict[str, float]] = {}
    for scheme in schemes:
        exact = _fresh_process_rate(scheme, reps, "exact")
        fast = _fresh_process_rate(scheme, reps, "fast")
        report[scheme] = {
            "exact_reps_per_sec": exact,
            "fast_reps_per_sec": fast,
        }
        print(
            f"{scheme:>8} (cold): exact {exact:>10,.0f} reps/s | "
            f"fast {fast:>10,.0f} reps/s"
        )
    return report


def bench_backends(
    reps: int, include_distributed: bool
) -> Dict[str, Dict[str, float]]:
    """Whole-grid reps/s per backend + cross-backend bit-identity."""
    report: Dict[str, Dict[str, float]] = {}
    reference = None
    backends = [("serial", lambda: SerialBackend()),
                ("process", lambda: ProcessBackend(2))]
    if include_distributed:
        backends.append(("distributed", lambda: DistributedBackend(cluster=2)))
    for name, build in backends:
        _, jobs = _grid_jobs(reps)
        backend = build()
        runner = BatchRunner(backend=backend)
        try:
            runner.run_cells(_grid_jobs(min(reps, 128))[1])  # warm up
            started = time.perf_counter()
            estimates = runner.run_cells(jobs)
            elapsed = time.perf_counter() - started
        finally:
            backend.close()
        total = reps * len(jobs)
        agrees = True
        if reference is None:
            reference = estimates
        else:
            agrees = all(
                ours.same_values(ref) for ours, ref in zip(estimates, reference)
            )
        report[name] = {
            "grid_reps_per_sec": total / elapsed if elapsed else math.inf,
            "agrees_with_serial": agrees,
        }
        print(
            f"backend {name:>11}: {report[name]['grid_reps_per_sec']:>10,.0f} "
            f"reps/s (grid) agree={agrees}"
        )
    return report


def check(
    report: Dict,
    baseline: Optional[Dict],
    *,
    min_fast_speedup: Optional[float] = None,
    fast_grid_floor: Optional[float] = None,
) -> List[str]:
    """Guarded properties; returns human-readable failures.

    The baseline gate is **machine-relative**: the committed numbers
    come from a different machine than CI's shared runners, so raw
    reps/s comparisons would flake on hardware difference alone.  The
    per-rep ``runresult`` path measured in the *same run* serves as the
    machine yardstick — its baseline ratio estimates how fast this
    machine is, and the slab path must stay within 2× of the
    correspondingly scaled baseline.  A structural same-run invariant
    (slab ≥ half of runresult) backstops the case where both paths
    regress together.
    """
    failures: List[str] = []
    fast = report.get("fast")
    if fast is not None:
        speedup = fast["speedup_over_exact"]
        if min_fast_speedup is not None and speedup < min_fast_speedup:
            failures.append(
                f"fast kernel grid speedup over exact is x{speedup:.2f}, "
                f"below the x{min_fast_speedup:g} gate"
            )
        if (
            fast_grid_floor is not None
            and fast["grid_reps_per_sec"] < fast_grid_floor
        ):
            failures.append(
                f"fast kernel grid throughput "
                f"{fast['grid_reps_per_sec']:,.0f} reps/s is below the "
                f"{fast_grid_floor:,.0f} reps/s acceptance floor"
            )
    for name, entry in report["backends"].items():
        if not entry["agrees_with_serial"]:
            failures.append(
                f"backend {name} produced estimates that differ from serial"
            )
    for scheme, entry in report["schemes"].items():
        if entry["slab_reps_per_sec"] < entry["runresult_reps_per_sec"] / 2.0:
            failures.append(
                f"{scheme}: slab path ({entry['slab_reps_per_sec']:,.0f} "
                f"reps/s) fell below half the per-rep RunResult path "
                f"({entry['runresult_reps_per_sec']:,.0f} reps/s) in the "
                f"same run"
            )
    if baseline:
        factors = [
            report["schemes"][s]["runresult_reps_per_sec"]
            / baseline["schemes"][s]["runresult_reps_per_sec"]
            for s in report["schemes"]
            if s in baseline.get("schemes", {})
            and baseline["schemes"][s].get("runresult_reps_per_sec")
        ]
        machine = sorted(factors)[len(factors) // 2] if factors else 1.0
        report["machine_factor_vs_baseline"] = machine
        for scheme, entry in report["schemes"].items():
            reference = baseline.get("schemes", {}).get(scheme)
            if not reference:
                continue
            floor = reference["slab_reps_per_sec"] * machine / 2.0
            if entry["slab_reps_per_sec"] < floor:
                failures.append(
                    f"{scheme}: {entry['slab_reps_per_sec']:,.0f} reps/s is "
                    f">2x below the committed baseline scaled to this "
                    f"machine ({reference['slab_reps_per_sec']:,.0f} reps/s "
                    f"x {machine:.2f})"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small rep counts and no cluster: the CI smoke run",
    )
    parser.add_argument(
        "--json", default="BENCH_executor.json",
        help="where to write the machine-readable report",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=(
            "committed BENCH_executor.json to gate against: fail when a "
            "scheme's serial slab reps/s regresses more than 2x"
        ),
    )
    parser.add_argument(
        "--rounds", type=int, default=None,
        help="timing rounds per measurement (best-of; default 3, quick 2)",
    )
    parser.add_argument(
        "--min-fast-speedup", type=float, default=None, metavar="X",
        help=(
            "fail unless the fast kernel's grid throughput is at least "
            "X times the exact kernel's in the same run (machine-"
            "relative; the gate CI uses in quick mode)"
        ),
    )
    parser.add_argument(
        "--fresh-process", action="store_true",
        help=(
            "also time each scheme once per cold subprocess, so per-rep "
            "setup cost (seed construction, table building) is visible "
            "instead of amortised by warm rounds"
        ),
    )
    args = parser.parse_args(argv)

    reps = 256 if args.quick else 1024
    # The fast kernel amortises per-block setup over the block; quick
    # mode still needs blocks big enough to measure steady state.
    fast_reps = 2048 if args.quick else 4096
    rounds = args.rounds or (2 if args.quick else 3)

    print(f"reference grid: table {TABLE} row {ROW}, {reps} reps per cell")
    report: Dict = {
        "table": TABLE,
        "row": list(ROW),
        "reps": reps,
        "fast_reps": fast_reps,
        "schemes": bench_schemes(reps, rounds),
        "fast": bench_kernels(fast_reps, rounds),
        "backends": bench_backends(reps, include_distributed=not args.quick),
    }
    if args.fresh_process:
        report["fresh_process"] = bench_fresh_process(reps)

    baseline = None
    if args.baseline:
        try:
            with open(args.baseline) as handle:
                baseline = json.load(handle)
        except FileNotFoundError:
            print(f"note: no baseline at {args.baseline}; gate skipped")
    failures = check(
        report,
        baseline,
        min_fast_speedup=args.min_fast_speedup,
        # The absolute floor is an acceptance number for full runs on a
        # development machine; quick CI runs gate on relative speedup.
        fast_grid_floor=None if args.quick else FAST_GRID_FLOOR,
    )
    report["failures"] = failures

    with open(args.json, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    fast_json = (
        args.json[:-5] if args.json.endswith(".json") else args.json
    ) + "_fast.json"
    with open(fast_json, "w") as handle:
        json.dump(
            {
                "table": TABLE,
                "row": list(ROW),
                "reps": fast_reps,
                "kernel": "fast",
                "fast": report["fast"],
            },
            handle,
            indent=2,
            sort_keys=True,
        )
    print(f"report: {args.json} (+ {fast_json})")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("ok: backends agree bit-for-bit"
          + ("; baseline gate passed" if baseline else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
