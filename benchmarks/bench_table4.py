"""Paper Table 4 — adapchp-dvs-CCPs vs baselines, static schemes at f2.

Costs t_s=20, t_cp=2, c=22; U = N/(f2·D).  Expected shape mirrors
Table 2 with A_D_C in place of A_D_S.
"""


def test_table_4a(benchmark, table_runner):
    table_runner(benchmark, "4a")


def test_table_4b(benchmark, table_runner):
    table_runner(benchmark, "4b")
