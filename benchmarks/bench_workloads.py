"""Workload engine throughput: EDF scenario reps/s and frontier sweeps.

The workload subsystem (``repro.workloads``) runs whole multi-task EDF
scenarios per rep — generator, operating-point selection, then a
checkpointed schedule simulation — so its unit of work is orders of
magnitude heavier than one single-task executor rep.  This benchmark
is its performance contract:

* **engine reps/s**: one bursty taskset cell, measured on

  - the **block** path (``TasksetCellJob.run_block``: the production
    path every backend runs, which amortises generation and selection
    across the block), and
  - the **per-rep** path (direct ``simulate_schedule`` calls on a
    pre-built scenario: no amortisation — the machine yardstick for
    the baseline gate);

* **backend reps/s** for a two-cell taskset batch (serial vs
  2-process pool), with the cross-backend estimates checked for
  bit-identity while the clock runs;

* a **frontier sweep**: wall time for a full
  ``kind="frontier"`` study (every (frequency, checkpoint-count)
  configuration through the Study façade), reported as cells/s;

* a **regression gate**: with ``--baseline BENCH_workloads.json`` the
  run fails if block-path or frontier throughput drops more than 2×
  below the committed baseline *scaled to this machine* (the same-run
  per-rep path estimates how fast this machine is, so CI's shared
  runners do not flake on hardware difference).

Run standalone (not under pytest)::

    python benchmarks/bench_workloads.py             # full sizes
    python benchmarks/bench_workloads.py --quick     # CI smoke run
    python benchmarks/bench_workloads.py --baseline BENCH_workloads.json

Results are written to ``BENCH_workloads.json`` (override with
``--json``).  Exit status is non-zero when the agreement check or any
gate fails.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from typing import Dict, List, Optional

from repro.api import Study, StudySpec
from repro.rts.generators import WorkloadParams
from repro.rts.scheduler import simulate_schedule
from repro.sim.backends import ProcessBackend, SerialBackend
from repro.sim.energy import EnergyModel
from repro.sim.parallel import BatchRunner
from repro.workloads import TasksetCellJob
from repro.workloads.engine import _rep_seed

SEED = 2006
HORIZON = 8_000.0

FRONTIER_SPEC = dict(
    kind="frontier", table="1a", u=0.5, lam=2e-4, ms=(1, 2, 4, 8), seed=SEED
)


def _engine_job(reps: int, seed: int = SEED) -> TasksetCellJob:
    return TasksetCellJob(
        params=WorkloadParams(
            pattern="bursty", n_tasks=3, utilization=0.55, fault_rate=2e-4
        ),
        horizon=HORIZON,
        reps=reps,
        seed=seed,
    )


def _best_rate(callable_, reps: int, rounds: int) -> float:
    best = 0.0
    for _ in range(rounds):
        started = time.perf_counter()
        callable_()
        elapsed = time.perf_counter() - started
        if elapsed > 0:
            best = max(best, reps / elapsed)
    return best


def bench_engine(reps: int, rounds: int) -> Dict[str, float]:
    """Block-path vs per-rep scenario reps/s on one taskset cell."""
    job = _engine_job(reps)
    job.run_block(0, 0, min(reps, 8))  # warm caches

    def block():
        return job.run_block(0, 0, reps)

    taskset, config, overrides = job.scenario()
    model = EnergyModel.paper_dmr()

    def per_rep():
        for index in range(reps):
            simulate_schedule(
                taskset,
                horizon=job.horizon,
                policy=job.policy,
                frequency=config.frequency,
                seed=_rep_seed(job.seed, index),
                energy_model=model,
                drop_late_jobs=job.drop_late_jobs,
                chunk_overrides=overrides,
            )

    block_rate = _best_rate(block, reps, rounds)
    per_rep_rate = _best_rate(per_rep, reps, rounds)
    print(
        f"  engine: block {block_rate:>8,.1f} reps/s | "
        f"per-rep {per_rep_rate:>8,.1f} reps/s "
        f"(x{block_rate / per_rep_rate if per_rep_rate else math.inf:.2f})"
    )
    return {
        "block_reps_per_sec": block_rate,
        "per_rep_reps_per_sec": per_rep_rate,
    }


def bench_backends(reps: int) -> Dict[str, Dict[str, object]]:
    """Two taskset cells per backend + cross-backend bit-identity."""
    jobs = [_engine_job(reps, seed=SEED + offset) for offset in (0, 1)]
    total = reps * len(jobs)
    report: Dict[str, Dict[str, object]] = {}
    reference = None
    for name, build in (
        ("serial", lambda: SerialBackend()),
        ("process", lambda: ProcessBackend(2)),
    ):
        backend = build()
        runner = BatchRunner(backend=backend)
        try:
            runner.run_cells([_engine_job(4, seed=SEED)])  # warm up
            started = time.perf_counter()
            estimates = runner.run_cells(jobs)
            elapsed = time.perf_counter() - started
        finally:
            backend.close()
        agrees = True
        if reference is None:
            reference = estimates
        else:
            agrees = all(
                ours.same_values(ref)
                for ours, ref in zip(estimates, reference)
            )
        report[name] = {
            "reps_per_sec": total / elapsed if elapsed else math.inf,
            "agrees_with_serial": agrees,
        }
        print(
            f"  backend {name:>7}: {report[name]['reps_per_sec']:>8,.1f} "
            f"reps/s agree={agrees}"
        )
    return report


def bench_frontier(reps: int) -> Dict[str, float]:
    """Wall time of a full frontier study through the façade."""
    study = Study(StudySpec(reps=reps, **FRONTIER_SPEC))
    cells = len(study.cells())
    started = time.perf_counter()
    results = study.run()
    elapsed = time.perf_counter() - started
    assert len(results) == cells
    rate = cells / elapsed if elapsed else math.inf
    print(
        f"  frontier: {cells} cells x {reps} reps in {elapsed:.2f}s "
        f"({rate:,.2f} cells/s)"
    )
    return {
        "cells": float(cells),
        "wall_seconds": elapsed,
        "cells_per_sec": rate,
    }


def check(report: Dict, baseline: Optional[Dict]) -> List[str]:
    """Guarded properties; returns human-readable failures.

    Machine-relative, like ``bench_executor``: the same-run per-rep
    scenario path is the yardstick for how fast this machine is, and
    the block path / frontier sweep must stay within 2× of the
    correspondingly scaled baseline.
    """
    failures: List[str] = []
    for name, entry in report["backends"].items():
        if not entry["agrees_with_serial"]:
            failures.append(
                f"backend {name} produced estimates that differ from serial"
            )
    engine = report["engine"]
    if engine["block_reps_per_sec"] < engine["per_rep_reps_per_sec"] / 2.0:
        failures.append(
            f"block path ({engine['block_reps_per_sec']:,.1f} reps/s) fell "
            f"below half the per-rep path "
            f"({engine['per_rep_reps_per_sec']:,.1f} reps/s) in the same run"
        )
    if baseline:
        reference = baseline.get("engine", {})
        yardstick = reference.get("per_rep_reps_per_sec")
        machine = (
            engine["per_rep_reps_per_sec"] / yardstick if yardstick else 1.0
        )
        report["machine_factor_vs_baseline"] = machine
        floor = reference.get("block_reps_per_sec", 0.0) * machine / 2.0
        if engine["block_reps_per_sec"] < floor:
            failures.append(
                f"engine block path {engine['block_reps_per_sec']:,.1f} "
                f"reps/s is >2x below the committed baseline scaled to "
                f"this machine ({reference['block_reps_per_sec']:,.1f} "
                f"reps/s x {machine:.2f})"
            )
        base_frontier = baseline.get("frontier", {}).get("cells_per_sec")
        if base_frontier:
            # Scale the frontier gate for rep-count differences too, so
            # a --quick run can gate against a full-size baseline.
            base_reps = baseline.get("frontier_reps", report["frontier_reps"])
            scale = machine * base_reps / report["frontier_reps"]
            frontier_floor = base_frontier * scale / 2.0
            if report["frontier"]["cells_per_sec"] < frontier_floor:
                failures.append(
                    f"frontier sweep {report['frontier']['cells_per_sec']:,.2f} "
                    f"cells/s is >2x below the committed baseline scaled "
                    f"to this machine ({base_frontier:,.2f} cells/s x "
                    f"{scale:.2f})"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small rep counts: the CI smoke run",
    )
    parser.add_argument(
        "--json", default="BENCH_workloads.json",
        help="where to write the machine-readable report",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=(
            "committed BENCH_workloads.json to gate against: fail when "
            "engine or frontier throughput regresses more than 2x"
        ),
    )
    parser.add_argument(
        "--rounds", type=int, default=None,
        help="timing rounds per measurement (best-of; default 3, quick 2)",
    )
    args = parser.parse_args(argv)

    reps = 64 if args.quick else 256
    frontier_reps = 32 if args.quick else 128
    rounds = args.rounds or (2 if args.quick else 3)

    print(
        f"workload engine: bursty 3-task cell, horizon {HORIZON:,.0f}, "
        f"{reps} reps"
    )
    report: Dict = {
        "reps": reps,
        "frontier_reps": frontier_reps,
        "engine": bench_engine(reps, rounds),
        "backends": bench_backends(reps),
        "frontier": bench_frontier(frontier_reps),
    }

    baseline = None
    if args.baseline:
        try:
            with open(args.baseline) as handle:
                baseline = json.load(handle)
        except FileNotFoundError:
            print(f"note: no baseline at {args.baseline}; gate skipped")
    failures = check(report, baseline)
    report["failures"] = failures

    with open(args.json, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"report: {args.json}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("ok: backends agree bit-for-bit"
          + ("; baseline gate passed" if baseline else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
