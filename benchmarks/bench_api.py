"""Façade overhead gate: Study/Session vs direct ``run_table``.

The declarative façade (``repro.api``) wraps every experiment in cell
planning, provenance stamping and ResultSet assembly.  All of that is
O(cells) Python bookkeeping around the same Monte-Carlo work, so it
must be invisible at experiment scale.  This benchmark is the contract:

* run the same table once through ``run_table`` (direct) and once
  through ``Study.run`` on a borrowed serial session (façade), timing
  both (best of ``--repeats`` passes);
* **assert bit-identity**: every façade cell estimate must equal the
  direct call's (``CellEstimate.same_values``);
* **gate the overhead**: the façade's reps/s must be within
  ``--max-overhead`` (default 5%) of the direct path's.  The gate has
  an absolute noise floor (``--min-gap``, default 50 ms): a run only
  fails when the façade is slower by more than 5% *and* by more than
  the floor, so scheduler jitter on a sub-second quick pass cannot
  flake CI while a genuine O(work) regression still trips it.

Run standalone (not under pytest)::

    python benchmarks/bench_api.py              # full sizes
    python benchmarks/bench_api.py --quick      # CI smoke run

Results are written to ``BENCH_api.json`` (override with ``--json``).
Exit status is non-zero when identity or the overhead gate fails.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.api import Session, Study, StudySpec
from repro.experiments.tables import run_table
from repro.sim.parallel import BatchRunner

TABLE = "1a"
SEED = 2006


def run_bench(reps: int, repeats: int, chunk_size: int) -> dict:
    runner = BatchRunner.serial(chunk_size=chunk_size)
    spec = StudySpec(
        kind="table", table=TABLE, reps=reps, seed=SEED, fast_static=True
    )
    session = Session(runner=runner)

    # The two paths are timed *interleaved* (direct, façade, direct,
    # façade, ...; best pass kept for each): machine-load drift across
    # the run then biases both sides equally instead of landing on
    # whichever path happened to be measured second.  A fresh Study
    # per façade pass keeps its cell-plan cache from eliding the
    # O(cells) planning work the gate claims to cover.
    direct_seconds = facade_seconds = float("inf")
    direct = results = None
    for _ in range(repeats):
        started = time.perf_counter()
        direct = run_table(
            TABLE, reps=reps, seed=SEED, runner=runner, fast_static=True
        )
        direct_seconds = min(direct_seconds, time.perf_counter() - started)
        started = time.perf_counter()
        results = Study(spec).run(session)
        facade_seconds = min(facade_seconds, time.perf_counter() - started)
    study = Study(spec)

    identical = all(
        results.estimate(plan.key).same_values(
            direct.row(dict(plan.axes)["u"], dict(plan.axes)["lam"])
            .cell(dict(plan.axes)["scheme"])
            .measured
        )
        for plan in study.cells()
    )
    total_reps = reps * len(study.cells())
    return {
        "table": TABLE,
        "reps_per_cell": reps,
        "cells": len(study.cells()),
        "direct_seconds": direct_seconds,
        "facade_seconds": facade_seconds,
        "direct_reps_per_s": total_reps / direct_seconds,
        "facade_reps_per_s": total_reps / facade_seconds,
        "overhead": facade_seconds / direct_seconds - 1.0,
        "identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke sizes (seconds, not minutes)",
    )
    parser.add_argument("--reps", type=int, default=None,
                        help="override reps per cell")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing passes per path (best is kept)")
    parser.add_argument("--chunk-size", type=int, default=64)
    parser.add_argument(
        "--max-overhead", type=float, default=0.05,
        help="maximum tolerated façade overhead (fraction of direct time)",
    )
    parser.add_argument(
        "--min-gap", type=float, default=0.05,
        help=(
            "absolute noise floor in seconds: the overhead gate only "
            "fails when the façade is slower by more than this too"
        ),
    )
    parser.add_argument("--json", default="BENCH_api.json",
                        help="report path")
    args = parser.parse_args(argv)

    reps = args.reps if args.reps is not None else (96 if args.quick else 1000)
    report = run_bench(reps, args.repeats, args.chunk_size)
    report["max_overhead"] = args.max_overhead
    with open(args.json, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)

    print(
        f"direct:  {report['direct_reps_per_s']:12.0f} reps/s "
        f"({report['direct_seconds']:.3f} s)"
    )
    print(
        f"facade:  {report['facade_reps_per_s']:12.0f} reps/s "
        f"({report['facade_seconds']:.3f} s)"
    )
    print(f"overhead: {report['overhead']:+.2%} (gate {args.max_overhead:.0%})")

    ok = True
    if not report["identical"]:
        print("FAIL: façade estimates are not bit-identical to run_table",
              file=sys.stderr)
        ok = False
    gap = report["facade_seconds"] - report["direct_seconds"]
    if report["overhead"] > args.max_overhead and gap > args.min_gap:
        print(
            f"FAIL: façade overhead {report['overhead']:+.2%} "
            f"({gap * 1000:.0f} ms) exceeds {args.max_overhead:.0%} "
            f"and the {args.min_gap * 1000:.0f} ms noise floor",
            file=sys.stderr,
        )
        ok = False
    if ok:
        print("façade overhead gate ok (bit-identical estimates)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
