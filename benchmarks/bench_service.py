"""Service cache gate: warm submissions must be compute-free and fast.

The study service's whole value is that overlapping studies stop
paying for shared cells.  This benchmark is that claim's gate, run
against an in-process service (HTTP server on a loopback port, real
submissions through the real client):

* **cold**: submit a study against an empty cache — every cell is
  computed;
* **warm**: submit the identical study again — every cell must be a
  cache hit (``computed == 0``), the returned ResultSet payload must
  be byte-identical to the cold run's, and the wall time must beat
  the cold run by at least ``--min-speedup`` (default 3x; the warm
  path is pure lookup + HTTP, no Monte-Carlo);
* **overlap**: submit a superset study — exactly the shared cells may
  be hits, the rest computed.

Run standalone (not under pytest)::

    python benchmarks/bench_service.py            # full sizes
    python benchmarks/bench_service.py --quick    # CI smoke run

Results are written to ``BENCH_service.json`` (override with
``--json``).  Exit status is non-zero when any gate fails.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time

from repro.api.results import json_dumps_exact
from repro.service import (
    StudyService,
    make_server,
    submit_study,
    wait_until_ready,
)

TABLE = "1a"
SEED = 2006


def run_bench(reps: int, min_speedup: float) -> dict:
    row_spec = {
        "kind": "row", "table": TABLE, "reps": reps, "seed": SEED,
        "u": 0.8, "lam": 1.4e-3,
    }
    table_spec = {
        "kind": "table", "table": TABLE, "reps": reps, "seed": SEED,
    }

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        service = StudyService(cache_dir=tmp + "/cells")
        server = make_server(service, "http://127.0.0.1:0")
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            wait_until_ready(url)

            started = time.perf_counter()
            cold = submit_study(url, row_spec)
            cold_seconds = time.perf_counter() - started

            started = time.perf_counter()
            warm = submit_study(url, row_spec)
            warm_seconds = time.perf_counter() - started

            started = time.perf_counter()
            overlap = submit_study(url, table_spec)
            overlap_seconds = time.perf_counter() - started

            if cold["computed"] != cold["cells"]:
                failures.append(
                    f"cold run computed {cold['computed']} of "
                    f"{cold['cells']} cells (cache was not empty?)"
                )
            if warm["computed"] != 0:
                failures.append(
                    f"warm run recomputed {warm['computed']} cells; "
                    f"every one must be a cache hit"
                )
            if json_dumps_exact(warm["result"]) != json_dumps_exact(
                cold["result"]
            ):
                failures.append(
                    "warm ResultSet payload is not byte-identical to cold"
                )
            if overlap["cached"] != cold["cells"]:
                failures.append(
                    f"overlapping study reused {overlap['cached']} cells, "
                    f"expected exactly the {cold['cells']} shared ones"
                )
            speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
            if speedup < min_speedup:
                failures.append(
                    f"warm submission only {speedup:.1f}x faster than cold "
                    f"({warm_seconds * 1e3:.1f} ms vs "
                    f"{cold_seconds * 1e3:.1f} ms); gate is {min_speedup}x"
                )
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    return {
        "bench": "service",
        "reps": reps,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "overlap_seconds": overlap_seconds,
        "warm_speedup": cold_seconds / warm_seconds if warm_seconds else None,
        "cold_cells": cold["cells"],
        "overlap_cached": overlap["cached"],
        "overlap_computed": overlap["computed"],
        "failures": failures,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=2000)
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for a CI smoke run")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="warm submission must beat cold by this factor")
    parser.add_argument("--json", default="BENCH_service.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)
    reps = 200 if args.quick else args.reps

    report = run_bench(reps, args.min_speedup)
    with open(args.json, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)

    print(
        f"service bench (reps={reps}): cold "
        f"{report['cold_seconds'] * 1e3:.1f} ms, warm "
        f"{report['warm_seconds'] * 1e3:.1f} ms "
        f"({report['warm_speedup']:.1f}x), overlap reused "
        f"{report['overlap_cached']}/{report['cold_cells']} shared cells"
    )
    if report["failures"]:
        for failure in report["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all service cache gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
