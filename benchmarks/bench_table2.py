"""Paper Table 2 — adapchp-dvs-SCPs vs baselines, static schemes at f2.

Costs t_s=2, t_cp=20, c=22; D=10000; U = N/(f2·D).  (a): k=5; (b): k=1.

Expected shape (published): all energies ≈ 150k (≈4× the table-1
statics); A_D ≈ static on P (DVS can't help when even f2 is tight);
A_D_S clearly ahead on P (e.g. 0.49 vs 0.16 at U=0.80, λ=1.6e-3) at
comparable or lower energy.
"""


def test_table_2a(benchmark, table_runner):
    table_runner(benchmark, "2a")


def test_table_2b(benchmark, table_runner):
    table_runner(benchmark, "2b")
