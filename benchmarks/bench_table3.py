"""Paper Table 3 — adapchp-dvs-CCPs vs baselines, static schemes at f1.

Costs t_s=20, t_cp=2, c=22 (store-heavy: extra comparisons are the
cheap operation, so the CCP variant is the right tool); otherwise as
Table 1.  Expected shape mirrors Table 1 with A_D_C in place of A_D_S.
"""


def test_table_3a(benchmark, table_runner):
    table_runner(benchmark, "3a")


def test_table_3b(benchmark, table_runner):
    table_runner(benchmark, "3b")
