"""Multi-task workload studies: seeded generators, the fault-tolerant
EDF/RM scenario engine, and energy/time Pareto-frontier sweeps.

This package turns the :mod:`repro.rts` substrate into first-class
study kinds: ``"taskset"`` cells simulate generated periodic workloads
under feasibility-then-lowest-energy ``(frequency, checkpoint-count)``
selection, and ``"frontier"`` cells sweep equidistant checkpoint
configurations of a single paper task to expose the non-dominated
(expected time, expected energy) frontier.  Both ride the ordinary
``StudySpec → plans → cells → backend`` pipeline, so backends, the
cell cache, resume, and ``repro serve`` apply unchanged.
"""

from repro.workloads.engine import EngineConfig, TasksetCellJob, select_configuration
from repro.workloads.frontier import (
    EquidistantPolicy,
    FrontierPoint,
    pareto_points,
    render_frontier,
)

__all__ = [
    "EngineConfig",
    "EquidistantPolicy",
    "FrontierPoint",
    "TasksetCellJob",
    "pareto_points",
    "render_frontier",
    "select_configuration",
]
