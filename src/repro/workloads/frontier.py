"""Energy/time Pareto-frontier sweeps (Aupy et al. style).

A *frontier study* fixes one paper task and sweeps equidistant
checkpoint configurations over a ``frequency × checkpoint-count`` grid:
each cell runs the single-task executor with ``n`` equal checkpoint
intervals at a fixed speed, and the study reports which configurations
are **non-dominated** in (expected completion time, expected energy) —
the trade-off curve from which a deployment picks an operating point
under an energy budget or a deadline.

The sweep rides the ordinary executor/cell machinery; this module only
adds the picklable equidistant policy and the dominance bookkeeping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.schemes import _StaticPolicy
from repro.errors import ParameterError

__all__ = [
    "EquidistantPolicy",
    "FrontierPoint",
    "pareto_points",
    "render_frontier",
]


class EquidistantPolicy(_StaticPolicy):
    """``n`` equal checkpoint intervals at a fixed speed (CSCP).

    The classic non-adaptive configuration a frontier sweeps over:
    interval length is ``(N/f)/n``, so the job takes exactly ``n``
    checkpoints when fault-free.  Module-level and constructed from
    plain numbers, so ``partial(EquidistantPolicy, f, n)`` pickles for
    the process/distributed backends and describes for cell identity.
    """

    plan_stable = True

    def __init__(self, frequency: float = 1.0, checkpoints: int = 1) -> None:
        super().__init__(frequency)
        if checkpoints < 1:
            raise ParameterError(
                f"checkpoints must be >= 1, got {checkpoints}"
            )
        self.checkpoints = checkpoints
        self.name = f"EQ(n={checkpoints}, f={frequency:g})"

    def _interval(self, state) -> float:
        work = state.task.cycles / self.frequency
        return work / self.checkpoints


@dataclass(frozen=True)
class FrontierPoint:
    """One swept configuration with its frontier verdict."""

    frequency: float
    checkpoints: int
    p_timely: float
    time: float
    energy: float
    on_frontier: bool

    @property
    def label(self) -> str:
        return f"f={self.frequency:g}, n={self.checkpoints}"


def _dominates(a: Tuple[float, float], b: Tuple[float, float]) -> bool:
    """True when ``a`` is at least as good in both axes and better in one."""
    return (
        a[0] <= b[0] + 1e-12
        and a[1] <= b[1] + 1e-12
        and (a[0] < b[0] - 1e-12 or a[1] < b[1] - 1e-12)
    )


def pareto_points(
    cells: Iterable[Tuple[float, int, float, float, float]],
    *,
    deadline: Optional[float] = None,
    energy_budget: Optional[float] = None,
    p_min: float = 0.0,
) -> List[FrontierPoint]:
    """Classify swept cells into frontier / dominated points.

    ``cells`` yields ``(frequency, checkpoints, p_timely, time,
    energy)`` rows — expected completion time of timely runs and
    expected energy.  A cell is *eligible* when its estimates are
    finite, ``p_timely >= p_min``, and it fits the optional deadline
    and energy budget; among eligible cells the non-dominated set under
    coordinate-wise (time, energy) minimisation is marked
    ``on_frontier``.  Ineligible cells are returned too (never on the
    frontier) so reports can show the whole grid.
    """
    rows = list(cells)
    eligible: List[int] = []
    for i, (_, _, p, time, energy) in enumerate(rows):
        if not (math.isfinite(time) and math.isfinite(energy)):
            continue
        if p < p_min - 1e-12:
            continue
        if deadline is not None and time > deadline + 1e-12:
            continue
        if energy_budget is not None and energy > energy_budget + 1e-12:
            continue
        eligible.append(i)

    frontier = set()
    for i in eligible:
        _, _, _, ti, ei = rows[i]
        dominated = any(
            _dominates((rows[j][3], rows[j][4]), (ti, ei))
            for j in eligible
            if j != i
        )
        if not dominated:
            frontier.add(i)

    points = [
        FrontierPoint(
            frequency=f,
            checkpoints=n,
            p_timely=p,
            time=time,
            energy=energy,
            on_frontier=(i in frontier),
        )
        for i, (f, n, p, time, energy) in enumerate(rows)
    ]
    points.sort(key=lambda pt: (pt.time, pt.energy, pt.frequency, pt.checkpoints))
    return points


def render_frontier(points: Sequence[FrontierPoint]) -> str:
    """Plain-text frontier table (``*`` marks non-dominated points)."""
    lines = [
        f"{'':2} {'f':>6} {'n':>4} {'P':>8} {'time':>12} {'energy':>12}"
    ]
    for pt in points:
        marker = "*" if pt.on_frontier else ""
        lines.append(
            f"{marker:2} {pt.frequency:>6g} {pt.checkpoints:>4d} "
            f"{pt.p_timely:>8.4f} {pt.time:>12.4f} {pt.energy:>12.4f}"
        )
    count = sum(1 for pt in points if pt.on_frontier)
    lines.append(f"frontier: {count} of {len(points)} configurations")
    return "\n".join(lines)
