"""Fault-tolerant multi-task scenario engine.

The engine binds the pieces the ``rts`` package already provides into
one scenario: given a generated workload, pick the **lowest-energy
feasible** operating point — the EAPS selection rule: walk the
frequency ladder from slow to fast, keep the candidates where the
checkpoint-aware schedulability test passes, and among those take the
one with the smallest worst-case energy rate — then drive
:func:`repro.rts.scheduler.simulate_schedule` at that point with each
task checkpointing at its optimal equidistant interval
(``n* = sqrt(k·N/C)``, the same Lee–Shin–Min machinery behind the
paper's ``I2``).

:class:`TasksetCellJob` wraps one such scenario as a cell job
satisfying the executor's block protocol (``reps`` / ``seed`` /
``run_block``), so taskset cells shard across any backend and land in
the content-addressed cache exactly like single-task cells.  The
workload is *regenerated inside the worker* from ``(seed, params)`` —
nothing stochastic ships in the job — and every rep draws its fault
realisation from a tagged per-rep stream, making estimates
deterministic per rep (stronger than the per-block contract).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ParameterError
from repro.rts.feasibility import (
    edf_feasible,
    fault_tolerant_wcet,
    optimal_checkpoint_count,
    rm_response_times,
)
from repro.rts.generators import WorkloadParams, generate_taskset
from repro.rts.scheduler import simulate_schedule
from repro.rts.taskset import TaskSet
from repro.sim.energy import EnergyModel
from repro.sim.montecarlo import CellAccumulator

__all__ = ["EngineConfig", "TasksetCellJob", "select_configuration"]

DEFAULT_FREQUENCIES: Tuple[float, ...] = (1.0, 2.0)

# Domain tag for per-rep fault streams (disjoint from the generator's
# stream and from the single-task executor's substreams).
_REP_TAG = 0x5EDF0B5


@dataclass(frozen=True)
class EngineConfig:
    """One selected operating point for a workload.

    ``feasible`` is False when no ladder frequency passes the
    schedulability test; the engine then runs flat out at the highest
    frequency (best effort — the miss ratio reports the damage).
    """

    frequency: float
    feasible: bool
    energy_rate: float
    checkpoint_counts: Tuple[Tuple[str, int], ...]


def _worst_case_energy_rate(
    taskset: TaskSet, frequency: float, model: EnergyModel
) -> float:
    """Σ per-task worst-case energy per time unit at ``frequency``.

    Each job's fault-tolerant WCET (time at ``frequency``) converts
    back to cycles actually executed at that speed; one job per period
    gives the rate.  A worst-case proxy, not the simulated energy —
    it only needs to *rank* ladder frequencies consistently.
    """
    rate = 0.0
    for task in taskset:
        wcet_time = fault_tolerant_wcet(
            task.cycles,
            task.fault_budget,
            task.costs.checkpoint_cycles,
            rollback=task.costs.rollback_cycles,
            frequency=frequency,
        )
        rate += model.segment_energy(frequency, wcet_time * frequency) / task.period
    return rate


def _is_feasible(taskset: TaskSet, frequency: float, policy: str) -> bool:
    if policy == "edf":
        return edf_feasible(taskset, frequency)
    responses = rm_response_times(taskset, frequency)
    return all(r is not None for r in responses.values())


def select_configuration(
    taskset: TaskSet,
    frequencies: Tuple[float, ...] = DEFAULT_FREQUENCIES,
    *,
    policy: str = "edf",
    energy_model: Optional[EnergyModel] = None,
) -> EngineConfig:
    """Feasibility-then-lowest-energy operating-point selection.

    Among ladder frequencies where the checkpoint-aware test passes,
    pick the one minimising the worst-case energy rate (ties go to the
    slower speed).  If none is feasible, fall back to the fastest
    frequency with ``feasible=False``.  Checkpoint counts are always
    the per-task optima ``n* = sqrt(k·N/C)``.
    """
    if not frequencies:
        raise ParameterError("need at least one candidate frequency")
    if any(f <= 0 for f in frequencies):
        raise ParameterError(f"frequencies must be > 0, got {frequencies}")
    if policy not in ("edf", "rm"):
        raise ParameterError(f"policy must be 'edf' or 'rm', got {policy!r}")
    if energy_model is None:
        energy_model = EnergyModel.paper_dmr()

    ladder = tuple(sorted(frequencies))
    best: Optional[Tuple[float, float]] = None  # (energy_rate, frequency)
    for frequency in ladder:
        if not _is_feasible(taskset, frequency, policy):
            continue
        rate = _worst_case_energy_rate(taskset, frequency, energy_model)
        if best is None or rate < best[0] - 1e-12:
            best = (rate, frequency)

    if best is None:
        frequency = ladder[-1]
        feasible = False
        rate = _worst_case_energy_rate(taskset, frequency, energy_model)
    else:
        rate, frequency = best
        feasible = True

    counts = tuple(
        (
            task.name,
            optimal_checkpoint_count(
                task.cycles, task.fault_budget, task.costs.checkpoint_cycles
            )
            if task.fault_budget > 0
            else 1,
        )
        for task in taskset
    )
    return EngineConfig(
        frequency=frequency,
        feasible=feasible,
        energy_rate=rate,
        checkpoint_counts=counts,
    )


def _chunk_overrides(
    taskset: TaskSet, config: EngineConfig
) -> Dict[str, float]:
    """Equidistant checkpoint intervals implied by the selected counts."""
    counts = dict(config.checkpoint_counts)
    return {
        task.name: (task.cycles / config.frequency) / counts[task.name]
        for task in taskset
    }


def _rep_seed(seed: int, index: int) -> int:
    """Scheduler seed for rep ``index`` — pure function of cell identity."""
    sequence = np.random.SeedSequence(
        entropy=(int(seed) & 0xFFFFFFFFFFFFFFFF, _REP_TAG, int(index))
    )
    return int(sequence.generate_state(1, np.uint64)[0])


@dataclass(frozen=True)
class TasksetCellJob:
    """One taskset study cell: a workload × its selected operating point.

    Satisfies the block protocol (``reps``/``seed``/``run_block``), so
    :class:`~repro.sim.parallel.BatchRunner` shards it like any cell.
    All fields are plain data — picklable for process/distributed
    backends and describable for cell identity (the energy model is
    deliberately *not* a field: the paper model is applied at run time,
    keeping the job free of unpicklable closures).
    """

    params: WorkloadParams
    horizon: float
    policy: str = "edf"
    frequencies: Tuple[float, ...] = DEFAULT_FREQUENCIES
    reps: int = 1
    seed: int = 0
    drop_late_jobs: bool = True

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ParameterError(f"horizon must be > 0, got {self.horizon}")
        if self.policy not in ("edf", "rm"):
            raise ParameterError(
                f"policy must be 'edf' or 'rm', got {self.policy!r}"
            )
        if self.reps <= 0:
            raise ParameterError(f"reps must be > 0, got {self.reps}")
        if not self.frequencies or any(f <= 0 for f in self.frequencies):
            raise ParameterError(
                f"frequencies must be a non-empty tuple of positive "
                f"speeds, got {self.frequencies!r}"
            )

    def scenario(self) -> Tuple[TaskSet, EngineConfig, Dict[str, float]]:
        """Regenerate the workload and its operating point (pure)."""
        taskset = generate_taskset(self.seed, self.params)
        config = select_configuration(
            taskset, self.frequencies, policy=self.policy
        )
        return taskset, config, _chunk_overrides(taskset, config)

    def run_block(self, block: int, start: int, stop: int) -> CellAccumulator:
        """Run reps ``[start, stop)`` of this cell into an accumulator.

        Rep ``i`` seeds the schedule simulator from a pure function of
        ``(cell seed, i)`` whatever the block bounds — per-rep
        determinism, so every backend, worker count, and chunk size
        produces bit-identical estimates.
        """
        if start < 0 or stop < start:
            raise ParameterError(
                f"need 0 <= start <= stop, got [{start}, {stop})"
            )
        taskset, config, overrides = self.scenario()
        model = EnergyModel.paper_dmr()
        accumulator = CellAccumulator()
        for index in range(start, stop):
            result = simulate_schedule(
                taskset,
                horizon=self.horizon,
                policy=self.policy,
                frequency=config.frequency,
                seed=_rep_seed(self.seed, index),
                energy_model=model,
                drop_late_jobs=self.drop_late_jobs,
                chunk_overrides=overrides,
            )
            timely = all(j.deadline_met for j in result.jobs)
            accumulator.timely.add(timely)
            accumulator.energy_all.add(result.energy)
            if timely:
                accumulator.energy_timely.add(result.energy)
                accumulator.finish_timely.add(result.makespan)
            accumulator.detected_faults += result.total_faults
            accumulator.checkpoints += result.total_checkpoints
        return accumulator
