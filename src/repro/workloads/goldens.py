"""Event-level golden pin for the multi-task EDF engine.

The executor goldens (:mod:`repro.goldens`) localise drift in the
single-task executor; this module does the same for the workload
engine.  One curated scenario — generator params, seed, selected
operating point, and one rep of the schedule simulation — is recorded
as a JSONL trace: a header line, one ``job`` event per
:class:`~repro.rts.scheduler.JobRecord` in deterministic order, a
``summary`` line (energy, busy time, makespan), and an ``end``
sentinel.  Replay re-runs the scenario against the current tree and
reports the **first diverging event** with field-level
expected-vs-actual, so a behavioural change in the generator, the
selection rule, or the scheduler shows up as a localised diff instead
of a bare bit-identity failure.

Floats ride the shared exact codec of :mod:`repro.api.results`, so
events round-trip bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.api.results import git_describe, json_dumps_exact, json_loads_exact
from repro.errors import ConfigurationError
from repro.workloads.engine import TasksetCellJob, _rep_seed
from repro.rts.generators import WorkloadParams
from repro.rts.scheduler import ScheduleResult, simulate_schedule
from repro.core.checkpoints import CostModel
from repro.sim.energy import EnergyModel

__all__ = [
    "FORMAT",
    "GOLDEN_JOB",
    "TasksetDrift",
    "record_taskset_golden",
    "replay_taskset_golden",
]

#: Taskset-trace format tag; bump on incompatible layout changes.
FORMAT = "repro.taskset-trace/1"

#: The curated scenario committed under ``tests/goldens/``: a bursty
#: 3-task workload at moderate load — exercises constrained deadlines,
#: preemption, fault rollbacks, and the frequency-selection rule.
GOLDEN_JOB = TasksetCellJob(
    params=WorkloadParams(
        pattern="bursty",
        n_tasks=3,
        utilization=0.55,
        fault_rate=2e-4,
        fault_budget=2,
    ),
    horizon=20_000.0,
    policy="edf",
    frequencies=(1.0, 2.0),
    reps=1,
    seed=200610,
)


def _scenario_payload(job: TasksetCellJob, rep: int) -> Dict[str, object]:
    params = job.params
    return {
        "name": f"taskset-{params.pattern}-{job.policy}",
        "rep": rep,
        "seed": job.seed,
        "horizon": job.horizon,
        "policy": job.policy,
        "frequencies": list(job.frequencies),
        "params": {
            "pattern": params.pattern,
            "n_tasks": params.n_tasks,
            "utilization": params.utilization,
            "fault_rate": params.fault_rate,
            "fault_budget": params.fault_budget,
            "period_scale": params.period_scale,
            "costs": {
                "store_cycles": params.costs.store_cycles,
                "compare_cycles": params.costs.compare_cycles,
                "rollback_cycles": params.costs.rollback_cycles,
            },
        },
    }


def _job_from_scenario(scenario: Dict[str, object]) -> Tuple[TasksetCellJob, int]:
    try:
        raw = dict(scenario["params"])  # type: ignore[arg-type]
        costs = dict(raw.pop("costs"))
        job = TasksetCellJob(
            params=WorkloadParams(costs=CostModel(**costs), **raw),
            horizon=scenario["horizon"],  # type: ignore[arg-type]
            policy=scenario["policy"],  # type: ignore[arg-type]
            frequencies=tuple(scenario["frequencies"]),  # type: ignore[arg-type]
            reps=1,
            seed=scenario["seed"],  # type: ignore[arg-type]
        )
        return job, int(scenario["rep"])  # type: ignore[arg-type]
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(
            f"taskset golden scenario is malformed: {exc!r}"
        )


def _simulate(job: TasksetCellJob, rep: int) -> Tuple[ScheduleResult, Dict[str, object]]:
    taskset, config, overrides = job.scenario()
    result = simulate_schedule(
        taskset,
        horizon=job.horizon,
        policy=job.policy,
        frequency=config.frequency,
        seed=_rep_seed(job.seed, rep),
        energy_model=EnergyModel.paper_dmr(),
        drop_late_jobs=job.drop_late_jobs,
        chunk_overrides=overrides,
    )
    selection = {
        "frequency": config.frequency,
        "feasible": config.feasible,
        "checkpoint_counts": [list(pair) for pair in config.checkpoint_counts],
    }
    return result, selection


def _job_events(result: ScheduleResult) -> List[Dict[str, object]]:
    events: List[Dict[str, object]] = [
        {
            "kind": "job",
            "task": job.task_name,
            "release": job.release,
            "deadline": job.absolute_deadline,
            "completed_at": job.completed_at,
            "deadline_met": job.deadline_met,
            "faults": job.faults,
            "preemptions": job.preemptions,
            "checkpoints": job.checkpoints,
        }
        for job in result.jobs
    ]
    events.append(
        {
            "kind": "summary",
            "jobs": len(result.jobs),
            "energy": result.energy,
            "busy_time": result.busy_time,
            "makespan": result.makespan,
            "horizon": result.horizon,
        }
    )
    return events


def record_taskset_golden(
    path: str, job: TasksetCellJob = GOLDEN_JOB, *, rep: int = 0
) -> int:
    """Record one rep of ``job`` as a golden trace; returns event count."""
    result, selection = _simulate(job, rep)
    events = _job_events(result)
    header = {
        "format": FORMAT,
        "scenario": _scenario_payload(job, rep),
        "selection": selection,
        "git": git_describe(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json_dumps_exact(header) + "\n")
        for event in events:
            handle.write(json_dumps_exact(event) + "\n")
        handle.write(
            json_dumps_exact({"kind": "end", "events": len(events)}) + "\n"
        )
    return len(events)


@dataclass(frozen=True)
class TasksetDrift:
    """First divergence between a golden trace and the current tree."""

    path: str
    index: int
    kind: str
    fields: Tuple[Tuple[str, object, object], ...]  # (name, expected, actual)

    def render(self) -> str:
        lines = [
            f"taskset golden drift in {self.path}",
            f"  first diverging event: index {self.index} (kind={self.kind})",
        ]
        for name, expected, actual in self.fields:
            lines.append(f"    {name}: expected {expected!r}, got {actual!r}")
        return "\n".join(lines)


def _read_trace(path: str) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle.read().splitlines() if line.strip()]
    except OSError as exc:
        raise ConfigurationError(f"cannot read taskset golden {path!r}: {exc}")
    if not lines:
        raise ConfigurationError(f"taskset golden {path!r} is empty")
    records = [
        json_loads_exact(line, what=f"taskset golden ({path}, line {i + 1})")
        for i, line in enumerate(lines)
    ]
    header = records[0]
    if not isinstance(header, dict) or header.get("format") != FORMAT:
        raise ConfigurationError(
            f"taskset golden {path!r}: expected format {FORMAT!r} header, "
            f"got {header!r}"
        )
    body = [r for r in records[1:] if isinstance(r, dict)]
    if len(body) != len(records) - 1:
        raise ConfigurationError(
            f"taskset golden {path!r}: non-object event line"
        )
    if not body or body[-1].get("kind") != "end":
        raise ConfigurationError(
            f"taskset golden {path!r} is truncated: no end sentinel"
        )
    sentinel = body.pop()
    if sentinel.get("events") != len(body):
        raise ConfigurationError(
            f"taskset golden {path!r} is corrupt: end sentinel declares "
            f"{sentinel.get('events')!r} events but {len(body)} are present"
        )
    return header, body


def replay_taskset_golden(path: str) -> Optional[TasksetDrift]:
    """Re-run a recorded scenario; ``None`` when bit-clean, else drift.

    The header's selection payload is compared first (generator or
    selection-rule drift), then events in order — the first mismatch
    wins, with field-level expected-vs-actual.
    """
    header, expected_events = _read_trace(path)
    job, rep = _job_from_scenario(header.get("scenario", {}))
    result, selection = _simulate(job, rep)
    actual_events = _job_events(result)

    recorded_selection = header.get("selection")
    if json_dumps_exact(recorded_selection) != json_dumps_exact(selection):
        return TasksetDrift(
            path=path,
            index=-1,
            kind="selection",
            fields=(("selection", recorded_selection, selection),),
        )

    for index, expected in enumerate(expected_events):
        if index >= len(actual_events):
            return TasksetDrift(
                path=path,
                index=index,
                kind=str(expected.get("kind")),
                fields=(("event", expected, None),),
            )
        actual = actual_events[index]
        if json_dumps_exact(expected) == json_dumps_exact(actual):
            continue
        diffs = tuple(
            (name, expected.get(name), actual.get(name))
            for name in sorted(set(expected) | set(actual))
            if json_dumps_exact(expected.get(name))
            != json_dumps_exact(actual.get(name))
        )
        return TasksetDrift(
            path=path,
            index=index,
            kind=str(expected.get("kind")),
            fields=diffs,
        )
    if len(actual_events) > len(expected_events):
        extra = actual_events[len(expected_events)]
        return TasksetDrift(
            path=path,
            index=len(expected_events),
            kind=str(extra.get("kind")),
            fields=(("event", None, extra),),
        )
    return None
