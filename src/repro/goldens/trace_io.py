"""JSONL golden-trace files: header, one event per line, end sentinel.

Layout of a golden file::

    {"format": "repro.golden-trace/1", "scenario": {...}, "git": "..."}
    {"kind": "speed", "time": 0.0, "frequency": 2.0}
    {"kind": "segment", "label": "exec", ...}
    ...
    {"kind": "result", "completed": true, "energy": ..., ...}
    {"kind": "end", "events": 314}

Floats are encoded with the shared exact codec of
:mod:`repro.api.results` (shortest-repr doubles, ``NaN``/``Infinity``
literals), so every event round-trips bit-exactly.  The trailing
``end`` record carries the event count: a file cut short at a line
boundary — which would otherwise read as a complete, shorter trace —
is detected as truncation, and any malformed line surfaces as a
:class:`~repro.errors.ConfigurationError` with its line number rather
than a traceback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TextIO, Tuple

from repro.api.results import git_describe, json_dumps_exact, json_loads_exact
from repro.core.checkpoints import CheckpointKind
from repro.errors import ConfigurationError
from repro.goldens.events import EVENT_KINDS, RecordingRecorder, TraceEvent
from repro.sim.trace import TraceRecorder

__all__ = ["FORMAT", "TraceHeader", "JsonlTraceWriter", "read_golden"]

#: Golden-trace format tag; bump on incompatible layout changes.
FORMAT = "repro.golden-trace/1"


@dataclass(frozen=True)
class TraceHeader:
    """First line of a golden file: what was run, by which tree.

    ``scenario`` is the full :class:`~repro.goldens.scenarios.
    GoldenScenario` payload (scheme, fault process, seed, task, block
    parameters) — everything the replay engine needs to re-execute the
    run.  ``git`` is provenance only (the describe string of the tree
    that *recorded* the file); replay never compares it.
    """

    scenario: Dict[str, object]
    git: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {"format": FORMAT, "scenario": dict(self.scenario), "git": self.git}

    @classmethod
    def from_dict(cls, payload: object) -> "TraceHeader":
        if not isinstance(payload, dict) or "format" not in payload:
            raise ConfigurationError(
                "golden trace has no header line (expected a "
                f"{{'format': {FORMAT!r}, ...}} record first)"
            )
        declared = payload["format"]
        if declared != FORMAT:
            raise ConfigurationError(
                f"unsupported golden-trace format {declared!r} "
                f"(this build reads {FORMAT!r})"
            )
        scenario = payload.get("scenario")
        if not isinstance(scenario, dict):
            raise ConfigurationError(
                "golden trace header carries no scenario payload"
            )
        return cls(scenario=scenario, git=payload.get("git"))


class JsonlTraceWriter(TraceRecorder):
    """Streams every recorder callback to a JSONL golden file.

    A :class:`~repro.sim.trace.TraceRecorder`: pass it straight to
    :func:`~repro.sim.executor.simulate_run` (alone or inside a
    :class:`~repro.sim.trace.TeeRecorder`).  Call :meth:`result` with
    the finished run's payload, then :meth:`close` — the end sentinel
    is only written on close, so an interrupted recording is
    detectably truncated rather than silently short.  Usable as a
    context manager.
    """

    def __init__(self, path: str, header: TraceHeader) -> None:
        self.path = path
        self._count = 0
        self._recorder = RecordingRecorder()
        self._handle: Optional[TextIO] = open(path, "w", encoding="utf-8")
        self._write_line(header.to_dict())

    # -- recorder callbacks: normalise via RecordingRecorder ----------

    def _flush_events(self) -> None:
        for event in self._recorder.events:
            self._write_line(event.to_dict())
            self._count += 1
        self._recorder.events.clear()

    def _write_line(self, record: Dict[str, object]) -> None:
        if self._handle is None:
            raise ConfigurationError(
                f"golden-trace writer for {self.path!r} is closed"
            )
        self._handle.write(json_dumps_exact(record) + "\n")

    def segment(
        self, label: str, frequency: float, start: float, end: float, cycles: float
    ) -> None:
        self._recorder.segment(label, frequency, start, end, cycles)
        self._flush_events()

    def checkpoint(self, time: float, kind: CheckpointKind) -> None:
        self._recorder.checkpoint(time, kind)
        self._flush_events()

    def fault(self, time: float, *, corrupting: bool) -> None:
        self._recorder.fault(time, corrupting=corrupting)
        self._flush_events()

    def rollback(self, time: float, committed_cycles: float) -> None:
        self._recorder.rollback(time, committed_cycles)
        self._flush_events()

    def speed(self, time: float, frequency: float) -> None:
        self._recorder.speed(time, frequency)
        self._flush_events()

    def finish(self, time: float, *, completed: bool, timely: bool) -> None:
        self._recorder.finish(time, completed=completed, timely=timely)
        self._flush_events()

    # -- harness-level records ----------------------------------------

    def result(self, payload: Dict[str, object]) -> None:
        """Write the end-of-run ``result`` record (RunResult summary)."""
        self._write_line(TraceEvent("result", dict(payload)).to_dict())
        self._count += 1

    def close(self) -> None:
        if self._handle is None:
            return
        self._write_line({"kind": "end", "events": self._count})
        self._handle.close()
        self._handle = None

    @property
    def events_written(self) -> int:
        return self._count

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_golden(path: str) -> Tuple[TraceHeader, List[TraceEvent]]:
    """Parse a golden file into its header and ordered event list.

    Every malformed input — unreadable file, invalid JSON, missing or
    wrong-format header, unknown event kind, missing end sentinel
    (truncation), event-count mismatch — raises
    :class:`~repro.errors.ConfigurationError` naming the file and,
    where it applies, the line.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as exc:
        raise ConfigurationError(f"cannot read golden trace {path!r}: {exc}")

    records: List[Dict[str, object]] = []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        record = json_loads_exact(
            line, what=f"golden trace ({path}, line {number})"
        )
        if not isinstance(record, dict):
            raise ConfigurationError(
                f"golden trace {path!r} line {number}: expected a JSON "
                f"object, got {type(record).__name__}"
            )
        records.append(record)
    if not records:
        raise ConfigurationError(f"golden trace {path!r} is empty")

    header = TraceHeader.from_dict(records[0])
    body = records[1:]
    if not body or body[-1].get("kind") != "end":
        raise ConfigurationError(
            f"golden trace {path!r} is truncated: no end sentinel "
            f"(recording was interrupted, or the file was cut short)"
        )
    sentinel = body.pop()
    declared = sentinel.get("events")
    if declared != len(body):
        raise ConfigurationError(
            f"golden trace {path!r} is corrupt: end sentinel declares "
            f"{declared!r} events but {len(body)} are present"
        )

    events: List[TraceEvent] = []
    for index, record in enumerate(body):
        kind = record.get("kind")
        if kind not in EVENT_KINDS:
            raise ConfigurationError(
                f"golden trace {path!r} event {index}: unknown kind {kind!r}"
            )
        events.append(TraceEvent.from_dict(record))
    return header, events
