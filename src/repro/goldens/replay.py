"""Record and replay golden traces; report the first diverging event.

:func:`record_golden` runs a scenario through the *reference* executor
loop and streams every trace callback (plus the final ``result``
summary) to a JSONL golden file.  :func:`replay` re-executes the
scenario against the current tree with a :class:`DivergenceRecorder`
that compares events online: the moment a callback disagrees with the
golden — in kind or in any bit of any float — the run halts and the
:class:`DriftReport` names the inflection point (event index, kind,
expected-vs-actual fields) with the surrounding events and a rendered
timeline excerpt, instead of the bare "bit-identity failed" an
end-of-run byte-diff gives.

A replay that matches event-for-event additionally re-runs the fused
Monte-Carlo fast loop (:func:`~repro.sim.executor.execute_once`) and
checks its outcome against the golden's ``result`` record — the guard
that keeps a future compiled kernel honest even where the traced
reference loop did not change.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.api.results import git_describe
from repro.core.checkpoints import CheckpointKind
from repro.errors import ConfigurationError
from repro.goldens.events import RecordingRecorder, TraceEvent, payload_diff
from repro.goldens.scenarios import (
    GOLDEN_SCENARIOS,
    GoldenScenario,
    scenario,
)
from repro.goldens.trace_io import JsonlTraceWriter, TraceHeader, read_golden
from repro.sim.executor import RunOutcome, RunResult, execute_once, simulate_run
from repro.sim.trace import TeeRecorder, Trace, TraceRecorder

__all__ = [
    "Divergence",
    "DivergenceRecorder",
    "DriftReport",
    "GoldenUpdate",
    "default_golden_dir",
    "record_golden",
    "record_matrix",
    "replay",
    "replay_paths",
    "resolve_golden_paths",
    "run_result_payload",
    "update_goldens",
]


def default_golden_dir() -> str:
    """The committed golden directory of a source checkout."""
    return str(Path(__file__).resolve().parents[3] / "tests" / "goldens")


# ---------------------------------------------------------------------------
# recording


def run_result_payload(result: RunResult) -> Dict[str, object]:
    """The ``result`` record: every :class:`RunResult` field, JSON-flat.

    ``cycles_by_frequency`` becomes a frequency-sorted pair list (JSON
    objects cannot key on floats without losing exactness).
    """
    return {
        "completed": bool(result.completed),
        "timely": bool(result.timely),
        "finish_time": float(result.finish_time),
        "energy": float(result.energy),
        "cycles_executed": float(result.cycles_executed),
        "cycles_by_frequency": [
            [float(freq), float(cycles)]
            for freq, cycles in sorted(result.cycles_by_frequency.items())
        ],
        "detected_faults": int(result.detected_faults),
        "injected_faults": int(result.injected_faults),
        "checkpoints": int(result.checkpoints),
        "sub_checkpoints": int(result.sub_checkpoints),
        "rollbacks": int(result.rollbacks),
        "failure_reason": result.failure_reason,
    }


def _outcome_payload(outcome: RunOutcome) -> Dict[str, object]:
    """The fast-loop subset of :func:`run_result_payload`."""
    return {
        "completed": bool(outcome.completed),
        "timely": bool(outcome.timely),
        "finish_time": float(outcome.finish_time),
        "energy": float(outcome.energy),
        "detected_faults": int(outcome.detected_faults),
        "injected_faults": int(outcome.injected_faults),
        "checkpoints": int(outcome.checkpoints),
        "sub_checkpoints": int(outcome.sub_checkpoints),
        "rollbacks": int(outcome.rollbacks),
    }


def record_golden(scen: GoldenScenario, directory: str) -> str:
    """Run ``scen`` through the reference loop; write its golden file.

    Returns the written path (``<directory>/<name>.jsonl``).  The run
    and the recording happen in one pass — the writer *is* the trace
    recorder — so the golden is the execution, not a re-serialisation.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{scen.name}.jsonl")
    header = TraceHeader(scenario=scen.to_payload(), git=git_describe())
    with JsonlTraceWriter(path, header) as writer:
        result = simulate_run(
            scen.task,
            scen.build_policy(),
            scen.faults,
            rng=scen.generator(),
            faults_during_overhead=scen.faults_during_overhead,
            recorder=writer,
        )
        writer.result(run_result_payload(result))
    return path


def record_matrix(
    directory: str, names: Optional[Sequence[str]] = None
) -> List[str]:
    """Record the curated matrix (or a named subset); return the paths."""
    chosen = (
        list(GOLDEN_SCENARIOS)
        if names is None
        else [scenario(name) for name in names]
    )
    return [record_golden(scen, directory) for scen in chosen]


# ---------------------------------------------------------------------------
# replay


class DivergenceHalt(Exception):
    """Internal: aborts the replayed run at the first diverging event.

    Deliberately *not* a :class:`~repro.errors.ReproError` — it must
    never be mistaken for a configuration problem by CLI error
    handling; :func:`replay` catches it by type.
    """


@dataclass(frozen=True)
class Divergence:
    """The inflection point: where replay first left the golden trace.

    ``reason`` is one of ``"mismatch"`` (event ``index`` differs),
    ``"extra-event"`` (the replay produced an event past the golden's
    end), ``"missing-event"`` (the replay finished before the golden
    did) or ``"result"`` (every event matched but the final
    :class:`RunResult` summary differs — e.g. a perturbed energy
    coefficient, which no timeline event carries).
    """

    index: int
    reason: str
    expected: Optional[TraceEvent]
    actual: Optional[TraceEvent]

    @property
    def kind(self) -> str:
        """The event kind at the inflection point."""
        event = self.expected or self.actual
        return event.kind if event is not None else "?"

    def field_diffs(self) -> List[Tuple[str, object, object]]:
        """Differing payload fields as ``(field, expected, actual)``."""
        if self.expected is None or self.actual is None:
            return []
        return payload_diff(self.expected.payload, self.actual.payload)


class DivergenceRecorder(TraceRecorder):
    """Compares the replayed run to the golden's events, online.

    Each callback is normalised through the same
    :class:`~repro.goldens.events.RecordingRecorder` the writer used,
    compared bit-exactly against the next expected event, and — on the
    first disagreement — stored as :attr:`divergence` before
    :class:`DivergenceHalt` aborts the run (there is nothing left to
    learn from the rest of a diverged execution).
    """

    def __init__(self, expected: Sequence[TraceEvent]) -> None:
        self._expected = list(expected)
        self._normaliser = RecordingRecorder()
        self.matched = 0
        self.divergence: Optional[Divergence] = None

    def _check(self) -> None:
        actual = self._normaliser.events.pop()
        index = self.matched
        if index >= len(self._expected):
            self.divergence = Divergence(
                index=index, reason="extra-event", expected=None, actual=actual
            )
            raise DivergenceHalt()
        expected = self._expected[index]
        if not expected.same_values(actual):
            self.divergence = Divergence(
                index=index, reason="mismatch", expected=expected, actual=actual
            )
            raise DivergenceHalt()
        self.matched += 1

    def segment(
        self, label: str, frequency: float, start: float, end: float, cycles: float
    ) -> None:
        self._normaliser.segment(label, frequency, start, end, cycles)
        self._check()

    def checkpoint(self, time: float, kind: CheckpointKind) -> None:
        self._normaliser.checkpoint(time, kind)
        self._check()

    def fault(self, time: float, *, corrupting: bool) -> None:
        self._normaliser.fault(time, corrupting=corrupting)
        self._check()

    def rollback(self, time: float, committed_cycles: float) -> None:
        self._normaliser.rollback(time, committed_cycles)
        self._check()

    def speed(self, time: float, frequency: float) -> None:
        self._normaliser.speed(time, frequency)
        self._check()

    def finish(self, time: float, *, completed: bool, timely: bool) -> None:
        self._normaliser.finish(time, completed=completed, timely=timely)
        self._check()


#: Events shown on each side of the inflection point in reports.
_CONTEXT_EVENTS = 3


@dataclass(frozen=True)
class DriftReport:
    """The outcome of replaying one golden file."""

    scenario_name: str
    path: str
    events_total: int  #: events in the golden (incl. the result record)
    events_matched: int  #: events confirmed identical before the end/halt
    divergence: Optional[Divergence]
    #: Field diffs of the fused fast loop vs the golden result record
    #: (None = identical or not checked because the traced replay
    #: already diverged).
    fast_diffs: Optional[List[Tuple[str, object, object]]]
    recorded_git: Optional[str]
    current_git: Optional[str]
    context: Tuple[str, ...] = ()
    timeline: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.divergence is None and not self.fast_diffs

    def render(self) -> str:
        """Human-readable drift report (one block per golden file)."""
        lines = [
            f"golden {self.scenario_name} ({self.path})",
            f"  recorded by {self.recorded_git or '<unknown tree>'}, "
            f"replayed on {self.current_git or '<unknown tree>'}",
        ]
        if self.ok:
            lines.append(
                f"  OK: {self.events_matched}/{self.events_total} events "
                f"identical; fast loop matches the result record"
            )
            return "\n".join(lines)
        d = self.divergence
        if d is not None:
            lines.append(
                f"  DRIFT at event {d.index} ({d.kind}, {d.reason}) after "
                f"{self.events_matched} identical events:"
            )
            lines.append(
                f"    expected: "
                f"{d.expected.describe() if d.expected else '<end of golden>'}"
            )
            lines.append(
                f"    actual:   "
                f"{d.actual.describe() if d.actual else '<run ended>'}"
            )
            for field, expected, actual in d.field_diffs():
                lines.append(
                    f"    field {field}: expected {expected!r}, "
                    f"got {actual!r}"
                )
            if self.context:
                lines.append("  golden events around the inflection point:")
                lines.extend(f"    {line}" for line in self.context)
            if self.timeline:
                lines.append("  replayed timeline up to the divergence:")
                lines.extend(
                    f"    {line}" for line in self.timeline.splitlines()
                )
        if self.fast_diffs:
            lines.append(
                "  FAST-PATH DRIFT: traced reference loop matches the "
                "golden, but the fused fast loop differs:"
            )
            for field, expected, actual in self.fast_diffs:
                lines.append(
                    f"    field {field}: expected {expected!r}, "
                    f"got {actual!r}"
                )
        return "\n".join(lines)


def _context_lines(
    events: Sequence[TraceEvent], index: int
) -> Tuple[str, ...]:
    lo = max(0, index - _CONTEXT_EVENTS)
    hi = min(len(events), index + _CONTEXT_EVENTS + 1)
    return tuple(
        f"[{i}]{' >>' if i == index else '   '} {events[i].describe()}"
        for i in range(lo, hi)
    )


def replay(path: str) -> DriftReport:
    """Re-execute a golden file against the current tree; diff online.

    Malformed files (truncated, corrupted, wrong format version,
    unknown scenario payload) raise
    :class:`~repro.errors.ConfigurationError`; a well-formed golden
    whose replay drifts returns a non-:attr:`~DriftReport.ok` report —
    drift is a *finding*, not an error.
    """
    header, events = read_golden(path)
    scen = GoldenScenario.from_payload(header.scenario)

    expected_result: Optional[TraceEvent] = None
    callback_events = events
    if events and events[-1].kind == "result":
        expected_result = events[-1]
        callback_events = events[:-1]
    if any(event.kind == "result" for event in callback_events):
        raise ConfigurationError(
            f"golden trace {path!r} is corrupt: a result record appears "
            f"before the end of the trace"
        )

    recorder = DivergenceRecorder(callback_events)
    trace = Trace()
    divergence: Optional[Divergence] = None
    result: Optional[RunResult] = None
    try:
        # The Trace runs *before* the comparer in the tee, so the
        # rendered excerpt includes the diverging event itself.
        result = simulate_run(
            scen.task,
            scen.build_policy(),
            scen.faults,
            rng=scen.generator(),
            faults_during_overhead=scen.faults_during_overhead,
            recorder=TeeRecorder(trace, recorder),
        )
    except DivergenceHalt:
        divergence = recorder.divergence

    if divergence is None:
        if recorder.matched < len(callback_events):
            divergence = Divergence(
                index=recorder.matched,
                reason="missing-event",
                expected=callback_events[recorder.matched],
                actual=None,
            )
        elif expected_result is not None:
            assert result is not None
            actual_result = TraceEvent("result", run_result_payload(result))
            if not expected_result.same_values(actual_result):
                divergence = Divergence(
                    index=len(callback_events),
                    reason="result",
                    expected=expected_result,
                    actual=actual_result,
                )

    fast_diffs: Optional[List[Tuple[str, object, object]]] = None
    if divergence is None and expected_result is not None:
        outcome = execute_once(
            scen.task,
            scen.build_policy(),
            scen.faults,
            rng=scen.generator(),
            faults_during_overhead=scen.faults_during_overhead,
        )
        actual_fast = _outcome_payload(outcome)
        golden_subset = {
            field: expected_result.payload[field]
            for field in actual_fast
            if field in expected_result.payload
        }
        fast_diffs = payload_diff(golden_subset, actual_fast) or None

    return DriftReport(
        scenario_name=scen.name,
        path=path,
        events_total=len(events),
        events_matched=recorder.matched
        + (1 if divergence is None and expected_result is not None else 0),
        divergence=divergence,
        fast_diffs=fast_diffs,
        recorded_git=header.git,
        current_git=git_describe(),
        context=(
            _context_lines(events, divergence.index)
            if divergence is not None
            else ()
        ),
        timeline=trace.render() if divergence is not None else None,
    )


def resolve_golden_paths(paths: Iterable[str]) -> List[str]:
    """Expand directories to their sorted ``*.jsonl`` golden files."""
    resolved: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            found = sorted(
                os.path.join(path, name)
                for name in os.listdir(path)
                if name.endswith(".jsonl")
            )
            if not found:
                raise ConfigurationError(
                    f"no golden traces (*.jsonl) under {path!r}"
                )
            resolved.extend(found)
        else:
            resolved.append(path)
    if not resolved:
        raise ConfigurationError("no golden traces to replay")
    return resolved


def replay_paths(paths: Iterable[str]) -> List[DriftReport]:
    """Replay files and/or directories of goldens, in order."""
    return [replay(path) for path in resolve_golden_paths(paths)]


# ---------------------------------------------------------------------------
# regeneration


#: Per-file cap on rendered changed events (the full diff is in git).
_MAX_DIFF_EVENTS = 5


@dataclass(frozen=True)
class GoldenUpdate:
    """What re-recording one golden file changed, event by event.

    ``changed`` holds ``(index, kind, field_diffs)`` for the first
    :data:`_MAX_DIFF_EVENTS` events whose payload differs (field diffs
    as ``(field, old, new)``); ``changed_total`` counts all of them so
    the render can say how many were elided.
    """

    scenario_name: str
    path: str
    created: bool  #: no prior golden existed at the path
    events_before: int
    events_after: int
    changed: Tuple[Tuple[int, str, Tuple[Tuple[str, object, object], ...]], ...]
    changed_total: int

    @property
    def identical(self) -> bool:
        return not self.created and self.changed_total == 0

    def render(self) -> str:
        if self.created:
            return (
                f"new     {self.scenario_name}: recorded "
                f"{self.events_after} events (no prior golden)"
            )
        if self.identical:
            return (
                f"same    {self.scenario_name}: {self.events_after} events, "
                f"bit-identical to the committed golden"
            )
        lines = [
            f"CHANGED {self.scenario_name}: {self.changed_total} of "
            f"{max(self.events_before, self.events_after)} events differ "
            f"({self.events_before} -> {self.events_after} events)"
        ]
        for index, kind, diffs in self.changed:
            if not diffs:
                lines.append(f"  event {index} ({kind}): present on one side only")
                continue
            for field, old, new in diffs:
                lines.append(
                    f"  event {index} ({kind}) {field}: {old!r} -> {new!r}"
                )
        if self.changed_total > len(self.changed):
            lines.append(
                f"  ... {self.changed_total - len(self.changed)} more "
                f"changed event(s); review the full diff with git"
            )
        return "\n".join(lines)


def _diff_events(
    old: Sequence[TraceEvent], new: Sequence[TraceEvent]
) -> Tuple[
    Tuple[Tuple[int, str, Tuple[Tuple[str, object, object], ...]], ...], int
]:
    """Positional event diff: (first few changed events, total changed)."""
    shown: List[Tuple[int, str, Tuple[Tuple[str, object, object], ...]]] = []
    total = 0
    for index in range(max(len(old), len(new))):
        if index >= len(old):
            event, diffs = new[index], ()
        elif index >= len(new):
            event, diffs = old[index], ()
        else:
            if old[index].same_values(new[index]):
                continue
            event = new[index]
            if old[index].kind == new[index].kind:
                diffs = tuple(payload_diff(old[index].payload, new[index].payload))
            else:
                diffs = (("kind", old[index].kind, new[index].kind),)
        total += 1
        if len(shown) < _MAX_DIFF_EVENTS:
            shown.append((index, event.kind, diffs))
    return tuple(shown), total


def update_goldens(
    directory: Optional[str] = None, names: Optional[Sequence[str]] = None
) -> List[GoldenUpdate]:
    """Re-record the golden matrix in place; report what changed.

    The reviewable half of an *intentional* contract change: where
    :func:`replay` treats any divergence as drift, this regenerates
    each committed golden (``directory`` defaults to the checkout's
    ``tests/goldens/``) and returns a per-file, event-level
    :class:`GoldenUpdate` — so the diff a maintainer commits is the
    diff they reviewed.  Old events are read *before* the re-record
    overwrites the file.
    """
    target = directory if directory is not None else default_golden_dir()
    chosen = (
        list(GOLDEN_SCENARIOS)
        if names is None
        else [scenario(name) for name in names]
    )
    updates: List[GoldenUpdate] = []
    for scen in chosen:
        path = os.path.join(target, f"{scen.name}.jsonl")
        old_events: Optional[List[TraceEvent]] = None
        if os.path.exists(path):
            _old_header, old_events = read_golden(path)
        record_golden(scen, target)
        _new_header, new_events = read_golden(path)
        if old_events is None:
            updates.append(
                GoldenUpdate(
                    scenario_name=scen.name,
                    path=path,
                    created=True,
                    events_before=0,
                    events_after=len(new_events),
                    changed=(),
                    changed_total=0,
                )
            )
            continue
        shown, total = _diff_events(old_events, new_events)
        updates.append(
            GoldenUpdate(
                scenario_name=scen.name,
                path=path,
                created=False,
                events_before=len(old_events),
                events_after=len(new_events),
                changed=shown,
                changed_total=total,
            )
        )
    return updates
