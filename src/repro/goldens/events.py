"""Canonical trace events: one flat record per recorder callback.

Every :class:`~repro.sim.trace.TraceRecorder` callback (plus the
harness-level ``result`` record summarising the finished
:class:`~repro.sim.executor.RunResult`) maps to one
:class:`TraceEvent` — a kind tag and a flat payload of JSON-safe
scalars.  Equality between events is *bit-exact* on floats (NaN equals
NaN, ``-0.0`` differs from ``0.0``), which is what lets the replay
engine in :mod:`repro.goldens.replay` call two runs identical with the
same confidence as the end-of-run byte-diffs it replaces — but per
event, so the first divergence is localised instead of reported as a
bare bit-identity failure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.checkpoints import CheckpointKind
from repro.sim.trace import TraceRecorder

__all__ = [
    "EVENT_KINDS",
    "TraceEvent",
    "RecordingRecorder",
    "same_scalar",
    "payload_diff",
]

#: Every kind a golden file may contain, in no particular order.
#: ``result`` is written by the recording harness, not the executor.
EVENT_KINDS = (
    "segment",
    "checkpoint",
    "fault",
    "rollback",
    "speed",
    "finish",
    "result",
)


def same_scalar(a: object, b: object) -> bool:
    """Bit-exact scalar equality: NaN == NaN, ``-0.0`` != ``0.0``.

    Non-float values fall back to ``==`` with a type guard (so ``1``
    and ``1.0`` — an int smuggled where a float belongs — do not
    compare equal and mask a codec bug).
    """
    if isinstance(a, float) or isinstance(b, float):
        if not (isinstance(a, float) and isinstance(b, float)):
            return False
        if math.isnan(a) or math.isnan(b):
            return math.isnan(a) and math.isnan(b)
        return a == b and math.copysign(1.0, a) == math.copysign(1.0, b)
    if type(a) is not type(b):
        return False
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(
            same_scalar(x, y) for x, y in zip(a, b)
        )
    return a == b


def payload_diff(
    expected: Dict[str, object], actual: Dict[str, object]
) -> List[Tuple[str, object, object]]:
    """Fields whose values differ, as ``(field, expected, actual)``.

    Fields present on only one side appear with the sentinel string
    ``"<absent>"`` on the other.
    """
    diffs: List[Tuple[str, object, object]] = []
    for field in list(expected) + [f for f in actual if f not in expected]:
        if field not in expected:
            diffs.append((field, "<absent>", actual[field]))
        elif field not in actual:
            diffs.append((field, expected[field], "<absent>"))
        elif not same_scalar(expected[field], actual[field]):
            diffs.append((field, expected[field], actual[field]))
    return diffs


@dataclass(frozen=True)
class TraceEvent:
    """One recorder callback (or the final result), flattened."""

    kind: str
    payload: Dict[str, object]

    def same_values(self, other: "TraceEvent") -> bool:
        """Kind and payload identity, bit-exact on floats."""
        return (
            self.kind == other.kind
            and not payload_diff(self.payload, other.payload)
        )

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {"kind": self.kind}
        record.update(self.payload)
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "TraceEvent":
        payload = dict(record)
        kind = payload.pop("kind")
        return cls(kind=kind, payload=payload)

    def describe(self) -> str:
        """One-line human rendering, ``kind(field=value, ...)``."""
        fields = ", ".join(f"{k}={v!r}" for k, v in self.payload.items())
        return f"{self.kind}({fields})"


class RecordingRecorder(TraceRecorder):
    """Turns recorder callbacks into :class:`TraceEvent`\\ s, in order.

    The single normalisation point: the golden writer, the divergence
    recorder and the round-trip tests all build their events through
    this class, so "what exactly does a callback serialise as" is
    defined once.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def segment(
        self, label: str, frequency: float, start: float, end: float, cycles: float
    ) -> None:
        self.events.append(
            TraceEvent(
                "segment",
                {
                    "label": label,
                    "frequency": float(frequency),
                    "start": float(start),
                    "end": float(end),
                    "cycles": float(cycles),
                },
            )
        )

    def checkpoint(self, time: float, kind: CheckpointKind) -> None:
        self.events.append(
            TraceEvent(
                "checkpoint", {"time": float(time), "checkpoint": kind.value}
            )
        )

    def fault(self, time: float, *, corrupting: bool) -> None:
        self.events.append(
            TraceEvent(
                "fault", {"time": float(time), "corrupting": bool(corrupting)}
            )
        )

    def rollback(self, time: float, committed_cycles: float) -> None:
        self.events.append(
            TraceEvent(
                "rollback",
                {
                    "time": float(time),
                    "committed_cycles": float(committed_cycles),
                },
            )
        )

    def speed(self, time: float, frequency: float) -> None:
        self.events.append(
            TraceEvent(
                "speed", {"time": float(time), "frequency": float(frequency)}
            )
        )

    def finish(self, time: float, *, completed: bool, timely: bool) -> None:
        self.events.append(
            TraceEvent(
                "finish",
                {
                    "time": float(time),
                    "completed": bool(completed),
                    "timely": bool(timely),
                },
            )
        )
