"""Curated golden scenarios: one reference run per scheme × fault mix.

A :class:`GoldenScenario` pins everything one reference execution
depends on — the task, the scheme, the fault process, the seed — and
round-trips through the golden-file header, so a replay months later
re-executes *exactly* the run that was recorded, on whatever tree is
checked out then.

:data:`GOLDEN_SCENARIOS` is the committed matrix: every checkpointing
scheme, every stochastic fault process, both cost models, both static
speeds, and a faults-during-overhead variant.  Tasks use a shortened
deadline (the paper's parameters scaled down) so each trace stays a
few hundred events — enough to exercise every rollback path, small
enough to diff by eye.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from repro.core.checkpoints import CostModel
from repro.core.schemes import (
    AdaptiveCCPPolicy,
    AdaptiveDVSPolicy,
    AdaptiveSCPPolicy,
    CheckpointPolicy,
    KFaultTolerantPolicy,
    PoissonArrivalPolicy,
)
from repro.errors import ConfigurationError
from repro.sim.faults import (
    BurstyFaults,
    DualPoissonFaults,
    FaultProcess,
    PoissonFaults,
    ScriptedFaults,
    WeibullFaults,
)
from repro.sim.rng import RandomSource
from repro.sim.task import TaskSpec

__all__ = [
    "GoldenScenario",
    "GOLDEN_SCENARIOS",
    "scenario",
    "scenario_names",
]

_SCHEMES: Dict[str, Callable[..., CheckpointPolicy]] = {
    "Poisson": PoissonArrivalPolicy,
    "k-f-t": KFaultTolerantPolicy,
    "A_D": AdaptiveDVSPolicy,
    "A_D_S": AdaptiveSCPPolicy,
    "A_D_C": AdaptiveCCPPolicy,
}

#: Static (non-DVS) schemes take the execution frequency; adaptive
#: schemes take their (default) AdaptiveConfig.
_STATIC_SCHEMES = ("Poisson", "k-f-t")


@dataclass(frozen=True)
class GoldenScenario:
    """One fully-pinned reference run."""

    name: str
    scheme: str
    task: TaskSpec
    faults: FaultProcess
    seed: int
    static_frequency: float = 1.0
    faults_during_overhead: bool = False

    def __post_init__(self) -> None:
        if self.scheme not in _SCHEMES:
            raise ConfigurationError(
                f"unknown scheme {self.scheme!r}; valid: "
                f"{', '.join(_SCHEMES)}"
            )

    def build_policy(self) -> CheckpointPolicy:
        """A fresh policy instance (policies cache their plan)."""
        if self.scheme in _STATIC_SCHEMES:
            return _SCHEMES[self.scheme](self.static_frequency)
        return _SCHEMES[self.scheme]()

    def generator(self) -> np.random.Generator:
        """The run's fault-stream generator, derived from the seed."""
        return RandomSource(self.seed).generator()

    # -- serialisation (the golden-file header) ------------------------

    def to_payload(self) -> Dict[str, object]:
        task = self.task
        costs = task.costs
        return {
            "name": self.name,
            "scheme": self.scheme,
            "seed": self.seed,
            "static_frequency": self.static_frequency,
            "faults_during_overhead": self.faults_during_overhead,
            "task": {
                "cycles": task.cycles,
                "deadline": task.deadline,
                "fault_budget": task.fault_budget,
                "fault_rate": task.fault_rate,
                "costs": {
                    "store_cycles": costs.store_cycles,
                    "compare_cycles": costs.compare_cycles,
                    "rollback_cycles": costs.rollback_cycles,
                },
            },
            "faults": _process_to_payload(self.faults),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "GoldenScenario":
        try:
            task = payload["task"]
            costs = task["costs"]
            return cls(
                name=payload["name"],
                scheme=payload["scheme"],
                seed=payload["seed"],
                static_frequency=payload["static_frequency"],
                faults_during_overhead=payload["faults_during_overhead"],
                task=TaskSpec(
                    cycles=task["cycles"],
                    deadline=task["deadline"],
                    fault_budget=task["fault_budget"],
                    fault_rate=task["fault_rate"],
                    costs=CostModel(
                        store_cycles=costs["store_cycles"],
                        compare_cycles=costs["compare_cycles"],
                        rollback_cycles=costs["rollback_cycles"],
                    ),
                ),
                faults=_process_from_payload(payload["faults"]),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(f"malformed golden scenario: {exc!r}")


def _process_to_payload(process: FaultProcess) -> Dict[str, object]:
    if isinstance(process, PoissonFaults):
        return {"kind": "poisson", "rate": process.rate}
    if isinstance(process, DualPoissonFaults):
        return {
            "kind": "dual_poisson",
            "rate_per_processor": process.rate_per_processor,
        }
    if isinstance(process, WeibullFaults):
        return {"kind": "weibull", "shape": process.shape, "scale": process.scale}
    if isinstance(process, BurstyFaults):
        return {
            "kind": "bursty",
            "quiet_rate": process.quiet_rate,
            "burst_rate": process.burst_rate,
            "quiet_dwell": process.quiet_dwell,
            "burst_dwell": process.burst_dwell,
        }
    if isinstance(process, ScriptedFaults):
        return {"kind": "scripted", "times": list(process.times)}
    raise ConfigurationError(
        f"fault process {type(process).__name__} has no golden serialisation"
    )


def _process_from_payload(payload: Dict[str, object]) -> FaultProcess:
    try:
        kind = payload["kind"]
        if kind == "poisson":
            return PoissonFaults(payload["rate"])
        if kind == "dual_poisson":
            return DualPoissonFaults(payload["rate_per_processor"])
        if kind == "weibull":
            return WeibullFaults(shape=payload["shape"], scale=payload["scale"])
        if kind == "bursty":
            return BurstyFaults(
                quiet_rate=payload["quiet_rate"],
                burst_rate=payload["burst_rate"],
                quiet_dwell=payload["quiet_dwell"],
                burst_dwell=payload["burst_dwell"],
            )
        if kind == "scripted":
            return ScriptedFaults(payload["times"])
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(f"malformed fault-process payload: {exc!r}")
    raise ConfigurationError(f"unknown fault-process kind {kind!r}")


def _task(
    u: float, lam: float, *, frequency: float, k: int, costs: CostModel,
    deadline: float = 4000.0,
) -> TaskSpec:
    """A scaled-down table task: paper parameters, shorter deadline."""
    return TaskSpec.from_utilization(
        u,
        deadline=deadline,
        frequency=frequency,
        fault_budget=k,
        fault_rate=lam,
        costs=costs,
    )


def _build_matrix() -> Tuple[GoldenScenario, ...]:
    scp = CostModel.scp_favourable()
    ccp = CostModel.ccp_favourable()
    return (
        GoldenScenario(
            name="poisson-static-f1",
            scheme="Poisson",
            task=_task(0.80, 1.4e-3, frequency=1.0, k=5, costs=scp),
            faults=PoissonFaults(1.4e-3),
            seed=200601,
        ),
        GoldenScenario(
            name="kft-static-f2",
            scheme="k-f-t",
            task=_task(0.92, 2.0e-4, frequency=2.0, k=1, costs=scp),
            faults=PoissonFaults(2.0e-4),
            seed=200602,
            static_frequency=2.0,
        ),
        GoldenScenario(
            name="adaptive-dvs-poisson",
            scheme="A_D",
            task=_task(0.78, 1.6e-3, frequency=1.0, k=5, costs=scp),
            faults=PoissonFaults(1.6e-3),
            seed=200603,
        ),
        GoldenScenario(
            name="adaptive-scp-poisson",
            scheme="A_D_S",
            task=_task(0.82, 1.4e-3, frequency=1.0, k=5, costs=scp),
            faults=PoissonFaults(1.4e-3),
            seed=200604,
        ),
        GoldenScenario(
            name="adaptive-ccp-poisson",
            scheme="A_D_C",
            task=_task(0.80, 1.6e-3, frequency=1.0, k=5, costs=ccp),
            faults=PoissonFaults(1.6e-3),
            seed=200605,
        ),
        GoldenScenario(
            name="adaptive-scp-weibull",
            scheme="A_D_S",
            task=_task(0.80, 1.4e-3, frequency=1.0, k=5, costs=scp),
            faults=WeibullFaults(shape=0.7, scale=1.0 / 1.4e-3),
            seed=200606,
        ),
        GoldenScenario(
            name="adaptive-ccp-bursty",
            scheme="A_D_C",
            task=_task(0.80, 1.4e-3, frequency=1.0, k=5, costs=ccp),
            faults=BurstyFaults(
                quiet_rate=2.0e-4,
                burst_rate=8.0e-3,
                quiet_dwell=900.0,
                burst_dwell=200.0,
            ),
            seed=200607,
        ),
        GoldenScenario(
            name="adaptive-dvs-dual-poisson",
            scheme="A_D",
            task=_task(0.78, 1.4e-3, frequency=1.0, k=5, costs=scp),
            faults=DualPoissonFaults(7.0e-4),
            seed=200608,
        ),
        GoldenScenario(
            name="static-overhead-faults",
            scheme="Poisson",
            task=_task(0.76, 2.8e-3, frequency=1.0, k=8, costs=scp),
            faults=PoissonFaults(2.8e-3),
            seed=200609,
            faults_during_overhead=True,
        ),
        GoldenScenario(
            name="adaptive-scp-scripted",
            scheme="A_D_S",
            task=_task(0.80, 1.4e-3, frequency=1.0, k=5, costs=scp),
            faults=ScriptedFaults((150.0, 151.0, 600.0, 1800.0, 3500.0)),
            seed=200610,
        ),
    )


#: The committed matrix, recorded under ``tests/goldens/``.
GOLDEN_SCENARIOS: Tuple[GoldenScenario, ...] = _build_matrix()

_BY_NAME = {s.name: s for s in GOLDEN_SCENARIOS}


def scenario(name: str) -> GoldenScenario:
    """A curated scenario by name."""
    if name not in _BY_NAME:
        raise ConfigurationError(
            f"unknown golden scenario {name!r}; valid names: "
            f"{', '.join(_BY_NAME)}"
        )
    return _BY_NAME[name]


def scenario_names() -> Tuple[str, ...]:
    """The curated scenario names, in matrix order."""
    return tuple(_BY_NAME)
