"""Golden-trace record/replay: regression infrastructure for the
determinism contract.

The executor's bit-identity promise was enforced only by end-of-run
byte-diffs; this package turns :mod:`repro.sim.trace`'s bit-faithful
recording into per-event regression checks.  ``repro record-golden``
stamps reference JSONL traces for a curated scheme × fault-process
matrix under ``tests/goldens/``; ``repro replay`` re-executes them
against the current tree and reports the *first diverging event* —
index, kind, expected-vs-actual payload, surrounding context and a
rendered timeline — instead of a bare bit-identity failure.  It
doubles as a user-facing audit tool for replaying production runs.
"""

from repro.goldens.events import RecordingRecorder, TraceEvent, payload_diff
from repro.goldens.replay import (
    Divergence,
    DivergenceRecorder,
    DriftReport,
    GoldenUpdate,
    default_golden_dir,
    record_golden,
    record_matrix,
    replay,
    replay_paths,
    resolve_golden_paths,
    run_result_payload,
    update_goldens,
)
from repro.goldens.scenarios import (
    GOLDEN_SCENARIOS,
    GoldenScenario,
    scenario,
    scenario_names,
)
from repro.goldens.trace_io import (
    FORMAT,
    JsonlTraceWriter,
    TraceHeader,
    read_golden,
)

__all__ = [
    "FORMAT",
    "GOLDEN_SCENARIOS",
    "Divergence",
    "DivergenceRecorder",
    "DriftReport",
    "GoldenScenario",
    "GoldenUpdate",
    "JsonlTraceWriter",
    "RecordingRecorder",
    "TraceEvent",
    "TraceHeader",
    "default_golden_dir",
    "payload_diff",
    "read_golden",
    "record_golden",
    "record_matrix",
    "replay",
    "replay_paths",
    "resolve_golden_paths",
    "run_result_payload",
    "scenario",
    "scenario_names",
    "update_goldens",
]
