"""Checkpoint-aware scheduling of periodic task sets (EDF / RM).

Simulates a (DMR) processor running a :class:`~repro.rts.taskset.TaskSet`
where every job executes in *checkpoint-interval chunks*: preemption is
only taken at checkpoint boundaries — the natural preemption points of
checkpointed execution, since mid-interval preemption would lose
unsaved state.  Each chunk of useful length ``L`` (time units) fails
with probability ``1 − e^{−λ·L}`` (faults during the chunk), costing the
chunk plus rollback; per-job fault budgets and deadlines are tracked.

This substrate is deliberately coarser than the single-task executor in
:mod:`repro.sim.executor` (which resolves individual fault arrival
times): scheduling decisions only need chunk outcomes, and the coarse
model keeps multi-task simulation fast.  Chunk intervals come from the
same paper machinery (``I2`` by default), so the single-task behaviour
stays consistent with the fine-grained executor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.intervals import k_fault_interval
from repro.errors import ParameterError
from repro.rts.taskset import PeriodicTask, TaskSet
from repro.sim.energy import EnergyModel
from repro.sim.rng import RandomSource

__all__ = ["JobRecord", "ScheduleResult", "simulate_schedule"]


@dataclass
class _Job:
    task: PeriodicTask
    release: float
    absolute_deadline: float
    remaining: float  # useful time units left (at f1)
    faults_left: int
    chunk: float  # checkpoint interval (useful time per chunk)
    completed_at: Optional[float] = None
    missed: bool = False
    preemptions: int = 0
    faults: int = 0
    checkpoints: int = 0


@dataclass(frozen=True)
class JobRecord:
    """Outcome of one job (one release of one periodic task)."""

    task_name: str
    release: float
    absolute_deadline: float
    completed_at: Optional[float]
    deadline_met: bool
    faults: int
    preemptions: int
    checkpoints: int = 0

    @property
    def response_time(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.release


@dataclass(frozen=True)
class ScheduleResult:
    """Aggregate outcome of a schedule simulation."""

    jobs: List[JobRecord]
    horizon: float
    energy: float
    busy_time: float

    @property
    def deadline_miss_ratio(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(1 for j in self.jobs if not j.deadline_met) / len(self.jobs)

    def per_task_miss_ratio(self) -> Dict[str, float]:
        totals: Dict[str, List[int]] = {}
        for job in self.jobs:
            met, count = totals.setdefault(job.task_name, [0, 0])
            totals[job.task_name][0] = met + (1 if job.deadline_met else 0)
            totals[job.task_name][1] = count + 1
        return {
            name: 1.0 - met / count for name, (met, count) in totals.items()
        }

    @property
    def utilization_achieved(self) -> float:
        return self.busy_time / self.horizon if self.horizon > 0 else 0.0

    @property
    def total_faults(self) -> int:
        return sum(j.faults for j in self.jobs)

    @property
    def total_checkpoints(self) -> int:
        return sum(j.checkpoints for j in self.jobs)

    @property
    def makespan(self) -> float:
        """Latest completion instant (0.0 if nothing completed)."""
        return max(
            (j.completed_at for j in self.jobs if j.completed_at is not None),
            default=0.0,
        )


def simulate_schedule(
    taskset: TaskSet,
    *,
    horizon: float,
    policy: str = "edf",
    frequency: float = 1.0,
    seed: int = 0,
    energy_model: Optional[EnergyModel] = None,
    drop_late_jobs: bool = True,
    chunk_overrides: Optional[Dict[str, float]] = None,
) -> ScheduleResult:
    """Simulate ``taskset`` on one processor for ``horizon`` time units.

    Parameters
    ----------
    policy:
        ``'edf'`` (earliest absolute deadline first) or ``'rm'``
        (rate-monotonic: shortest period first, static).
    frequency:
        Processor speed (all tasks share it here; per-job DVS belongs to
        the single-task executor).
    drop_late_jobs:
        If True (default), a job whose deadline has passed is abandoned
        (counted as missed) instead of delaying everyone else.
    chunk_overrides:
        Per-task checkpoint interval (useful time units) keyed by task
        name, replacing the default ``I2`` interval — how the workload
        engine drives its own ``(frequency, checkpoint-count)``
        selection through the simulation.
    """
    if horizon <= 0:
        raise ParameterError(f"horizon must be > 0, got {horizon}")
    if policy not in ("edf", "rm"):
        raise ParameterError(f"policy must be 'edf' or 'rm', got {policy!r}")
    if frequency <= 0:
        raise ParameterError(f"frequency must be > 0, got {frequency}")
    if chunk_overrides:
        known = {task.name for task in taskset}
        for name, interval in chunk_overrides.items():
            if name not in known:
                raise ParameterError(
                    f"chunk override for unknown task {name!r}"
                )
            if interval <= 0:
                raise ParameterError(
                    f"chunk override for {name!r} must be > 0, got {interval}"
                )
    if energy_model is None:
        energy_model = EnergyModel.paper_dmr()

    rng = RandomSource(seed).generator()
    rm_rank = {
        task.name: rank
        for rank, task in enumerate(taskset.rate_monotonic_order())
    }

    # Build the full release list up front (deterministic order).
    pending: List[_Job] = []
    for task in taskset:
        if chunk_overrides and task.name in chunk_overrides:
            chunk = chunk_overrides[task.name]
        else:
            chunk = _chunk_length(task, frequency)
        for release in task.release_times(horizon):
            pending.append(
                _Job(
                    task=task,
                    release=release,
                    absolute_deadline=release + task.deadline,
                    remaining=task.cycles / frequency,
                    faults_left=task.fault_budget,
                    chunk=chunk,
                )
            )
    pending.sort(key=lambda j: (j.release, j.task.name))

    clock = 0.0
    busy = 0.0
    energy = 0.0
    ready: List[_Job] = []
    done: List[_Job] = []
    running: Optional[_Job] = None

    def admit_releases() -> None:
        while pending and pending[0].release <= clock + 1e-12:
            ready.append(pending.pop(0))

    def pick() -> Optional[_Job]:
        if not ready:
            return None
        if policy == "edf":
            key = lambda j: (j.absolute_deadline, j.release, j.task.name)
        else:
            key = lambda j: (rm_rank[j.task.name], j.release)
        best = min(ready, key=key)
        ready.remove(best)
        return best

    admit_releases()
    while True:
        if running is None:
            running = pick()
        if running is None:
            if not pending:
                break
            clock = pending[0].release
            admit_releases()
            continue

        job = running
        if drop_late_jobs and clock > job.absolute_deadline + 1e-12:
            job.missed = True
            done.append(job)
            running = None
            continue

        # Execute one chunk (or the remainder) plus its checkpoint.
        useful = min(job.chunk, job.remaining)
        overhead = job.task.costs.checkpoint_cycles / frequency
        duration = useful + overhead
        p_ok = math.exp(-job.task.fault_rate * useful)
        ok = bool(rng.random() < p_ok)

        clock += duration
        busy += duration
        energy += energy_model.segment_energy(frequency, duration * frequency)
        job.checkpoints += 1

        if ok:
            job.remaining -= useful
        else:
            job.faults += 1
            job.faults_left -= 1
            clock += job.task.costs.rollback_cycles / frequency

        if job.remaining <= 1e-9:
            job.completed_at = clock
            done.append(job)
            running = None
        admit_releases()
        # Preemption check at the chunk boundary.
        if running is not None and ready:
            if policy == "edf":
                contender = min(ready, key=lambda j: j.absolute_deadline)
                should_preempt = (
                    contender.absolute_deadline < running.absolute_deadline
                )
            else:
                contender = min(ready, key=lambda j: rm_rank[j.task.name])
                should_preempt = (
                    rm_rank[contender.task.name] < rm_rank[running.task.name]
                )
            if should_preempt:
                running.preemptions += 1
                ready.append(running)
                running = None

    records = [
        JobRecord(
            task_name=j.task.name,
            release=j.release,
            absolute_deadline=j.absolute_deadline,
            completed_at=j.completed_at,
            deadline_met=(
                j.completed_at is not None
                and j.completed_at <= j.absolute_deadline + 1e-9
            ),
            faults=j.faults,
            preemptions=j.preemptions,
            checkpoints=j.checkpoints,
        )
        for j in sorted(done, key=lambda j: (j.release, j.task.name))
    ]
    return ScheduleResult(
        jobs=records, horizon=max(clock, horizon), energy=energy, busy_time=busy
    )


def _chunk_length(task: PeriodicTask, frequency: float) -> float:
    """Checkpoint interval for a task's jobs (``I2``; whole job if k=0)."""
    work = task.cycles / frequency
    cost = task.costs.checkpoint_cycles / frequency
    if task.fault_budget <= 0:
        return work
    return min(k_fault_interval(work, task.fault_budget, cost), work)
