"""Real-time-systems substrate: periodic task sets, checkpoint-aware
feasibility analysis, seeded workload generators, and an EDF/RM
schedule simulator."""

from repro.rts import feasibility, generators, scheduler, taskset

__all__ = ["feasibility", "generators", "scheduler", "taskset"]
