"""Real-time-systems substrate: periodic task sets, checkpoint-aware
feasibility analysis, and an EDF/RM schedule simulator."""

from repro.rts import feasibility, scheduler, taskset

__all__ = ["feasibility", "scheduler", "taskset"]
