"""Checkpoint-aware schedulability analysis for periodic task sets.

A job that must survive ``k`` faults with checkpoint overhead ``C`` has
a fault-tolerant worst-case execution time (Lee, Shin & Min [9], the
same model behind the paper's ``I2`` interval)

``W(N, k, C) = N + n·C + k·(N/n + C + t_r)``,

minimised at ``n* = sqrt(k·N/C)`` giving
``W* = N + 2·sqrt(k·N·C) + k·(C + t_r)``.

The classic tests then apply with ``W`` in place of ``N``:

* EDF (dynamic priority): feasible iff ``Σ W_i/T_i ≤ 1``;
* RM (static priority): response-time analysis
  ``R = W_i + Σ_{j∈hp(i)} ⌈R/T_j⌉·W_j`` iterated to fixpoint.

These are *sufficient* tests under the worst-case fault assumption; the
scheduler simulation gives the complementary empirical view.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ParameterError
from repro.rts.taskset import PeriodicTask, TaskSet

__all__ = [
    "fault_tolerant_wcet",
    "optimal_checkpoint_count",
    "edf_feasible",
    "rm_response_times",
    "FeasibilityReport",
    "analyze",
]


def optimal_checkpoint_count(cycles: float, faults: int, cost: float) -> int:
    """``n* = sqrt(k·N/C)`` rounded to the better integer neighbour."""
    if cycles <= 0:
        raise ParameterError(f"cycles must be > 0, got {cycles}")
    if cost <= 0:
        raise ParameterError(f"cost must be > 0, got {cost}")
    if faults <= 0:
        return 1
    ideal = math.sqrt(faults * cycles / cost)
    floor_n = max(1, int(ideal))

    def wcet(n: int) -> float:
        return cycles + n * cost + faults * (cycles / n + cost)

    return floor_n if wcet(floor_n) <= wcet(floor_n + 1) else floor_n + 1


def fault_tolerant_wcet(
    cycles: float,
    faults: int,
    cost: float,
    *,
    rollback: float = 0.0,
    frequency: float = 1.0,
) -> float:
    """Worst-case time (at ``frequency``) to finish under ``k`` faults.

    Uses the optimal equidistant checkpoint count; all cycle quantities
    are converted to time at the given speed.
    """
    if frequency <= 0:
        raise ParameterError(f"frequency must be > 0, got {frequency}")
    work = cycles / frequency
    c = cost / frequency
    r = rollback / frequency
    if faults <= 0:
        return work + c  # single closing checkpoint
    n = optimal_checkpoint_count(cycles, faults, cost)
    return work + n * c + faults * (work / n + c + r)


def _task_wcet(task: PeriodicTask, frequency: float) -> float:
    return fault_tolerant_wcet(
        task.cycles,
        task.fault_budget,
        task.costs.checkpoint_cycles,
        rollback=task.costs.rollback_cycles,
        frequency=frequency,
    )


def edf_feasible(taskset: TaskSet, frequency: float = 1.0) -> bool:
    """EDF schedulability with fault-tolerant WCETs: ``Σ W_i/T_i ≤ 1``."""
    demand = sum(_task_wcet(t, frequency) / t.period for t in taskset)
    return demand <= 1.0 + 1e-12


def rm_response_times(
    taskset: TaskSet, frequency: float = 1.0, *, max_iterations: int = 10_000
) -> Dict[str, Optional[float]]:
    """Worst-case response time per task under rate-monotonic priority.

    Returns ``None`` for a task whose response-time recurrence exceeds
    its deadline (unschedulable).
    """
    ordered = taskset.rate_monotonic_order()
    responses: Dict[str, Optional[float]] = {}
    for index, task in enumerate(ordered):
        wcet = _task_wcet(task, frequency)
        higher = ordered[:index]
        response = wcet
        for _ in range(max_iterations):
            interference = sum(
                math.ceil(response / hp.period) * _task_wcet(hp, frequency)
                for hp in higher
            )
            candidate = wcet + interference
            if candidate > task.deadline:
                response = None
                break
            if abs(candidate - response) < 1e-9:
                response = candidate
                break
            response = candidate
        responses[task.name] = response
    return responses


@dataclass(frozen=True)
class FeasibilityReport:
    """Combined verdicts of the checkpoint-aware tests."""

    frequency: float
    raw_utilization: float
    fault_tolerant_demand: float
    edf_ok: bool
    rm_ok: bool
    rm_responses: Dict[str, Optional[float]]


def analyze(taskset: TaskSet, frequency: float = 1.0) -> FeasibilityReport:
    """Run both tests and package the results."""
    demand = sum(_task_wcet(t, frequency) / t.period for t in taskset)
    responses = rm_response_times(taskset, frequency)
    return FeasibilityReport(
        frequency=frequency,
        raw_utilization=taskset.total_utilization(frequency),
        fault_tolerant_demand=demand,
        edf_ok=demand <= 1.0 + 1e-12,
        rm_ok=all(r is not None for r in responses.values()),
        rm_responses=responses,
    )
