"""Deterministic workload generators for multi-task studies.

A *workload* is a periodic task set drawn from a named arrival pattern
at a target total utilization.  Generation is a pure function of
``(seed, params)``: the same pair always yields a bit-identical
:class:`~repro.rts.taskset.TaskSet`, which is what lets taskset cells
participate in the block-determinism contract and the content-addressed
cell cache — the workload is reconstructed inside ``run_block`` from the
cell seed rather than shipped as state.

Patterns
--------
``light``
    Few long-period tasks sharing the load evenly — the easy regime
    where every frequency is feasible and energy selection dominates.
``bursty``
    Short periods and constrained deadlines (``D < T``), the regime
    where checkpoint overhead erodes slack and preemption churns.
``heavy``
    One dominant task carries most of the utilization with light
    background tasks around it — skew stresses per-task checkpoint
    selection.
``uunifast``
    Classic UUniFast utilization splitting (Bini & Buttazzo) over
    log-uniform periods — the standard unbiased random taskset.

All patterns use UUniFast-style splitting internally where shares are
random; ``light`` splits evenly by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.core.checkpoints import CostModel
from repro.errors import ParameterError
from repro.rts.taskset import PeriodicTask, TaskSet

__all__ = [
    "WORKLOAD_PATTERNS",
    "WorkloadParams",
    "generate_taskset",
]

WORKLOAD_PATTERNS: Tuple[str, ...] = ("light", "bursty", "heavy", "uunifast")

# Domain tag for the generator's seed stream: keeps taskset draws
# disjoint from rep fault streams derived from the same cell seed.
_GENERATOR_TAG = 0x7A5C5E7


@dataclass(frozen=True)
class WorkloadParams:
    """Everything that defines a workload besides the seed.

    ``utilization`` is the target raw (checkpoint-free) total
    utilization at ``f1``; generated tasksets hit it exactly up to
    floating-point rounding.  ``period_scale`` anchors the period
    ranges (the paper's deadline, 10 000 time units, by default).
    """

    pattern: str
    n_tasks: int = 4
    utilization: float = 0.6
    fault_rate: float = 1e-4
    fault_budget: int = 2
    period_scale: float = 10_000.0
    costs: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.pattern not in WORKLOAD_PATTERNS:
            raise ParameterError(
                f"unknown workload pattern {self.pattern!r}; "
                f"valid patterns: {', '.join(WORKLOAD_PATTERNS)}"
            )
        if self.n_tasks < 1:
            raise ParameterError(f"n_tasks must be >= 1, got {self.n_tasks}")
        if not 0.0 < self.utilization:
            raise ParameterError(
                f"utilization must be > 0, got {self.utilization}"
            )
        if self.fault_rate < 0:
            raise ParameterError(
                f"fault_rate must be >= 0, got {self.fault_rate}"
            )
        if self.fault_budget < 0:
            raise ParameterError(
                f"fault_budget must be >= 0, got {self.fault_budget}"
            )
        if self.period_scale <= 0:
            raise ParameterError(
                f"period_scale must be > 0, got {self.period_scale}"
            )


def _uunifast(rng: np.random.Generator, n: int, total: float) -> List[float]:
    """UUniFast: unbiased split of ``total`` utilization into ``n`` shares."""
    shares: List[float] = []
    remaining = total
    for i in range(n - 1):
        next_remaining = remaining * rng.random() ** (1.0 / (n - 1 - i))
        # A draw of exactly 0.0 would zero out every later share (and
        # zero-cycle tasks are invalid); the telescoping sum keeps the
        # total exact regardless of the floor.
        next_remaining = max(next_remaining, remaining * 1e-12)
        shares.append(remaining - next_remaining)
        remaining = next_remaining
    shares.append(remaining)
    return shares


def _log_uniform(
    rng: np.random.Generator, low: float, high: float, n: int
) -> List[float]:
    lo, hi = math.log(low), math.log(high)
    return [math.exp(lo + (hi - lo) * rng.random()) for _ in range(n)]


def generate_taskset(seed: int, params: WorkloadParams) -> TaskSet:
    """Generate the workload's task set — a pure function of its inputs.

    Draw order is part of the format: utilization shares first, then
    periods, then deadline factors.  Changing it would silently remap
    every seeded workload, so treat this function like a wire format.
    """
    sequence = np.random.SeedSequence(
        entropy=(int(seed) & 0xFFFFFFFFFFFFFFFF, _GENERATOR_TAG)
    )
    rng = np.random.Generator(np.random.Philox(sequence))
    n = params.n_tasks
    total = params.utilization
    scale = params.period_scale

    if params.pattern == "light":
        shares = [total / n] * n
        periods = _log_uniform(rng, scale, 10.0 * scale, n)
        deadline_factors = [1.0] * n
    elif params.pattern == "bursty":
        shares = _uunifast(rng, n, total)
        periods = _log_uniform(rng, scale / 10.0, scale / 2.0, n)
        deadline_factors = [0.7 + 0.3 * rng.random() for _ in range(n)]
    elif params.pattern == "heavy":
        dominant = 0.6 * total
        if n == 1:
            shares = [total]
        else:
            shares = [dominant] + _uunifast(rng, n - 1, total - dominant)
        periods = _log_uniform(rng, scale / 2.0, 5.0 * scale, n)
        deadline_factors = [1.0] * n
    else:  # uunifast
        shares = _uunifast(rng, n, total)
        periods = _log_uniform(rng, scale / 10.0, 10.0 * scale, n)
        deadline_factors = [1.0] * n

    tasks = [
        PeriodicTask(
            name=f"t{i:02d}",
            cycles=share * period,
            period=period,
            deadline=factor * period,
            fault_rate=params.fault_rate,
            fault_budget=params.fault_budget,
            costs=params.costs,
        )
        for i, (share, period, factor) in enumerate(
            zip(shares, periods, deadline_factors)
        )
    ]
    return TaskSet(tasks)
