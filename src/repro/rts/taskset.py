"""Periodic task sets: the real-time-systems substrate.

The paper analyses a single task with period ``T`` and deadline ``D``;
real deployments run *sets* of such tasks.  This module provides the
periodic task model used by the checkpoint-aware scheduler and
feasibility analysis — the substrate a downstream user needs to apply
the paper's schemes beyond a single job.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Sequence

from repro.core.checkpoints import CostModel
from repro.errors import ParameterError
from repro.sim.task import TaskSpec

__all__ = ["PeriodicTask", "TaskSet"]


@dataclass(frozen=True)
class PeriodicTask:
    """A periodic hard-real-time task protected by checkpointing.

    ``cycles`` is the per-job WCET in cycles at ``f1``; ``deadline`` is
    relative to each release and must not exceed ``period``
    (constrained-deadline model).
    """

    name: str
    cycles: float
    period: float
    deadline: float
    fault_rate: float
    fault_budget: int
    costs: CostModel

    def __post_init__(self) -> None:
        if not self.name:
            raise ParameterError("task name must be non-empty")
        if self.cycles <= 0:
            raise ParameterError(f"cycles must be > 0, got {self.cycles}")
        if self.period <= 0:
            raise ParameterError(f"period must be > 0, got {self.period}")
        if not 0 < self.deadline <= self.period:
            raise ParameterError(
                f"deadline must be in (0, period]; got {self.deadline} with "
                f"period {self.period}"
            )
        if self.fault_rate < 0:
            raise ParameterError(f"fault_rate must be >= 0, got {self.fault_rate}")
        if self.fault_budget < 0:
            raise ParameterError(
                f"fault_budget must be >= 0, got {self.fault_budget}"
            )

    def utilization(self, frequency: float = 1.0) -> float:
        """Raw (checkpoint-free) utilisation ``N/(f·T)``."""
        if frequency <= 0:
            raise ParameterError(f"frequency must be > 0, got {frequency}")
        return self.cycles / (frequency * self.period)

    def job_spec(self) -> TaskSpec:
        """The single-job :class:`TaskSpec` of one release."""
        return TaskSpec(
            cycles=self.cycles,
            deadline=self.deadline,
            fault_budget=self.fault_budget,
            fault_rate=self.fault_rate,
            costs=self.costs,
        )

    def release_times(self, horizon: float) -> Iterator[float]:
        """Job release instants in ``[0, horizon)``."""
        if horizon <= 0:
            return
        k = 0
        while k * self.period < horizon:
            yield k * self.period
            k += 1


@dataclass(frozen=True)
class TaskSet:
    """An ordered collection of periodic tasks on one (DMR) processor."""

    tasks: tuple

    def __init__(self, tasks: Sequence[PeriodicTask]) -> None:
        if not tasks:
            raise ParameterError("TaskSet needs at least one task")
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise ParameterError(f"duplicate task names: {names}")
        object.__setattr__(self, "tasks", tuple(tasks))

    def __iter__(self) -> Iterator[PeriodicTask]:
        return iter(self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)

    def by_name(self, name: str) -> PeriodicTask:
        for task in self.tasks:
            if task.name == name:
                return task
        raise ParameterError(f"no task named {name!r}")

    def total_utilization(self, frequency: float = 1.0) -> float:
        """Sum of raw task utilisations at a given speed."""
        return sum(t.utilization(frequency) for t in self.tasks)

    def hyperperiod(self) -> float:
        """LCM of the task periods (exact for integral periods, else an
        LCM of the rational approximations)."""
        result = 1
        scale = 1_000_000  # 1e-6 resolution for non-integral periods
        for task in self.tasks:
            period = int(round(task.period * scale))
            if period <= 0:
                raise ParameterError("period too small for hyperperiod computation")
            result = result * period // math.gcd(result, period)
        return result / scale

    def rate_monotonic_order(self) -> List[PeriodicTask]:
        """Tasks sorted by period (shortest first — highest RM priority)."""
        return sorted(self.tasks, key=lambda t: (t.period, t.name))
