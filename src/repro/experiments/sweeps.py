"""Parameter sweeps and ablations around the paper's design choices.

These back the ablation benches promised in DESIGN.md §4:

* :func:`fixed_m_study` — is the *adaptive* choice of ``m`` (procedure
  ``num_SCP``) actually better than any fixed subdivision?
* :func:`rate_factor_study` — sensitivity to the analysis rate
  (paper equations use ``2λ`` for DMR, the simulation injects ``λ``);
* :func:`utilization_sweep` — P/E versus utilisation for every scheme
  (the "figure" view of the paper's tables);
* :func:`optimal_m_curves` — the ``R1(m)`` / ``R2(m)`` analysis curves
  behind paper fig. 2, with the chosen optimum marked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import renewal
from repro.core.optimizer import brute_force_num_ccp, brute_force_num_scp
from repro.core.schemes import (
    AdaptiveConfig,
    AdaptiveSCPPolicy,
)
from repro.errors import ParameterError
from repro.experiments.config import TableSpec
from repro.sim.montecarlo import CellEstimate
from repro.sim.parallel import BatchRunner, runner_scope
from repro.sim.task import TaskSpec

# The Monte-Carlo studies below are thin shims over the façade's
# canonical cell expansion in repro.api.plans (shared with the
# declarative repro.api.StudySpec path, so the two can never drift).
# plans imports FixedSubdivisionSCPPolicy from here lazily, which is
# what keeps this module-level import acyclic.
from repro.api.plans import (
    fixed_m_cells,
    rate_factor_cells,
    utilization_cells,
)

__all__ = [
    "FixedSubdivisionSCPPolicy",
    "fixed_m_study",
    "rate_factor_study",
    "utilization_sweep",
    "optimal_m_curves",
    "MCurve",
]


class FixedSubdivisionSCPPolicy(AdaptiveSCPPolicy):
    """``A_D_S`` with the subdivision count pinned (ablation control).

    Replaces procedure ``num_SCP`` with a constant ``m`` while keeping
    the adaptive interval and DVS machinery — isolating the value of the
    paper's optimisation.
    """

    def __init__(self, m: int, config: AdaptiveConfig | None = None) -> None:
        if m < 1:
            raise ParameterError(f"m must be >= 1, got {m}")
        super().__init__(config)
        self.fixed_m = m
        self.name = f"A_D_S[m={m}]"

    def _subdivide(self, state, interval: float) -> int:
        return self.fixed_m


def fixed_m_study(
    task: TaskSpec,
    ms: Sequence[int],
    *,
    reps: int = 1000,
    seed: int = 0,
    runner: Optional[BatchRunner] = None,
    backend=None,
) -> Dict[str, CellEstimate]:
    """(P, E) for fixed ``m`` values and for the adaptive ``num_SCP``.

    Keys: ``"m=<k>"`` for each fixed value plus ``"adaptive"``.  With a
    ``runner`` (or a ``backend`` name — serial/process/distributed) the
    whole study is dispatched as one cell grid.
    """
    if not ms:
        raise ParameterError("ms must be non-empty")
    plans = fixed_m_cells(task, ms, reps=reps, seed=seed)
    with runner_scope(runner, backend=backend) as scoped:
        estimates = scoped.run_cells([plan.job for plan in plans])
    return dict(zip((plan.key for plan in plans), estimates))


def rate_factor_study(
    task: TaskSpec,
    factors: Sequence[float] = (1.0, 2.0),
    *,
    reps: int = 1000,
    seed: int = 0,
    runner: Optional[BatchRunner] = None,
    backend=None,
) -> Dict[float, CellEstimate]:
    """(P, E) of ``A_D_S`` under different analysis-rate factors."""
    if not factors:
        raise ParameterError("factors must be non-empty")
    plans = rate_factor_cells(task, factors, reps=reps, seed=seed)
    with runner_scope(runner, backend=backend) as scoped:
        estimates = scoped.run_cells([plan.job for plan in plans])
    return dict(zip(factors, estimates))


def utilization_sweep(
    spec: TableSpec,
    u_grid: Sequence[float],
    lam: float,
    *,
    reps: int = 500,
    seed: int = 0,
    runner: Optional[BatchRunner] = None,
    backend=None,
    fast_static: bool = False,
) -> Dict[str, List[Tuple[float, CellEstimate]]]:
    """P/E curves over utilisation for every scheme of a table spec.

    This is the "figure" rendering of the paper's tabular data: the
    crossover where static schemes collapse while the adaptive schemes
    hold P ≈ 1 appears directly.  With a ``runner`` the whole
    (U × scheme) grid is dispatched in one batch; ``fast_static``
    swaps the static columns for vectorised
    :class:`~repro.sim.fastpath.StaticCellJob` cells (statistically
    consistent, much faster — the knob that makes dense U grids cheap).
    """
    if not u_grid:
        raise ParameterError("u_grid must be non-empty")
    plans = utilization_cells(
        spec, u_grid, lam, reps=reps, seed=seed, fast_static=fast_static
    )
    with runner_scope(runner, backend=backend) as scoped:
        estimates = scoped.run_cells([plan.job for plan in plans])
    curves: Dict[str, List[Tuple[float, CellEstimate]]] = {
        scheme: [] for scheme in spec.schemes
    }
    for plan, cell in zip(plans, estimates):
        axes = dict(plan.axes)
        curves[axes["scheme"]].append((axes["u"], cell))
    return curves


@dataclass(frozen=True)
class MCurve:
    """One ``R(m)`` analysis curve with its optimum."""

    kind: str  # 'scp' or 'ccp'
    span: float
    rate: float
    ms: Tuple[int, ...]
    values: Tuple[float, ...]
    optimal_m: int

    @property
    def optimal_value(self) -> float:
        return self.values[self.ms.index(self.optimal_m)]


def optimal_m_curves(
    spans: Sequence[float],
    *,
    rate: float,
    store: float,
    compare: float,
    rollback: float = 0.0,
    max_m: int = 16,
) -> List[MCurve]:
    """``R1(m)``/``R2(m)`` for a grid of interval lengths (fig. 2 data)."""
    if not spans:
        raise ParameterError("spans must be non-empty")
    curves: List[MCurve] = []
    ms = tuple(range(1, max_m + 1))
    for span in spans:
        scp_values = tuple(
            renewal.scp_interval_time_for_m(
                m, span=span, rate=rate, store=store, compare=compare,
                rollback=rollback,
            )
            for m in ms
        )
        ccp_values = tuple(
            renewal.ccp_interval_time_for_m(
                m, span=span, rate=rate, store=store, compare=compare,
                rollback=rollback,
            )
            for m in ms
        )
        curves.append(
            MCurve(
                kind="scp",
                span=span,
                rate=rate,
                ms=ms,
                values=scp_values,
                optimal_m=brute_force_num_scp(
                    span, rate=rate, store=store, compare=compare,
                    rollback=rollback, max_m=max_m,
                ).m,
            )
        )
        curves.append(
            MCurve(
                kind="ccp",
                span=span,
                rate=rate,
                ms=ms,
                values=ccp_values,
                optimal_m=brute_force_num_ccp(
                    span, rate=rate, store=store, compare=compare,
                    rollback=rollback, max_m=max_m,
                ).m,
            )
        )
    return curves
