"""Experiment harness: table specs, published data, runners, reports,
parameter sweeps and sensitivity maps that regenerate (and extend) the
paper's evaluation."""

from repro.experiments import paper_data

__all__ = ["paper_data"]
# config/tables/report/sweeps/sensitivity are imported lazily by users;
# importing them here would create an import cycle with paper_data via
# repro.core at package-init time on some layouts, so only the leaf
# module is eagerly re-exported.
