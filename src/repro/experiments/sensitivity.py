"""Sensitivity analysis: where does the paper's scheme win, and why.

The paper evaluates four (U, λ) points per table; a user deciding
whether to adopt A_D_S/A_D_C needs the whole operating map.  This
module computes three views the paper implies but never plots:

* :func:`operating_map` — for a (U, λ) grid, which scheme wins on P
  (with an energy tie-break), rendered as an ASCII map;
* :func:`cost_ratio_frontier` — at which ``t_s/t_cp`` ratio the SCP
  variant stops subdividing (analytic, from ``num_SCP``), i.e. when the
  technique degenerates to the DATE'03 baseline;
* :func:`subdivision_benefit` — the analytic saving of optimal
  subdivision as a function of fault pressure ``λ·T`` (the quantity the
  whole paper turns on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.plans import operating_map_cells
from repro.core.optimizer import num_ccp, num_scp
from repro.core.renewal import ccp_interval_time_for_m, scp_interval_time_for_m
from repro.errors import ParameterError
from repro.experiments.config import TableSpec
from repro.sim.montecarlo import CellEstimate
from repro.sim.parallel import BatchRunner, runner_scope

__all__ = [
    "OperatingPoint",
    "operating_map",
    "assemble_operating_points",
    "render_operating_map",
    "cost_ratio_frontier",
    "subdivision_benefit",
]


@dataclass(frozen=True)
class OperatingPoint:
    """One (U, λ) grid point with every scheme's estimate."""

    u: float
    lam: float
    cells: Dict[str, CellEstimate]
    winner: str

    def cell(self, scheme: str) -> CellEstimate:
        return self.cells[scheme]


def _pick_winner(cells: Dict[str, CellEstimate], p_slack: float) -> str:
    """Highest P wins; energy breaks ties within ``p_slack``."""
    best_p = max(cell.p for cell in cells.values())
    contenders = {
        name: cell
        for name, cell in cells.items()
        if cell.p >= best_p - p_slack and cell.p > 0
    }
    if not contenders:
        return max(cells, key=lambda n: cells[n].p)
    import math

    def energy_key(name: str) -> float:
        e = contenders[name].e
        return math.inf if math.isnan(e) else e

    return min(contenders, key=energy_key)


def operating_map(
    spec: TableSpec,
    u_grid: Sequence[float],
    lam_grid: Sequence[float],
    *,
    reps: int = 300,
    seed: int = 0,
    p_slack: float = 0.02,
    runner: Optional[BatchRunner] = None,
    backend=None,
    fast_static: bool = False,
) -> List[OperatingPoint]:
    """Which scheme wins at each (U, λ) point of the grid.

    With a ``runner`` the whole (λ × U × scheme) grid is dispatched in
    one batch — this is the largest Monte-Carlo sweep in the library.
    ``fast_static`` routes the static scheme cells through the
    vectorised fast path (statistically consistent, much faster),
    which is what makes dense operating maps affordable.
    """
    if not u_grid or not lam_grid:
        raise ParameterError("u_grid and lam_grid must be non-empty")
    # Cell enumeration is shared with the façade's declarative path
    # (repro.api.StudySpec kind "operating_map") — same grid order,
    # same per-cell seeds, bit-identical estimates either way.
    plans = operating_map_cells(
        spec, u_grid, lam_grid, reps=reps, seed=seed, fast_static=fast_static
    )
    with runner_scope(runner, backend=backend) as scoped:
        estimates = scoped.run_cells([plan.job for plan in plans])
    return assemble_operating_points(
        spec, plans, estimates, p_slack=p_slack
    )


def assemble_operating_points(
    spec: TableSpec,
    plans,
    estimates: List[CellEstimate],
    *,
    p_slack: float = 0.02,
) -> List[OperatingPoint]:
    """Group per-cell estimates (canonical plan order) into points."""
    points: List[OperatingPoint] = []
    columns = len(spec.schemes)
    for index in range(0, len(plans), columns):
        axes = dict(plans[index].axes)
        cells = {
            dict(plans[index + column].axes)["scheme"]: estimates[index + column]
            for column in range(columns)
        }
        points.append(
            OperatingPoint(
                u=axes["u"], lam=axes["lam"], cells=cells,
                winner=_pick_winner(cells, p_slack),
            )
        )
    return points


def render_operating_map(
    points: List[OperatingPoint], schemes: Sequence[str]
) -> str:
    """ASCII map: rows = λ (descending), columns = U, cell = winner."""
    if not points:
        raise ParameterError("no points to render")
    glyphs = {scheme: scheme[0] if scheme[0] != "A" else None for scheme in schemes}
    # Disambiguate the adaptive family.
    for scheme in schemes:
        if glyphs.get(scheme) is None:
            glyphs[scheme] = {"A_D": "d", "A_D_S": "S", "A_D_C": "C"}.get(
                scheme, scheme[-1]
            )
    us = sorted({p.u for p in points})
    lams = sorted({p.lam for p in points}, reverse=True)
    lookup = {(p.u, p.lam): p for p in points}
    lines = ["winner per (U, λ): " + ", ".join(
        f"{glyphs[s]}={s}" for s in schemes
    )]
    header = "  λ \\ U   " + " ".join(f"{u:5.2f}" for u in us)
    lines.append(header)
    for lam in lams:
        row = [f"{lam:8.1e} "]
        for u in us:
            point = lookup.get((u, lam))
            row.append(f"{glyphs.get(point.winner, '?'):>5}" if point else "    ?")
        lines.append(" ".join(row))
    return "\n".join(lines)


def cost_ratio_frontier(
    span: float,
    *,
    rate: float,
    checkpoint_cycles: float = 22.0,
    ratios: Sequence[float] = (0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0),
) -> List[Tuple[float, int, int]]:
    """(t_s/t_cp ratio, optimal SCP m, optimal CCP m) along a cost sweep.

    Total checkpoint cost ``t_s + t_cp`` is held at ``checkpoint_cycles``
    so only the *split* varies.  The SCP variant subdivides while stores
    are the cheap half; the CCP variant mirrors it — quantifying the
    paper's "choose the checkpoint type to match the hardware" advice.
    """
    if span <= 0:
        raise ParameterError(f"span must be > 0, got {span}")
    results: List[Tuple[float, int, int]] = []
    for ratio in ratios:
        store = checkpoint_cycles * ratio / (1.0 + ratio)
        compare = checkpoint_cycles - store
        m_scp = num_scp(span, rate=rate, store=store, compare=compare).m
        m_ccp = num_ccp(span, rate=rate, store=store, compare=compare).m
        results.append((ratio, m_scp, m_ccp))
    return results


def subdivision_benefit(
    spans: Sequence[float],
    *,
    rate: float,
    store: float,
    compare: float,
) -> List[Tuple[float, float, float]]:
    """(λ·T, SCP saving, CCP saving) — relative R reduction vs m = 1.

    The saving grows with fault pressure λ·T; at λ·T → 0 subdivision is
    pure overhead and the optimiser returns m = 1 (saving 0).
    """
    if not spans:
        raise ParameterError("spans must be non-empty")
    out: List[Tuple[float, float, float]] = []
    for span in spans:
        scp_plan = num_scp(span, rate=rate, store=store, compare=compare)
        ccp_plan = num_ccp(span, rate=rate, store=store, compare=compare)
        scp_m1 = scp_interval_time_for_m(
            1, span=span, rate=rate, store=store, compare=compare
        )
        ccp_m1 = ccp_interval_time_for_m(
            1, span=span, rate=rate, store=store, compare=compare
        )
        out.append(
            (
                rate * span,
                1.0 - scp_plan.expected_time / scp_m1,
                1.0 - ccp_plan.expected_time / ccp_m1,
            )
        )
    return out
