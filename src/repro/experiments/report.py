"""Rendering and shape-checking of regenerated tables.

:func:`format_table` prints a paper-style table with measured values
next to the published ones.  :func:`shape_checks` evaluates the
reproduction criteria of DESIGN.md §4 — the orderings and rough factors
that must hold for the reproduction to count, independent of absolute
numbers.  :func:`markdown_table` emits the EXPERIMENTS.md sections.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.experiments.tables import RowResult, TableResult

__all__ = ["format_table", "markdown_table", "shape_checks", "ShapeCheck"]


def _fmt_p(value: float) -> str:
    return "  NaN " if math.isnan(value) else f"{value:.4f}"


def _fmt_e(value: float) -> str:
    return "   NaN" if math.isnan(value) else f"{value:6.0f}"


def format_table(result: TableResult, *, show_paper: bool = True) -> str:
    """Human-readable rendering, one row per (U, λ, scheme)."""
    spec = result.spec
    lines = [
        f"Table {spec.table_id}: {spec.title}",
        f"reps={result.reps} seed={result.seed} deadline={spec.deadline:.0f} "
        f"costs=(ts={spec.costs.store_cycles:.0f}, tcp={spec.costs.compare_cycles:.0f}) "
        f"k={spec.fault_budget} static@f={spec.static_frequency:.0f}",
        "",
    ]
    header = f"{'U':>5} {'lambda':>8} {'scheme':>8} | {'P':>6} {'E':>7}"
    if show_paper:
        header += f" | {'P paper':>7} {'E paper':>7} | {'dP':>7} {'E/Ep':>5}"
    lines.append(header)
    lines.append("-" * len(header))
    for row in result.rows:
        for scheme in result.schemes:
            cell = row.cell(scheme)
            line = (
                f"{row.u:5.2f} {row.lam:8.1e} {scheme:>8} | "
                f"{_fmt_p(cell.p)} {_fmt_e(cell.e)}"
            )
            if show_paper:
                if cell.paper is None:
                    line += " |  (unpublished)"
                else:
                    ratio = cell.e_ratio
                    ratio_text = "  NaN" if math.isnan(ratio) else f"{ratio:5.2f}"
                    line += (
                        f" | {_fmt_p(cell.paper.p):>7} {_fmt_e(cell.paper.e):>7}"
                        f" | {cell.p_error:+7.4f} {ratio_text}"
                    )
            lines.append(line)
        lines.append("")
    return "\n".join(lines)


def markdown_table(result: TableResult) -> str:
    """Markdown rendering for EXPERIMENTS.md (paper vs measured)."""
    spec = result.spec
    lines = [
        f"### Table {spec.table_id} — {spec.title}",
        "",
        f"`reps={result.reps}`, `seed={result.seed}`.",
        "",
        "| U | λ | scheme | P (paper) | P (ours) | E (paper) | E (ours) |",
        "|---|---|---|---|---|---|---|",
    ]
    for row in result.rows:
        for scheme in result.schemes:
            cell = row.cell(scheme)
            p_paper = _fmt_p(cell.paper.p).strip() if cell.paper else "—"
            e_paper = _fmt_e(cell.paper.e).strip() if cell.paper else "—"
            lines.append(
                f"| {row.u:.2f} | {row.lam:.1e} | {scheme} "
                f"| {p_paper} | {_fmt_p(cell.p).strip()} "
                f"| {e_paper} | {_fmt_e(cell.e).strip()} |"
            )
    lines.append("")
    return "\n".join(lines)


@dataclass(frozen=True)
class ShapeCheck:
    """One reproduction criterion with its verdict."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.name}: {self.detail}"


def _p_not_below(a, b) -> bool:
    """``P(a)`` is not statistically below ``P(b)``.

    Uses the Wilson intervals both estimates carry, so the test is
    forgiving at 100 reps and strict at 10,000 — no hand-tuned slack.
    """
    return a.measured.p_timely.high >= b.measured.p_timely.low


def _e_not_above(a, b, headroom: float = 1.01) -> bool:
    """``E(a)`` is not statistically above ``E(b)·headroom``."""
    ea, eb = a.measured.energy_timely, b.measured.energy_timely
    if ea.is_nan or eb.is_nan:
        return True
    return ea.low <= eb.high * headroom


def shape_checks(result: TableResult) -> List[ShapeCheck]:
    """Evaluate the DESIGN.md §4 shape criteria on a regenerated table.

    The criteria depend on the table family:

    * static-at-``f1`` tables (1, 3): the adaptive DVS schemes must
      dominate the static baselines on timeliness, and the paper's
      scheme must not consume more energy than ``A_D``;
    * static-at-``f2`` tables (2, 4): the paper's scheme must beat
      ``A_D`` on timeliness (all schemes have comparable energy);
    * ``U = 1.0`` rows at ``f1`` must be infeasible for static schemes.

    Comparisons use the cells' own confidence intervals (Wilson for P,
    normal for E), so the checks scale correctly with the rep count.
    """
    spec = result.spec
    ours = spec.schemes[-1]  # A_D_S or A_D_C
    checks: List[ShapeCheck] = []
    static_f1 = spec.static_frequency == 1.0

    for row in result.rows:
        tag = f"U={row.u:.2f}, λ={row.lam:.1e}"
        poisson = row.cell("Poisson")
        kft = row.cell("k-f-t")
        ad = row.cell("A_D")
        own = row.cell(ours)

        if static_f1:
            checks.append(
                ShapeCheck(
                    name=f"{tag}: adaptive dominates static on P",
                    passed=_p_not_below(own, poisson)
                    and _p_not_below(own, kft)
                    and _p_not_below(ad, poisson),
                    detail=(
                        f"P({ours})={own.p:.4f}, P(A_D)={ad.p:.4f}, "
                        f"P(Poisson)={poisson.p:.4f}, P(k-f-t)={kft.p:.4f}"
                    ),
                )
            )
            checks.append(
                ShapeCheck(
                    name=f"{tag}: {ours} at least matches A_D on P",
                    passed=_p_not_below(own, ad),
                    detail=f"P({ours})={own.p:.4f} vs P(A_D)={ad.p:.4f}",
                )
            )
            if not math.isnan(own.e) and not math.isnan(ad.e):
                checks.append(
                    ShapeCheck(
                        name=f"{tag}: {ours} saves energy vs A_D",
                        passed=_e_not_above(own, ad),
                        detail=f"E({ours})={own.e:.0f} vs E(A_D)={ad.e:.0f}",
                    )
                )
            if row.u >= 1.0:
                checks.append(
                    ShapeCheck(
                        name=f"{tag}: static schemes infeasible at U=1",
                        passed=poisson.p == 0.0 and kft.p == 0.0,
                        detail=(
                            f"P(Poisson)={poisson.p:.4f}, P(k-f-t)={kft.p:.4f}"
                        ),
                    )
                )
        else:
            checks.append(
                ShapeCheck(
                    name=f"{tag}: {ours} beats A_D and static on P",
                    passed=_p_not_below(own, ad)
                    and _p_not_below(own, poisson)
                    and _p_not_below(own, kft),
                    detail=(
                        f"P({ours})={own.p:.4f}, P(A_D)={ad.p:.4f}, "
                        f"P(Poisson)={poisson.p:.4f}"
                    ),
                )
            )
            if not math.isnan(own.e) and not math.isnan(ad.e):
                checks.append(
                    ShapeCheck(
                        name=f"{tag}: energies comparable at f2",
                        passed=_e_not_above(own, ad, headroom=1.10)
                        and _e_not_above(ad, own, headroom=1.10),
                        detail=f"E({ours})={own.e:.0f} vs E(A_D)={ad.e:.0f}",
                    )
                )
    return checks
