"""Runners that regenerate the paper's tables cell by cell.

:func:`run_table` Monte-Carlo-estimates every (row × scheme) cell of a
:class:`~repro.experiments.config.TableSpec` and pairs each estimate
with the published value, producing a :class:`TableResult` that the
report module renders and the benchmark suite checks for shape.

Both runners are thin shims over the :mod:`repro.api` façade: the cell
grid comes from the canonical expansion in :mod:`repro.api.plans`
(shared with the declarative :class:`~repro.api.spec.StudySpec` path,
so the two can never drift) and is dispatched as one batch through the
session's :class:`~repro.sim.parallel.BatchRunner` — every execution
backend (serial, process pool, distributed) sees the same job stream.
With ``fast_static=True`` the static scheme columns become
:class:`~repro.sim.fastpath.StaticCellJob`\\ s — the vectorised sampler
— mixed into the same batch as the adaptive (executor) cells.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.api.plans import cell_label as _plan_cell_label
from repro.api.plans import row_cells, table_cell_job, table_cells
from repro.errors import ConfigurationError
from repro.experiments.config import TableSpec, table_spec
from repro.experiments.paper_data import PaperCell, paper_cell
from repro.sim.montecarlo import CellEstimate
from repro.sim.parallel import BatchRunner, runner_scope
from repro.sim.rng import RandomSource

__all__ = [
    "CellResult",
    "RowResult",
    "TableResult",
    "assemble_table_result",
    "run_table",
    "run_row",
]


@dataclass(frozen=True)
class CellResult:
    """One measured cell with its published counterpart (if any)."""

    scheme: str
    measured: CellEstimate
    paper: Optional[PaperCell]

    @property
    def p(self) -> float:
        return self.measured.p

    @property
    def e(self) -> float:
        return self.measured.e

    @property
    def p_error(self) -> float:
        """Absolute error vs the published P (NaN if unpublished)."""
        if self.paper is None:
            return math.nan
        return self.measured.p - self.paper.p

    @property
    def e_ratio(self) -> float:
        """measured E / published E (NaN when either is NaN)."""
        if self.paper is None or self.paper.e_is_nan or math.isnan(self.measured.e):
            return math.nan
        return self.measured.e / self.paper.e


@dataclass(frozen=True)
class RowResult:
    """All scheme cells of one (U, λ) row."""

    u: float
    lam: float
    cells: Dict[str, CellResult]

    def cell(self, scheme: str) -> CellResult:
        if scheme not in self.cells:
            raise ConfigurationError(
                f"no scheme {scheme!r} in row; have {sorted(self.cells)}"
            )
        return self.cells[scheme]


@dataclass(frozen=True)
class TableResult:
    """A regenerated table: spec, reps and all rows."""

    spec: TableSpec
    reps: int
    seed: int
    rows: List[RowResult]

    def row(self, u: float, lam: float) -> RowResult:
        for row in self.rows:
            if row.u == u and row.lam == lam:
                return row
        raise ConfigurationError(f"no row (U={u}, λ={lam}) in table")

    @property
    def schemes(self) -> Tuple[str, ...]:
        return self.spec.schemes


def _cell_job(
    spec: TableSpec,
    u: float,
    lam: float,
    column: int,
    *,
    reps: int,
    source: RandomSource,
    faults_during_overhead: bool,
    fast_static: bool = False,
):
    """Back-compat alias for :func:`repro.api.plans.table_cell_job`.

    The canonical builder (and the per-cell seed fork it encodes) lives
    in the façade's plan layer now, shared with the declarative
    ``StudySpec`` path; this wrapper keeps the historical private name
    working for callers that imported it.
    """
    return table_cell_job(
        spec,
        u,
        lam,
        column,
        reps=reps,
        source=source,
        faults_during_overhead=faults_during_overhead,
        fast_static=fast_static,
    )


def _assemble_row(
    spec: TableSpec, u: float, lam: float, estimates: List[CellEstimate]
) -> RowResult:
    """Pair one row's estimates (in scheme order) with published cells."""
    cells = {
        scheme: CellResult(
            scheme=scheme,
            measured=measured,
            paper=paper_cell(spec.table_id, u, lam, scheme),
        )
        for scheme, measured in zip(spec.schemes, estimates)
    }
    return RowResult(u=u, lam=lam, cells=cells)


def run_row(
    spec: TableSpec,
    u: float,
    lam: float,
    *,
    reps: int,
    source: RandomSource,
    faults_during_overhead: bool = False,
    runner: Optional[BatchRunner] = None,
    backend=None,
    fast_static: bool = False,
) -> RowResult:
    """Estimate all scheme cells of one row.

    ``backend`` names where cells run (``"serial"``, ``"process"``,
    ``"distributed"``) as an alternative to passing a ``runner``.
    """
    plans = row_cells(
        spec,
        u,
        lam,
        reps=reps,
        seed=source.seed,
        faults_during_overhead=faults_during_overhead,
        fast_static=fast_static,
    )
    with runner_scope(runner, backend=backend) as scoped:
        estimates = scoped.run_cells([plan.job for plan in plans])
    return _assemble_row(spec, u, lam, estimates)


def run_table(
    table_id_or_spec,
    *,
    reps: int = 2000,
    seed: int = 2006,
    faults_during_overhead: bool = False,
    runner: Optional[BatchRunner] = None,
    backend=None,
    fast_static: bool = False,
) -> TableResult:
    """Regenerate one full table.

    Parameters
    ----------
    table_id_or_spec:
        A published table id (``"1a"`` ... ``"4b"``) or a custom
        :class:`TableSpec`.
    reps:
        Monte-Carlo repetitions per cell (the paper used 10,000; the
        default keeps the full suite interactive — pass more for tighter
        intervals).
    seed:
        Root seed; every cell derives an independent substream, so
        results are reproducible and rows are independent.
    runner:
        Optional :class:`~repro.sim.parallel.BatchRunner`.  The *whole*
        cell grid is dispatched in one batch, so worker processes stay
        busy across row boundaries.  Results are identical to the serial
        path for any worker count.
    backend:
        Alternative to ``runner``: name where cells run (``"serial"``,
        ``"process"``, ``"distributed"``) or pass an
        :class:`~repro.sim.backends.ExecutionBackend`; a named backend
        is built for this call and released afterwards.  Results are
        bit-identical across backends for a fixed block size.
    fast_static:
        Route the static scheme columns (Poisson, k-f-t) through the
        vectorised fast path instead of the event executor — one to two
        orders of magnitude faster at paper-scale reps.  The estimates
        are statistically consistent but drawn from a different sampler
        (not bit-comparable to the executor), and on *doomed* runs
        ``energy_all`` is capped at the fast path's horizon while the
        fault/checkpoint counters count the full retry sequence (the
        executor abandons such runs early instead); ``P`` and the
        paper's timely ``E`` are unaffected.  Default off so
        published-table comparisons stay executor-exact.
    """
    spec = (
        table_id_or_spec
        if isinstance(table_id_or_spec, TableSpec)
        else table_spec(table_id_or_spec)
    )
    plans = table_cells(
        spec,
        reps=reps,
        seed=seed,
        faults_during_overhead=faults_during_overhead,
        fast_static=fast_static,
    )
    with runner_scope(runner, backend=backend) as scoped:
        estimates = scoped.run_cells([plan.job for plan in plans])
    return assemble_table_result(
        spec, reps=reps, seed=seed, estimates=estimates
    )


def assemble_table_result(
    spec: TableSpec,
    *,
    reps: int,
    seed: int,
    estimates: List[CellEstimate],
) -> TableResult:
    """Pair a table's estimates (canonical cell order) with paper data.

    ``estimates`` must be in the order :func:`repro.api.plans.
    table_cells` emits — rows in spec order, schemes in column order —
    which is both what :func:`run_table` produces and what a
    table-kind :class:`~repro.api.results.ResultSet` iterates in.
    """
    columns = len(spec.schemes)
    if len(estimates) != columns * len(spec.rows):
        raise ConfigurationError(
            f"expected {columns * len(spec.rows)} estimates for table "
            f"{spec.table_id!r}, got {len(estimates)}"
        )
    rows = [
        _assemble_row(
            spec, u, lam,
            estimates[row_index * columns:(row_index + 1) * columns],
        )
        for row_index, (u, lam) in enumerate(spec.rows)
    ]
    return TableResult(spec=spec, reps=reps, seed=seed, rows=rows)


# Back-compat alias: the canonical label function moved to the façade's
# plan layer (repro.api.plans.cell_label).
_cell_label = _plan_cell_label
