"""Experiment specifications for the paper's tables.

A :class:`TableSpec` captures everything needed to regenerate one of the
paper's tables: checkpoint costs, fault budget ``k``, the speed at which
the static baselines run, the reference speed defining utilisation
(``U = N/(f_ref·D)``), and the (U, λ) grid.  :func:`table_spec` returns
the spec for a published table id; :func:`all_table_specs` enumerates
all eight.

Common parameters (paper §4): ``D = 10000``, ``c = 22``, ``t_r = 0``,
``f1 = 1``, ``f2 = 2``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import partial
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.checkpoints import CostModel
from repro.core.schemes import (
    AdaptiveCCPPolicy,
    AdaptiveConfig,
    AdaptiveDVSPolicy,
    AdaptiveSCPPolicy,
    CheckpointPolicy,
    KFaultTolerantPolicy,
    PoissonArrivalPolicy,
)
from repro.errors import ConfigurationError
from repro.experiments import paper_data
from repro.sim.backends import CellJob
from repro.sim.fastpath import (
    STATIC_SCHEMES,
    StaticCellJob,
    static_cell_for_scheme,
)
from repro.sim.task import TaskSpec

__all__ = [
    "TableSpec",
    "table_spec",
    "all_table_specs",
    "DEADLINE",
    "ExecutionSettings",
]

#: The paper's deadline, shared by every experiment.
DEADLINE = 10_000.0


@dataclass(frozen=True)
class ExecutionSettings:
    """The one validated *where-does-it-run* selector.

    Every entry point that takes execution flags (the CLI's ``table`` /
    ``validate`` / ``sweep`` commands, scripts building their own
    runners) funnels them through this dataclass instead of re-deriving
    "``--workers`` implies a process pool" by hand.  Validation happens
    at construction; :meth:`make_runner` then builds the matching
    :class:`~repro.sim.parallel.BatchRunner` (or ``None`` for the
    implicit serial default, which callers treat identically).

    Parameters
    ----------
    backend:
        ``None`` (infer from ``workers``: unset/1 → serial, anything
        else → process pool — the historical behaviour) or an explicit
        name from :data:`~repro.sim.backends.BACKEND_NAMES`.
    workers:
        Process-pool size.  ``None`` means unspecified (serial when
        inferred; one per CPU for an explicit ``"process"``); ``0``
        means one per CPU; ``1`` with an explicit ``"process"`` is a
        genuine single-process pool.
    chunk_size:
        Reps per block (the determinism-contract knob); ``None`` =
        default block size.
    cluster_workers:
        Loopback worker subprocesses to spawn for the distributed
        backend (``0`` = none; workers then connect externally via
        ``repro worker``).
    url:
        Coordinator bind address for the distributed backend.
    kernel:
        Executor engine: ``"exact"`` (default) is the bit-identical
        per-rep path pinned by golden replay; ``"fast"`` opts into the
        vectorised kernel (:mod:`repro.sim.kernel`) — statistically
        equivalent, deterministic per block rather than per rep.
    tls_cert / tls_key / tls_ca:
        Distributed-backend TLS: the coordinator serves TLS with
        ``tls_cert``/``tls_key`` (always together) and — with
        ``tls_ca`` — demands worker certificates signed by that CA
        (mutual TLS).  Loopback cluster workers spawned from these
        settings receive the matching flags automatically; external
        workers pass ``--tls-ca`` (and ``--tls-cert/--tls-key`` for
        mTLS) to ``repro worker``.
    connect_timeout:
        Seconds the distributed backend waits for workers to join
        before starting (``None`` = the coordinator default,
        :data:`~repro.sim.distributed.DEFAULT_WAIT_TIMEOUT`); raise it
        on slow CI hosts.
    straggler_factor:
        Straggler-speculation multiplier for the distributed backend:
        a task in flight longer than this × its kind's EWMA block
        latency is speculatively re-dispatched (idle worker or the
        coordinator's local lane), with the resolve-once collection
        deduplicating whichever copy finishes first.  ``None`` = the
        coordinator default; ``0`` disables speculation.  Dispatch
        only — results are bit-identical regardless.
    """

    backend: Optional[str] = None
    workers: Optional[int] = None
    chunk_size: Optional[int] = None
    cluster_workers: int = 0
    url: Optional[str] = None
    #: Latency-adaptive worker-batch sizing on the parallel backends
    #: (dispatch-only; results are bit-identical either way).  Ignored
    #: for serial execution, where there is no dispatch to batch.
    adaptive_batching: bool = True
    kernel: str = "exact"
    tls_cert: Optional[str] = None
    tls_key: Optional[str] = None
    tls_ca: Optional[str] = None
    connect_timeout: Optional[float] = None
    straggler_factor: Optional[float] = None

    def __post_init__(self) -> None:
        from repro.sim.backends import BACKEND_NAMES
        from repro.sim.kernel import KERNEL_NAMES

        if self.kernel not in KERNEL_NAMES:
            raise ConfigurationError(
                f"unknown kernel {self.kernel!r}; valid names: "
                f"{', '.join(KERNEL_NAMES)}"
            )
        if self.backend is not None and self.backend not in BACKEND_NAMES:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; valid names: "
                f"{', '.join(BACKEND_NAMES)}"
            )
        if self.workers is not None and self.workers < 0:
            raise ConfigurationError(
                f"workers must be >= 0 (0 = one per CPU), got {self.workers}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.cluster_workers < 0:
            raise ConfigurationError(
                f"cluster_workers must be >= 0, got {self.cluster_workers}"
            )
        if self.backend == "serial" and self.workers not in (None, 1):
            raise ConfigurationError(
                "backend 'serial' runs in-process; drop --workers or use "
                "--backend process"
            )
        if self.backend == "distributed" and self.workers is not None:
            raise ConfigurationError(
                "backend 'distributed' does not take --workers; use "
                "--cluster-workers for loopback workers"
            )
        if self.backend != "distributed":
            if self.cluster_workers:
                raise ConfigurationError(
                    "--cluster-workers requires --backend distributed"
                )
            if self.url is not None:
                raise ConfigurationError(
                    "a coordinator URL requires --backend distributed"
                )
            if self.tls_cert or self.tls_key or self.tls_ca:
                raise ConfigurationError(
                    "--tls-cert/--tls-key/--tls-ca require "
                    "--backend distributed"
                )
            if self.connect_timeout is not None:
                raise ConfigurationError(
                    "--connect-timeout requires --backend distributed"
                )
            if self.straggler_factor is not None:
                raise ConfigurationError(
                    "--straggler-factor requires --backend distributed"
                )
        if bool(self.tls_cert) != bool(self.tls_key):
            raise ConfigurationError(
                "--tls-cert and --tls-key must be provided together"
            )
        if self.tls_ca and not self.tls_cert:
            raise ConfigurationError(
                "--tls-ca on the coordinator side requires --tls-cert/"
                "--tls-key (serving TLS needs a certificate; the CA only "
                "adds mutual-TLS client verification)"
            )
        if self.connect_timeout is not None and self.connect_timeout <= 0:
            raise ConfigurationError(
                f"connect_timeout must be > 0, got {self.connect_timeout}"
            )
        if self.straggler_factor is not None and self.straggler_factor < 0:
            raise ConfigurationError(
                f"straggler_factor must be >= 0 (0 disables speculation), "
                f"got {self.straggler_factor}"
            )

    @classmethod
    def from_cli_args(cls, args) -> "ExecutionSettings":
        """Settings from a parsed CLI namespace (shared execution flags).

        Tolerates namespaces that lack some flags (subcommands opt into
        the shared flag group), so every command funnels through the
        same validation instead of re-reading ``args`` by hand.
        """
        return cls(
            backend=getattr(args, "backend", None),
            workers=getattr(args, "workers", None),
            chunk_size=getattr(args, "chunk_size", None),
            cluster_workers=getattr(args, "cluster_workers", 0),
            url=getattr(args, "url", None),
            adaptive_batching=not getattr(args, "no_adaptive_batch", False),
            kernel=getattr(args, "kernel", None) or "exact",
            tls_cert=getattr(args, "tls_cert", None),
            tls_key=getattr(args, "tls_key", None),
            tls_ca=getattr(args, "tls_ca", None),
            connect_timeout=getattr(args, "connect_timeout", None),
            straggler_factor=getattr(args, "straggler_factor", None),
        )

    @property
    def resolved_backend(self) -> str:
        """The backend name after inference (never ``None``)."""
        if self.backend is not None:
            return self.backend
        return "serial" if self.workers in (None, 1) else "process"

    def make_runner(self):
        """The :class:`~repro.sim.parallel.BatchRunner` these settings
        describe, or ``None`` for the implicit serial default (byte-
        identical to passing no runner at all)."""
        from repro.sim.parallel import BatchRunner

        resolved = self.resolved_backend
        if resolved == "serial":
            if self.chunk_size is None:
                return None
            return BatchRunner.serial(chunk_size=self.chunk_size)
        if resolved == "process":
            # An explicitly requested process pool honours workers
            # verbatim (unset/0 → one per CPU, 1 → a 1-process pool);
            # the inferred path keeps the historical mapping where
            # workers > 1 sized the pool and 0 meant one per CPU.
            pool = None if self.workers in (None, 0) else self.workers
            # Only forward a non-default adaptive_batching: the backends
            # default to adaptive on, and None keeps BatchRunner's
            # serial-rejection logic out of play.
            adaptive = None if self.adaptive_batching else False
            if self.backend == "process":
                return BatchRunner(
                    backend="process",
                    workers=pool,
                    chunk_size=self.chunk_size,
                    adaptive_batching=adaptive,
                )
            return BatchRunner(
                workers=pool,
                chunk_size=self.chunk_size,
                adaptive_batching=adaptive,
            )
        tls = None
        if self.tls_cert or self.tls_ca:
            from repro.sim.distributed import TLSConfig

            tls = TLSConfig(
                cert=self.tls_cert, key=self.tls_key, ca=self.tls_ca
            )
        return BatchRunner(
            backend="distributed",
            chunk_size=self.chunk_size,
            cluster_workers=self.cluster_workers or None,
            url=self.url,
            adaptive_batching=None if self.adaptive_batching else False,
            tls=tls,
            connect_timeout=self.connect_timeout,
            straggler_factor=self.straggler_factor,
        )


@dataclass(frozen=True)
class TableSpec:
    """Declarative description of one table of the evaluation."""

    table_id: str
    title: str
    costs: CostModel
    fault_budget: int
    static_frequency: float
    reference_frequency: float
    rows: Tuple[Tuple[float, float], ...]
    adaptive_variant: str  # 'scp' or 'ccp'
    deadline: float = DEADLINE
    adaptive_config: AdaptiveConfig = field(default_factory=AdaptiveConfig)

    def __post_init__(self) -> None:
        if self.adaptive_variant not in ("scp", "ccp"):
            raise ConfigurationError(
                f"adaptive_variant must be 'scp' or 'ccp', got "
                f"{self.adaptive_variant!r}"
            )

    @property
    def schemes(self) -> Tuple[str, ...]:
        """Column order, matching the paper."""
        last = "A_D_S" if self.adaptive_variant == "scp" else "A_D_C"
        return ("Poisson", "k-f-t", "A_D", last)

    def task(self, u: float, lam: float) -> TaskSpec:
        """The task of row (U, λ): ``N = U·f_ref·D`` cycles."""
        return TaskSpec.from_utilization(
            u,
            deadline=self.deadline,
            frequency=self.reference_frequency,
            fault_budget=self.fault_budget,
            fault_rate=lam,
            costs=self.costs,
        )

    def policy_factory(self, scheme: str) -> Callable[[], CheckpointPolicy]:
        """Fresh-policy factory for a scheme column.

        Factories are :func:`functools.partial` objects over module-level
        policy classes — picklable, so whole cell grids can ship to the
        worker processes of :class:`repro.sim.parallel.BatchRunner`.
        """
        if scheme == "Poisson":
            return partial(PoissonArrivalPolicy, self.static_frequency)
        if scheme == "k-f-t":
            return partial(KFaultTolerantPolicy, self.static_frequency)
        if scheme == "A_D":
            return partial(AdaptiveDVSPolicy, self.adaptive_config)
        if scheme == "A_D_S":
            return partial(AdaptiveSCPPolicy, self.adaptive_config)
        if scheme == "A_D_C":
            return partial(AdaptiveCCPPolicy, self.adaptive_config)
        raise ConfigurationError(f"unknown scheme {scheme!r}")

    def cell_job(
        self,
        u: float,
        lam: float,
        scheme: str,
        *,
        reps: int,
        seed: int,
        fast_static: bool = False,
        faults_during_overhead: bool = False,
    ):
        """The fully-specified job of one (row, scheme) cell.

        The single builder behind every grid dispatcher (tables,
        sweeps, sensitivity): an executor :class:`~repro.sim.backends.
        CellJob`, or — with ``fast_static`` and a static scheme — a
        vectorised :class:`~repro.sim.fastpath.StaticCellJob`.
        """
        task = self.task(u, lam)
        if fast_static and scheme in STATIC_SCHEMES:
            if faults_during_overhead:
                raise ConfigurationError(
                    "fast_static assumes the paper's convention that faults "
                    "during overhead are ignored; it cannot be combined "
                    "with faults_during_overhead=True"
                )
            return StaticCellJob(
                spec=static_cell_for_scheme(task, scheme, self.static_frequency),
                reps=reps,
                seed=seed,
            )
        return CellJob(
            task=task,
            policy_factory=self.policy_factory(scheme),
            reps=reps,
            seed=seed,
            faults_during_overhead=faults_during_overhead,
        )

    def with_adaptive_config(self, config: AdaptiveConfig) -> "TableSpec":
        """Copy of this spec with different adaptive-scheme knobs."""
        return replace(self, adaptive_config=config)


def _rows_a() -> Tuple[Tuple[float, float], ...]:
    return tuple(
        (u, lam) for u in (0.76, 0.78, 0.80, 0.82) for lam in (1.4e-3, 1.6e-3)
    )


def _rows_b_f1() -> Tuple[Tuple[float, float], ...]:
    return tuple((u, lam) for u in (0.92, 0.95, 1.00) for lam in (1e-4, 2e-4))


def _rows_b_f2() -> Tuple[Tuple[float, float], ...]:
    return tuple((u, lam) for u in (0.92, 0.95) for lam in (1e-4, 2e-4))


def _build_specs() -> Dict[str, TableSpec]:
    scp_costs = CostModel.scp_favourable()
    ccp_costs = CostModel.ccp_favourable()
    specs = [
        TableSpec(
            table_id="1a",
            title=(
                "adapchp-dvs-SCPs vs baselines; static schemes at f1; k=5 "
                "(paper Tab. 1a)"
            ),
            costs=scp_costs,
            fault_budget=5,
            static_frequency=1.0,
            reference_frequency=1.0,
            rows=_rows_a(),
            adaptive_variant="scp",
        ),
        TableSpec(
            table_id="1b",
            title=(
                "adapchp-dvs-SCPs vs baselines; static schemes at f1; k=1 "
                "(paper Tab. 1b)"
            ),
            costs=scp_costs,
            fault_budget=1,
            static_frequency=1.0,
            reference_frequency=1.0,
            rows=_rows_b_f1(),
            adaptive_variant="scp",
        ),
        TableSpec(
            table_id="2a",
            title=(
                "adapchp-dvs-SCPs vs baselines; static schemes at f2; k=5 "
                "(paper Tab. 2a)"
            ),
            costs=scp_costs,
            fault_budget=5,
            static_frequency=2.0,
            reference_frequency=2.0,
            rows=_rows_a(),
            adaptive_variant="scp",
        ),
        TableSpec(
            table_id="2b",
            title=(
                "adapchp-dvs-SCPs vs baselines; static schemes at f2; k=1 "
                "(paper Tab. 2b)"
            ),
            costs=scp_costs,
            fault_budget=1,
            static_frequency=2.0,
            reference_frequency=2.0,
            rows=_rows_b_f2(),
            adaptive_variant="scp",
        ),
        TableSpec(
            table_id="3a",
            title=(
                "adapchp-dvs-CCPs vs baselines; static schemes at f1; k=5 "
                "(paper Tab. 3a)"
            ),
            costs=ccp_costs,
            fault_budget=5,
            static_frequency=1.0,
            reference_frequency=1.0,
            rows=_rows_a(),
            adaptive_variant="ccp",
        ),
        TableSpec(
            table_id="3b",
            title=(
                "adapchp-dvs-CCPs vs baselines; static schemes at f1; k=1 "
                "(paper Tab. 3b)"
            ),
            costs=ccp_costs,
            fault_budget=1,
            static_frequency=1.0,
            reference_frequency=1.0,
            rows=_rows_b_f1(),
            adaptive_variant="ccp",
        ),
        TableSpec(
            table_id="4a",
            title=(
                "adapchp-dvs-CCPs vs baselines; static schemes at f2; k=5 "
                "(paper Tab. 4a)"
            ),
            costs=ccp_costs,
            fault_budget=5,
            static_frequency=2.0,
            reference_frequency=2.0,
            rows=_rows_a(),
            adaptive_variant="ccp",
        ),
        TableSpec(
            table_id="4b",
            title=(
                "adapchp-dvs-CCPs vs baselines; static schemes at f2; k=1 "
                "(paper Tab. 4b)"
            ),
            costs=ccp_costs,
            fault_budget=1,
            static_frequency=2.0,
            reference_frequency=2.0,
            rows=_rows_b_f2(),
            adaptive_variant="ccp",
        ),
    ]
    return {spec.table_id: spec for spec in specs}


_SPECS = _build_specs()


def table_spec(table_id: str) -> TableSpec:
    """The spec of a published table id ('1a' ... '4b')."""
    if table_id not in _SPECS:
        raise ConfigurationError(
            f"unknown table {table_id!r}; valid ids: "
            f"{', '.join(paper_data.TABLE_IDS)}"
        )
    return _SPECS[table_id]


def all_table_specs() -> List[TableSpec]:
    """All eight published table specs, in order."""
    return [_SPECS[tid] for tid in paper_data.TABLE_IDS]
