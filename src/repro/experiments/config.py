"""Experiment specifications for the paper's tables.

A :class:`TableSpec` captures everything needed to regenerate one of the
paper's tables: checkpoint costs, fault budget ``k``, the speed at which
the static baselines run, the reference speed defining utilisation
(``U = N/(f_ref·D)``), and the (U, λ) grid.  :func:`table_spec` returns
the spec for a published table id; :func:`all_table_specs` enumerates
all eight.

Common parameters (paper §4): ``D = 10000``, ``c = 22``, ``t_r = 0``,
``f1 = 1``, ``f2 = 2``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import partial
from typing import Callable, Dict, List, Tuple

from repro.core.checkpoints import CostModel
from repro.core.schemes import (
    AdaptiveCCPPolicy,
    AdaptiveConfig,
    AdaptiveDVSPolicy,
    AdaptiveSCPPolicy,
    CheckpointPolicy,
    KFaultTolerantPolicy,
    PoissonArrivalPolicy,
)
from repro.errors import ConfigurationError
from repro.experiments import paper_data
from repro.sim.backends import CellJob
from repro.sim.fastpath import (
    STATIC_SCHEMES,
    StaticCellJob,
    static_cell_for_scheme,
)
from repro.sim.task import TaskSpec

__all__ = ["TableSpec", "table_spec", "all_table_specs", "DEADLINE"]

#: The paper's deadline, shared by every experiment.
DEADLINE = 10_000.0


@dataclass(frozen=True)
class TableSpec:
    """Declarative description of one table of the evaluation."""

    table_id: str
    title: str
    costs: CostModel
    fault_budget: int
    static_frequency: float
    reference_frequency: float
    rows: Tuple[Tuple[float, float], ...]
    adaptive_variant: str  # 'scp' or 'ccp'
    deadline: float = DEADLINE
    adaptive_config: AdaptiveConfig = field(default_factory=AdaptiveConfig)

    def __post_init__(self) -> None:
        if self.adaptive_variant not in ("scp", "ccp"):
            raise ConfigurationError(
                f"adaptive_variant must be 'scp' or 'ccp', got "
                f"{self.adaptive_variant!r}"
            )

    @property
    def schemes(self) -> Tuple[str, ...]:
        """Column order, matching the paper."""
        last = "A_D_S" if self.adaptive_variant == "scp" else "A_D_C"
        return ("Poisson", "k-f-t", "A_D", last)

    def task(self, u: float, lam: float) -> TaskSpec:
        """The task of row (U, λ): ``N = U·f_ref·D`` cycles."""
        return TaskSpec.from_utilization(
            u,
            deadline=self.deadline,
            frequency=self.reference_frequency,
            fault_budget=self.fault_budget,
            fault_rate=lam,
            costs=self.costs,
        )

    def policy_factory(self, scheme: str) -> Callable[[], CheckpointPolicy]:
        """Fresh-policy factory for a scheme column.

        Factories are :func:`functools.partial` objects over module-level
        policy classes — picklable, so whole cell grids can ship to the
        worker processes of :class:`repro.sim.parallel.BatchRunner`.
        """
        if scheme == "Poisson":
            return partial(PoissonArrivalPolicy, self.static_frequency)
        if scheme == "k-f-t":
            return partial(KFaultTolerantPolicy, self.static_frequency)
        if scheme == "A_D":
            return partial(AdaptiveDVSPolicy, self.adaptive_config)
        if scheme == "A_D_S":
            return partial(AdaptiveSCPPolicy, self.adaptive_config)
        if scheme == "A_D_C":
            return partial(AdaptiveCCPPolicy, self.adaptive_config)
        raise ConfigurationError(f"unknown scheme {scheme!r}")

    def cell_job(
        self,
        u: float,
        lam: float,
        scheme: str,
        *,
        reps: int,
        seed: int,
        fast_static: bool = False,
        faults_during_overhead: bool = False,
    ):
        """The fully-specified job of one (row, scheme) cell.

        The single builder behind every grid dispatcher (tables,
        sweeps, sensitivity): an executor :class:`~repro.sim.backends.
        CellJob`, or — with ``fast_static`` and a static scheme — a
        vectorised :class:`~repro.sim.fastpath.StaticCellJob`.
        """
        task = self.task(u, lam)
        if fast_static and scheme in STATIC_SCHEMES:
            if faults_during_overhead:
                raise ConfigurationError(
                    "fast_static assumes the paper's convention that faults "
                    "during overhead are ignored; it cannot be combined "
                    "with faults_during_overhead=True"
                )
            return StaticCellJob(
                spec=static_cell_for_scheme(task, scheme, self.static_frequency),
                reps=reps,
                seed=seed,
            )
        return CellJob(
            task=task,
            policy_factory=self.policy_factory(scheme),
            reps=reps,
            seed=seed,
            faults_during_overhead=faults_during_overhead,
        )

    def with_adaptive_config(self, config: AdaptiveConfig) -> "TableSpec":
        """Copy of this spec with different adaptive-scheme knobs."""
        return replace(self, adaptive_config=config)


def _rows_a() -> Tuple[Tuple[float, float], ...]:
    return tuple(
        (u, lam) for u in (0.76, 0.78, 0.80, 0.82) for lam in (1.4e-3, 1.6e-3)
    )


def _rows_b_f1() -> Tuple[Tuple[float, float], ...]:
    return tuple((u, lam) for u in (0.92, 0.95, 1.00) for lam in (1e-4, 2e-4))


def _rows_b_f2() -> Tuple[Tuple[float, float], ...]:
    return tuple((u, lam) for u in (0.92, 0.95) for lam in (1e-4, 2e-4))


def _build_specs() -> Dict[str, TableSpec]:
    scp_costs = CostModel.scp_favourable()
    ccp_costs = CostModel.ccp_favourable()
    specs = [
        TableSpec(
            table_id="1a",
            title=(
                "adapchp-dvs-SCPs vs baselines; static schemes at f1; k=5 "
                "(paper Tab. 1a)"
            ),
            costs=scp_costs,
            fault_budget=5,
            static_frequency=1.0,
            reference_frequency=1.0,
            rows=_rows_a(),
            adaptive_variant="scp",
        ),
        TableSpec(
            table_id="1b",
            title=(
                "adapchp-dvs-SCPs vs baselines; static schemes at f1; k=1 "
                "(paper Tab. 1b)"
            ),
            costs=scp_costs,
            fault_budget=1,
            static_frequency=1.0,
            reference_frequency=1.0,
            rows=_rows_b_f1(),
            adaptive_variant="scp",
        ),
        TableSpec(
            table_id="2a",
            title=(
                "adapchp-dvs-SCPs vs baselines; static schemes at f2; k=5 "
                "(paper Tab. 2a)"
            ),
            costs=scp_costs,
            fault_budget=5,
            static_frequency=2.0,
            reference_frequency=2.0,
            rows=_rows_a(),
            adaptive_variant="scp",
        ),
        TableSpec(
            table_id="2b",
            title=(
                "adapchp-dvs-SCPs vs baselines; static schemes at f2; k=1 "
                "(paper Tab. 2b)"
            ),
            costs=scp_costs,
            fault_budget=1,
            static_frequency=2.0,
            reference_frequency=2.0,
            rows=_rows_b_f2(),
            adaptive_variant="scp",
        ),
        TableSpec(
            table_id="3a",
            title=(
                "adapchp-dvs-CCPs vs baselines; static schemes at f1; k=5 "
                "(paper Tab. 3a)"
            ),
            costs=ccp_costs,
            fault_budget=5,
            static_frequency=1.0,
            reference_frequency=1.0,
            rows=_rows_a(),
            adaptive_variant="ccp",
        ),
        TableSpec(
            table_id="3b",
            title=(
                "adapchp-dvs-CCPs vs baselines; static schemes at f1; k=1 "
                "(paper Tab. 3b)"
            ),
            costs=ccp_costs,
            fault_budget=1,
            static_frequency=1.0,
            reference_frequency=1.0,
            rows=_rows_b_f1(),
            adaptive_variant="ccp",
        ),
        TableSpec(
            table_id="4a",
            title=(
                "adapchp-dvs-CCPs vs baselines; static schemes at f2; k=5 "
                "(paper Tab. 4a)"
            ),
            costs=ccp_costs,
            fault_budget=5,
            static_frequency=2.0,
            reference_frequency=2.0,
            rows=_rows_a(),
            adaptive_variant="ccp",
        ),
        TableSpec(
            table_id="4b",
            title=(
                "adapchp-dvs-CCPs vs baselines; static schemes at f2; k=1 "
                "(paper Tab. 4b)"
            ),
            costs=ccp_costs,
            fault_budget=1,
            static_frequency=2.0,
            reference_frequency=2.0,
            rows=_rows_b_f2(),
            adaptive_variant="ccp",
        ),
    ]
    return {spec.table_id: spec for spec in specs}


_SPECS = _build_specs()


def table_spec(table_id: str) -> TableSpec:
    """The spec of a published table id ('1a' ... '4b')."""
    if table_id not in _SPECS:
        raise ConfigurationError(
            f"unknown table {table_id!r}; valid ids: "
            f"{', '.join(paper_data.TABLE_IDS)}"
        )
    return _SPECS[table_id]


def all_table_specs() -> List[TableSpec]:
    """All eight published table specs, in order."""
    return [_SPECS[tid] for tid in paper_data.TABLE_IDS]
