"""repro.service — the multi-tenant study service.

The serving layer the ROADMAP's north star calls for: an HTTP
coordinator daemon (``repro serve``) that accepts
:class:`~repro.api.spec.StudySpec` JSON submissions, schedules their
cells onto one shared :class:`~repro.api.session.Session` via the
:class:`~repro.api.scheduler.CellScheduler`, streams per-cell
progress, and memoises every completed cell in a content-addressed
:class:`CellCache` — so overlapping studies from any number of
concurrent clients compute each unique cell exactly once and the rest
are cache hits served verbatim.

* :class:`CellCache` — the on-disk store: ``cell_identity`` key →
  :class:`~repro.api.results.CellRecord`, atomic writes, exact JSON.
* :class:`StudyService` — submission handling over one session,
  scheduler and cache; :func:`serve_forever` wraps it in a threaded
  HTTP server.
* :func:`submit_study` — the client half (``repro submit``).
"""

from repro.service.cache import CellCache
from repro.service.client import fetch_stats, submit_study, wait_until_ready
from repro.service.server import StudyService, make_server, serve_forever

__all__ = [
    "CellCache",
    "StudyService",
    "make_server",
    "serve_forever",
    "submit_study",
    "fetch_stats",
    "wait_until_ready",
]
