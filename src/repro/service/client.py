"""The client half of the study service: ``repro submit`` internals.

Thin stdlib-``urllib`` wrappers over the daemon's HTTP API — no
third-party HTTP dependency, matching the repo's no-new-deps rule.
Service-side validation failures (HTTP 4xx) surface as
:class:`~repro.errors.ConfigurationError` and execution failures (5xx)
as :class:`~repro.errors.SimulationError`, so CLI error handling is
the same for remote and local runs: one ``ReproError`` → exit 2 path.
"""

from __future__ import annotations

import json
import random
import time
from typing import Callable, Dict, Optional
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from repro.api.results import json_dumps_exact, json_loads_exact
from repro.errors import (
    ConfigurationError,
    ServiceUnavailableError,
    SimulationError,
)

__all__ = ["submit_study", "fetch_stats", "wait_until_ready"]

#: Per-request ceiling; a submission holds the connection open while
#: the service computes, so this bounds one whole study, not one RTT.
DEFAULT_TIMEOUT = 600.0

#: Transient-failure retries (connection refused during a service
#: restart, 503 from a saturated admission queue) before giving up.
#: Safe to retry by construction: a submission is idempotent — the
#: content-addressed cache means a duplicate costs lookups, not
#: recomputation — and both failure modes happen before any response
#: body, so a stream is never half-consumed.
DEFAULT_RETRIES = 3

_BACKOFF_BASE = 0.2  # seconds; doubles per attempt
_BACKOFF_CAP = 5.0
_RETRY_AFTER_CAP = 10.0  # never sleep longer than this on a 503 hint

#: Stream event callback: the decoded NDJSON event dict.
EventCallback = Callable[[Dict[str, object]], None]


def _service_error(exc: HTTPError) -> Exception:
    """Map an HTTP error response to the repo's error taxonomy."""
    try:
        detail = json.loads(exc.read().decode("utf-8", errors="replace"))
        message = detail.get("error", "") if isinstance(detail, dict) else ""
    except (ValueError, OSError):
        message = ""
    message = message or f"HTTP {exc.code} from the study service"
    if exc.code == 503:
        return ServiceUnavailableError(
            f"study service is saturated: {message}"
        )
    if 400 <= exc.code < 500:
        return ConfigurationError(f"service rejected the submission: {message}")
    return SimulationError(f"service failed running the study: {message}")


def _retry_delay(attempt: int, retry_after: Optional[str] = None) -> float:
    """Jittered exponential backoff, stretched to any ``Retry-After``.

    Jitter (0.5×–1.5×) keeps a burst of rejected clients from
    re-arriving in lockstep and tripping the admission bound again in
    unison.  A parseable ``Retry-After`` raises the floor (capped — a
    confused server must not park clients for minutes).
    """
    delay = min(_BACKOFF_BASE * (2 ** attempt), _BACKOFF_CAP)
    if retry_after is not None:
        try:
            hinted = float(retry_after)
        except ValueError:
            hinted = 0.0
        delay = max(delay, min(hinted, _RETRY_AFTER_CAP))
    return delay * (0.5 + random.random())


def submit_study(
    url: str,
    spec_payload: object,
    *,
    stream: bool = False,
    on_event: Optional[EventCallback] = None,
    timeout: float = DEFAULT_TIMEOUT,
    retries: int = DEFAULT_RETRIES,
) -> Dict[str, object]:
    """POST one StudySpec payload to a running service; return the envelope.

    The envelope is the service's response dict: ``spec_hash``,
    ``cells``, ``computed``, ``cached``, and ``result`` (a full
    :meth:`~repro.api.results.ResultSet.to_dict` payload — feed it to
    ``ResultSet.from_dict`` and the set is byte-compatible with a
    local ``Study.run`` save of the same study).

    With ``stream=True`` the submission uses the NDJSON endpoint;
    ``on_event`` fires per decoded event (``accepted``, one ``cell``
    per resolved cell, then ``result``) and the ``result`` event —
    minus its ``event`` tag — is returned.

    Transient failures — connection errors and 503 rejections from a
    saturated service — are retried up to ``retries`` times with
    jittered exponential backoff (honouring ``Retry-After``, capped).
    Pass ``retries=0`` to fail fast.  Non-transient errors (4xx
    validation, 5xx execution failures, mid-stream errors) never
    retry.
    """
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    endpoint = url.rstrip("/") + "/studies" + ("?stream=1" if stream else "")
    body = json_dumps_exact(spec_payload).encode("utf-8")
    for attempt in range(retries + 1):
        request = Request(
            endpoint, data=body, headers={"Content-Type": "application/json"}
        )
        try:
            with urlopen(request, timeout=timeout) as response:
                if not stream:
                    text = response.read().decode("utf-8")
                    envelope = json_loads_exact(text, what="service response")
                    if not isinstance(envelope, dict):
                        raise ConfigurationError(
                            "service response is not a JSON object"
                        )
                    return envelope
                return _consume_stream(response, on_event)
        except HTTPError as exc:
            if exc.code != 503 or attempt >= retries:
                raise _service_error(exc) from exc
            delay = _retry_delay(attempt, exc.headers.get("Retry-After"))
        except URLError as exc:
            if attempt >= retries:
                raise ConfigurationError(
                    f"cannot reach the study service at {url!r}"
                    + (f" after {attempt + 1} attempts" if retries else "")
                    + f": {exc.reason}"
                ) from exc
            delay = _retry_delay(attempt)
        time.sleep(delay)
    raise AssertionError("unreachable: the retry loop returns or raises")


def _consume_stream(response, on_event: Optional[EventCallback]) -> Dict[str, object]:
    """Drain an NDJSON study stream; return the final result envelope."""
    envelope: Optional[Dict[str, object]] = None
    for raw_line in response:
        line = raw_line.decode("utf-8").strip()
        if not line:
            continue
        event = json_loads_exact(line, what="service stream event")
        if not isinstance(event, dict):
            raise ConfigurationError("service stream event is not an object")
        if on_event is not None:
            on_event(event)
        tag = event.get("event")
        if tag == "error":
            raise SimulationError(
                f"service failed mid-stream: {event.get('error', 'unknown')}"
            )
        if tag == "result":
            envelope = {k: v for k, v in event.items() if k != "event"}
    if envelope is None:
        raise SimulationError(
            "service stream ended without a result event"
        )
    return envelope


def fetch_stats(url: str, *, timeout: float = 10.0) -> Dict[str, object]:
    """The service's ``/stats`` payload (cache + scheduler counters)."""
    endpoint = url.rstrip("/") + "/stats"
    try:
        with urlopen(endpoint, timeout=timeout) as response:
            payload = json_loads_exact(
                response.read().decode("utf-8"), what="service stats"
            )
    except HTTPError as exc:
        raise _service_error(exc) from exc
    except URLError as exc:
        raise ConfigurationError(
            f"cannot reach the study service at {url!r}: {exc.reason}"
        ) from exc
    if not isinstance(payload, dict):
        raise ConfigurationError("service stats response is not a JSON object")
    return payload


def wait_until_ready(
    url: str, *, timeout: float = 10.0, interval: float = 0.05
) -> None:
    """Block until ``/healthz`` answers, or raise after ``timeout``.

    The test/CI helper for "start the daemon, then submit": polls the
    liveness endpoint so callers need no sleep guesswork.
    """
    endpoint = url.rstrip("/") + "/healthz"
    deadline = time.monotonic() + timeout
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            with urlopen(endpoint, timeout=interval + 1.0) as response:
                if response.status == 200:
                    return
        except (URLError, OSError) as exc:
            last_error = exc
        time.sleep(interval)
    raise ConfigurationError(
        f"study service at {url!r} did not become ready within "
        f"{timeout:g}s" + (f" (last error: {last_error})" if last_error else "")
    )
