"""The content-addressed cell store behind the study service.

One file per unique cell, named by its
:func:`~repro.api.plans.cell_identity` (a sha256 over the cell job's
canonical content description, the block size, and the executor
kernel), holding the full provenance-stamped
:class:`~repro.api.results.CellRecord` of the computation that filled
it.  Because the identity captures *everything that determines the
estimate* — and ``exact``/``fast`` kernel cells therefore hash to
different keys — a hit can be served verbatim: the estimate bytes are
the ones recomputation would produce, pinned by
``tests/test_service.py``.

Writes are atomic (same-directory temp + rename, the
:meth:`ResultSet.save` discipline), and the first writer wins: a
concurrent duplicate computation of the same identity produced the
same estimate, so keeping the incumbent's provenance is both safe and
stable.  Corrupt or foreign files read as misses — a damaged cache
degrades to recomputation, never to an error or a wrong answer.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.api.results import (
    CellRecord,
    json_dumps_exact,
)
from repro.errors import ConfigurationError

__all__ = ["CellCache", "PruneReport"]

#: On-disk entry format tag; bump on incompatible layout changes.
FORMAT = "repro.cellcache/1"


class CellCache:
    """Content-addressed, on-disk (plus in-memory) store of cell records.

    Parameters
    ----------
    directory:
        Root of the store; created if missing.  Entries are sharded
        into 256 two-hex-digit subdirectories so a long-lived service
        never accumulates one enormous flat directory.
    memory:
        Keep an in-process read-through map of loaded/stored records
        (default on) so repeat hits skip JSON parsing.  The disk store
        is the source of truth either way.

    Thread-safe: the memory map is lock-guarded, disk writes are
    atomic, and concurrent puts of one identity converge on one entry.
    """

    def __init__(self, directory: str, *, memory: bool = True) -> None:
        self.directory = os.path.abspath(directory)
        try:
            os.makedirs(self.directory, exist_ok=True)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot create cell cache directory "
                f"{self.directory!r}: {exc}"
            )
        self._lock = threading.Lock()
        self._memory: Optional[Dict[str, CellRecord]] = {} if memory else None

    # -- paths ---------------------------------------------------------

    def path_for(self, identity: str) -> str:
        return os.path.join(self.directory, identity[:2], identity + ".json")

    # -- access --------------------------------------------------------

    def get(self, identity: str) -> Optional[CellRecord]:
        """The stored record for ``identity``, or ``None`` on a miss.

        Unreadable, torn, or format-foreign entries are misses: the
        service recomputes (and rewrites) them rather than failing a
        submission over a damaged cache file.
        """
        if self._memory is not None:
            with self._lock:
                record = self._memory.get(identity)
            if record is not None:
                return record
        try:
            with open(self.path_for(identity), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("format") != FORMAT
            or payload.get("identity") != identity
        ):
            return None
        try:
            record = CellRecord.from_dict(payload["record"])
        except (ConfigurationError, KeyError, TypeError):
            return None
        if self._memory is not None:
            with self._lock:
                self._memory[identity] = record
        return record

    def put(self, identity: str, record: CellRecord) -> None:
        """Store ``record`` under ``identity`` (first writer wins)."""
        if self._memory is not None:
            with self._lock:
                self._memory.setdefault(identity, record)
        path = self.path_for(identity)
        if os.path.exists(path):
            return
        payload = {
            "format": FORMAT,
            "identity": identity,
            "record": record.to_dict(),
        }
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            _atomic_write_if_absent(path, json_dumps_exact(payload) + "\n")
        except OSError as exc:
            raise ConfigurationError(
                f"cannot write cell cache entry {path!r}: {exc}"
            )

    def __contains__(self, identity: str) -> bool:
        return self.get(identity) is not None

    def __len__(self) -> int:
        """Entries on disk (authoritative, not the memory map)."""
        count = 0
        try:
            shards = os.listdir(self.directory)
        except OSError:
            return 0
        for shard in shards:
            shard_dir = os.path.join(self.directory, shard)
            if not os.path.isdir(shard_dir):
                continue
            try:
                count += sum(
                    1 for name in os.listdir(shard_dir)
                    if name.endswith(".json")
                )
            except OSError:
                continue
        return count

    # -- eviction ------------------------------------------------------

    def _entries(self) -> List[Tuple[str, str, int, float]]:
        """``(identity, path, size, mtime)`` of every on-disk entry.

        Entries that vanish mid-scan (a concurrent prune or wipe) are
        skipped — the cache never errors over racing maintenance.
        """
        entries: List[Tuple[str, str, int, float]] = []
        try:
            shards = os.listdir(self.directory)
        except OSError:
            return entries
        for shard in sorted(shards):
            shard_dir = os.path.join(self.directory, shard)
            if not os.path.isdir(shard_dir):
                continue
            try:
                names = os.listdir(shard_dir)
            except OSError:
                continue
            for name in sorted(names):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    status = os.stat(path)
                except OSError:
                    continue
                entries.append(
                    (name[: -len(".json")], path, status.st_size,
                     status.st_mtime)
                )
        return entries

    def prune(
        self,
        *,
        max_bytes: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
        dry_run: bool = False,
        now: Optional[float] = None,
    ) -> "PruneReport":
        """Evict cold entries: oldest-first by mtime (LRU by write/touch).

        Two independent limits compose: entries older than
        ``max_age_seconds`` go first, then the oldest survivors until
        the store fits in ``max_bytes``.  With ``dry_run`` nothing is
        deleted — the report says what *would* go.  Evicted identities
        are dropped from the in-memory map too, so a pruned entry is a
        genuine miss (and recomputes) rather than a ghost hit.
        """
        if max_bytes is not None and max_bytes < 0:
            raise ConfigurationError(
                f"max_bytes must be >= 0, got {max_bytes}"
            )
        if max_age_seconds is not None and max_age_seconds < 0:
            raise ConfigurationError(
                f"max_age_seconds must be >= 0, got {max_age_seconds}"
            )
        moment = time.time() if now is None else now
        entries = self._entries()
        total_bytes = sum(size for _, _, size, _ in entries)

        doomed: Dict[str, Tuple[str, int]] = {}
        if max_age_seconds is not None:
            for identity, path, size, mtime in entries:
                if moment - mtime > max_age_seconds:
                    doomed[identity] = (path, size)
        if max_bytes is not None:
            kept = [e for e in entries if e[0] not in doomed]
            kept_bytes = sum(size for _, _, size, _ in kept)
            for identity, path, size, _ in sorted(kept, key=lambda e: e[3]):
                if kept_bytes <= max_bytes:
                    break
                doomed[identity] = (path, size)
                kept_bytes -= size

        freed = 0
        removed: List[str] = []
        for identity in sorted(doomed):
            path, size = doomed[identity]
            if not dry_run:
                try:
                    os.remove(path)
                except OSError:
                    continue  # already gone: someone else pruned it
                if self._memory is not None:
                    with self._lock:
                        self._memory.pop(identity, None)
            removed.append(identity)
            freed += size
        return PruneReport(
            examined=len(entries),
            removed=tuple(removed),
            freed_bytes=freed,
            kept=len(entries) - len(removed),
            kept_bytes=total_bytes - freed,
            dry_run=dry_run,
        )

    def stats(self) -> Dict[str, object]:
        with self._lock:
            in_memory = len(self._memory) if self._memory is not None else 0
        return {
            "directory": self.directory,
            "entries": len(self),
            "in_memory": in_memory,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CellCache({self.directory!r})"


@dataclass(frozen=True)
class PruneReport:
    """Outcome of one :meth:`CellCache.prune` pass."""

    examined: int
    removed: Tuple[str, ...] = field(repr=False)
    freed_bytes: int
    kept: int
    kept_bytes: int
    dry_run: bool

    def render(self) -> str:
        verb = "would remove" if self.dry_run else "removed"
        return (
            f"{verb} {len(self.removed)} of {self.examined} entries "
            f"({self.freed_bytes} bytes); {self.kept} kept "
            f"({self.kept_bytes} bytes)"
        )


def _atomic_write_if_absent(path: str, text: str) -> None:
    """Atomically publish ``text`` at ``path`` unless someone else has.

    Same temp+rename discipline as :meth:`ResultSet.save`, plus a
    last-instant existence check: in a concurrent duplicate write both
    payloads describe the same computation, so the incumbent stays.
    """
    import tempfile

    fd, temp_path = tempfile.mkstemp(
        dir=os.path.dirname(path),
        prefix=os.path.basename(path) + ".",
        suffix=".tmp",
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8", newline="") as handle:
            handle.write(text)
        if os.path.exists(path):
            os.unlink(temp_path)
            return
        os.replace(temp_path, path)
    except OSError:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
