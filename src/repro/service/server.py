"""The study service daemon: HTTP front end over one shared scheduler.

Architecture (the service-vs-core split):

* :class:`StudyService` is the core — no HTTP anywhere in it.  It owns
  one :class:`~repro.api.session.Session` (the execution resources),
  one :class:`~repro.service.cache.CellCache`, and one
  :class:`~repro.api.scheduler.CellScheduler` tying them together.
  :meth:`StudyService.submit` takes a spec payload and returns the
  completed :class:`~repro.api.results.ResultSet` plus hit/miss
  accounting; concurrent submissions are safe — the scheduler
  arbitrates claims so each unique cell is computed exactly once even
  when two clients race on it.
* :class:`_Handler`/:func:`make_server` are the HTTP skin: a
  threaded stdlib server (one thread per connection — request threads
  spend their time blocked on the scheduler, so threads are the right
  concurrency unit) translating JSON bodies to submissions and
  :class:`~repro.errors.ConfigurationError` to clean ``4xx`` responses.

Endpoints::

    GET  /healthz            liveness + identity of the serving session
    GET  /stats              cache + scheduler counters
    POST /studies            StudySpec JSON -> result envelope
    POST /studies?stream=1   same, as NDJSON progress events, then the
                             result envelope as the final event

The result envelope embeds the full ``ResultSet`` dict — exact floats,
NaN literals included — so ``repro submit --out`` saves a file
byte-compatible with ``repro run --out`` of the same study.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Iterator, Optional, Tuple
from urllib.parse import urlparse

from repro.api.results import json_dumps_exact, json_loads_exact
from repro.api.scheduler import CellScheduler
from repro.api.session import Session
from repro.api.study import Study
from repro.errors import ConfigurationError, ReproError, ServiceUnavailableError
from repro.experiments.config import ExecutionSettings
from repro.service.cache import CellCache

__all__ = [
    "StudyService",
    "make_server",
    "serve_forever",
    "parse_service_url",
    "DEFAULT_URL",
    "DEFAULT_MAX_PENDING",
    "DEFAULT_FAIR_SHARE",
    "DEFAULT_REQUEST_TIMEOUT",
]

#: Where ``repro serve`` binds without ``--url``.
DEFAULT_URL = "http://127.0.0.1:8750"

#: Submission body cap — a StudySpec is a few hundred bytes; anything
#: megabytes-long is a mistake or abuse, rejected before parsing.
MAX_BODY_BYTES = 1 << 20

#: ``repro serve`` defaults (the daemon entry point; a bare
#: :class:`StudyService` keeps the historical unbounded/monolithic
#: behaviour unless told otherwise).  ``--max-pending 0`` &c. disable.
DEFAULT_MAX_PENDING = 32
DEFAULT_FAIR_SHARE = 8
DEFAULT_REQUEST_TIMEOUT = 60.0

#: ``Retry-After`` seconds advertised with a 503.  Deliberately short:
#: the queue bound trips on concurrency spikes, not sustained overload,
#: and submissions are idempotent so an early retry is harmless.
RETRY_AFTER_SECONDS = 2


def parse_service_url(url: str) -> Tuple[str, int]:
    """``(host, port)`` from an ``http://host:port`` service URL."""
    parsed = urlparse(url if "//" in url else f"http://{url}")
    if parsed.scheme not in ("http", ""):
        raise ConfigurationError(
            f"service URL must be http://host:port, got {url!r}"
        )
    if not parsed.hostname:
        raise ConfigurationError(f"service URL has no host: {url!r}")
    return parsed.hostname, parsed.port if parsed.port is not None else 80


class StudyService:
    """Submission handling over one session, scheduler and cell cache.

    Parameters
    ----------
    settings:
        :class:`~repro.experiments.config.ExecutionSettings` for the
        serving session (``None`` = serial defaults).  Ignored when
        ``session`` is given.
    cache_dir:
        Directory for the content-addressed cell store.  Mutually
        exclusive with ``cache``; one of the two is required.
    session / cache:
        Pre-built collaborators (the test seam).  A passed-in session
        is borrowed — :meth:`close` leaves it to its owner.
    max_pending:
        Admission bound: at most this many submissions may be inside
        :meth:`admission` at once; the next one raises
        :class:`~repro.errors.ServiceUnavailableError` (HTTP 503 +
        ``Retry-After``) instead of queueing without limit.  ``None``
        (default) admits everything — the historical behaviour, and
        what embedded/test uses want.
    fair_share:
        Forwarded to the scheduler: cells per compute turn, so
        concurrent submissions round-robin instead of queueing whole
        studies.  ``None`` (default) keeps monolithic batches.
    """

    def __init__(
        self,
        settings: Optional[ExecutionSettings] = None,
        *,
        cache_dir: Optional[str] = None,
        cache: Optional[CellCache] = None,
        session: Optional[Session] = None,
        max_pending: Optional[int] = None,
        fair_share: Optional[int] = None,
    ) -> None:
        if (cache is None) == (cache_dir is None):
            raise ConfigurationError(
                "pass exactly one of cache_dir= or cache="
            )
        if max_pending is not None and max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1 (or None for unbounded "
                f"admission), got {max_pending}"
            )
        self.cache = cache if cache is not None else CellCache(cache_dir)
        self._owns_session = session is None
        self.session = (
            session if session is not None else Session(settings)
        )
        self.scheduler = CellScheduler(
            self.session, cache=self.cache, fair_share=fair_share
        )
        self.max_pending = max_pending
        self._lock = threading.Lock()
        self.submissions = 0
        self.active = 0
        self.rejected = 0

    # -- admission -----------------------------------------------------

    @contextmanager
    def admission(self) -> Iterator[None]:
        """Claim one admission slot for the duration of a submission.

        Raises :class:`~repro.errors.ServiceUnavailableError` when
        ``max_pending`` submissions are already in flight — *before*
        any compute is queued, so a saturated service answers fast and
        clients back off instead of piling onto the turnstile.
        """
        with self._lock:
            if self.max_pending is not None and self.active >= self.max_pending:
                self.rejected += 1
                raise ServiceUnavailableError(
                    f"study service is at capacity ({self.active} "
                    f"submissions in flight, max_pending="
                    f"{self.max_pending}); retry shortly"
                )
            self.active += 1
        try:
            yield
        finally:
            with self._lock:
                self.active -= 1

    # -- submissions ---------------------------------------------------

    def submit(self, payload: object, progress=None) -> Dict[str, object]:
        """Run one StudySpec payload; return the result envelope.

        ``payload`` is the parsed JSON body — anything malformed
        raises :class:`~repro.errors.ConfigurationError` (the HTTP
        layer's 400).  ``progress(plan, record, cached)`` fires as
        cells resolve, on the calling thread.
        """
        study = Study(payload)  # validates; dict -> StudySpec
        counts = {"computed": 0, "cached": 0}
        counts_lock = threading.Lock()

        def counting_progress(plan, record, cached):
            with counts_lock:
                counts["cached" if cached else "computed"] += 1
            if progress is not None:
                progress(plan, record, cached)

        result = study.run(scheduler=self.scheduler, progress=counting_progress)
        with self._lock:
            self.submissions += 1
        return {
            "spec_hash": study.spec_hash,
            "kind": study.spec.kind,
            "cells": len(result),
            "computed": counts["computed"],
            "cached": counts["cached"],
            "result": result.to_dict(),
        }

    def cell_count(self, payload: object) -> Tuple[str, int]:
        """(spec_hash, cell count) of a payload without running it."""
        study = Study(payload)
        return study.spec_hash, len(study.cells())

    # -- introspection -------------------------------------------------

    def stats(self) -> Dict[str, object]:
        with self._lock:
            counters = {
                "submissions": self.submissions,
                "active": self.active,
                "rejected": self.rejected,
            }
        return {
            **counters,
            "max_pending": self.max_pending,
            "session": self.session.describe(),
            "kernel": self.session.kernel,
            "scheduler": self.scheduler.stats(),
            "cache": self.cache.stats(),
        }

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        if self._owns_session:
            self.session.close()

    def __enter__(self) -> "StudyService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _Handler(BaseHTTPRequestHandler):
    """HTTP skin over the server's :class:`StudyService`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"

    @property
    def service(self) -> StudyService:
        return self.server.service  # type: ignore[attr-defined]

    def setup(self) -> None:
        """Arm the per-connection socket timeout before any read.

        A client that connects and then trickles (or stops sending) a
        request would otherwise pin its handler thread forever; with a
        timeout the blocked read raises ``TimeoutError``, which the
        stdlib request loop turns into a clean connection close.
        """
        super().setup()
        timeout = getattr(self.server, "request_timeout", None)
        if timeout:
            self.connection.settimeout(timeout)

    # -- routing -------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            self._send_json(200, {"ok": True, **self.service.stats()})
        elif path == "/stats":
            self._send_json(200, self.service.stats())
        else:
            self._send_json(404, {"error": f"no such endpoint: {path}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        path, _, query = self.path.partition("?")
        if path != "/studies":
            self._send_json(404, {"error": f"no such endpoint: {path}"})
            return
        stream = "stream=1" in query.split("&") if query else False
        try:
            payload = self._read_body()
            with self.service.admission():
                if stream:
                    self._submit_streaming(payload)
                else:
                    envelope = self.service.submit(payload)
                    self._send_json(200, envelope)
        except ServiceUnavailableError as exc:
            self._send_json(
                503,
                {"error": str(exc)},
                extra_headers={"Retry-After": str(RETRY_AFTER_SECONDS)},
            )
        except ConfigurationError as exc:
            self._send_json(400, {"error": str(exc)})
        except ReproError as exc:
            self._send_json(500, {"error": str(exc)})

    # -- helpers -------------------------------------------------------

    def _read_body(self) -> object:
        # Parse Content-Length strictly — digits only — and *before*
        # rfile.read: ``-1`` reaches socket reads as "until EOF" and a
        # hostile sender could hold the connection open feeding bytes.
        raw = self.headers.get("Content-Length")
        if raw is None:
            raise ConfigurationError(
                "a study submission needs a JSON body (the StudySpec)"
            )
        raw = raw.strip()
        if not (raw.isascii() and raw.isdigit()):
            raise ConfigurationError(
                f"malformed Content-Length header: {raw!r} (must be a "
                f"non-negative decimal integer)"
            )
        length = int(raw)
        if length == 0:
            raise ConfigurationError(
                "a study submission needs a JSON body (the StudySpec)"
            )
        if length > MAX_BODY_BYTES:
            raise ConfigurationError(
                f"submission body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        text = self.rfile.read(length).decode("utf-8", errors="replace")
        return json_loads_exact(text, what="study submission")

    def _submit_streaming(self, payload: object) -> None:
        """NDJSON: accepted, one event per cell, then the envelope.

        The response is length-delimited by connection close
        (``Connection: close``), so no chunked framing is needed and
        any HTTP client that reads to EOF — urllib included — parses
        it.  Spec validation happens *before* the 200 status goes out,
        so malformed submissions still get their clean 400.
        """
        spec_hash, total = self.service.cell_count(payload)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()
        done = {"count": 0}
        write_lock = threading.Lock()
        # Once the client side of the stream dies (reset, timeout, a
        # reader that closed early) further writes are pointless — and
        # must not raise out of the progress callback, which runs on
        # the thread computing cells *other submissions share*.
        reader_gone = threading.Event()

        def emit(event: Dict[str, object]) -> None:
            if reader_gone.is_set():
                return
            line = json_dumps_exact(event) + "\n"
            with write_lock:
                if reader_gone.is_set():
                    return
                try:
                    self.wfile.write(line.encode("utf-8"))
                    self.wfile.flush()
                except OSError:
                    reader_gone.set()

        emit({"event": "accepted", "spec_hash": spec_hash, "cells": total})

        def progress(plan, record, cached):
            done["count"] += 1
            emit(
                {
                    "event": "cell",
                    "key": plan.key,
                    "cached": cached,
                    "done": done["count"],
                    "total": total,
                }
            )

        try:
            envelope = self.service.submit(payload, progress=progress)
        except ReproError as exc:
            # Too late for an HTTP error status; the stream carries it.
            emit({"event": "error", "error": str(exc)})
            self.close_connection = True
            return
        emit({"event": "result", **envelope})
        self.close_connection = True

    def _send_json(
        self,
        status: int,
        payload: Dict[str, object],
        *,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = (json_dumps_exact(payload) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)


def make_server(
    service: StudyService,
    url: str = DEFAULT_URL,
    *,
    verbose: bool = False,
    request_timeout: Optional[float] = None,
) -> ThreadingHTTPServer:
    """A threaded HTTP server bound per ``url``, serving ``service``.

    Port 0 binds an OS-assigned port (the test path); the bound
    address is ``server.server_address``.  Call ``serve_forever()`` /
    ``shutdown()`` as usual.  ``request_timeout`` arms a per-connection
    socket timeout (seconds) so stalled clients cannot pin handler
    threads; ``None``/``0`` leaves connections unbounded.
    """
    if request_timeout is not None and request_timeout < 0:
        raise ConfigurationError(
            f"request_timeout must be >= 0, got {request_timeout}"
        )
    host, port = parse_service_url(url)
    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    server.service = service  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    server.request_timeout = request_timeout or None  # type: ignore[attr-defined]
    return server


def serve_forever(
    settings: Optional[ExecutionSettings],
    cache_dir: str,
    url: str = DEFAULT_URL,
    *,
    verbose: bool = False,
    ready: Optional[threading.Event] = None,
    max_pending: Optional[int] = DEFAULT_MAX_PENDING,
    fair_share: Optional[int] = DEFAULT_FAIR_SHARE,
    request_timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
) -> int:
    """Run the daemon until interrupted (the ``repro serve`` body).

    Prints one machine-greppable readiness line (``repro-serve:
    listening on http://host:port cache=DIR``) once the socket is
    bound, so wrappers — the CI smoke job, tests — can wait for it.

    Unlike a bare :class:`StudyService`, the daemon defaults to
    defensive settings — bounded admission, fair-share scheduling,
    per-connection timeouts; pass ``None`` (CLI: ``0``) to disable
    any of them.
    """
    with StudyService(
        settings,
        cache_dir=cache_dir,
        max_pending=max_pending,
        fair_share=fair_share,
    ) as service:
        server = make_server(
            service, url, verbose=verbose, request_timeout=request_timeout
        )
        host, port = server.server_address[:2]
        print(
            f"repro-serve: listening on http://{host}:{port} "
            f"cache={service.cache.directory}",
            flush=True,
        )
        if ready is not None:
            ready.set()
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("repro-serve: shutting down", flush=True)
        finally:
            server.server_close()
    return 0
