"""repro — energy-aware adaptive checkpointing for DMR real-time systems.

A faithful, tested reproduction of *“Performance Optimization for
Energy-Aware Adaptive Checkpointing in Embedded Real-Time Systems”*
(Zhongwen Li, Hong Chen, Shui Yu — DATE 2006), including the DATE'03
``ADT_DVS`` baseline it builds on, a discrete-event DMR fault simulator,
a Monte-Carlo experiment harness that regenerates every table of the
paper's evaluation, and extensions (TMR voting, multi-speed DVS, secure
checkpointing) flagged by the paper as related/future work.

Quickstart::

    from repro import (
        TaskSpec, CostModel, AdaptiveSCPPolicy, PoissonFaults, estimate,
    )

    task = TaskSpec(
        cycles=7600, deadline=10_000, fault_budget=5,
        fault_rate=1.4e-3, costs=CostModel.scp_favourable(),
    )
    cell = estimate(task, AdaptiveSCPPolicy, reps=2000, seed=42)
    print(f"P = {cell.p:.4f}, E = {cell.e:.0f}")

See ``examples/`` and ``EXPERIMENTS.md`` for the full evaluation.
"""

from repro.core.checkpoints import CheckpointKind, CostModel
from repro.core.dvs import SpeedLadder, estimated_completion_time
from repro.core.intervals import (
    checkpoint_interval,
    deadline_interval,
    k_fault_interval,
    k_fault_threshold,
    poisson_interval,
    poisson_threshold,
)
from repro.core.optimizer import SubdivisionPlan, num_ccp, num_scp
from repro.core.renewal import (
    ccp_interval_time,
    cscp_interval_time,
    scp_interval_time,
    scp_optimal_sublength,
)
from repro.core.schemes import (
    AdaptiveCCPPolicy,
    AdaptiveConfig,
    AdaptiveDVSPolicy,
    AdaptiveSCPPolicy,
    CheckpointPolicy,
    KFaultTolerantPolicy,
    Plan,
    PoissonArrivalPolicy,
)
from repro.errors import (
    ConfigurationError,
    InfeasibleError,
    ParameterError,
    ReproError,
    SimulationError,
)
from repro.sim.backends import (
    BACKEND_NAMES,
    DistributedBackend,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    make_backend,
)
from repro.sim.distributed import Coordinator, LocalCluster, serve_worker
from repro.sim.energy import EnergyAccount, EnergyModel
from repro.sim.executor import RunResult, SimulationLimits, simulate_run
from repro.sim.fastpath import (
    StaticCellJob,
    StaticCellSpec,
    simulate_static_cell,
    static_cell_for_scheme,
)
from repro.sim.metrics import (
    MeanEstimate,
    MomentAccumulator,
    ProportionEstimate,
)
from repro.sim.faults import (
    BurstyFaults,
    DualPoissonFaults,
    FaultProcess,
    FaultStream,
    PoissonFaults,
    ScriptedFaults,
    WeibullFaults,
)
from repro.sim.montecarlo import (
    CellAccumulator,
    CellEstimate,
    estimate,
    run_many,
    run_range,
    summarize,
)
from repro.sim.parallel import DEFAULT_BLOCK_SIZE, BatchRunner, CellJob
from repro.sim.rng import RandomSource
from repro.sim.state import ExecutionState
from repro.sim.task import TaskSpec
from repro.sim.trace import Trace, TraceRecorder

# The declarative study façade (imported last: it builds on the
# experiment and simulation layers above).
from repro.api import CellRecord, ResultSet, Session, Study, StudySpec

__version__ = "1.0.0"

__all__ = [
    # core formulas
    "poisson_interval",
    "k_fault_interval",
    "deadline_interval",
    "poisson_threshold",
    "k_fault_threshold",
    "checkpoint_interval",
    "scp_interval_time",
    "ccp_interval_time",
    "cscp_interval_time",
    "scp_optimal_sublength",
    "num_scp",
    "num_ccp",
    "SubdivisionPlan",
    "estimated_completion_time",
    "SpeedLadder",
    # checkpoint & task models
    "CheckpointKind",
    "CostModel",
    "TaskSpec",
    # schemes
    "CheckpointPolicy",
    "Plan",
    "PoissonArrivalPolicy",
    "KFaultTolerantPolicy",
    "AdaptiveDVSPolicy",
    "AdaptiveSCPPolicy",
    "AdaptiveCCPPolicy",
    "AdaptiveConfig",
    # simulation
    "simulate_run",
    "RunResult",
    "SimulationLimits",
    "ExecutionState",
    "EnergyModel",
    "EnergyAccount",
    "FaultProcess",
    "FaultStream",
    "PoissonFaults",
    "DualPoissonFaults",
    "WeibullFaults",
    "BurstyFaults",
    "ScriptedFaults",
    "Trace",
    "TraceRecorder",
    "RandomSource",
    # Monte-Carlo harness
    "estimate",
    "run_many",
    "run_range",
    "summarize",
    "CellEstimate",
    "CellAccumulator",
    "MomentAccumulator",
    "MeanEstimate",
    "ProportionEstimate",
    "BatchRunner",
    "CellJob",
    "DEFAULT_BLOCK_SIZE",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessBackend",
    "DistributedBackend",
    "BACKEND_NAMES",
    "make_backend",
    "Coordinator",
    "LocalCluster",
    "serve_worker",
    "StaticCellSpec",
    "StaticCellJob",
    "simulate_static_cell",
    "static_cell_for_scheme",
    # declarative study façade
    "Session",
    "Study",
    "StudySpec",
    "ResultSet",
    "CellRecord",
    # errors
    "ReproError",
    "ParameterError",
    "InfeasibleError",
    "SimulationError",
    "ConfigurationError",
    "__version__",
]
