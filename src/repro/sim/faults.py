"""Fault-arrival processes for the DMR simulator.

The paper's evaluation injects "faults into system using a Poisson
process" — a single stream of state-divergence events at rate ``λ``
(:class:`PoissonFaults`).  For sensitivity studies the library also
provides:

* :class:`DualPoissonFaults` — independent per-processor streams of
  rate ``λ`` each; any event diverges the pair, so the merged stream is
  Poisson at ``2λ`` (the rate the paper's *analysis* uses);
* :class:`WeibullFaults` — renewal process with Weibull inter-arrivals
  (shape 1 reduces to Poisson); models infant-mortality/wear-out;
* :class:`BurstyFaults` — a two-state Markov-modulated Poisson process
  for radiation-burst environments (e.g. South Atlantic Anomaly
  crossings of the paper's motivating space systems);
* :class:`ScriptedFaults` — an explicit list of arrival times, used by
  the unit tests to exercise exact rollback semantics.

A *process* is an immutable description; calling :meth:`stream` with a
generator yields a :class:`FaultStream` — a stateful iterator of
strictly increasing arrival times in wall-clock time units.  Fault
arrivals are in wall-clock time and therefore independent of the
processor speed, matching the paper's DVS model (slower execution means
longer exposure).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "FaultStream",
    "FaultProcess",
    "PoissonFaults",
    "DualPoissonFaults",
    "WeibullFaults",
    "BurstyFaults",
    "ScriptedFaults",
]


class FaultStream:
    """Stateful view of one realisation of a fault process.

    ``peek()`` returns the next arrival time without consuming it;
    ``pop()`` consumes and returns it.  Arrivals are strictly
    increasing; an exhausted stream reports ``inf``.
    """

    def __init__(self, draw_gap, start: float = 0.0) -> None:
        self._draw_gap = draw_gap
        self._clock = float(start)
        self._next: Optional[float] = None

    def peek(self) -> float:
        """Time of the next fault (``inf`` if none will ever occur)."""
        if self._next is None:
            gap = self._draw_gap()
            self._next = math.inf if gap is None else self._clock + gap
        return self._next

    def pop(self) -> float:
        """Consume and return the next fault time."""
        value = self.peek()
        if math.isfinite(value):
            self._clock = value
        self._next = None
        return value

    def advance_past(self, time: float) -> int:
        """Consume every arrival at or before ``time``; return count."""
        count = 0
        while self.peek() <= time:
            self.pop()
            count += 1
        return count


class FaultProcess:
    """Base class: a distribution over fault-arrival traces."""

    def stream(self, rng: np.random.Generator) -> FaultStream:
        raise NotImplementedError

    @property
    def mean_rate(self) -> float:
        """Long-run average arrivals per time unit (for analysis)."""
        raise NotImplementedError


@dataclass(frozen=True)
class PoissonFaults(FaultProcess):
    """Single Poisson stream at rate ``rate`` (the paper's injector)."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ParameterError(f"rate must be >= 0, got {self.rate}")

    def stream(self, rng: np.random.Generator) -> FaultStream:
        if self.rate == 0:
            return FaultStream(lambda: None)
        rate = self.rate
        return FaultStream(lambda: rng.exponential(1.0 / rate))

    @property
    def mean_rate(self) -> float:
        return self.rate


@dataclass(frozen=True)
class DualPoissonFaults(FaultProcess):
    """Independent Poisson faults on each of the two processors.

    Any single-processor fault diverges the pair state, so the merged
    divergence stream is Poisson with rate ``2·rate_per_processor``.
    """

    rate_per_processor: float

    def __post_init__(self) -> None:
        if self.rate_per_processor < 0:
            raise ParameterError(
                f"rate_per_processor must be >= 0, got {self.rate_per_processor}"
            )

    def stream(self, rng: np.random.Generator) -> FaultStream:
        merged = 2.0 * self.rate_per_processor
        if merged == 0:
            return FaultStream(lambda: None)
        return FaultStream(lambda: rng.exponential(1.0 / merged))

    @property
    def mean_rate(self) -> float:
        return 2.0 * self.rate_per_processor


@dataclass(frozen=True)
class WeibullFaults(FaultProcess):
    """Renewal process with Weibull(shape, scale) inter-arrival times.

    ``shape < 1`` models infant mortality (bursty early failures),
    ``shape > 1`` wear-out.  ``shape = 1`` is exponential with rate
    ``1/scale``.
    """

    shape: float
    scale: float

    def __post_init__(self) -> None:
        if self.shape <= 0:
            raise ParameterError(f"shape must be > 0, got {self.shape}")
        if self.scale <= 0:
            raise ParameterError(f"scale must be > 0, got {self.scale}")

    def stream(self, rng: np.random.Generator) -> FaultStream:
        shape, scale = self.shape, self.scale
        return FaultStream(lambda: scale * rng.weibull(shape))

    @property
    def mean_rate(self) -> float:
        return 1.0 / (self.scale * math.gamma(1.0 + 1.0 / self.shape))


@dataclass(frozen=True)
class BurstyFaults(FaultProcess):
    """Two-state MMPP: quiet rate / burst rate with exponential dwell.

    The process alternates between a quiet state (arrival rate
    ``quiet_rate``, mean dwell ``quiet_dwell``) and a burst state
    (``burst_rate``, ``burst_dwell``).  Arrivals inside each state are
    Poisson.  Models environments such as orbital radiation-belt
    crossings.
    """

    quiet_rate: float
    burst_rate: float
    quiet_dwell: float
    burst_dwell: float

    def __post_init__(self) -> None:
        if self.quiet_rate < 0 or self.burst_rate < 0:
            raise ParameterError("rates must be >= 0")
        if self.quiet_dwell <= 0 or self.burst_dwell <= 0:
            raise ParameterError("dwell times must be > 0")

    def stream(self, rng: np.random.Generator) -> FaultStream:
        state = {"bursting": False, "until": rng.exponential(self.quiet_dwell)}
        process = self

        def draw_gap() -> float:
            # Piece together exponential fragments across state changes
            # (memorylessness makes restarting the draw in the new state
            # statistically exact).  state["until"] holds the remaining
            # dwell time of the current regime.
            gap = 0.0
            while True:
                rate = process.burst_rate if state["bursting"] else process.quiet_rate
                window = state["until"]
                candidate = rng.exponential(1.0 / rate) if rate > 0 else math.inf
                if candidate <= window:
                    state["until"] = window - candidate
                    return gap + candidate
                gap += window
                state["bursting"] = not state["bursting"]
                dwell = (
                    process.burst_dwell if state["bursting"] else process.quiet_dwell
                )
                state["until"] = rng.exponential(dwell)

        return FaultStream(draw_gap)

    @property
    def mean_rate(self) -> float:
        total = self.quiet_dwell + self.burst_dwell
        return (
            self.quiet_rate * self.quiet_dwell + self.burst_rate * self.burst_dwell
        ) / total


@dataclass(frozen=True)
class ScriptedFaults(FaultProcess):
    """Deterministic fault times — the unit tests' scalpel."""

    times: tuple

    def __init__(self, times: Iterable[float]) -> None:
        ordered = tuple(float(t) for t in times)
        if any(b <= a for a, b in zip(ordered, ordered[1:])):
            raise ParameterError("scripted fault times must be strictly increasing")
        if any(t < 0 for t in ordered):
            raise ParameterError("scripted fault times must be >= 0")
        object.__setattr__(self, "times", ordered)

    def stream(self, rng: np.random.Generator = None) -> FaultStream:  # noqa: ARG002
        remaining: List[float] = list(self.times)
        last = [0.0]

        def draw_gap() -> Optional[float]:
            if not remaining:
                return None
            nxt = remaining.pop(0)
            gap = nxt - last[0]
            last[0] = nxt
            return gap

        return FaultStream(draw_gap)

    @property
    def mean_rate(self) -> float:
        if not self.times:
            return 0.0
        horizon = self.times[-1]
        return len(self.times) / horizon if horizon > 0 else math.inf
