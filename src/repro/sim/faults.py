"""Fault-arrival processes for the DMR simulator.

The paper's evaluation injects "faults into system using a Poisson
process" — a single stream of state-divergence events at rate ``λ``
(:class:`PoissonFaults`).  For sensitivity studies the library also
provides:

* :class:`DualPoissonFaults` — independent per-processor streams of
  rate ``λ`` each; any event diverges the pair, so the merged stream is
  Poisson at ``2λ`` (the rate the paper's *analysis* uses);
* :class:`WeibullFaults` — renewal process with Weibull inter-arrivals
  (shape 1 reduces to Poisson); models infant-mortality/wear-out;
* :class:`BurstyFaults` — a two-state Markov-modulated Poisson process
  for radiation-burst environments (e.g. South Atlantic Anomaly
  crossings of the paper's motivating space systems);
* :class:`ScriptedFaults` — an explicit list of arrival times, used by
  the unit tests to exercise exact rollback semantics.

A *process* is an immutable description; calling :meth:`stream` with a
generator yields a :class:`FaultStream` — a stateful iterator of
strictly increasing arrival times in wall-clock time units.  Fault
arrivals are in wall-clock time and therefore independent of the
processor speed, matching the paper's DVS model (slower execution means
longer exposure).

Batching
--------
:class:`FaultStream` pre-draws inter-arrival gaps in chunks — from the
*same* generator in the *same* order a one-gap-at-a-time iterator would
consume them — and keeps a buffer of upcoming arrival times.  Arrival
values are bit-identical to the sequential iterator's: NumPy fills a
``size=n`` draw by repeating the scalar routine against the same bit
stream, and the anchored ``cumsum`` performs the exact left-to-right
float additions ``((clock + g₀) + g₁) + …`` the scalar loop performs
(``tests/test_fault_batching.py`` pins this event-for-event for every
process).  Pre-drawing ahead is safe because the stream is its
generator's only consumer: the gap *values* do not depend on when they
are drawn, and each Monte-Carlo rep gets a fresh substream, so
over-drawn gaps are simply discarded with the stream.

On top of ``peek``/``pop`` the buffer enables :meth:`take_until` — all
arrivals inside a time segment in one ``searchsorted`` — which is what
lets the executor hot loop resolve a segment's faults without one
Python call per event.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "FaultStream",
    "FaultProcess",
    "PoissonFaults",
    "DualPoissonFaults",
    "WeibullFaults",
    "BurstyFaults",
    "ScriptedFaults",
]


#: First chunk of gaps pre-drawn by a growing stream; doubles per
#: refill up to :data:`_MAX_CHUNK`.  Small, because the typical rep
#: sees only a handful of faults and over-drawing costs a little time
#: (never correctness — see module docstring).
_INITIAL_CHUNK = 16
_MAX_CHUNK = 4096

_NO_TIMES: List[float] = []


class FaultStream:
    """Stateful view of one realisation of a fault process.

    ``peek()`` returns the next arrival time without consuming it;
    ``pop()`` consumes and returns it; :meth:`take_until` consumes and
    returns every arrival inside a segment at once.  Arrivals are
    strictly increasing; an exhausted stream reports ``inf``.

    Gaps are pre-drawn in chunks (vectorised via ``draw_gaps`` when the
    process provides it, otherwise by looping ``draw_gap``) and turned
    into arrival times with an anchored cumulative sum — bit-identical
    to the sequential ``clock + gap`` iterator, whatever mix of
    ``peek``/``pop``/``take_until`` the caller interleaves.  ``chunk``
    fixes the pre-draw size (``chunk=1`` reproduces the legacy
    one-at-a-time laziness exactly); ``None`` grows it geometrically.
    """

    __slots__ = (
        "_draw_gap",
        "_draw_gaps",
        "_clock",
        "_times",
        "_pos",
        "_exhausted",
        "_chunk",
        "_fixed_chunk",
    )

    def __init__(
        self,
        draw_gap: Callable[[], Optional[float]],
        start: float = 0.0,
        *,
        draw_gaps: Optional[Callable[[int], np.ndarray]] = None,
        chunk: Optional[int] = None,
    ) -> None:
        if chunk is not None and chunk < 1:
            raise ParameterError(f"chunk must be >= 1, got {chunk}")
        self._draw_gap = draw_gap
        self._draw_gaps = draw_gaps
        self._clock = float(start)
        self._times: List[float] = _NO_TIMES
        self._pos = 0
        self._exhausted = False
        self._chunk = chunk if chunk is not None else _INITIAL_CHUNK
        self._fixed_chunk = chunk is not None

    def _refill(self) -> bool:
        """Pre-draw the next chunk of gaps; False once exhausted."""
        if self._exhausted:
            return False
        n = self._chunk
        if not self._fixed_chunk and self._chunk < _MAX_CHUNK:
            self._chunk = min(self._chunk * 2, _MAX_CHUNK)
        if self._draw_gaps is not None:
            gaps = np.asarray(self._draw_gaps(n), dtype=np.float64)
        else:
            drawn: List[float] = []
            draw = self._draw_gap
            for _ in range(n):
                gap = draw()
                if gap is None:
                    self._exhausted = True
                    break
                drawn.append(gap)
            if not drawn:
                return False
            gaps = np.asarray(drawn, dtype=np.float64)
        # Anchored cumulative sum: exactly the scalar iterator's
        # ((clock + g0) + g1) + … left-to-right float additions.
        gaps[0] += self._clock
        times = np.cumsum(gaps)
        self._clock = float(times[-1])
        # The buffer is kept as a plain list: arrival consumption is
        # per-event Python code in the executor, where list indexing
        # and bisection beat NumPy scalar access by several times.
        self._times = times.tolist()
        self._pos = 0
        return True

    def peek(self) -> float:
        """Time of the next fault (``inf`` if none will ever occur)."""
        if self._pos >= len(self._times) and not self._refill():
            return math.inf
        return self._times[self._pos]

    def pop(self) -> float:
        """Consume and return the next fault time."""
        if self._pos >= len(self._times) and not self._refill():
            return math.inf
        value = self._times[self._pos]
        self._pos += 1
        return value

    def take_until(self, time: float) -> List[float]:
        """Consume and return every arrival at or before ``time``.

        The executor hot path: one binary search (``searchsorted``
        semantics, ``side='right'``) per buffered chunk instead of a
        ``peek``/``pop`` call pair per event.  Returns the arrivals in
        order (possibly empty).  Equivalent to popping while
        ``peek() <= time``.
        """
        taken: Optional[List[float]] = None
        while True:
            times = self._times
            pos = self._pos
            if pos >= len(times):
                if not self._refill():
                    break
                continue
            idx = bisect_right(times, time, pos)
            if idx <= pos:
                break
            if taken is None:
                taken = times[pos:idx]
            else:
                taken.extend(times[pos:idx])
            self._pos = idx
            if idx < len(times):
                break
        # A fresh list on the empty path: callers own the return value,
        # and handing out a shared sentinel would let one caller's
        # mutation corrupt every stream in the process.
        return [] if taken is None else taken

    def drain_until(self, time: float):
        """``(take_until(time), peek())`` in one call.

        The executor's per-segment shape: consume the segment's
        arrivals *and* learn the next pending arrival without a second
        method call.  The common case — everything needed is already
        buffered — is a single bisection.
        """
        times = self._times
        pos = self._pos
        if pos < len(times):
            idx = bisect_right(times, time, pos)
            if idx < len(times):  # next arrival still buffered
                self._pos = idx
                return times[pos:idx], times[idx]
        return self.take_until(time), self.peek()

    def advance_past(self, time: float) -> int:
        """Consume every arrival at or before ``time``; return count."""
        return int(len(self.take_until(time)))


class FaultProcess:
    """Base class: a distribution over fault-arrival traces.

    ``stream(rng)`` yields a batched :class:`FaultStream`;
    ``stream(rng, chunk=1)`` pins the pre-draw size (``1`` reproduces
    the legacy one-gap-at-a-time laziness, the conformance tests'
    reference) — either way the arrival sequence is identical.
    """

    def stream(
        self, rng: np.random.Generator, *, chunk: Optional[int] = None
    ) -> FaultStream:
        raise NotImplementedError

    def block_gaps(
        self, rng: np.random.Generator, rows: int, cols: int
    ) -> Optional[np.ndarray]:
        """A ``(rows, cols)`` matrix of inter-arrival gaps, or ``None``.

        The fast kernel's bulk pre-draw (:mod:`repro.sim.kernel`): one
        vectorised draw covers a whole rep block, one row per rep.
        Processes whose gaps are i.i.d. override this; processes with
        per-gap state machines (:class:`BurstyFaults`) return ``None``
        and the kernel falls back to the exact per-rep path.  The draw
        order (row-major from one generator) is part of fast mode's
        block-determinism contract — it must not depend on which rep
        triggered the draw.
        """
        return None

    @property
    def mean_rate(self) -> float:
        """Long-run average arrivals per time unit (for analysis)."""
        raise NotImplementedError


@dataclass(frozen=True)
class PoissonFaults(FaultProcess):
    """Single Poisson stream at rate ``rate`` (the paper's injector)."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ParameterError(f"rate must be >= 0, got {self.rate}")

    def stream(
        self, rng: np.random.Generator, *, chunk: Optional[int] = None
    ) -> FaultStream:
        if self.rate == 0:
            return FaultStream(lambda: None, chunk=chunk)
        scale = 1.0 / self.rate
        return FaultStream(
            lambda: rng.exponential(scale),
            draw_gaps=lambda n: rng.exponential(scale, size=n),
            chunk=chunk,
        )

    def block_gaps(
        self, rng: np.random.Generator, rows: int, cols: int
    ) -> Optional[np.ndarray]:
        if self.rate == 0:
            return np.full((rows, cols), math.inf)
        return rng.exponential(1.0 / self.rate, size=(rows, cols))

    @property
    def mean_rate(self) -> float:
        return self.rate


@dataclass(frozen=True)
class DualPoissonFaults(FaultProcess):
    """Independent Poisson faults on each of the two processors.

    Any single-processor fault diverges the pair state, so the merged
    divergence stream is Poisson with rate ``2·rate_per_processor``.
    """

    rate_per_processor: float

    def __post_init__(self) -> None:
        if self.rate_per_processor < 0:
            raise ParameterError(
                f"rate_per_processor must be >= 0, got {self.rate_per_processor}"
            )

    def stream(
        self, rng: np.random.Generator, *, chunk: Optional[int] = None
    ) -> FaultStream:
        merged = 2.0 * self.rate_per_processor
        if merged == 0:
            return FaultStream(lambda: None, chunk=chunk)
        scale = 1.0 / merged
        return FaultStream(
            lambda: rng.exponential(scale),
            draw_gaps=lambda n: rng.exponential(scale, size=n),
            chunk=chunk,
        )

    def block_gaps(
        self, rng: np.random.Generator, rows: int, cols: int
    ) -> Optional[np.ndarray]:
        merged = 2.0 * self.rate_per_processor
        if merged == 0:
            return np.full((rows, cols), math.inf)
        return rng.exponential(1.0 / merged, size=(rows, cols))

    @property
    def mean_rate(self) -> float:
        return 2.0 * self.rate_per_processor


@dataclass(frozen=True)
class WeibullFaults(FaultProcess):
    """Renewal process with Weibull(shape, scale) inter-arrival times.

    ``shape < 1`` models infant mortality (bursty early failures),
    ``shape > 1`` wear-out.  ``shape = 1`` is exponential with rate
    ``1/scale``.
    """

    shape: float
    scale: float

    def __post_init__(self) -> None:
        if self.shape <= 0:
            raise ParameterError(f"shape must be > 0, got {self.shape}")
        if self.scale <= 0:
            raise ParameterError(f"scale must be > 0, got {self.scale}")

    def stream(
        self, rng: np.random.Generator, *, chunk: Optional[int] = None
    ) -> FaultStream:
        shape, scale = self.shape, self.scale
        return FaultStream(
            lambda: scale * rng.weibull(shape),
            draw_gaps=lambda n: scale * rng.weibull(shape, size=n),
            chunk=chunk,
        )

    def block_gaps(
        self, rng: np.random.Generator, rows: int, cols: int
    ) -> Optional[np.ndarray]:
        return self.scale * rng.weibull(self.shape, size=(rows, cols))

    @property
    def mean_rate(self) -> float:
        return 1.0 / (self.scale * math.gamma(1.0 + 1.0 / self.shape))


@dataclass(frozen=True)
class BurstyFaults(FaultProcess):
    """Two-state MMPP: quiet rate / burst rate with exponential dwell.

    The process alternates between a quiet state (arrival rate
    ``quiet_rate``, mean dwell ``quiet_dwell``) and a burst state
    (``burst_rate``, ``burst_dwell``).  Arrivals inside each state are
    Poisson.  Models environments such as orbital radiation-belt
    crossings.
    """

    quiet_rate: float
    burst_rate: float
    quiet_dwell: float
    burst_dwell: float

    def __post_init__(self) -> None:
        if self.quiet_rate < 0 or self.burst_rate < 0:
            raise ParameterError("rates must be >= 0")
        if self.quiet_dwell <= 0 or self.burst_dwell <= 0:
            raise ParameterError("dwell times must be > 0")

    def stream(
        self, rng: np.random.Generator, *, chunk: Optional[int] = None
    ) -> FaultStream:
        state = {"bursting": False, "until": rng.exponential(self.quiet_dwell)}
        process = self

        def draw_gap() -> float:
            # Piece together exponential fragments across state changes
            # (memorylessness makes restarting the draw in the new state
            # statistically exact).  state["until"] holds the remaining
            # dwell time of the current regime.
            gap = 0.0
            while True:
                rate = process.burst_rate if state["bursting"] else process.quiet_rate
                window = state["until"]
                candidate = rng.exponential(1.0 / rate) if rate > 0 else math.inf
                if candidate <= window:
                    state["until"] = window - candidate
                    return gap + candidate
                gap += window
                state["bursting"] = not state["bursting"]
                dwell = (
                    process.burst_dwell if state["bursting"] else process.quiet_dwell
                )
                state["until"] = rng.exponential(dwell)

        # The MMPP state machine consumes a variable number of draws
        # per gap, so gaps stay scalar; the stream still pre-draws and
        # buffers them in chunks.
        return FaultStream(draw_gap, chunk=chunk)

    @property
    def mean_rate(self) -> float:
        total = self.quiet_dwell + self.burst_dwell
        return (
            self.quiet_rate * self.quiet_dwell + self.burst_rate * self.burst_dwell
        ) / total


@dataclass(frozen=True)
class ScriptedFaults(FaultProcess):
    """Deterministic fault times — the unit tests' scalpel."""

    times: tuple

    def __init__(self, times: Iterable[float]) -> None:
        ordered = tuple(float(t) for t in times)
        if any(b <= a for a, b in zip(ordered, ordered[1:])):
            raise ParameterError("scripted fault times must be strictly increasing")
        if any(t < 0 for t in ordered):
            raise ParameterError("scripted fault times must be >= 0")
        object.__setattr__(self, "times", ordered)

    def stream(
        self,
        rng: np.random.Generator = None,  # noqa: ARG002
        *,
        chunk: Optional[int] = None,
    ) -> FaultStream:
        remaining: List[float] = list(self.times)
        last = [0.0]

        def draw_gap() -> Optional[float]:
            if not remaining:
                return None
            nxt = remaining.pop(0)
            gap = nxt - last[0]
            last[0] = nxt
            return gap

        return FaultStream(draw_gap, chunk=chunk)

    @property
    def mean_rate(self) -> float:
        if not self.times:
            return 0.0
        horizon = self.times[-1]
        return len(self.times) / horizon if horizon > 0 else math.inf
