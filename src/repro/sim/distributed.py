"""Socket transport behind :class:`~repro.sim.backends.DistributedBackend`.

The off-host contract documented on the backend (picklable
:class:`~repro.sim.backends.BlockTask`\\ s in, O(1)
:class:`~repro.sim.montecarlo.CellAccumulator`\\ s out, idempotent
recompute) is narrow enough that the transport can stay small: frames
are an 8-byte big-endian length prefix followed by a pickle, flowing
over plain TCP — or TLS when a :class:`TLSConfig` is given (layered
*under* the mutual-HMAC handshake, so the channel is encrypted and the
peer still proves knowledge of the cluster secret before any pickle is
parsed).  Three pieces ship here:

* :func:`serve_worker` — the worker process's serve loop: connect to a
  coordinator, receive task batches, :func:`~repro.sim.backends.
  execute_block` each and *stream* the accumulators back one by one
  (so a connection lost mid-batch loses only the unsent tail).  Replies
  to heartbeat pings; exits after ``idle_timeout`` seconds of silence.
* :class:`Coordinator` — the dispatch side :meth:`~repro.sim.backends.
  DistributedBackend.run_tasks` delegates to: a task queue, per-worker
  in-flight tracking, requeue-on-disconnect with bounded retries, and
  in-process recompute for whatever cannot (or can no longer) run
  remotely — unpicklable jobs, tasks past their retry budget, and the
  whole remainder when no workers are connected.  It therefore never
  fails where :class:`~repro.sim.backends.SerialBackend` would have
  succeeded, and fails with the genuine exception where serial would
  fail (worker-side errors are reproduced locally, not wrapped).
* :class:`LocalCluster` — spawns N worker subprocesses on loopback for
  tests and the CLI (``--backend distributed --cluster-workers N``).

Failure semantics (pinned by ``tests/test_distributed_faults.py``): a
worker that dies mid-batch has its unfinished tasks requeued to the
survivors; results that already streamed back are kept; a task is
resolved exactly once, so nothing is lost or double-merged; and because
every block re-derives its random streams from the task payload alone,
a recomputed block is bit-identical to the one the dead worker would
have sent — the merged estimates match the serial pass exactly.  The
same resolve-once property powers *straggler speculation*: a task in
flight far past its kind's expected block time (a SIGSTOPped or
slow-loris worker that keepalive cannot see) is speculatively
re-dispatched to an idle worker or the coordinator's own local lane,
and whichever copy lands first wins.

Wire protocol (every frame: ``>Q`` length prefix + pickle of a tuple):

===========================  =========================================
coordinator → worker          ``("tasks", epoch, [(index, BlockTask)…])``,
                              ``("ping",)``, ``("shutdown",)``
worker → coordinator          ``("hello", pid)``,
                              ``("result", epoch, index,
                              CellAccumulator, seconds)`` (the trailing
                              compute-seconds float feeds adaptive
                              claim sizing; 4-tuples from older workers
                              are accepted),
                              ``("error", epoch, index, text)``,
                              ``("pong",)``
===========================  =========================================

``epoch`` tags each :meth:`Coordinator.run_tasks` batch so a result
that straggles in after its batch ended (e.g. the batch already failed
over locally) is ignored instead of polluting the next one.
"""

from __future__ import annotations

import hmac
import os
import pickle
import secrets as _secrets
import socket
import ssl
import struct
import subprocess
import sys
import threading
import time
import traceback
import weakref
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import ConfigurationError, ParameterError, SimulationError
from repro.sim.backends import (
    BlockTask,
    DispatchStats,
    dispatch_kind,
    execute_block,
    partition_shippable,
)
from repro.sim.montecarlo import CellAccumulator

__all__ = [
    "Coordinator",
    "LocalCluster",
    "TLSConfig",
    "serve_worker",
    "parse_url",
    "SECRET_ENV",
    "DEFAULT_PORT",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_MAX_RETRIES",
    "DEFAULT_HEARTBEAT",
    "DEFAULT_IDLE_TIMEOUT",
    "DEFAULT_WAIT_TIMEOUT",
    "DEFAULT_STRAGGLER_FACTOR",
    "DEFAULT_STRAGGLER_GRACE",
]

#: Default coordinator port when a URL omits one.
DEFAULT_PORT = 8642
#: Tasks handed to a worker per claim; small keeps load-balance tight
#: while amortising a frame per batch.
DEFAULT_BATCH_SIZE = 4
#: Dispatch attempts per task before the coordinator stops trusting
#: workers with it and recomputes in-process.
DEFAULT_MAX_RETRIES = 3
#: Seconds between coordinator pings on an idle worker link.
DEFAULT_HEARTBEAT = 5.0
#: Seconds of silence after which a worker exits its serve loop.
DEFAULT_IDLE_TIMEOUT = 120.0
#: Default :meth:`Coordinator.wait_for_workers` timeout (seconds).
DEFAULT_WAIT_TIMEOUT = 10.0
#: A task in flight longer than ``straggler_factor ×`` its kind's EWMA
#: block latency is speculatively re-dispatched.
DEFAULT_STRAGGLER_FACTOR = 4.0
#: Minimum in-flight seconds before any task counts as straggling —
#: also the absolute threshold while the EWMA has no sample yet (a
#: fleet that is entirely stuck never reports a latency to learn from).
DEFAULT_STRAGGLER_GRACE = 10.0

_HEADER = struct.Struct(">Q")
#: Refuse absurd frames (a corrupt prefix would otherwise try to
#: allocate petabytes).  Task batches and accumulators are kilobytes.
_MAX_FRAME = 256 * 1024 * 1024

#: Environment variable carrying the cluster's shared secret; the
#: coordinator and every worker read it as their default ``secret``.
SECRET_ENV = "REPRO_CLUSTER_SECRET"
_NONCE_BYTES = 32
_DIGEST = "sha256"
_DIGEST_BYTES = 32
_LOOPBACK_HOSTS = frozenset({"127.0.0.1", "localhost"})


def _default_secret() -> bytes:
    return os.environ.get(SECRET_ENV, "").encode()


def _authenticate_as_server(sock: socket.socket, secret: bytes) -> bool:
    """Challenge a connecting worker before parsing any pickle.

    The handshake is raw fixed-length bytes on purpose: frames are
    pickles, and :func:`pickle.loads` on attacker-controlled bytes is
    code execution — so nothing gets unpickled until the peer has
    proven knowledge of the shared secret.  Mutual: the worker checks
    our response digest before it parses our frames, so a rogue
    coordinator cannot feed a worker pickles either.  (With the default
    empty secret — loopback clusters — the exchange still happens but
    proves nothing; non-loopback binds therefore *require* a secret.)
    """
    nonce = _secrets.token_bytes(_NONCE_BYTES)
    sock.sendall(nonce)
    reply = _recv_exact(sock, _DIGEST_BYTES)
    expected = hmac.new(secret, nonce + b"worker", _DIGEST).digest()
    if not hmac.compare_digest(reply, expected):
        return False
    sock.sendall(hmac.new(secret, nonce + b"server", _DIGEST).digest())
    return True


def _authenticate_as_worker(sock: socket.socket, secret: bytes) -> None:
    nonce = _recv_exact(sock, _NONCE_BYTES)
    sock.sendall(hmac.new(secret, nonce + b"worker", _DIGEST).digest())
    reply = _recv_exact(sock, _DIGEST_BYTES)
    expected = hmac.new(secret, nonce + b"server", _DIGEST).digest()
    if not hmac.compare_digest(reply, expected):
        raise ConnectionError("coordinator failed mutual authentication")


# -- transport security ------------------------------------------------


@dataclass(frozen=True)
class TLSConfig:
    """Opt-in TLS for the coordinator socket, layered *under* HMAC.

    One config describes both ends of a cluster so a single triple of
    paths can be handed to the coordinator and every worker alike:

    * coordinator (server side): ``cert`` + ``key`` are required; when
      ``ca`` is also set, workers must present certificates signed by
      it (mutual TLS).
    * worker (client side): the server certificate is verified against
      ``ca`` — or against ``cert`` itself for self-signed single-cert
      clusters — and ``cert``/``key`` are presented to coordinators
      that demand client certificates.

    Hostname checking is off: clusters connect by address with private
    CAs, so the trust anchor — not a public name — is the identity.
    TLS protects the *channel* (confidentiality, integrity, server
    identity); the HMAC handshake that still runs inside it proves
    knowledge of the cluster secret before any pickle is parsed.
    """

    cert: Optional[str] = None
    key: Optional[str] = None
    ca: Optional[str] = None

    def __post_init__(self) -> None:
        if not (self.cert or self.key or self.ca):
            raise ConfigurationError(
                "TLSConfig needs at least one of cert/key/ca"
            )
        if bool(self.cert) != bool(self.key):
            raise ConfigurationError(
                "TLS cert and key must be provided together "
                f"(got cert={self.cert!r}, key={self.key!r})"
            )
        for label, path in (
            ("cert", self.cert), ("key", self.key), ("ca", self.ca)
        ):
            if path is not None and not os.path.isfile(path):
                raise ConfigurationError(
                    f"TLS {label} file not found: {path!r}"
                )

    def server_context(self) -> ssl.SSLContext:
        """Context for the coordinator's accepted sockets."""
        if not self.cert:
            raise ConfigurationError(
                "serving TLS requires a certificate and key "
                "(--tls-cert/--tls-key)"
            )
        context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
        try:
            context.load_cert_chain(self.cert, self.key)
            if self.ca:
                context.load_verify_locations(cafile=self.ca)
                context.verify_mode = ssl.CERT_REQUIRED
        except (ssl.SSLError, OSError) as exc:
            raise ConfigurationError(f"failed to load TLS material: {exc}")
        return context

    def client_context(self) -> ssl.SSLContext:
        """Context for a worker's connection to the coordinator."""
        anchor = self.ca or self.cert
        if not anchor:
            raise ConfigurationError(
                "connecting with TLS requires a CA (or the server's own "
                "certificate) to verify the coordinator against (--tls-ca)"
            )
        context = ssl.SSLContext(ssl.PROTOCOL_TLS_CLIENT)
        context.check_hostname = False
        context.verify_mode = ssl.CERT_REQUIRED
        try:
            context.load_verify_locations(cafile=anchor)
            if self.cert:
                context.load_cert_chain(self.cert, self.key)
        except (ssl.SSLError, OSError) as exc:
            raise ConfigurationError(f"failed to load TLS material: {exc}")
        return context


# -- framing -----------------------------------------------------------


def _enable_keepalive(sock: socket.socket) -> None:
    """Arm TCP keepalive so a *silently* dead peer surfaces.

    The link threads deliberately block in ``recv`` without an
    application timeout while a batch is in flight (a slow adaptive
    block is legitimate and unbounded).  That leaves one failure mode
    the app layer cannot see: a peer that vanishes without FIN/RST
    (cable pull, dropped route).  Kernel keepalive probes turn that
    into ``ECONNRESET`` within ~75 s here, which the normal
    broken-link path handles (requeue + fallback).  A SIGSTOPped peer
    still ACKs probes — that case is invisible here and is handled one
    layer up by the coordinator's straggler speculation instead.
    """
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
    # Per-protocol knobs are Linux-specific; degrade to plain keepalive
    # (kernel defaults, ~2 h) where they do not exist.
    for option, value in (
        ("TCP_KEEPIDLE", 30),
        ("TCP_KEEPINTVL", 15),
        ("TCP_KEEPCNT", 3),
    ):
        if hasattr(socket, option):
            try:
                sock.setsockopt(
                    socket.IPPROTO_TCP, getattr(socket, option), value
                )
            except OSError:  # pragma: no cover - platform quirk
                pass


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError("peer closed the connection")
        buf += chunk
    return bytes(buf)


def _recv_msg(sock: socket.socket) -> tuple:
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > _MAX_FRAME:
        raise ConnectionError(f"frame of {length} bytes exceeds protocol limit")
    payload = _recv_exact(sock, length)
    try:
        return pickle.loads(payload)
    except Exception as exc:
        # A frame we cannot decode (version-skewed peer, corrupt
        # stream) is a broken link, whatever exception pickle raised —
        # normalise so every caller's broken-link path handles it.
        raise ConnectionError(f"undecodable frame from peer: {exc!r}")


def _send_msg(sock: socket.socket, message: tuple) -> None:
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def parse_url(url: str) -> Tuple[str, int]:
    """``"tcp://host:port"`` (or plain ``host:port``) → ``(host, port)``.

    Port ``0`` is valid for a coordinator bind address (the OS picks);
    the resolved port is what :attr:`Coordinator.url` reports.
    """
    text = url.strip()
    if "//" in text:
        scheme, _, rest = text.partition("//")
        if scheme not in ("tcp:", ""):
            raise ParameterError(f"unsupported URL scheme in {url!r} (use tcp://)")
        text = rest
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = text, str(DEFAULT_PORT)
    if not host:
        raise ParameterError(f"no host in URL {url!r}")
    if ":" in host:
        raise ParameterError(
            f"IPv6 addresses are not supported in {url!r}; use an IPv4 "
            f"address or hostname"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ParameterError(f"invalid port in URL {url!r}")
    if not 0 <= port <= 65535:
        raise ParameterError(f"port out of range in URL {url!r}")
    return host, port


# -- worker ------------------------------------------------------------


def serve_worker(
    url: str,
    *,
    idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
    max_tasks: Optional[int] = None,
    connect_timeout: float = 10.0,
    secret: Optional[bytes] = None,
    tls: Optional[TLSConfig] = None,
    delay: float = 0.0,
) -> int:
    """Serve blocks for the coordinator at ``url`` until told to stop.

    The loop: receive a task batch, execute each block, stream its
    accumulator back immediately (never buffering the whole batch, so a
    crash loses only unsent work).  Pings are answered with pongs; after
    ``idle_timeout`` seconds without any frame the worker exits cleanly
    (a live coordinator pings idle workers well inside that window).

    ``max_tasks`` caps how many blocks this worker completes before it
    *abruptly* drops the connection — mid-batch if the cap lands there.
    That is deliberately crash-shaped: it exists so the fault-injection
    suite can kill workers at exact, reproducible points.

    ``delay`` sleeps that many seconds before each block — the
    slow-loris fault-injection hook: the link stays perfectly healthy
    (pings answered, keepalive happy) while claimed work barely moves,
    which is exactly the pathology straggler speculation exists to
    absorb.

    ``secret`` is the cluster's shared secret for the mutual HMAC
    handshake (default: the ``REPRO_CLUSTER_SECRET`` environment
    variable; empty = unauthenticated, loopback-only coordinators).
    ``tls`` wraps the connection before the handshake (the coordinator
    must be serving TLS too).

    Returns the process exit code (0 — disconnects and idle timeouts,
    including a coordinator that vanishes mid-block, are normal worker
    lifecycle, not errors).  Only a failure to *establish* the
    connection (unreachable host, failed handshake, TLS rejection)
    raises.
    """
    host, port = parse_url(url)
    if port == 0:
        raise ParameterError("worker needs an explicit coordinator port, got 0")
    if secret is None:
        secret = _default_secret()
    if delay < 0:
        raise ParameterError(f"delay must be >= 0, got {delay}")
    completed = 0
    with socket.create_connection((host, port), timeout=connect_timeout) as raw_sock:
        if tls is not None:
            context = tls.client_context()
            try:
                sock = context.wrap_socket(raw_sock, server_hostname=host)
            except (ssl.SSLError, socket.timeout) as exc:
                raise ConfigurationError(
                    f"TLS handshake with coordinator {host}:{port} failed: "
                    f"{exc} (is the coordinator serving TLS, and does its "
                    f"certificate match the CA?)"
                )
        else:
            sock = raw_sock
        # The application handshake should be near-instant; keep it on
        # the (short) connect timeout so a protocol-mismatched peer —
        # e.g. a TLS coordinator we are speaking plaintext to, which
        # will never send the HMAC nonce — fails fast instead of
        # hanging a full idle_timeout.
        sock.settimeout(connect_timeout)
        _enable_keepalive(sock)
        try:
            _authenticate_as_worker(sock, secret)
        except socket.timeout:
            raise ConnectionError(
                f"coordinator {host}:{port} did not complete the handshake "
                f"within {connect_timeout}s (TLS/plaintext mismatch?)"
            )
        sock.settimeout(idle_timeout)
        try:
            _send_msg(sock, ("hello", os.getpid()))
            while True:
                try:
                    message = _recv_msg(sock)
                except socket.timeout:
                    return 0  # idle: the coordinator has forgotten us
                kind = message[0]
                if kind == "shutdown":
                    return 0
                if kind == "ping":
                    _send_msg(sock, ("pong",))
                    continue
                if kind != "tasks":
                    continue  # unknown frame: ignore, stay compatible
                _, epoch, batch = message
                for index, block_task in batch:
                    if max_tasks is not None and completed >= max_tasks:
                        return 0  # injected crash: abandon rest of batch
                    if delay:
                        time.sleep(delay)
                    started = time.perf_counter()
                    try:
                        accumulator = execute_block(block_task)
                    except Exception:
                        _send_msg(
                            sock, ("error", epoch, index, traceback.format_exc())
                        )
                    else:
                        # The measured compute seconds feed the
                        # coordinator's latency-adaptive batch sizing.
                        _send_msg(
                            sock,
                            (
                                "result",
                                epoch,
                                index,
                                accumulator,
                                time.perf_counter() - started,
                            ),
                        )
                        completed += 1
        except (ConnectionError, OSError):
            return 0  # coordinator gone (even mid-send): nothing to serve


# -- coordinator -------------------------------------------------------


@dataclass
class _Link:
    """One connected worker: its socket, liveness, and in-flight set."""

    sock: socket.socket
    pid: int
    wid: int
    in_flight: Set[Tuple[int, int]] = field(default_factory=set)
    send_lock: threading.Lock = field(default_factory=threading.Lock)
    reported_error: bool = False

    def send(self, message: tuple) -> None:
        with self.send_lock:
            _send_msg(self.sock, message)


class Coordinator:
    """Accepts worker connections and dispatches block-task batches.

    One instance serves many :meth:`run_tasks` batches (workers persist
    across them).  Within a batch every task index is resolved exactly
    once — by a worker result or by in-process recompute — and results
    come back aligned with input order, which is all the
    :class:`~repro.sim.backends.ExecutionBackend` protocol asks for.

    Thread model: one accept thread, one handler thread per worker
    link, and the caller's thread running :meth:`run_tasks` (which also
    executes the local-fallback work).  All shared state sits behind a
    single condition variable; sockets get a per-link send lock so
    ``close()`` can interject a shutdown frame safely.
    """

    def __init__(
        self,
        url: str = "tcp://127.0.0.1:0",
        *,
        batch_size: int = DEFAULT_BATCH_SIZE,
        max_retries: int = DEFAULT_MAX_RETRIES,
        heartbeat: float = DEFAULT_HEARTBEAT,
        poll_interval: float = 0.05,
        secret: Optional[bytes] = None,
        adaptive_batching: bool = True,
        wait_timeout: float = DEFAULT_WAIT_TIMEOUT,
        tls: Optional[TLSConfig] = None,
        straggler_factor: Optional[float] = DEFAULT_STRAGGLER_FACTOR,
        straggler_grace: float = DEFAULT_STRAGGLER_GRACE,
    ) -> None:
        if batch_size < 1:
            raise ParameterError(f"batch_size must be >= 1, got {batch_size}")
        if max_retries < 1:
            raise ParameterError(f"max_retries must be >= 1, got {max_retries}")
        if wait_timeout <= 0:
            raise ParameterError(
                f"wait_timeout must be > 0, got {wait_timeout}"
            )
        if straggler_factor is not None and straggler_factor <= 0:
            raise ParameterError(
                f"straggler_factor must be > 0 (or None to disable "
                f"speculation), got {straggler_factor}"
            )
        if straggler_grace <= 0:
            raise ParameterError(
                f"straggler_grace must be > 0, got {straggler_grace}"
            )
        self.batch_size = int(batch_size)
        self.max_retries = int(max_retries)
        self.wait_timeout = float(wait_timeout)
        #: Straggler speculation: a task in flight longer than
        #: ``straggler_factor ×`` its kind's EWMA block latency (or
        #: ``straggler_grace`` seconds absolute while no latency sample
        #: exists) is re-queued for whichever idle worker — or the
        #: coordinator's own local lane — gets there first; the
        #: epoch-tagged resolve-once collection keeps whichever copy
        #: lands first and drops the other.  Safe because a block is a
        #: pure function of its task payload: the duplicate is
        #: bit-identical.  ``None`` disables speculation.
        self.straggler_factor = (
            None if straggler_factor is None else float(straggler_factor)
        )
        self.straggler_grace = float(straggler_grace)
        #: Speculative re-dispatches performed (telemetry for tests).
        self.speculations = 0
        # Built eagerly so a bad cert path fails at construction, not
        # at first connect.
        self._ssl_context = None if tls is None else tls.server_context()
        #: Latency-adaptive claim sizing (see :class:`~repro.sim.
        #: backends.DispatchStats`): workers report per-block compute
        #: seconds with each result, and a claim takes up to
        #: ``target/EWMA`` consecutive same-kind tasks instead of the
        #: fixed ``batch_size``.  Dispatch-only — results are
        #: bit-identical either way.
        self.adaptive_batching = bool(adaptive_batching)
        self.dispatch_stats = DispatchStats()
        self.heartbeat = float(heartbeat)
        self.poll_interval = float(poll_interval)
        self._secret = _default_secret() if secret is None else secret
        host, port = parse_url(url)
        if host not in _LOOPBACK_HOSTS and not self._secret:
            raise ParameterError(
                f"binding the coordinator to non-loopback {host!r} requires "
                f"a shared secret (set {SECRET_ENV} on the coordinator and "
                f"every worker): the wire format is pickle, and accepting "
                f"unauthenticated pickles is remote code execution"
            )
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen()
        self._listener = listener
        self.host, self.port = listener.getsockname()[:2]
        self._cond = threading.Condition()
        self._links: Dict[int, _Link] = {}
        self._next_wid = 0
        self._closed = False
        # Per-batch state, valid while _active (all guarded by _cond).
        self._active = False
        self._epoch = 0
        self._tasks: Sequence[BlockTask] = ()
        self._queue: Deque[int] = deque()
        self._local_pending: List[int] = []
        self._attempts: Dict[int, int] = {}
        self._results: Dict[int, CellAccumulator] = {}
        self._resolved: Set[int] = set()
        # Straggler bookkeeping (per batch, guarded by _cond):
        # dispatch timestamps per (epoch, index), indices already
        # speculated once, and whether the last scan saw any overdue
        # in-flight task (which opens the coordinator's local lane).
        self._dispatched: Dict[Tuple[int, int], float] = {}
        self._speculated: Set[int] = set()
        self._stalled = False
        self._batch_lock = threading.Lock()
        self._finalizer = weakref.finalize(self, _close_socket, listener)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-coordinator-accept", daemon=True
        )
        self._accept_thread.start()

    # -- public surface ------------------------------------------------

    @property
    def url(self) -> str:
        """The resolved ``tcp://host:port`` workers should connect to."""
        return f"tcp://{self.host}:{self.port}"

    @property
    def workers(self) -> int:
        """Currently connected worker count."""
        with self._cond:
            return len(self._links)

    def wait_for_workers(
        self, count: int, timeout: Optional[float] = None
    ) -> int:
        """Block until ``count`` workers are connected (or timeout).

        ``timeout`` defaults to the coordinator's ``wait_timeout``
        (itself :data:`DEFAULT_WAIT_TIMEOUT` unless configured — slow
        CI hosts raise it via ``--connect-timeout``).  Returns the
        number actually connected — never raises: running short-handed
        (even zero-handed) is a supported degraded mode, the batch just
        leans on the in-process fallback.
        """
        if timeout is None:
            timeout = self.wait_timeout
        deadline = time.monotonic() + timeout
        with self._cond:
            while len(self._links) < count and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            return len(self._links)

    def run_tasks(self, tasks: Sequence[BlockTask]) -> List[CellAccumulator]:
        """Evaluate one batch; one accumulator per task, input order."""
        tasks = list(tasks)
        if not tasks:
            return []
        with self._batch_lock:
            with self._cond:
                if self._closed:
                    raise SimulationError("coordinator is closed")
            remote, unshippable = partition_shippable(tasks)
            with self._cond:
                if self._closed:  # re-check: close() may have raced us
                    raise SimulationError("coordinator is closed")
                self._epoch += 1
                epoch = self._epoch
                self._active = True
                self._tasks = tasks
                self._queue.clear()
                self._queue.extend(remote)
                self._local_pending = list(unshippable)
                self._attempts = {}
                self._results = {}
                self._resolved = set()
                self._dispatched = {}
                self._speculated = set()
                self._stalled = False
                self._cond.notify_all()
            try:
                while True:
                    with self._cond:
                        if len(self._resolved) == len(tasks):
                            break
                        if self._closed:
                            raise SimulationError(
                                "coordinator closed while a batch was running"
                            )
                        self._scan_stragglers_locked()
                        local = self._take_local_locked()
                        if not local:
                            self._cond.wait(self.poll_interval)
                            self._scan_stragglers_locked()
                            local = self._take_local_locked()
                    for index in local:
                        # Runs the genuine job code in this process: a
                        # deterministic job error surfaces here exactly
                        # as SerialBackend would raise it.
                        accumulator = execute_block(tasks[index])
                        self._record(None, epoch, index, accumulator)
                return [self._results[index] for index in range(len(tasks))]
            finally:
                with self._cond:
                    self._active = False
                    self._tasks = ()
                    self._queue.clear()
                    self._local_pending = []
                    self._dispatched = {}
                    self._speculated = set()
                    self._stalled = False
                    self._cond.notify_all()

    def close(self) -> None:
        """Shut down: stop accepting, release workers (idempotent)."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            links = list(self._links.values())
            self._cond.notify_all()
        self._finalizer()  # closes the listener; accept loop exits
        for link in links:
            try:
                link.sock.settimeout(1.0)
                link.send(("shutdown",))
            except OSError:
                pass
            _close_socket(link.sock)

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- accept / per-link threads -------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            with self._cond:
                if self._closed:
                    _close_socket(sock)
                    return
            threading.Thread(
                target=self._serve_link,
                args=(sock,),
                name="repro-coordinator-link",
                daemon=True,
            ).start()

    def _serve_link(self, sock: socket.socket) -> None:
        link: Optional[_Link] = None
        try:
            sock.settimeout(self.heartbeat * 4)
            if self._ssl_context is not None:
                # TLS first, HMAC inside it: a peer that cannot
                # complete the TLS handshake (no cert, wrong CA,
                # plaintext) is dropped before a single application
                # byte — let alone a pickle — is read.
                try:
                    sock = self._ssl_context.wrap_socket(
                        sock, server_side=True
                    )
                except (ssl.SSLError, socket.timeout, OSError):
                    return
            _enable_keepalive(sock)
            if not _authenticate_as_server(sock, self._secret):
                return  # failed the challenge: never unpickle its bytes
            hello = _recv_msg(sock)
            if not (
                isinstance(hello, tuple)
                and len(hello) == 2
                and hello[0] == "hello"
            ):
                return
            sock.settimeout(None)
            with self._cond:
                if self._closed:
                    return
                link = _Link(sock=sock, pid=hello[1], wid=self._next_wid)
                self._next_wid += 1
                self._links[link.wid] = link
                self._cond.notify_all()
            while True:
                claimed = self._claim(link)
                if claimed is None:
                    return  # coordinator closing
                epoch, batch = claimed
                if not batch:
                    # Idle: heartbeat so dead peers surface and live
                    # workers' idle clocks keep resetting.
                    sock.settimeout(self.heartbeat * 4)
                    link.send(("ping",))
                    while _recv_msg(sock)[0] != "pong":
                        pass
                    sock.settimeout(None)
                    continue
                link.send(("tasks", epoch, batch))
                remaining = {index for index, _ in batch}
                while remaining:
                    message = _recv_msg(sock)
                    kind = message[0]
                    if kind == "result":
                        # 5-tuple since the adaptive-dispatch protocol
                        # (trailing compute seconds); 4-tuple accepted
                        # for older workers.
                        _, ep, index, accumulator = message[:4]
                        seconds = message[4] if len(message) > 4 else None
                        self._record(link, ep, index, accumulator, seconds)
                        remaining.discard(index)
                    elif kind == "error":
                        _, ep, index, text = message
                        self._record_error(link, ep, index, text)
                        remaining.discard(index)
        except (ConnectionError, OSError, EOFError, socket.timeout,
                pickle.PickleError, struct.error):
            pass  # broken link: _drop_link requeues whatever it held
        finally:
            self._drop_link(link)
            _close_socket(sock)

    # -- shared-state helpers (all take/hold self._cond) ----------------

    def _claim(self, link: _Link) -> Optional[Tuple[int, List[Tuple[int, BlockTask]]]]:
        """Next batch for ``link``: None to stop, [] to heartbeat."""
        deadline = time.monotonic() + self.heartbeat
        with self._cond:
            while True:
                if self._closed:
                    return None
                if self._active:
                    # Speculated entries whose original already
                    # resolved are dead weight: drop them here so the
                    # adaptive head-kind probe below sees a live task.
                    while self._queue and self._queue[0] in self._resolved:
                        self._queue.popleft()
                if self._active and self._queue:
                    epoch = self._epoch
                    adaptive = self.adaptive_batching
                    if adaptive:
                        # Latency-adaptive claim sizing: take
                        # consecutive same-kind tasks worth ~the
                        # dispatch target of estimated compute.  The
                        # configured batch_size stays the
                        # pre-observation claim size (an explicitly
                        # tuned value keeps working on high-latency
                        # links); once the kind has a latency sample
                        # the EWMA sizing takes over.  An adaptive
                        # claim never mixes kinds, so a cheap
                        # fast-static run cannot hide an expensive
                        # executor block inside a big claim.
                        head_kind = dispatch_kind(self._tasks[self._queue[0]])
                        if self.dispatch_stats.block_latency(head_kind) is None:
                            size = self.batch_size
                        else:
                            size = self.dispatch_stats.batch_size(head_kind)
                    else:
                        # Disabled: exactly the pre-adaptive dispatch —
                        # fixed batch_size, kinds mixed freely.
                        head_kind = None
                        size = self.batch_size
                    batch: List[Tuple[int, BlockTask]] = []
                    while self._queue and len(batch) < size:
                        index = self._queue[0]
                        if index in self._resolved:
                            # A speculated task whose original copy won
                            # the race while it sat queued: nothing to
                            # dispatch.
                            self._queue.popleft()
                            continue
                        if (
                            adaptive
                            and batch
                            and dispatch_kind(self._tasks[index]) != head_kind
                        ):
                            break
                        self._queue.popleft()
                        self._attempts[index] = self._attempts.get(index, 0) + 1
                        link.in_flight.add((epoch, index))
                        self._dispatched[(epoch, index)] = time.monotonic()
                        batch.append((index, self._tasks[index]))
                    if not batch:
                        continue  # queue held only resolved leftovers
                    return epoch, batch
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return self._epoch, []
                self._cond.wait(remaining)

    def _record(
        self,
        link: Optional[_Link],
        epoch: int,
        index: int,
        accumulator: CellAccumulator,
        seconds: Optional[float] = None,
    ) -> None:
        """Resolve a task exactly once; stale or duplicate results drop.

        ``seconds`` is the worker-measured compute time of the block
        (None for local recomputes and pre-adaptive workers); it feeds
        the latency EWMA behind adaptive claim sizing.
        """
        with self._cond:
            if link is not None:
                link.in_flight.discard((epoch, index))
            self._dispatched.pop((epoch, index), None)
            if not self._active or epoch != self._epoch or index in self._resolved:
                return
            if seconds is not None and isinstance(seconds, float):
                self.dispatch_stats.observe(
                    dispatch_kind(self._tasks[index]), seconds
                )
            self._results[index] = accumulator
            self._resolved.add(index)
            self._cond.notify_all()

    def _record_error(
        self, link: _Link, epoch: int, index: int, text: str
    ) -> None:
        """A worker-side exception: recompute locally for serial parity.

        The remote traceback is surfaced on stderr (once per link, not
        once per block — a broken worker environment fails every block
        the same way).  The local recompute then either produces the
        genuine result (worker-environment problem) or raises the
        genuine exception (job problem), so nothing is lost — but
        without the warning, an all-broken cluster would silently
        degrade to serial-speed fallback with zero diagnostics.
        """
        with self._cond:
            link.in_flight.discard((epoch, index))
            warn = not link.reported_error
            link.reported_error = True
            if not self._active or epoch != self._epoch or index in self._resolved:
                return
            if index not in self._local_pending:
                self._local_pending.append(index)
            self._cond.notify_all()
        if warn:
            print(
                f"repro: warning: worker pid={link.pid} failed a block; "
                f"recomputing in-process.  Remote traceback:\n{text}",
                file=sys.stderr,
            )

    def _drop_link(self, link: Optional[_Link]) -> None:
        """Deregister a dead worker and requeue its in-flight tasks."""
        if link is None:
            return
        with self._cond:
            self._links.pop(link.wid, None)
            for epoch, index in link.in_flight:
                self._dispatched.pop((epoch, index), None)
                if (
                    not self._active
                    or epoch != self._epoch
                    or index in self._resolved
                ):
                    continue
                if self._attempts.get(index, 0) >= self.max_retries:
                    if index not in self._local_pending:
                        self._local_pending.append(index)
                else:
                    self._queue.append(index)
            link.in_flight.clear()
            self._cond.notify_all()

    def _scan_stragglers_locked(self) -> None:
        """Flag overdue in-flight tasks and speculatively requeue them.

        Called with ``_cond`` held from the :meth:`run_tasks` loop.  A
        task is overdue when it has been in flight longer than
        ``straggler_factor ×`` its kind's EWMA block latency — or
        longer than ``straggler_grace`` seconds while the EWMA has no
        sample (a wholly stuck fleet never reports one), with the grace
        also acting as a floor so microsecond-block EWMAs cannot turn
        scheduling jitter into speculation storms.  Each overdue task
        is requeued at most once per batch; idle workers claim the
        copy, and ``_stalled`` opens the coordinator's local execution
        lane (see :meth:`_take_local_locked`) so the batch drains even
        when *every* worker is stuck.  Whichever copy resolves first
        wins; :meth:`_record` drops the loser.
        """
        if self.straggler_factor is None or not self._active:
            return
        self._stalled = False
        if not self._dispatched:
            return
        now = time.monotonic()
        for (epoch, index), started in list(self._dispatched.items()):
            if epoch != self._epoch or index in self._resolved:
                continue
            kind = dispatch_kind(self._tasks[index])
            ewma = self.dispatch_stats.block_latency(kind)
            if ewma is None:
                threshold = self.straggler_grace
            else:
                threshold = max(
                    self.straggler_factor * ewma, self.straggler_grace
                )
            if now - started <= threshold:
                continue
            self._stalled = True
            if index not in self._speculated:
                self._speculated.add(index)
                self.speculations += 1
                self._queue.append(index)
                self._cond.notify_all()

    def _take_local_locked(self) -> List[int]:
        """Indices the caller's thread should compute in-process now.

        Always the designated-local backlog (unpicklable jobs, retry
        exhaustion, worker errors); plus *one* task off the queue when
        either (a) no workers are connected, or (b) the last straggler
        scan found an overdue in-flight task — a stalled fleet means
        the queue is not draining, so the coordinator host's CPUs join
        the pool instead of idling behind a SIGSTOPped worker that
        still looks alive to keepalive.  One task, not all: the batch
        progresses at least at serial speed while a worker that
        connects (or recovers) mid-batch still finds the rest of the
        queue waiting for it.
        """
        local = self._local_pending
        self._local_pending = []
        take_from_queue = not self._links or self._stalled
        if take_from_queue:
            while self._queue:
                index = self._queue.popleft()
                if index in self._resolved:
                    continue  # a speculated copy already resolved
                local.append(index)
                break
        return local


# -- local cluster -----------------------------------------------------


class LocalCluster:
    """N worker subprocesses on loopback, for tests and the CLI.

    Workers are spawned lazily by :meth:`start` (the backend calls it
    with its coordinator's URL) as ``python -m repro worker <url>``,
    with the package root on ``PYTHONPATH``.  ``max_tasks`` — an int
    for all workers or one value per worker (``None`` = unlimited) —
    makes a worker crash after completing that many blocks; that is the
    fault-injection hook the test suite drives.

    ``max_respawns`` enables crash recovery: a monitor thread watches
    the worker processes and replaces any that *crashes* (non-zero
    exit — SIGKILL, OOM, a failed connect) while the cluster is
    running, same slot configuration, same coordinator URL, up to
    ``max_respawns`` replacements across the cluster's lifetime.
    Clean exits (code 0: idle timeout, coordinator shutdown, an
    injected ``max_tasks`` crash — deliberately exit-0 so fault
    scenarios that *want* a permanently dead worker stay undisturbed)
    never consume the budget.  Respawn changes *availability only* —
    the coordinator requeues a dead worker's in-flight blocks either
    way, and every block re-derives its streams from the task payload,
    so results are bit-identical with or without respawn
    (``tests/test_distributed_faults.py``).
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        idle_timeout: float = 60.0,
        max_tasks: Union[None, int, Sequence[Optional[int]]] = None,
        python: Optional[str] = None,
        max_respawns: int = 0,
        respawn_poll: float = 0.2,
        tls: Optional[TLSConfig] = None,
        delay: Union[None, float, Sequence[Optional[float]]] = None,
        connect_timeout: Optional[float] = None,
    ) -> None:
        if workers < 0:
            raise ParameterError(f"workers must be >= 0, got {workers}")
        if max_respawns < 0:
            raise ParameterError(
                f"max_respawns must be >= 0, got {max_respawns}"
            )
        if respawn_poll <= 0:
            raise ParameterError(
                f"respawn_poll must be > 0, got {respawn_poll}"
            )
        if connect_timeout is not None and connect_timeout <= 0:
            raise ParameterError(
                f"connect_timeout must be > 0, got {connect_timeout}"
            )
        self.size = int(workers)
        self.idle_timeout = float(idle_timeout)
        if max_tasks is None or isinstance(max_tasks, int):
            self.max_tasks: List[Optional[int]] = [max_tasks] * self.size
        else:
            self.max_tasks = list(max_tasks)
            if len(self.max_tasks) != self.size:
                raise ParameterError(
                    f"max_tasks needs one entry per worker "
                    f"({self.size}), got {len(self.max_tasks)}"
                )
        #: ``delay`` — seconds a worker sleeps before each block, one
        #: value or one per worker — is the slow-loris injection hook:
        #: the link stays healthy while claimed work crawls.
        if delay is None or isinstance(delay, (int, float)):
            self.delay: List[Optional[float]] = [delay] * self.size
        else:
            self.delay = list(delay)
            if len(self.delay) != self.size:
                raise ParameterError(
                    f"delay needs one entry per worker "
                    f"({self.size}), got {len(self.delay)}"
                )
        #: TLS material forwarded to each spawned worker (the
        #: coordinator these workers connect to must serve TLS).
        self.tls = tls
        #: Advisory wait-for-workers timeout for whoever starts this
        #: cluster (slow CI hosts set it higher than the default).
        self.connect_timeout = (
            None if connect_timeout is None else float(connect_timeout)
        )
        self.python = python or sys.executable
        self.max_respawns = int(max_respawns)
        self.respawn_poll = float(respawn_poll)
        #: Replacements actually performed (telemetry for tests/users).
        self.respawns = 0
        self._respawn_budget = self.max_respawns
        self._procs: List[subprocess.Popen] = []
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._finalizer: Optional[weakref.finalize] = None

    def _spawn(self, url: str, index: int, env) -> subprocess.Popen:
        command = [
            self.python, "-m", "repro", "worker", url,
            "--idle-timeout", str(self.idle_timeout),
        ]
        cap = self.max_tasks[index]
        if cap is not None:
            command += ["--max-tasks", str(cap)]
        delay = self.delay[index]
        if delay:
            command += ["--delay", str(delay)]
        if self.tls is not None:
            # Workers verify the coordinator against the CA — or the
            # coordinator's own cert for self-signed clusters — and
            # present the cert/key pair for mutual TLS when one is
            # configured.
            anchor = self.tls.ca or self.tls.cert
            if anchor:
                command += ["--tls-ca", anchor]
            if self.tls.cert:
                command += ["--tls-cert", self.tls.cert,
                            "--tls-key", self.tls.key]
        return subprocess.Popen(command, env=env, stdout=subprocess.DEVNULL)

    def start(self, url: str) -> None:
        """Spawn the workers against ``url`` (no-op while running)."""
        if self._procs:
            return
        env = dict(os.environ)
        package_root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        src_root = os.path.dirname(package_root)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        with self._lock:
            self._procs = [
                self._spawn(url, index, env) for index in range(self.size)
            ]
        self._finalizer = weakref.finalize(
            self, _terminate_procs, list(self._procs)
        )
        if self.max_respawns and self.size:
            self._stopping.clear()
            # The thread holds only a weak reference to the cluster:
            # a strong one would keep a dropped cluster alive forever,
            # defeating the weakref.finalize GC safety net that reaps
            # the worker processes.
            self._monitor = threading.Thread(
                target=_cluster_respawn_loop,
                args=(weakref.ref(self), self._stopping,
                      self.respawn_poll, url, env),
                name="repro-cluster-respawn",
                daemon=True,
            )
            self._monitor.start()

    def _respawn_scan(self, url: str, env) -> bool:
        """One monitor pass; returns True when the loop should stop.

        Only *crashed* workers (non-zero exit) are replaced — clean
        exits are normal worker lifecycle (idle timeout, shutdown,
        the deliberately exit-0 ``max_tasks`` crash hook) and must not
        burn the crash-recovery budget.  The budget is cluster-wide,
        so a crash-looping worker cannot respawn forever.
        """
        with self._lock:
            if self._stopping.is_set():
                return True
            for index, proc in enumerate(self._procs):
                if self._respawn_budget <= 0:
                    return True
                if proc.poll() is None or proc.returncode == 0:
                    continue
                self._procs[index] = self._spawn(url, index, env)
                self.respawns += 1
                self._respawn_budget -= 1
                # Keep the GC safety net current: the finalizer must
                # terminate the *live* processes, not corpses.
                if self._finalizer is not None:
                    self._finalizer.detach()
                self._finalizer = weakref.finalize(
                    self, _terminate_procs, list(self._procs)
                )
            return self._respawn_budget <= 0

    @property
    def processes(self) -> List[subprocess.Popen]:
        """The live worker process handles (for fault injection)."""
        with self._lock:
            return list(self._procs)

    def alive(self) -> int:
        """How many workers are still running."""
        with self._lock:
            return sum(1 for proc in self._procs if proc.poll() is None)

    def kill_worker(self, index: int) -> None:
        """SIGKILL one worker (fault injection; waits for the corpse)."""
        with self._lock:
            proc = self._procs[index]
        proc.kill()
        proc.wait()

    def close(self) -> None:
        """Terminate every worker and reap it (idempotent)."""
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        with self._lock:
            procs, self._procs = self._procs, []
        _terminate_procs(procs)

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _cluster_respawn_loop(
    cluster_ref: "weakref.ref[LocalCluster]",
    stopping: threading.Event,
    poll: float,
    url: str,
    env,
) -> None:
    """Monitor-thread body (module level so it cannot pin the cluster).

    Dereferences the cluster afresh each pass — and drops the strong
    reference *before* sleeping, so the thread never pins the cluster
    while idle — and exits as soon as it is gone (its finalizer has
    already reaped the workers), stopped, or out of respawn budget.
    """
    if stopping.wait(poll):
        return
    while True:
        cluster = cluster_ref()
        if cluster is None or cluster._respawn_scan(url, env):
            return
        del cluster
        if stopping.wait(poll):
            return


def _terminate_procs(procs: List[subprocess.Popen]) -> None:
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
    for proc in procs:
        try:
            proc.wait(timeout=5.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


def _close_socket(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        pass
