"""Statistical summaries for Monte-Carlo experiment cells.

The paper reports two numbers per cell: ``P`` (fraction of 10,000 runs
completing by the deadline) and ``E`` (mean energy — of the timely runs,
as evidenced by the ``NaN`` entries at ``P = 0``).  This module adds the
uncertainty quantification a reproduction needs: Wilson score intervals
for proportions and normal-approximation intervals for means.

For sharded execution (:mod:`repro.sim.parallel` and the backends in
:mod:`repro.sim.backends`) it provides *mergeable accumulators* whose
payload is **O(1) in the number of observations**:

* :class:`ProportionAccumulator` — integer success/trial counts, so
  merging is exact by construction;
* :class:`MomentAccumulator` — streaming moments (count, compensated
  sum, compensated sum of squares) finalising into the same
  :class:`MeanEstimate` a single pass would produce.

Raw per-run observations are never stored or shipped anywhere — this is
what lets a worker (or a future distributed backend) return a
fixed-size payload for a 10,000-rep shard instead of 10,000 floats.

Numerics
--------
:class:`MomentAccumulator` keeps its sums in *double-double* (a
``(hi, lo)`` pair of floats carrying ~106 bits of precision, the
compensated-summation technique of Dekker/Knuth).  Two consequences:

* **Mergeability.**  Chan et al.'s parallel update for combining
  partial moments is, in the sum-of-powers formulation, just addition
  of the partial sums; performed in double-double the addition is
  associative *far* below the final rounding, so merging per-block
  accumulators in block order reproduces the single-pass statistics
  bit-for-bit in practice (and always to ~1 ulp by construction).  The
  hard determinism contract — identical bits for any worker count at a
  fixed block size — needs no numerical argument at all: the same
  additions happen in the same order (see ``README``).
* **Cancellation.**  The textbook hazard of sum-of-squares variance
  (``E[x²] - E[x]²`` cancels catastrophically when the mean dwarfs the
  spread) is suppressed by ~53 extra mantissa bits: the relative error
  of the variance is ~``2⁻¹⁰⁴·(mean/σ)²``, i.e. still at rounding level
  for mean/σ ratios up to ~10⁸ where a naive accumulator returns noise.
  ``tests/test_metrics.py`` pins this with large-offset value sets.

An empty accumulator finalises to the paper's ``NaN`` convention (the
timely-energy mean of a cell where no run was ever timely), never an
error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "wilson_interval",
    "mean_interval",
    "ProportionEstimate",
    "MeanEstimate",
    "ProportionAccumulator",
    "MomentAccumulator",
]


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because experiment cells
    routinely sit at ``P ≈ 0`` or ``P ≈ 1`` where the latter collapses.
    """
    if trials <= 0:
        raise ParameterError(f"trials must be > 0, got {trials}")
    if not 0 <= successes <= trials:
        raise ParameterError(
            f"successes must be in [0, trials]; got {successes}/{trials}"
        )
    z = _z_value(confidence)
    n = float(trials)
    phat = successes / n
    denom = 1.0 + z * z / n
    centre = (phat + z * z / (2.0 * n)) / denom
    margin = (
        z * math.sqrt(phat * (1.0 - phat) / n + z * z / (4.0 * n * n)) / denom
    )
    return (max(0.0, centre - margin), min(1.0, centre + margin))


def mean_interval(
    values: Iterable[float], confidence: float = 0.95
) -> Tuple[float, float]:
    """Normal-approximation confidence interval for a sample mean.

    Accepts any iterable of floats (lists, tuples, NumPy arrays); the
    computation streams through a :class:`MomentAccumulator`.
    """
    estimate = MomentAccumulator(values).estimate(confidence)
    return (estimate.low, estimate.high)


def _z_value(confidence: float) -> float:
    if not 0 < confidence < 1:
        raise ParameterError(f"confidence must be in (0, 1), got {confidence}")
    # Acklam-style rational approximation of the normal quantile; more
    # than accurate enough for reporting intervals.
    p = 1.0 - (1.0 - confidence) / 2.0
    return _norm_ppf(p)


def _norm_ppf(p: float) -> float:
    """Inverse standard normal CDF (Acklam's approximation)."""
    if not 0 < p < 1:
        raise ParameterError(f"p must be in (0, 1), got {p}")
    a = (
        -3.969683028665376e01,
        2.209460984245205e02,
        -2.759285104469687e02,
        1.383577518672690e02,
        -3.066479806614716e01,
        2.506628277459239e00,
    )
    b = (
        -5.447609879822406e01,
        1.615858368580409e02,
        -1.556989798598866e02,
        6.680131188771972e01,
        -1.328068155288572e01,
    )
    c = (
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e00,
        -2.549732539343734e00,
        4.374664141464968e00,
        2.938163982698783e00,
    )
    d = (
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e00,
        3.754408661907416e00,
    )
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p <= 1.0 - p_low:
        q = p - 0.5
        r = q * q
        return (
            (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5])
            * q
            / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
        )
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(
        ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
    ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)


# -- double-double helpers ---------------------------------------------------
#
# A double-double is an unevaluated (hi, lo) pair with |lo| ≤ ulp(hi)/2,
# representing hi + lo to ~106 bits.  Only the handful of operations the
# accumulator needs are implemented; all are branch-free float arithmetic.

_SPLITTER = 134217729.0  # 2**27 + 1, for Dekker's exact product split


def _two_sum(a: float, b: float) -> Tuple[float, float]:
    """fl(a+b) and its exact rounding error (Knuth)."""
    s = a + b
    t = s - a
    return s, (a - (s - t)) + (b - t)


def _fast_two_sum(a: float, b: float) -> Tuple[float, float]:
    """Like :func:`_two_sum` but requires |a| >= |b| (or a == 0)."""
    s = a + b
    return s, b - (s - a)


def _two_prod(a: float, b: float) -> Tuple[float, float]:
    """fl(a·b) and its exact rounding error (Dekker)."""
    p = a * b
    ta = _SPLITTER * a
    a_hi = ta - (ta - a)
    a_lo = a - a_hi
    tb = _SPLITTER * b
    b_hi = tb - (tb - b)
    b_lo = b - b_hi
    err = ((a_hi * b_hi - p) + a_hi * b_lo + a_lo * b_hi) + a_lo * b_lo
    return p, err


def _dd_add(
    a_hi: float, a_lo: float, b_hi: float, b_lo: float
) -> Tuple[float, float]:
    """Double-double addition (error ~2⁻¹⁰⁶ relative)."""
    s, e = _two_sum(a_hi, b_hi)
    e += a_lo + b_lo
    return _fast_two_sum(s, e)


def _dd_sqr(a_hi: float, a_lo: float) -> Tuple[float, float]:
    """Square of a double-double."""
    p, e = _two_prod(a_hi, a_hi)
    e += 2.0 * a_hi * a_lo + a_lo * a_lo
    return _fast_two_sum(p, e)


def _dd_div_int(a_hi: float, a_lo: float, n: int) -> Tuple[float, float]:
    """Double-double divided by a positive integer."""
    fn = float(n)
    q1 = a_hi / fn
    p, pe = _two_prod(q1, fn)
    r_hi, r_lo = _dd_add(a_hi, a_lo, -p, -pe)
    q2 = (r_hi + r_lo) / fn
    return _fast_two_sum(q1, q2)


@dataclass(frozen=True)
class ProportionEstimate:
    """A proportion with its Wilson interval."""

    value: float
    low: float
    high: float
    trials: int

    @classmethod
    def from_counts(
        cls, successes: int, trials: int, confidence: float = 0.95
    ) -> "ProportionEstimate":
        low, high = wilson_interval(successes, trials, confidence)
        return cls(value=successes / trials, low=low, high=high, trials=trials)


@dataclass(frozen=True)
class MeanEstimate:
    """A sample mean with its confidence interval (NaN when empty)."""

    value: float
    low: float
    high: float
    count: int

    @classmethod
    def from_values(
        cls, values: Iterable[float], confidence: float = 0.95
    ) -> "MeanEstimate":
        """Estimate from raw observations (list, tuple or NumPy array).

        Streams through a :class:`MomentAccumulator` — no copy of
        ``values`` is made, and arrays are consumed element-wise.
        """
        return MomentAccumulator(values).estimate(confidence)

    @property
    def is_nan(self) -> bool:
        return math.isnan(self.value)

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ParameterError(f"count must be >= 0, got {self.count}")


class ProportionAccumulator:
    """Mergeable success/trial counter finalising to a Wilson estimate.

    Counts are integers, so merging is exact by construction.
    """

    __slots__ = ("successes", "trials")

    def __init__(self, successes: int = 0, trials: int = 0) -> None:
        if trials < 0 or not 0 <= successes <= max(trials, 0):
            raise ParameterError(
                f"need 0 <= successes <= trials, got {successes}/{trials}"
            )
        self.successes = successes
        self.trials = trials

    def add(self, success: bool) -> None:
        """Record one trial."""
        self.trials += 1
        if success:
            self.successes += 1

    def add_many(self, successes) -> "ProportionAccumulator":
        """Record a whole block of trials (a bool array/sequence).

        Integer counting, so this is exactly ``add`` in a loop — the
        vectorised entry point the slab path folds its timely flags
        through.
        """
        self.trials += len(successes)
        if isinstance(successes, np.ndarray):
            self.successes += int(np.count_nonzero(successes))
        else:
            self.successes += sum(1 for s in successes if s)
        return self

    def merge(self, other: "ProportionAccumulator") -> "ProportionAccumulator":
        """Fold another accumulator's counts into this one."""
        self.successes += other.successes
        self.trials += other.trials
        return self

    def estimate(self, confidence: float = 0.95) -> ProportionEstimate:
        """Finalise into a :class:`ProportionEstimate`."""
        return ProportionEstimate.from_counts(
            self.successes, self.trials, confidence
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProportionAccumulator({self.successes}/{self.trials})"


class MomentAccumulator:
    """Streaming moment statistics with an O(1), mergeable payload.

    State is ``(count, Σx, Σx²)`` with both sums held in double-double
    (see module docstring).  :meth:`merge` implements the Chan et al.
    parallel combine in its sum-of-powers form — partial sums add,
    counts add — which makes the merge associative to ~2⁻¹⁰⁶, far below
    final double rounding.  Observations are never stored: a merged
    accumulator finalises to the estimate a single pass over the same
    observations would give, including the paper's ``NaN`` convention
    when no observation was ever added (e.g. the timely-energy mean of
    a cell where every block came back with zero timely runs).
    """

    __slots__ = ("count", "_sum_hi", "_sum_lo", "_sq_hi", "_sq_lo")

    def __init__(self, values: Iterable[float] = ()) -> None:
        self.count = 0
        self._sum_hi = 0.0
        self._sum_lo = 0.0
        self._sq_hi = 0.0
        self._sq_lo = 0.0
        self.add_many(values)

    # -- accumulation --------------------------------------------------

    def add(self, value: float) -> None:
        """Record one observation."""
        x = float(value)
        self.count += 1
        self._sum_hi, self._sum_lo = _dd_add(self._sum_hi, self._sum_lo, x, 0.0)
        p, e = _two_prod(x, x)
        self._sq_hi, self._sq_lo = _dd_add(self._sq_hi, self._sq_lo, p, e)

    def add_many(self, values: Iterable[float]) -> "MomentAccumulator":
        """Record observations in order (hot path for NumPy arrays).

        For a 1-D NumPy array the order-independent per-element work —
        the squares and their Dekker error terms — is vectorised up
        front (:meth:`_add_array`), leaving only the order-*dependent*
        double-double fold in the Python loop.  Both paths perform the
        exact float operations of repeated :meth:`add` in the same
        order, so ``add`` and ``add_many`` are bit-identical per
        element (pinned by ``tests/test_metrics.py``).
        """
        if isinstance(values, np.ndarray) and values.ndim == 1:
            return self._add_array(values)
        count = 0
        s_hi, s_lo = self._sum_hi, self._sum_lo
        q_hi, q_lo = self._sq_hi, self._sq_lo
        for value in values:
            x = float(value)
            count += 1
            # _dd_add(s_hi, s_lo, x, 0.0), inlined (same op order, so
            # add() and add_many() are bit-identical per element).
            s = s_hi + x
            t = s - s_hi
            e = (s_hi - (s - t)) + (x - t)
            e += s_lo + 0.0
            s_hi = s + e
            s_lo = e - (s_hi - s)
            # _two_prod(x, x) then _dd_add(q_hi, q_lo, p, pe), inlined.
            p = x * x
            tx = _SPLITTER * x
            xh = tx - (tx - x)
            xl = x - xh
            pe = ((xh * xh - p) + xh * xl + xl * xh) + xl * xl
            q = q_hi + p
            tq = q - q_hi
            qe = (q_hi - (q - tq)) + (p - tq)
            qe += q_lo + pe
            q_hi = q + qe
            q_lo = qe - (q_hi - q)
        self.count += count
        self._sum_hi, self._sum_lo = s_hi, s_lo
        self._sq_hi, self._sq_lo = q_hi, q_lo
        return self

    def _add_array(self, values: np.ndarray) -> "MomentAccumulator":
        """NumPy block path: vectorised Dekker products, scalar fold.

        ``x²`` and its exact rounding error are elementwise (no
        reassociation), so computing them as whole-array expressions
        yields bit-for-bit the per-element values of the scalar loop;
        the double-double accumulation itself is order-dependent and
        stays a left-to-right fold over Python floats.
        """
        arr = np.asarray(values, dtype=np.float64)
        n = int(arr.size)
        if n == 0:
            return self
        p_arr = arr * arr
        tx = _SPLITTER * arr
        xh = tx - (tx - arr)
        xl = arr - xh
        pe_arr = ((xh * xh - p_arr) + xh * xl + xl * xh) + xl * xl
        s_hi, s_lo = self._sum_hi, self._sum_lo
        q_hi, q_lo = self._sq_hi, self._sq_lo
        for x, p, pe in zip(arr.tolist(), p_arr.tolist(), pe_arr.tolist()):
            # _dd_add(s_hi, s_lo, x, 0.0), inlined — the op order of
            # add(), so the fold is bit-identical to repeated add().
            s = s_hi + x
            t = s - s_hi
            e = (s_hi - (s - t)) + (x - t)
            e += s_lo + 0.0
            s_hi = s + e
            s_lo = e - (s_hi - s)
            # _dd_add(q_hi, q_lo, p, pe), inlined.
            q = q_hi + p
            tq = q - q_hi
            qe = (q_hi - (q - tq)) + (p - tq)
            qe += q_lo + pe
            q_hi = q + qe
            q_lo = qe - (q_hi - q)
        self.count += n
        self._sum_hi, self._sum_lo = s_hi, s_lo
        self._sq_hi, self._sq_lo = q_hi, q_lo
        return self

    def merge(self, other: "MomentAccumulator") -> "MomentAccumulator":
        """Fold another accumulator in (Chan-style parallel combine)."""
        self.count += other.count
        self._sum_hi, self._sum_lo = _dd_add(
            self._sum_hi, self._sum_lo, other._sum_hi, other._sum_lo
        )
        self._sq_hi, self._sq_lo = _dd_add(
            self._sq_hi, self._sq_lo, other._sq_hi, other._sq_lo
        )
        return self

    # -- statistics ----------------------------------------------------

    @property
    def sum(self) -> float:
        """Σx, rounded to double."""
        return self._sum_hi + self._sum_lo

    @property
    def mean(self) -> float:
        """The sample mean (NaN when empty)."""
        if self.count == 0:
            return math.nan
        hi, lo = _dd_div_int(self._sum_hi, self._sum_lo, self.count)
        return hi + lo

    @property
    def m2(self) -> float:
        """Σ(x - mean)² — the centred second moment Chan's M2.

        Computed as ``Σx² - (Σx)²/n`` entirely in double-double, so the
        subtraction cancels compensated bits, not information (see
        module docstring); clamped at 0 against residual rounding.
        """
        if self.count == 0:
            return 0.0
        s2_hi, s2_lo = _dd_sqr(self._sum_hi, self._sum_lo)
        s2n_hi, s2n_lo = _dd_div_int(s2_hi, s2_lo, self.count)
        m2_hi, m2_lo = _dd_add(self._sq_hi, self._sq_lo, -s2n_hi, -s2n_lo)
        return max(0.0, m2_hi + m2_lo)

    @property
    def variance(self) -> float:
        """Unbiased sample variance (NaN below two observations)."""
        if self.count < 2:
            return math.nan
        return self.m2 / (self.count - 1)

    def estimate(self, confidence: float = 0.95) -> MeanEstimate:
        """Finalise; an empty accumulator yields the NaN estimate."""
        if self.count == 0:
            return MeanEstimate(
                value=math.nan, low=math.nan, high=math.nan, count=0
            )
        mean = self.mean
        if self.count == 1:
            return MeanEstimate(value=mean, low=mean, high=mean, count=1)
        half = _z_value(confidence) * math.sqrt(self.variance / self.count)
        return MeanEstimate(
            value=mean, low=mean - half, high=mean + half, count=self.count
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MomentAccumulator(n={self.count}, mean={self.mean!r})"


def describe(estimate: Optional[MeanEstimate]) -> str:  # pragma: no cover - helper
    if estimate is None or estimate.is_nan:
        return "NaN"
    return f"{estimate.value:.0f}"
