"""Statistical summaries for Monte-Carlo experiment cells.

The paper reports two numbers per cell: ``P`` (fraction of 10,000 runs
completing by the deadline) and ``E`` (mean energy — of the timely runs,
as evidenced by the ``NaN`` entries at ``P = 0``).  This module adds the
uncertainty quantification a reproduction needs: Wilson score intervals
for proportions and normal-approximation intervals for means.

For sharded execution (:mod:`repro.sim.parallel`) it also provides
*mergeable accumulators*: :class:`ProportionAccumulator` and
:class:`MeanAccumulator` collect per-run observations chunk by chunk and
merge across chunks, finalising into the same
:class:`ProportionEstimate` / :class:`MeanEstimate` a single pass would
produce.  Merging concatenates observations in chunk order, so as long
as chunks cover the rep range in order the merged statistics are
*bit-identical* to the single-pass ones — regardless of worker count or
chunk size.  (A moment-based merge — count/sum/M2 à la Chan et al. —
is the drop-in replacement once shipping raw values to a distributed
backend becomes the bottleneck; at paper scale a cell is ~10k floats.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import ParameterError

__all__ = [
    "wilson_interval",
    "mean_interval",
    "ProportionEstimate",
    "MeanEstimate",
    "ProportionAccumulator",
    "MeanAccumulator",
]


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because experiment cells
    routinely sit at ``P ≈ 0`` or ``P ≈ 1`` where the latter collapses.
    """
    if trials <= 0:
        raise ParameterError(f"trials must be > 0, got {trials}")
    if not 0 <= successes <= trials:
        raise ParameterError(
            f"successes must be in [0, trials]; got {successes}/{trials}"
        )
    z = _z_value(confidence)
    n = float(trials)
    phat = successes / n
    denom = 1.0 + z * z / n
    centre = (phat + z * z / (2.0 * n)) / denom
    margin = (
        z * math.sqrt(phat * (1.0 - phat) / n + z * z / (4.0 * n * n)) / denom
    )
    return (max(0.0, centre - margin), min(1.0, centre + margin))


def mean_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float]:
    """Normal-approximation confidence interval for a sample mean."""
    n = len(values)
    if n == 0:
        return (math.nan, math.nan)
    mean = sum(values) / n
    if n == 1:
        return (mean, mean)
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    half = _z_value(confidence) * math.sqrt(var / n)
    return (mean - half, mean + half)


def _z_value(confidence: float) -> float:
    if not 0 < confidence < 1:
        raise ParameterError(f"confidence must be in (0, 1), got {confidence}")
    # Acklam-style rational approximation of the normal quantile; more
    # than accurate enough for reporting intervals.
    p = 1.0 - (1.0 - confidence) / 2.0
    return _norm_ppf(p)


def _norm_ppf(p: float) -> float:
    """Inverse standard normal CDF (Acklam's approximation)."""
    if not 0 < p < 1:
        raise ParameterError(f"p must be in (0, 1), got {p}")
    a = (
        -3.969683028665376e01,
        2.209460984245205e02,
        -2.759285104469687e02,
        1.383577518672690e02,
        -3.066479806614716e01,
        2.506628277459239e00,
    )
    b = (
        -5.447609879822406e01,
        1.615858368580409e02,
        -1.556989798598866e02,
        6.680131188771972e01,
        -1.328068155288572e01,
    )
    c = (
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e00,
        -2.549732539343734e00,
        4.374664141464968e00,
        2.938163982698783e00,
    )
    d = (
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e00,
        3.754408661907416e00,
    )
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p <= 1.0 - p_low:
        q = p - 0.5
        r = q * q
        return (
            (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5])
            * q
            / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
        )
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(
        ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
    ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)


@dataclass(frozen=True)
class ProportionEstimate:
    """A proportion with its Wilson interval."""

    value: float
    low: float
    high: float
    trials: int

    @classmethod
    def from_counts(
        cls, successes: int, trials: int, confidence: float = 0.95
    ) -> "ProportionEstimate":
        low, high = wilson_interval(successes, trials, confidence)
        return cls(value=successes / trials, low=low, high=high, trials=trials)


@dataclass(frozen=True)
class MeanEstimate:
    """A sample mean with its confidence interval (NaN when empty)."""

    value: float
    low: float
    high: float
    count: int

    @classmethod
    def from_values(
        cls, values: Sequence[float], confidence: float = 0.95
    ) -> "MeanEstimate":
        if not values:
            return cls(value=math.nan, low=math.nan, high=math.nan, count=0)
        low, high = mean_interval(values, confidence)
        return cls(
            value=sum(values) / len(values), low=low, high=high, count=len(values)
        )

    @property
    def is_nan(self) -> bool:
        return math.isnan(self.value)

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ParameterError(f"count must be >= 0, got {self.count}")


class ProportionAccumulator:
    """Mergeable success/trial counter finalising to a Wilson estimate.

    Counts are integers, so merging is exact by construction.
    """

    __slots__ = ("successes", "trials")

    def __init__(self, successes: int = 0, trials: int = 0) -> None:
        if trials < 0 or not 0 <= successes <= max(trials, 0):
            raise ParameterError(
                f"need 0 <= successes <= trials, got {successes}/{trials}"
            )
        self.successes = successes
        self.trials = trials

    def add(self, success: bool) -> None:
        """Record one trial."""
        self.trials += 1
        if success:
            self.successes += 1

    def merge(self, other: "ProportionAccumulator") -> "ProportionAccumulator":
        """Fold another accumulator's counts into this one."""
        self.successes += other.successes
        self.trials += other.trials
        return self

    def estimate(self, confidence: float = 0.95) -> ProportionEstimate:
        """Finalise into a :class:`ProportionEstimate`."""
        return ProportionEstimate.from_counts(
            self.successes, self.trials, confidence
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProportionAccumulator({self.successes}/{self.trials})"


class MeanAccumulator:
    """Mergeable sample collector finalising to a :class:`MeanEstimate`.

    Observations are kept verbatim and merging concatenates them, so a
    merged accumulator finalises to *exactly* the estimate a single pass
    over the same observations in the same order would give — including
    the paper's ``NaN`` convention when no observation was ever added
    (e.g. the timely-energy mean of a cell where every chunk came back
    with zero timely runs).
    """

    __slots__ = ("_values",)

    def __init__(self, values: Sequence[float] = ()) -> None:
        self._values: list = list(values)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def values(self) -> Tuple[float, ...]:
        return tuple(self._values)

    def add(self, value: float) -> None:
        """Record one observation."""
        self._values.append(value)

    def merge(self, other: "MeanAccumulator") -> "MeanAccumulator":
        """Append another accumulator's observations (in its order)."""
        self._values.extend(other._values)
        return self

    def estimate(self, confidence: float = 0.95) -> MeanEstimate:
        """Finalise; an empty accumulator yields the NaN estimate."""
        return MeanEstimate.from_values(self._values, confidence)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MeanAccumulator(n={len(self._values)})"


def describe(estimate: Optional[MeanEstimate]) -> str:  # pragma: no cover - helper
    if estimate is None or estimate.is_nan:
        return "NaN"
    return f"{estimate.value:.0f}"
