"""Parallel Monte-Carlo batch execution with deterministic block seeding.

The paper's tables are grids of *independent* cells (task × scheme ×
fault rate), and each cell is itself ``reps`` independent runs — an
embarrassingly parallel workload that the serial harness leaves
wall-clock bound at paper scale (10,000-rep adaptive cells).  This
module cuts that work into fixed-size **rep blocks** and hands them to
an :class:`~repro.sim.backends.ExecutionBackend` — in-process, a
process pool, or (eventually) a distributed transport — without
changing the estimates.

Determinism contract
--------------------
Results are identical for any worker count because nothing about the
topology ever reaches the random streams or the reduction:

* **Seeding** — keyed by *absolute indices*, never by worker or
  completion order.  Executor cells draw rep ``i`` from
  ``SeedSequence(cell_seed, spawn_key=(i,))``; static fast-path cells
  draw block ``b`` from ``SeedSequence(cell_seed, spawn_key=(b,))``.
* **Blocked reduction** — the unit of accumulation is the fixed-size
  block (``chunk_size`` reps, default :data:`DEFAULT_BLOCK_SIZE`).
  Each block streams its reps in order into O(1) moment accumulators
  (:mod:`repro.sim.metrics`); blocks merge in ascending block index
  regardless of completion order.  The same additions therefore happen
  in the same order whatever the worker count, which makes the merged
  estimate *bit-identical* to the one-worker pass — and the payload
  shipped per block is constant-size, never O(reps) of raw values.

The block size is part of the contract: it fixes the reduction tree,
so it is recorded alongside the seed when reproducibility matters.
(In practice the compensated accumulators agree across block sizes too
— ``tests/test_parallel.py`` pins both properties.)

Fallbacks
---------
``workers=1`` (the default) runs everything in-process through the same
block/merge code path.  Jobs whose policy factory cannot be pickled
(e.g. a closure) are detected up front and run in-process too, so the
runner never fails where the serial harness would have succeeded.

The grid API (:meth:`BatchRunner.run_cells`) is what the experiment
layer uses: all blocks of all cells are interleaved in one batch, so a
grid with one slow adaptive column still keeps every worker busy.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.errors import ParameterError
from repro.sim.backends import (
    CellJob,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    default_workers,
    make_backend,
    plan_blocks,
)
from repro.sim.montecarlo import CellAccumulator, CellEstimate

__all__ = [
    "CellJob",
    "BatchRunner",
    "runner_scope",
    "default_workers",
    "DEFAULT_BLOCK_SIZE",
]

#: Reps per block when no ``chunk_size`` is given.  A topology-free
#: constant on purpose: the old heuristic (``reps / 4·workers``) let the
#: worker count shape the reduction tree, which a moment-based merge
#: cannot tolerate.  256 reps keeps per-block dispatch negligible while
#: giving a 10,000-rep cell ~40 blocks to load-balance.
DEFAULT_BLOCK_SIZE = 256

#: Sentinel distinguishing "workers not given" from an explicit value —
#: the inference path reads the default as 1 (serial), but a named
#: backend must read it as "unspecified" (e.g. a process pool defaults
#: to one worker per CPU, not a 1-process pool).
_UNSET_WORKERS = object()


class BatchRunner:
    """Plans cell grids into rep blocks, runs them on a backend, merges.

    Parameters
    ----------
    workers:
        Worker processes.  ``1`` (default) executes in-process via
        :class:`~repro.sim.backends.SerialBackend`; ``None`` means
        :func:`default_workers`; anything else builds a
        :class:`~repro.sim.backends.ProcessBackend`.  Ignored when an
        explicit ``backend`` is given.
    chunk_size:
        Reps per block — the unit of both scheduling *and* accumulation
        (see the module docstring).  ``None`` means
        :data:`DEFAULT_BLOCK_SIZE`.  For a fixed value, results are
        bit-identical across worker counts and backends.
    backend:
        An explicit :class:`~repro.sim.backends.ExecutionBackend`
        instance or one of the names in :data:`~repro.sim.backends.
        BACKEND_NAMES` (``"serial"``, ``"process"``, ``"distributed"``);
        overrides the ``workers``-based inference.  ``"process"`` uses
        ``workers`` for its pool size — unspecified/``None`` = one per
        CPU (matching every higher-level entry point), an explicit
        ``1`` = a genuine single-process pool (unlike the inference
        path, where 1 means serial).  ``"distributed"`` takes
        ``cluster_workers``/``url`` instead; passing knobs a named
        backend cannot honour raises.
    cluster_workers:
        With ``backend="distributed"``: spawn that many loopback
        worker subprocesses (a :class:`~repro.sim.distributed.
        LocalCluster`).  ``0``/``None`` means workers connect
        externally (or the batch falls back in-process).
    url:
        With ``backend="distributed"``: the coordinator bind address.
    adaptive_batching:
        Latency-adaptive dispatch for the parallel backends: worker
        batches are sized from an EWMA of observed block latency
        (static fast-path blocks are ~100× cheaper than executor
        blocks, so mixed grids stop convoying behind per-message
        overhead).  Dispatch-only — block boundaries, seeding and the
        merge order never change, so results are bit-identical with it
        on or off.  ``None`` = backend default (on).  Ignored for
        in-process execution (``workers=1``), which has no dispatch;
        the explicit ``backend="serial"`` name still rejects it.
    tls / connect_timeout / straggler_factor:
        ``backend="distributed"`` only (rejected elsewhere): a
        :class:`~repro.sim.distributed.TLSConfig` wrapping the
        coordinator socket, the wait-for-workers timeout, and the
        straggler-speculation multiplier (``0`` disables speculation).
        All transport/dispatch knobs — results are bit-identical
        regardless.
    """

    def __init__(
        self,
        workers: Optional[int] = _UNSET_WORKERS,  # type: ignore[assignment]
        *,
        chunk_size: Optional[int] = None,
        backend: Union[ExecutionBackend, str, None] = None,
        cluster_workers: Optional[int] = None,
        url: Optional[str] = None,
        adaptive_batching: Optional[bool] = None,
        tls: Optional[object] = None,
        connect_timeout: Optional[float] = None,
        straggler_factor: Optional[float] = None,
    ) -> None:
        if chunk_size is not None and chunk_size < 1:
            raise ParameterError(f"chunk_size must be >= 1, got {chunk_size}")
        self.block_size = int(chunk_size) if chunk_size else DEFAULT_BLOCK_SIZE
        if backend is not None:
            self.backend: ExecutionBackend = make_backend(
                backend,
                workers=None if workers is _UNSET_WORKERS else workers,
                cluster_workers=cluster_workers,
                url=url,
                adaptive_batching=adaptive_batching,
                tls=tls,
                connect_timeout=connect_timeout,
                straggler_factor=straggler_factor,
            )
            self.workers = getattr(self.backend, "workers", 1)
            return
        if cluster_workers or url:
            raise ParameterError(
                "cluster_workers/url only apply to backend='distributed'"
            )
        if (
            tls is not None
            or connect_timeout is not None
            or straggler_factor is not None
        ):
            raise ParameterError(
                "tls/connect_timeout/straggler_factor only apply to "
                "backend='distributed'"
            )
        if workers is _UNSET_WORKERS:
            workers = 1  # the historical serial default
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        if self.workers == 1:
            # In-process execution has no dispatch; the knob is moot.
            self.backend = SerialBackend()
        else:
            self.backend = ProcessBackend(
                self.workers, adaptive_batching=adaptive_batching
            )

    # -- public API ----------------------------------------------------

    @property
    def chunk_size(self) -> int:
        """Alias for :attr:`block_size` (the CLI flag's name)."""
        return self.block_size

    @classmethod
    def serial(cls, *, chunk_size: Optional[int] = None) -> "BatchRunner":
        """The in-process runner — the serial fallback everywhere."""
        return cls(workers=1, chunk_size=chunk_size)

    def close(self) -> None:
        """Release backend resources (idempotent; pools recreate lazily)."""
        self.backend.close()

    def __enter__(self) -> "BatchRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run_cell(self, job) -> CellEstimate:
        """Estimate one cell (sharded when the backend is parallel)."""
        return self.run_cells([job])[0]

    def run_cells(self, jobs: Sequence) -> List[CellEstimate]:
        """Estimate a whole grid of cells, interleaving their blocks.

        ``jobs`` may mix :class:`~repro.sim.backends.CellJob` (event
        executor), :class:`~repro.sim.fastpath.StaticCellJob`
        (vectorised fast path) and
        :class:`~repro.workloads.TasksetCellJob` (multi-task EDF
        scenario engine) — anything with ``reps``/``seed`` and a
        block-deterministic ``run_block`` flows through the same
        backend and the same blocked reduction.  Returns estimates in
        job order.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        tasks = plan_blocks(jobs, self.block_size)
        results = self.backend.run_tasks(tasks)
        merged: Dict[int, CellAccumulator] = {}
        # plan_blocks emits (job, block) in ascending order, so folding
        # in task order is folding in block order — the merge is
        # topology-independent whatever order the backend finished in.
        for task, shard in zip(tasks, results):
            if task.job_index in merged:
                merged[task.job_index].merge(shard)
            else:
                merged[task.job_index] = shard
        return [merged[index].finalize() for index in range(len(jobs))]


@contextmanager
def runner_scope(
    runner: Optional[BatchRunner] = None,
    *,
    backend: Union[ExecutionBackend, str, None] = None,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    cluster_workers: Optional[int] = None,
    url: Optional[str] = None,
    adaptive_batching: Optional[bool] = None,
) -> Iterator[BatchRunner]:
    """The runner an API call should use, with ownership sorted out.

    Every dispatcher that accepts both ``runner=`` (caller-owned, we
    must not close it) and ``backend=`` (a name — we build the runner
    and must release it) funnels through here:

    * an explicit ``runner`` is yielded untouched (passing ``backend``
      too is a contradiction and raises);
    * no runner, no backend — the implicit serial runner (stateless,
      nothing to release);
    * a ``backend`` *name* builds a runner for the call and closes it
      afterwards (``backend="process"`` with ``workers`` unspecified
      means one worker per CPU); a backend *instance* builds a runner
      but leaves closing the backend to whoever constructed it.

    .. deprecated::
        The scattered per-call execution kwargs (``workers``,
        ``chunk_size``, ``cluster_workers``, ``url``,
        ``adaptive_batching``) are deprecated: build one validated
        :class:`~repro.experiments.config.ExecutionSettings` and hold
        it in a :class:`~repro.api.Session` (or pass its
        ``make_runner()`` result as ``runner=``) instead.  ``runner=``
        and ``backend=`` stay.
    """
    scattered = {
        "workers": workers,
        "chunk_size": chunk_size,
        "cluster_workers": cluster_workers,
        "url": url,
        "adaptive_batching": adaptive_batching,
    }
    used = [name for name, value in scattered.items() if value is not None]
    if used:
        warnings.warn(
            f"passing {', '.join(used)} to runner_scope() is deprecated; "
            f"build an ExecutionSettings (experiments.config) and run "
            f"through a repro.api.Session, or pass runner=",
            DeprecationWarning,
            stacklevel=3,
        )
    if runner is not None:
        if backend is not None:
            raise ParameterError("pass either runner= or backend=, not both")
        yield runner
        return
    if backend is None:
        yield BatchRunner.serial(chunk_size=chunk_size)
        return
    scoped = BatchRunner(
        workers=workers,
        chunk_size=chunk_size,
        backend=backend,
        cluster_workers=cluster_workers,
        url=url,
        adaptive_batching=adaptive_batching,
    )
    try:
        yield scoped
    finally:
        if isinstance(backend, str):
            scoped.close()
