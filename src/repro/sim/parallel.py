"""Parallel Monte-Carlo batch execution with deterministic seeding.

The paper's tables are grids of *independent* cells (task × scheme ×
fault rate), and each cell is itself ``reps`` independent runs — an
embarrassingly parallel workload that the serial harness leaves
wall-clock bound at paper scale (10,000-rep adaptive cells).  This
module shards that work across a :class:`~concurrent.futures.
ProcessPoolExecutor` without changing a single result bit.

Determinism contract
--------------------
Results are identical for any worker count and any chunk size because
nothing about the topology ever reaches the random streams or the
reduction:

* **Seeding** — rep ``i`` of a cell draws from
  ``SeedSequence(cell_seed, spawn_key=(i,))`` (via
  :meth:`repro.sim.rng.RandomSource.substream`), keyed by the *absolute
  rep index*.  A chunk covering reps ``[start, stop)`` re-derives those
  exact streams; which worker runs the chunk is irrelevant.
* **Reduction** — each chunk returns a mergeable
  :class:`~repro.sim.montecarlo.CellAccumulator`; chunks are merged in
  rep order regardless of completion order.  Accumulators concatenate
  float observations and sum integer counters, so the merged estimate
  is bit-identical to a single serial pass (see ``tests/test_parallel``).

Fallbacks
---------
``workers=1`` (the default) runs everything in-process through the same
chunk/merge code path.  Jobs whose policy factory cannot be pickled
(e.g. a closure) are detected up front and run in-process too, so the
runner never fails where the serial harness would have succeeded.

The grid API (:meth:`BatchRunner.run_cells`) is what the experiment
layer uses: all chunks of all cells are interleaved in one pool, so a
grid with one slow adaptive column still keeps every worker busy.
"""

from __future__ import annotations

import os
import pickle
import weakref
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ParameterError
from repro.sim.energy import EnergyModel
from repro.sim.executor import SimulationLimits
from repro.sim.faults import FaultProcess
from repro.sim.montecarlo import (
    CellAccumulator,
    CellEstimate,
    PolicyFactory,
    run_range,
)
from repro.sim.task import TaskSpec

__all__ = ["CellJob", "BatchRunner", "default_workers"]


def default_workers() -> int:
    """The machine's CPU count (the natural ``workers`` choice)."""
    return os.cpu_count() or 1


@dataclass(frozen=True)
class CellJob:
    """One Monte-Carlo cell, described completely enough to ship.

    Everything a worker process needs to run a shard of the cell:
    the payload must be picklable (dataclass specs and
    ``functools.partial`` of module-level policies are; closures are
    not — those fall back to in-process execution).
    """

    task: TaskSpec
    policy_factory: PolicyFactory
    reps: int
    seed: int = 0
    faults: Optional[FaultProcess] = None
    energy_model: Optional[EnergyModel] = None
    faults_during_overhead: bool = False
    limits: SimulationLimits = field(default_factory=SimulationLimits)

    def __post_init__(self) -> None:
        if self.reps <= 0:
            raise ParameterError(f"reps must be > 0, got {self.reps}")


def _simulate_chunk(job: CellJob, start: int, stop: int) -> CellAccumulator:
    """Worker entry point: run reps ``[start, stop)`` of ``job``.

    Module-level (not a method) so it pickles by reference under every
    multiprocessing start method.
    """
    results = run_range(
        job.task,
        job.policy_factory,
        start=start,
        stop=stop,
        seed=job.seed,
        faults=job.faults,
        energy_model=job.energy_model,
        faults_during_overhead=job.faults_during_overhead,
        limits=job.limits,
    )
    return CellAccumulator().add_all(results)


class BatchRunner:
    """Shards Monte-Carlo cells over a process pool and merges shards.

    Parameters
    ----------
    workers:
        Worker processes.  ``1`` (default) executes in-process — the
        serial fallback; ``None`` means :func:`default_workers`.
    chunk_size:
        Reps per shard.  ``None`` picks ``ceil(reps / (4 · workers))``
        per cell (enough shards to load-balance, few enough to keep
        per-shard overhead negligible), clamped to at least
        ``min_chunk_size``.  Results never depend on this — it is a
        scheduling knob only.
    min_chunk_size:
        Lower bound for the automatic chunk size (spawning a process to
        run three reps is all overhead).
    """

    def __init__(
        self,
        workers: Optional[int] = 1,
        *,
        chunk_size: Optional[int] = None,
        min_chunk_size: int = 25,
    ) -> None:
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ParameterError(f"chunk_size must be >= 1, got {chunk_size}")
        if min_chunk_size < 1:
            raise ParameterError(
                f"min_chunk_size must be >= 1, got {min_chunk_size}"
            )
        self.workers = int(workers)
        self.chunk_size = chunk_size
        self.min_chunk_size = int(min_chunk_size)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._finalizer: Optional[weakref.finalize] = None

    # -- public API ----------------------------------------------------

    @classmethod
    def serial(cls) -> "BatchRunner":
        """The in-process runner — the serial fallback everywhere."""
        return cls(workers=1)

    def close(self) -> None:
        """Shut down the worker pool (idempotent; pool recreates lazily)."""
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._pool = None

    def __enter__(self) -> "BatchRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run_cell(self, job: CellJob) -> CellEstimate:
        """Estimate one cell (sharded when the runner is parallel)."""
        return self.run_cells([job])[0]

    def run_cells(self, jobs: Sequence[CellJob]) -> List[CellEstimate]:
        """Estimate a whole grid of cells, interleaving their shards.

        Returns estimates in job order.  Cells are independent; shards
        of *all* cells share one pool so stragglers in one cell overlap
        work from the others.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        chunks = self._plan_chunks(jobs)
        if self.workers == 1:
            merged = self._run_serial(jobs, chunks)
        else:
            merged = self._run_pooled(jobs, chunks)
        return [merged[index].finalize() for index in range(len(jobs))]

    # -- internals -----------------------------------------------------

    def _chunk_bounds(self, reps: int) -> List[Tuple[int, int]]:
        """Split ``[0, reps)`` into contiguous shards."""
        size = self.chunk_size
        if size is None:
            size = max(self.min_chunk_size, -(-reps // (4 * self.workers)))
        return [(lo, min(lo + size, reps)) for lo in range(0, reps, size)]

    def _plan_chunks(self, jobs: Sequence[CellJob]) -> List[Tuple[int, int, int]]:
        """(job index, start, stop) for every shard of every job."""
        return [
            (index, start, stop)
            for index, job in enumerate(jobs)
            for start, stop in self._chunk_bounds(job.reps)
        ]

    def _run_serial(
        self,
        jobs: Sequence[CellJob],
        chunks: Sequence[Tuple[int, int, int]],
    ) -> Dict[int, CellAccumulator]:
        merged: Dict[int, CellAccumulator] = {}
        for index, start, stop in chunks:
            shard = _simulate_chunk(jobs[index], start, stop)
            self._fold(merged, index, shard)
        return merged

    def _run_pooled(
        self,
        jobs: Sequence[CellJob],
        chunks: Sequence[Tuple[int, int, int]],
    ) -> Dict[int, CellAccumulator]:
        shippable = {index for index, job in enumerate(jobs) if _picklable(job)}
        merged: Dict[int, CellAccumulator] = {}
        pooled = [c for c in chunks if c[0] in shippable]
        local = [c for c in chunks if c[0] not in shippable]
        futures: List[Tuple[Tuple[int, int, int], Future]] = []
        try:
            for chunk in pooled:
                futures.append(
                    (chunk, self._ensure_pool().submit(
                        _simulate_chunk, jobs[chunk[0]], chunk[1], chunk[2]))
                )
        except BrokenExecutor:
            # The pool died while we were still handing it work (e.g. a
            # worker OOM-killed between batches); the unsubmitted tail
            # of `pooled` runs in-process below.
            self.close()
        unsubmitted = pooled[len(futures):]
        # Unshippable jobs run in-process while the pool works (a job
        # is either fully pooled or fully local, so each job's chunks
        # still merge in rep order).
        for index, start, stop in local:
            self._fold(merged, index, _simulate_chunk(jobs[index], start, stop))
        # Collect in submission (= rep) order, not completion order —
        # the merge must be topology-independent.
        for (index, start, stop), future in futures:
            try:
                shard = future.result()
            except BrokenExecutor:
                # A dead worker poisons the whole executor; discard it
                # (the next batch gets a fresh one) and recompute this
                # chunk in-process — the work is deterministic, so the
                # runner must not fail where the serial harness would
                # have succeeded.
                self.close()
                shard = _simulate_chunk(jobs[index], start, stop)
            self._fold(merged, index, shard)
        # `pooled` order is (job, rep) order, and the submitted prefix
        # was folded first, so finishing its suffix keeps every job's
        # chunks in rep order.
        for index, start, stop in unsubmitted:
            self._fold(merged, index, _simulate_chunk(jobs[index], start, stop))
        return merged

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The lazily-created, reused worker pool.

        Reuse amortises worker startup across batches (``validate``
        runs one batch per table); a ``weakref.finalize`` shuts the
        pool down when the runner is garbage-collected, so callers who
        never bother with :meth:`close` leak nothing.
        """
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
            self._finalizer = weakref.finalize(
                self, ProcessPoolExecutor.shutdown, self._pool, wait=True
            )
        return self._pool

    @staticmethod
    def _fold(
        merged: Dict[int, CellAccumulator], index: int, shard: CellAccumulator
    ) -> None:
        if index in merged:
            merged[index].merge(shard)
        else:
            merged[index] = shard


def _picklable(job: CellJob) -> bool:
    """Whether ``job`` can be shipped to a worker process."""
    try:
        pickle.dumps(job)
        return True
    except Exception:
        return False
