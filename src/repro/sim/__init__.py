"""Simulation substrate: fault processes, the DMR executor, energy
accounting, tracing, metrics and the Monte-Carlo harness."""

from repro.sim import (
    backends,
    distributed,
    energy,
    engine,
    executor,
    fastpath,
    faults,
    metrics,
    montecarlo,
    parallel,
    rng,
    state,
    task,
    trace,
)

__all__ = [
    "backends",
    "distributed",
    "energy",
    "engine",
    "executor",
    "fastpath",
    "faults",
    "metrics",
    "montecarlo",
    "parallel",
    "rng",
    "state",
    "task",
    "trace",
]
