"""Simulation substrate: fault processes, the DMR executor, energy
accounting, tracing, metrics and the Monte-Carlo harness."""

from repro.sim import (
    backends,
    energy,
    engine,
    executor,
    fastpath,
    faults,
    metrics,
    montecarlo,
    parallel,
    rng,
    state,
    task,
    trace,
)

__all__ = [
    "backends",
    "energy",
    "engine",
    "executor",
    "fastpath",
    "faults",
    "metrics",
    "montecarlo",
    "parallel",
    "rng",
    "state",
    "task",
    "trace",
]
