"""Task model: the unit of work the checkpointing schemes protect.

A task is characterised (paper §2 and §3) by:

* ``cycles`` — ``N``, worst-case CPU cycles at the minimum speed
  (``f1 = 1``), so ``N`` equals the fault-free execution time at ``f1``;
* ``deadline`` — ``D``, in time units at the minimum speed;
* ``fault_budget`` — ``k``, the number of fault occurrences that must be
  tolerated (feeds ``Rf``);
* ``fault_rate`` — ``λ``, the Poisson fault arrival rate;
* ``costs`` — the checkpoint :class:`~repro.core.checkpoints.CostModel`.

``utilization`` is the paper's ``U = N / (f·D)`` for a reference speed
``f``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.checkpoints import CostModel
from repro.errors import ParameterError

__all__ = ["TaskSpec"]


@dataclass(frozen=True)
class TaskSpec:
    """Immutable description of one real-time task."""

    cycles: float
    deadline: float
    fault_budget: int
    fault_rate: float
    costs: CostModel

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise ParameterError(f"cycles must be > 0, got {self.cycles}")
        if self.deadline <= 0:
            raise ParameterError(f"deadline must be > 0, got {self.deadline}")
        if self.fault_budget < 0:
            raise ParameterError(
                f"fault_budget must be >= 0, got {self.fault_budget}"
            )
        if self.fault_rate < 0:
            raise ParameterError(f"fault_rate must be >= 0, got {self.fault_rate}")

    def utilization(self, frequency: float = 1.0) -> float:
        """``U = N / (f·D)`` — task utilisation at a reference speed."""
        if frequency <= 0:
            raise ParameterError(f"frequency must be > 0, got {frequency}")
        return self.cycles / (frequency * self.deadline)

    @classmethod
    def from_utilization(
        cls,
        utilization: float,
        *,
        deadline: float,
        frequency: float,
        fault_budget: int,
        fault_rate: float,
        costs: CostModel,
    ) -> "TaskSpec":
        """Build a task from ``U`` the way the paper's tables do.

        Tables 1/3 define ``U = N/(f1·D)``; tables 2/4 use
        ``U = N/(f2·D)``.  Pass the matching reference ``frequency``.
        """
        if utilization <= 0:
            raise ParameterError(f"utilization must be > 0, got {utilization}")
        if frequency <= 0:
            raise ParameterError(f"frequency must be > 0, got {frequency}")
        return cls(
            cycles=utilization * frequency * deadline,
            deadline=deadline,
            fault_budget=fault_budget,
            fault_rate=fault_rate,
            costs=costs,
        )

    def with_fault_rate(self, fault_rate: float) -> "TaskSpec":
        """Copy of this task with a different fault rate."""
        return replace(self, fault_rate=fault_rate)

    def with_cycles(self, cycles: float) -> "TaskSpec":
        """Copy of this task with a different cycle count."""
        return replace(self, cycles=cycles)
