"""Mutable per-run execution state shared by executor and policies.

The paper's procedures track three running quantities (figs. 3, 6, 7):
``Rc`` (remaining cycles), ``Rd`` (time left before the deadline) and
``Rf`` (remaining fault budget), plus the current speed ``f``.  The
executor owns and updates this state; policies read it to make interval
and speed decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.sim.task import TaskSpec

__all__ = ["ExecutionState"]


@dataclass(slots=True)
class ExecutionState:
    """Live state of one simulated task execution.

    ``slots=True``: the executor hot loop synchronises these fields
    before every policy callback, and slotted attribute access keeps
    that bookkeeping cheap at Monte-Carlo scale.
    """

    task: TaskSpec
    remaining_cycles: float
    faults_left: float
    clock: float = 0.0
    frequency: float = 1.0
    detected_faults: int = 0
    injected_faults: int = 0
    checkpoints: int = 0
    sub_checkpoints: int = 0
    rollbacks: int = 0
    counters: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def fresh(cls, task: TaskSpec) -> "ExecutionState":
        """Initial state: full work, full deadline, full fault budget."""
        return cls(
            task=task,
            remaining_cycles=task.cycles,
            faults_left=float(task.fault_budget),
        )

    @property
    def deadline_left(self) -> float:
        """``Rd = D − clock`` (may go negative once the run is doomed)."""
        return self.task.deadline - self.clock

    @property
    def remaining_time(self) -> float:
        """``Rt = Rc / f`` — fault-free time to finish at current speed."""
        return self.remaining_cycles / self.frequency
