"""A small deterministic discrete-event simulation engine.

The checkpoint executor has its own specialised loop for speed; this
generic engine backs the coarser-grained substrates (the periodic-task
scheduler in :mod:`repro.rts.scheduler`, trace demos).  Events at equal
times fire in (priority, insertion) order, which makes multi-task
simulations reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import ParameterError, SimulationError

__all__ = ["Event", "Engine"]


@dataclass(frozen=True)
class Event:
    """Handle to a scheduled callback (cancellable)."""

    time: float
    priority: int
    sequence: int
    action: Callable[[], None] = field(compare=False)


class Engine:
    """Priority-queue event loop with a monotonic clock."""

    def __init__(self) -> None:
        self._queue: List[tuple] = []
        self._sequence = itertools.count()
        self._cancelled: set = set()
        self._clock = 0.0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._clock

    def schedule(
        self, delay: float, action: Callable[[], None], *, priority: int = 0
    ) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now.

        Lower ``priority`` fires first among simultaneous events.
        """
        if delay < 0:
            raise ParameterError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._clock + delay, action, priority=priority)

    def schedule_at(
        self, time: float, action: Callable[[], None], *, priority: int = 0
    ) -> Event:
        """Schedule ``action`` at an absolute simulation time."""
        if time < self._clock:
            raise ParameterError(
                f"cannot schedule in the past: {time} < now={self._clock}"
            )
        event = Event(
            time=time,
            priority=priority,
            sequence=next(self._sequence),
            action=action,
        )
        heapq.heappush(
            self._queue, (event.time, event.priority, event.sequence, event)
        )
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (no-op if it already fired)."""
        self._cancelled.add(event.sequence)

    def run(
        self, *, until: Optional[float] = None, max_events: int = 10_000_000
    ) -> int:
        """Process events (optionally up to time ``until``); returns the
        number of events fired.  The clock ends at ``until`` (if given)
        or at the last event time."""
        fired = 0
        while self._queue:
            time, _priority, sequence, event = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            if sequence in self._cancelled:
                self._cancelled.discard(sequence)
                continue
            self._clock = time
            event.action()
            fired += 1
            if fired > max_events:
                raise SimulationError(
                    f"event loop exceeded {max_events} events; likely a "
                    "scheduling loop"
                )
        if until is not None and (not self._queue or self._clock < until):
            self._clock = max(self._clock, until)
        return fired

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, skipping cancelled ones."""
        while self._queue:
            time, _priority, sequence, _event = self._queue[0]
            if sequence in self._cancelled:
                heapq.heappop(self._queue)
                self._cancelled.discard(sequence)
                continue
            return time
        return None

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) scheduled events."""
        return len(self._queue) - len(self._cancelled)
