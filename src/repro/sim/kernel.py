"""The vectorised "fast" executor kernel — statistically equivalent,
block-deterministic, opt-in.

:func:`accumulate_range_fast` is the fast-mode peer of
:func:`repro.sim.montecarlo.accumulate_range` (the exact, bit-identical
path).  Selected via ``ExecutionSettings(kernel="fast")`` /
``--kernel fast``, it trades the exact mode's per-rep bit-identity for
~10× throughput, in three rungs:

1. **Batched RNG spawn** — one counter-based Philox stream per rep
   block (:meth:`repro.sim.rng.RandomSource.fast_block_stream`) draws
   the whole block's fault realisations as a single ``(reps, K)``
   matrix (:meth:`repro.sim.faults.FaultProcess.block_gaps`), replacing
   the ~13 µs/rep ``SeedSequence → PCG64`` construction of the exact
   path.
2. **Table-driven adaptive replan** — per-fault replans resolve through
   a quantised :class:`repro.core.schemes.ReplanTable` (bucket-centre
   evaluation, exactness fallback off-table) instead of re-running the
   ``checkpoint_interval`` + ``num_SCP``/``num_CCP`` optimisation.
3. **Fused segment loop over the pre-drawn fault slab** — the interval
   loop runs rep-synchronously over NumPy arrays (one vectorised
   iteration advances every live rep by one CSCP interval, classifying
   each rep's first corrupting fault arithmetically instead of walking
   windows), accumulating straight into the worker's
   :class:`~repro.sim.montecarlo.RunSlab`.  When Numba is installed,
   static-plan blocks additionally route through a compiled scalar
   twin of the loop (:func:`_static_rep_outcome`); the pure-NumPy path
   is the always-available fallback and the two are arithmetic twins.

Contract
--------
* **Not bit-identical to exact mode.**  Energy/clock accumulate
  per-interval instead of per-window and replans quantise, so
  estimates differ at statistical (not semantic) level — the
  statistical-equivalence suite (``tests/test_fast_kernel.py``) pins
  99 % CI overlap against exact mode for every golden scheme ×
  fault-process pair.
* **Block-deterministic within fast mode**: for a fixed chunk size the
  results are identical for any worker count and backend, because the
  block's draws and every replan-table value are pure functions of
  block identity (never of fill order).
* **Falls back to the exact path per block** — same estimates as exact
  mode, per-rep substreams — whenever the cell is out of scope:
  non-vectorisable fault processes (:class:`~repro.sim.faults.
  BurstyFaults` and any process without :meth:`block_gaps`), policies
  that are neither static nor :class:`_AdaptiveBase` subclasses, or
  cost models with ``rollback_cycles != 0`` (both in-repo cost models
  use ``t_r = 0``; the rollback-window corruption carry is the one
  piece of exact semantics this kernel does not vectorise).
"""

from __future__ import annotations

import math
import weakref
from typing import Optional, Tuple

import numpy as np

from repro.core.checkpoints import CheckpointKind
from repro.core.schemes import (
    ReplanTable,
    _AdaptiveBase,
    _StaticPolicy,
    replan_table_for,
)
from repro.errors import ParameterError, SimulationError
from repro.sim.energy import EnergyModel
from repro.sim.executor import (
    SimulationLimits,
    _CYCLE_EPS,
    _MIN_SUB_CYCLES,
    _effective_subdivisions,
    default_energy_model,
)
from repro.sim.faults import FaultProcess, PoissonFaults, ScriptedFaults
from repro.sim.montecarlo import (
    CellAccumulator,
    PolicyFactory,
    RunSlab,
    _worker_slab,
)
from repro.sim.rng import RandomSource
from repro.sim.state import ExecutionState
from repro.sim.task import TaskSpec

__all__ = [
    "KERNEL_NAMES",
    "accumulate_range_fast",
    "kernel_supported",
]

#: The kernel modes ``ExecutionSettings.kernel`` accepts.
KERNEL_NAMES = ("exact", "fast")

#: Numba is an *optional* accelerant: absent (the supported baseline)
#: the pure-NumPy engine below is the fast kernel.  Present, static
#: blocks route through a compiled scalar twin; any compilation or
#: first-call failure permanently falls back to NumPy.
try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except ImportError:  # pragma: no cover - the baseline environment
    _numba = None

#: Safety bound on fault-classification rounds within one interval
#: (each round advances at least one rep's probe cursor by one fault).
_MAX_SCAN_ROUNDS = 1_000_000

#: Per-table cross-block replan cache: packed bucket key →
#: ``(frequency, interval·f, planned m, effective m)``.  Energy-model
#: independent (the coefficient layer is per block), pure bucket-centre
#: values, so sharing across blocks cannot break block determinism.
_SHARED_REPLANS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

_KIND_CSCP = 0
_KIND_SCP = 1
_KIND_CCP = 2

_KIND_CODES = {
    CheckpointKind.CSCP: _KIND_CSCP,
    CheckpointKind.SCP: _KIND_SCP,
    CheckpointKind.CCP: _KIND_CCP,
}


def kernel_supported(
    task: TaskSpec, policy, faults: FaultProcess
) -> bool:
    """Whether the vectorised kernel covers this cell.

    Out-of-scope cells fall back to the exact per-rep path (same
    estimates as exact mode) — see the module docstring.
    """
    if task.costs.rollback_cycles != 0.0:
        return False
    if not isinstance(policy, (_StaticPolicy, _AdaptiveBase)):
        return False
    if isinstance(faults, ScriptedFaults):
        return True
    return type(faults).block_gaps is not FaultProcess.block_gaps


def _initial_columns(faults: FaultProcess, deadline: float) -> int:
    """Fault-matrix width guess: expected arrivals within ~deadline.

    Runs can't outlive the deadline by more than one interval (the
    infeasibility check), so sizing to the deadline plus slack keeps
    the matrix small; rare long reps trigger deterministic whole-matrix
    refills.
    """
    rate = faults.mean_rate
    if not math.isfinite(rate) or rate <= 0:
        return 4
    expected = rate * deadline * 1.25
    return max(4, min(4096, int(expected + 4.0 * math.sqrt(expected) + 8.0)))


def _fault_matrix(
    faults: FaultProcess,
    rng: Optional[np.random.Generator],
    rows: int,
    cols: int,
) -> Tuple[np.ndarray, bool]:
    """``(arrival-time matrix, refillable)`` for one block.

    Row ``r`` holds rep ``r``'s fault arrival times, ascending, padded
    with ``inf``.  Scripted processes tile their (finite) script and
    are not refillable; stochastic processes draw one vectorised gap
    matrix and refill by extending every row at once, so the draw
    schedule is a pure function of block identity.
    """
    if isinstance(faults, ScriptedFaults):
        times = np.asarray(faults.times, dtype=np.float64)
        if times.size == 0:
            return np.full((rows, 1), math.inf), False
        return np.tile(times, (rows, 1)), False
    gaps = faults.block_gaps(rng, rows, cols)
    if gaps is None:  # pragma: no cover - guarded by kernel_supported
        raise ParameterError(
            f"{type(faults).__name__} does not support block pre-draws"
        )
    return np.cumsum(np.asarray(gaps, dtype=np.float64), axis=1), True


def _extend_fault_matrix(
    F: np.ndarray, faults: FaultProcess, rng: np.random.Generator
) -> np.ndarray:
    """Append one more gap block to every row (deterministic refill)."""
    rows, cols = F.shape
    gaps = np.asarray(
        faults.block_gaps(rng, rows, cols), dtype=np.float64
    )
    extra = F[:, -1:] + np.cumsum(gaps, axis=1)
    return np.hstack((F, extra))


def _static_rep_outcome(
    row,
    n_faults,
    rem,
    deadline,
    horizon,
    max_intervals,
    frequency,
    coef,
    interval_full,
    cscp_cycles,
    overhead_corrupting,
    eps,
):
    """One static-plan rep, scalar — the compiled twin of the engine.

    Static policies always plan ``m = 1``, so an interval is one
    execution window plus the closing CSCP and a detected fault commits
    nothing.  Arithmetic is interval-at-a-time exactly like the
    vectorised engine (``energy += coef·(iv + c)``, ``clock +=
    elapsed/f``), so the two paths produce identical results whether or
    not Numba is installed.

    Returns ``(status, clock, energy, detected, checkpoints)`` where
    status is 1 = completed, 0 = failed, -1 = fault matrix exhausted
    (caller refills and re-runs the rep), -2 = interval budget blown.
    """
    clock = 0.0
    energy = 0.0
    detected = 0
    checkpoints = 0
    intervals = 0
    i = 0
    while rem > eps:
        intervals += 1
        if intervals > max_intervals:
            return -2, clock, energy, detected, checkpoints
        if rem / frequency > deadline - clock:
            return 0, clock, energy, detected, checkpoints
        if clock > horizon:
            return 0, clock, energy, detected, checkpoints
        iv = rem if rem < interval_full else interval_full
        full = iv + cscp_cycles
        end = clock + full / frequency
        corrupt = False
        while i < n_faults:
            t = row[i]
            if t > end:
                break
            i += 1
            u = (t - clock) * frequency
            if u <= iv or overhead_corrupting:
                corrupt = True
                while i < n_faults and row[i] <= end:
                    i += 1
                break
        if not corrupt and i >= n_faults and math.inf > end:
            # The pre-drawn row ran out before this rep finished and
            # later arrivals could still land inside a window: signal
            # the caller to refill and re-run (deterministic — the
            # trajectory prefix is unchanged by a wider matrix).
            if n_faults == 0 or row[n_faults - 1] <= end:
                return -1, clock, energy, detected, checkpoints
        clock = end
        energy += coef * full
        checkpoints += 1
        if corrupt:
            detected += 1
        else:
            rem -= iv
    return 1, clock, energy, detected, checkpoints


_static_rep_compiled = None
if _numba is not None:  # pragma: no cover - numba-present environments
    try:
        _static_rep_compiled = _numba.njit(cache=True)(_static_rep_outcome)
    except Exception:
        _static_rep_compiled = None


def _disable_compiled() -> None:
    """Permanently drop to the NumPy engine for this process."""
    global _static_rep_compiled
    _static_rep_compiled = None


def _run_static_compiled(
    F,
    refillable,
    faults,
    rng,
    count,
    task,
    frequency,
    coef,
    interval_full,
    limits,
    overhead_corrupting,
    slab,
):  # pragma: no cover - requires numba
    """Drive the compiled scalar loop over every rep of the block."""
    deadline = task.deadline
    horizon = limits.horizon(task)
    cscp = task.costs.checkpoint_cycles
    run = _static_rep_compiled
    for rep in range(count):
        while True:
            status, clock, energy, det, cp = run(
                F[rep],
                F.shape[1],
                task.cycles,
                deadline,
                horizon,
                limits.max_intervals,
                frequency,
                coef,
                interval_full,
                cscp,
                overhead_corrupting,
                _CYCLE_EPS,
            )
            if status == -1 and refillable:
                F = _extend_fault_matrix(F, faults, rng)
                continue
            break
        if status == -2:
            raise SimulationError(
                f"run exceeded {limits.max_intervals} CSCP intervals; "
                "policy/executor inconsistency"
            )
        completed = status == 1
        slab.timely[rep] = completed and clock <= deadline + _CYCLE_EPS
        slab.energy[rep] = energy
        slab.finish[rep] = clock
        slab.detected[rep] = det
        slab.checkpoints[rep] = cp
        slab.sub_checkpoints[rep] = 0
    return slab.fold(count)


def accumulate_range_fast(
    task: TaskSpec,
    policy_factory: PolicyFactory,
    *,
    start: int,
    stop: int,
    seed: int = 0,
    faults: Optional[FaultProcess] = None,
    energy_model: Optional[EnergyModel] = None,
    faults_during_overhead: bool = False,
    limits: SimulationLimits = SimulationLimits(),
    slab: Optional[RunSlab] = None,
    resolution: int = ReplanTable.DEFAULT_RESOLUTION,
) -> CellAccumulator:
    """Reps ``[start, stop)`` of a cell through the fast kernel.

    Signature-compatible with the exact
    :func:`~repro.sim.montecarlo.accumulate_range`; out-of-scope cells
    delegate to it wholesale (see module docstring).  ``start`` is the
    block identity: the block's Philox stream is
    ``RandomSource(seed).fast_block_stream(start)``, so for a fixed
    chunk size every backend and worker count reproduces the same
    estimates — fast mode's block-determinism contract.
    """
    if start < 0 or stop < start:
        raise ParameterError(f"need 0 <= start <= stop, got [{start}, {stop})")
    count = stop - start
    if count == 0:
        return CellAccumulator()
    if faults is None:
        faults = PoissonFaults(task.fault_rate)
    if energy_model is None:
        energy_model = default_energy_model()
    policy = policy_factory()
    if not kernel_supported(task, policy, faults):
        from repro.sim.montecarlo import accumulate_range

        return accumulate_range(
            task,
            policy_factory,
            start=start,
            stop=stop,
            seed=seed,
            faults=faults,
            energy_model=energy_model,
            faults_during_overhead=faults_during_overhead,
            limits=limits,
            slab=slab,
        )
    if slab is None:
        slab = _worker_slab(count)
    else:
        slab.ensure(count)

    # -- initial (speed, plan): every rep starts identically ----------
    state = ExecutionState.fresh(task)
    policy.start(state)
    plan0 = policy.plan(state)
    f0 = state.frequency
    kind = _KIND_CODES[plan0.sub_kind]
    ivf0 = plan0.interval_time * f0
    if ivf0 < 0:
        raise ParameterError(f"cannot advance by negative cycles: {ivf0}")
    pm0 = plan0.m
    mf0 = _effective_subdivisions(pm0, ivf0)
    costs = task.costs
    sub_cost = costs.cycles_of(plan0.sub_kind)
    cscp_c = costs.checkpoint_cycles
    voltage_of = energy_model.voltage_of
    nproc = energy_model.n_processors
    v0 = voltage_of(f0)
    coef0 = nproc * v0 * v0
    coef_by_freq = {f0: coef0}
    table = replan_table_for(policy, task, resolution=resolution)

    # -- the block's fault slab ---------------------------------------
    rng = RandomSource(seed).fast_block_stream(start)
    F, refillable = _fault_matrix(
        faults, rng, count, _initial_columns(faults, task.deadline)
    )

    if (
        _static_rep_compiled is not None
        and table is None
        and isinstance(policy, _StaticPolicy)
    ):  # pragma: no cover - requires numba
        try:
            return _run_static_compiled(
                F, refillable, faults, rng, count, task, f0, coef0,
                ivf0, limits, faults_during_overhead, slab,
            )
        except SimulationError:
            raise
        except Exception:
            # A broken compiled path must never take the kernel down:
            # disable it for the process and fall through to NumPy.
            _disable_compiled()

    return _run_block(
        F, refillable, faults, rng, count, task, policy, table,
        kind, f0, coef0, coef_by_freq, voltage_of, nproc,
        ivf0, pm0, mf0, sub_cost, cscp_c, limits,
        faults_during_overhead, slab,
    )


def _run_block(
    F,
    refillable,
    faults,
    rng,
    count,
    task,
    policy,
    table,
    kind,
    f0,
    coef0,
    coef_by_freq,
    voltage_of,
    nproc,
    ivf0,
    pm0,
    mf0,
    sub_cost,
    cscp_c,
    limits,
    overhead_corrupting,
    slab,
):
    """The rep-synchronous vectorised engine (see module docstring)."""
    n = count
    deadline = task.deadline
    horizon = limits.horizon(task)
    max_intervals = limits.max_intervals
    eps = _CYCLE_EPS

    clock = np.zeros(n)
    rem = np.full(n, task.cycles, dtype=np.float64)
    fl = np.full(n, float(task.fault_budget))
    en = np.zeros(n)
    freq = np.full(n, f0)
    coef = np.full(n, coef0)
    ivf = np.full(n, ivf0)
    pm = np.full(n, pm0, dtype=np.int64)
    mf = np.full(n, mf0, dtype=np.int64)
    det = np.zeros(n, dtype=np.int64)
    cp = np.zeros(n, dtype=np.int64)
    subs = np.zeros(n, dtype=np.int64)
    intervals = np.zeros(n, dtype=np.int64)
    completed = np.zeros(n, dtype=bool)
    running = np.ones(n, dtype=bool)
    ptr = np.zeros(n, dtype=np.int64)

    is_scp = kind == _KIND_SCP
    is_cscp = kind == _KIND_CSCP
    derived: dict = {}  # packed bucket key -> values incl. coefficient
    cycles_t = task.cycles
    resolution_q = table.resolution if table is not None else 0
    rc_step = table.rc_step if table is not None else 0.0
    dl_step = table.dl_step if table is not None else 0.0
    if resolution_q:
        shared = _SHARED_REPLANS.get(table)
        if shared is None:
            shared = _SHARED_REPLANS[table] = {}
    else:
        shared = {}

    while True:
        a = np.flatnonzero(running)
        if a.size == 0:
            break
        # -- loop-top checks, in the exact executor's order -----------
        fin = rem[a] <= eps
        if fin.any():
            rows = a[fin]
            running[rows] = False
            completed[rows] = True
            a = a[~fin]
            if a.size == 0:
                continue
        intervals[a] += 1
        if (intervals[a] > max_intervals).any():
            raise SimulationError(
                f"run exceeded {max_intervals} CSCP intervals; "
                "policy/executor inconsistency"
            )
        doomed = (rem[a] / freq[a] > deadline - clock[a]) | (clock[a] > horizon)
        if doomed.any():
            running[a[doomed]] = False  # completed stays False
            a = a[~doomed]
            if a.size == 0:
                continue

        # -- bulk-skip provably clean, non-tail intervals -------------
        # Between faults a rep's plan is frozen, so a stretch of k
        # identical intervals — no arrival inside, no tail clamp, and
        # every loop-top check passing (each bound is monotone in k) —
        # collapses to closed-form updates.  The interval the next
        # arrival lands in (or any bound's first violation) is left to
        # the per-interval logic below.
        while refillable and (ptr[a] >= F.shape[1]).any():
            F = _extend_fault_matrix(F, faults, rng)
        idx = np.minimum(ptr[a], F.shape[1] - 1)
        t_next = np.where(ptr[a] >= F.shape[1], math.inf, F[a, idx])
        freq_a = freq[a]
        clock_a = clock[a]
        rem_a = rem[a]
        ivf_a = ivf[a]
        mf_a = mf[a]
        full_nt = ivf_a + (mf_a - 1) * sub_cost + cscp_c
        span = full_nt / freq_a
        with np.errstate(invalid="ignore"):
            k_fault = np.where(
                np.isinf(t_next), math.inf, (t_next - clock_a) / span
            )
        k = np.minimum(
            np.minimum(k_fault, rem_a / ivf_a),
            np.minimum(
                (freq_a * (deadline - clock_a) - rem_a) / (full_nt - ivf_a),
                (horizon - clock_a) * freq_a / full_nt,
            ),
        )
        k = np.minimum(k, (max_intervals - intervals[a]).astype(np.float64))
        k = np.floor(k).astype(np.int64)
        np.maximum(k, 0, out=k)
        # Strictness guard: the arrival must fall beyond the last
        # skipped interval's end (float division can round up).
        k = np.where(clock_a + k * span >= t_next, k - 1, k)
        np.maximum(k, 0, out=k)
        skip = k > 0
        if skip.any():
            rows = a[skip]
            ks = k[skip]
            kf = ks.astype(np.float64)
            # The loop top already counted the stretch's first interval.
            intervals[rows] += ks - 1
            clock[rows] = clock_a[skip] + kf * span[skip]
            rem[rows] = rem_a[skip] - kf * ivf_a[skip]
            en[rows] += coef[rows] * (kf * full_nt[skip])
            cp[rows] += ks
            subs[rows] += ks * (mf_a[skip] - 1)
            keep = ~skip
            a = a[keep]
            if a.size == 0:
                continue
            freq_a = freq_a[keep]
            clock_a = clock_a[keep]
            rem_a = rem_a[keep]
            ivf_a = ivf_a[keep]

        # -- this interval's geometry (tail clamp inline) -------------
        n_a = a.size
        tail = rem_a < ivf_a
        iv = np.where(tail, rem_a, ivf_a)
        m = mf[a].copy()
        if tail.any():
            iv_t = iv[tail]
            largest = (iv_t / _MIN_SUB_CYCLES).astype(np.int64)
            np.maximum(largest, 1, out=largest)
            m_t = np.minimum(pm[a][tail], largest)
            np.maximum(m_t, 1, out=m_t)
            m[tail] = m_t
        sub = iv / m
        period = sub + sub_cost
        full_c = iv + (m - 1) * sub_cost + cscp_c

        # -- first corrupting fault, classified arithmetically --------
        # u = fault offset in cycles from interval start; a fault in
        # exec window w ∈ (g·period, g·period + sub] always corrupts,
        # overhead windows (interior boundaries, the closing CSCP)
        # corrupt only with faults_during_overhead.  Probing advances
        # per-rep cursors past non-corrupting arrivals; consumption is
        # settled from the final clock below.
        u_hit = np.full(n_a, math.inf)
        g_hit = np.zeros(n_a, dtype=np.int64)
        closing_hit = np.zeros(n_a, dtype=bool)
        scan = ptr[a].copy()
        unres = np.ones(n_a, dtype=bool)
        rounds = 0
        while True:
            cand = np.flatnonzero(unres)
            if cand.size == 0:
                break
            rounds += 1
            if rounds > _MAX_SCAN_ROUNDS:
                raise SimulationError(
                    "fault classification failed to converge; "
                    "kernel/process inconsistency"
                )
            k = scan[cand]
            if (k >= F.shape[1]).any():
                if refillable:
                    F = _extend_fault_matrix(F, faults, rng)
                    continue
                k = np.minimum(k, F.shape[1] - 1)
                t = F[a[cand], k]
                t = np.where(scan[cand] >= F.shape[1], math.inf, t)
            else:
                t = F[a[cand], k]
            u = (t - clock_a[cand]) * freq_a[cand]
            beyond = u > full_c[cand]
            m_c = m[cand]
            sub_c = sub[cand]
            per_c = period[cand]
            u_safe = np.where(beyond, 0.0, u)
            closing = u_safe > (m_c - 1) * per_c + sub_c
            g = np.ceil(u_safe / per_c).astype(np.int64) - 1
            np.clip(g, 0, m_c - 1, out=g)
            in_exec = (u_safe - g * per_c) <= sub_c
            corrupting = ~beyond & (
                (~closing & in_exec) | overhead_corrupting
            )
            hit = cand[corrupting]
            u_hit[hit] = u[corrupting]
            g_hit[hit] = np.where(
                closing[corrupting], m_c[corrupting] - 1, g[corrupting]
            )
            closing_hit[hit] = closing[corrupting]
            resolved = beyond | corrupting
            unres[cand[resolved]] = False
            scan[cand[~resolved]] += 1

        # -- settle the interval --------------------------------------
        corrupt = np.isfinite(u_hit)
        if is_scp:
            early = np.zeros(n_a, dtype=bool)
            committed = np.where(corrupt, g_hit * sub, 0.0)
        elif is_cscp:
            early = corrupt & ~closing_hit & (g_hit < m - 1)
            committed = np.where(early, g_hit * sub, 0.0)
        else:  # CCP: rollback always reaches the opening CSCP
            early = corrupt & ~closing_hit & (g_hit < m - 1)
            committed = np.zeros(n_a)
        elapsed = np.where(early, (g_hit + 1) * period, full_c)
        cp[a] += np.where(early, 0, 1)
        subs[a] += np.where(early, g_hit + 1, m - 1)
        rem[a] = rem_a - np.where(corrupt, committed, iv)
        en[a] += coef[a] * elapsed
        clock_new = clock_a + elapsed / freq_a
        clock[a] = clock_new
        det[a] += corrupt
        fl[a] -= corrupt
        # Faults at or before the new clock are consumed (window
        # contiguity); later ones — including any past an early CCP
        # detection — stay pending, exactly like the exact stream.
        ptr[a] = (F[a] <= clock_new[:, None]).sum(axis=1)

        # -- per-fault replan through the quantised table -------------
        # Steady state is one int-dict probe per fault: the bucket key
        # is packed vectorised (mirroring the table's own bucketing),
        # and a hit returns the fully derived per-rep values.  Misses —
        # and every query when the table is in exactness mode
        # (resolution 0) or off-table — resolve through the table, so
        # the values are always bucket-centre pure (fill-order free).
        if table is not None:
            faulted = a[corrupt]
            if faulted.size:
                rem_f = rem[faulted]
                dl_f = deadline - clock[faulted]
                fl_f = fl[faulted]
                if resolution_q:
                    on = (
                        (dl_f > 0.0)
                        & (dl_f <= deadline)
                        & (rem_f > 0.0)
                        & (rem_f <= cycles_t)
                    )
                    i_q = (np.where(on, rem_f, 0.0) / rc_step).astype(
                        np.int64
                    )
                    j_q = (np.where(on, dl_f, 0.0) / dl_step).astype(
                        np.int64
                    )
                    fl_i = fl_f.astype(np.int64) + 2048
                    packed = np.where(
                        on,
                        ((i_q * resolution_q + j_q) << 12) | fl_i,
                        np.int64(-1),
                    ).tolist()
                else:
                    packed = [-1] * faulted.size
                out = [None] * faulted.size
                get = derived.get
                sget = shared.get
                lookup = table.lookup
                rem_l = rem_f.tolist()
                dl_l = dl_f.tolist()
                fl_l = fl_f.tolist()
                for p, key in enumerate(packed):
                    d = get(key) if key >= 0 else None
                    if d is None:
                        s = sget(key) if key >= 0 else None
                        if s is None:
                            fq, it, pmv = lookup(
                                rem_l[p], dl_l[p], fl_l[p]
                            )
                            ivf_r = it * fq
                            s = (
                                fq,
                                ivf_r,
                                pmv,
                                _effective_subdivisions(pmv, ivf_r),
                            )
                            if key >= 0:
                                shared[key] = s
                        fq = s[0]
                        c = coef_by_freq.get(fq)
                        if c is None:
                            v = voltage_of(fq)
                            c = nproc * v * v
                            coef_by_freq[fq] = c
                        d = s + (c,)
                        if key >= 0:
                            derived[key] = d
                    out[p] = d
                fq_a, ivf_n, pm_n, mf_n, c_a = zip(*out)
                freq[faulted] = fq_a
                ivf[faulted] = ivf_n
                pm[faulted] = pm_n
                mf[faulted] = mf_n
                coef[faulted] = c_a

    timely = completed & (clock <= deadline + eps)
    slab.timely[:n] = timely
    slab.energy[:n] = en
    slab.finish[:n] = clock
    slab.detected[:n] = det
    slab.checkpoints[:n] = cp
    slab.sub_checkpoints[:n] = subs
    return slab.fold(n)
