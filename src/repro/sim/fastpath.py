"""Vectorised Monte-Carlo fast path for static CSCP schemes.

The event-driven executor (:mod:`repro.sim.executor`) resolves every
fault arrival individually — necessary for the adaptive schemes, whose
plans react to each fault.  The *static* baselines (Poisson-arrival and
k-fault-tolerant) never react, which makes their runs embarrassingly
vectorisable: each interval is a sequence of geometric retries, so a
whole Monte-Carlo cell reduces to a few NumPy array operations.

Semantics reproduced exactly (and asserted against the executor in
``tests/test_fastpath.py``):

* equal intervals with a shorter tail, each closed by a CSCP;
* a fault during useful execution corrupts the attempt; faults during
  overhead are ignored (the executor's default convention);
* a failed attempt costs the full attempt plus ``t_r``;
* ``timely`` means total time ≤ deadline; energy uses the paper model
  (``n_proc · V(f)² ·`` cycles).

One deliberate divergence: the event executor abandons a doomed run as
soon as its remaining work cannot fit the remaining deadline, so its
``energy_all`` truncates failed runs early; the fast path simulates
failed runs to completion (capped at the horizon).  ``P`` and the
paper's timely-conditional ``E`` are unaffected — timely runs never hit
either mechanism — and those are what the fast path is for.

Speedup is one to two orders of magnitude at paper-scale reps, which is
what makes 10,000-rep static cells interactive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.intervals import k_fault_interval, poisson_interval
from repro.errors import ParameterError
from repro.sim.energy import EnergyModel
from repro.sim.metrics import MeanEstimate, ProportionEstimate
from repro.sim.montecarlo import CellEstimate
from repro.sim.task import TaskSpec

__all__ = ["StaticCellSpec", "simulate_static_cell", "static_cell_for_scheme"]


@dataclass(frozen=True)
class StaticCellSpec:
    """A static-scheme Monte-Carlo cell: task, interval and speed."""

    task: TaskSpec
    interval_time: float  # time units at `frequency`
    frequency: float = 1.0

    def __post_init__(self) -> None:
        if self.interval_time <= 0:
            raise ParameterError(
                f"interval_time must be > 0, got {self.interval_time}"
            )
        if self.frequency <= 0:
            raise ParameterError(f"frequency must be > 0, got {self.frequency}")


def static_cell_for_scheme(
    task: TaskSpec, scheme: str, frequency: float
) -> StaticCellSpec:
    """Build the cell spec for ``'Poisson'`` or ``'k-f-t'``."""
    cost = task.costs.checkpoint_cycles / frequency
    work = task.cycles / frequency
    if scheme == "Poisson":
        interval = (
            work
            if task.fault_rate <= 0
            else min(poisson_interval(cost, task.fault_rate), work)
        )
    elif scheme == "k-f-t":
        interval = (
            work
            if task.fault_budget <= 0
            else min(k_fault_interval(work, task.fault_budget, cost), work)
        )
    else:
        raise ParameterError(
            f"fast path only covers static schemes, got {scheme!r}"
        )
    return StaticCellSpec(task=task, interval_time=interval, frequency=frequency)


def simulate_static_cell(
    spec: StaticCellSpec,
    *,
    reps: int,
    rng: np.random.Generator,
    energy_model: Optional[EnergyModel] = None,
    max_attempt_factor: float = 64.0,
) -> CellEstimate:
    """Vectorised Monte-Carlo estimate of one static cell.

    ``rng`` is consumed directly (one generator for the whole cell);
    results are reproducible for a fixed generator state but — unlike
    the event executor — are not stream-per-run stable.

    ``max_attempt_factor`` bounds total time per run at
    ``factor × deadline``: runs beyond it are counted as failed without
    simulating further retries (mirrors the executor's horizon).
    """
    if reps <= 0:
        raise ParameterError(f"reps must be > 0, got {reps}")
    if energy_model is None:
        energy_model = EnergyModel.paper_dmr()

    task = spec.task
    f = spec.frequency
    rate = task.fault_rate
    cost = task.costs.checkpoint_cycles / f
    rollback = task.costs.rollback_cycles / f
    work = task.cycles / f

    # Interval layout: n_full equal intervals + optional tail.
    n_full = int(work / spec.interval_time + 1e-12)
    tail = work - n_full * spec.interval_time
    if tail < 1e-9:
        tail = 0.0

    horizon = max_attempt_factor * task.deadline
    total_time = np.zeros(reps)

    def add_intervals(length: float, count: int) -> None:
        if count <= 0 or length <= 0:
            return
        attempt = length + cost
        p_fail = -math.expm1(-rate * length) if rate > 0 else 0.0
        if p_fail <= 0.0:
            total_time[:] += count * attempt
            return
        # Failures before the i-th success are geometric; summed over
        # `count` intervals they are negative binomial.
        failures = rng.negative_binomial(count, 1.0 - p_fail, size=reps)
        total_time[:] += count * attempt + failures * (attempt + rollback)

    add_intervals(spec.interval_time, n_full)
    add_intervals(tail, 1)

    np.minimum(total_time, horizon, out=total_time)
    timely = total_time <= task.deadline + 1e-9

    # Energy: cycles executed = f · time (execution and overhead both
    # run the processor), weighted by the model's per-cycle energy.
    per_cycle = energy_model.segment_energy(f, 1.0)
    energies = total_time * f * per_cycle

    timely_count = int(timely.sum())
    energy_timely = energies[timely]
    checkpoints_mean = float(
        (total_time / (spec.interval_time + cost)).mean()
    )

    return CellEstimate(
        p_timely=ProportionEstimate.from_counts(timely_count, reps),
        energy_timely=MeanEstimate.from_values(list(energy_timely)),
        energy_all=MeanEstimate.from_values(list(energies)),
        mean_finish_time_timely=(
            float(total_time[timely].mean()) if timely_count else math.nan
        ),
        mean_detected_faults=float(
            ((total_time - (work + (n_full + (1 if tail else 0)) * cost))
             / max(spec.interval_time + cost + rollback, 1e-12)).clip(0).mean()
        ),
        mean_checkpoints=checkpoints_mean,
        mean_sub_checkpoints=0.0,
        reps=reps,
    )
