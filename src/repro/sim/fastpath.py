"""Vectorised Monte-Carlo fast path for static CSCP schemes.

The event-driven executor (:mod:`repro.sim.executor`) resolves every
fault arrival individually — necessary for the adaptive schemes, whose
plans react to each fault.  The *static* baselines (Poisson-arrival and
k-fault-tolerant) never react, which makes their runs embarrassingly
vectorisable: each interval is a sequence of geometric retries, so a
whole Monte-Carlo cell reduces to a few NumPy array operations.

Semantics reproduced exactly (and asserted against the executor in
``tests/test_fastpath.py``):

* equal intervals with a shorter tail, each closed by a CSCP;
* a fault during useful execution corrupts the attempt; faults during
  overhead are ignored (the executor's default convention);
* a failed attempt costs the full attempt plus ``t_r``;
* ``timely`` means total time ≤ deadline; energy uses the paper model
  (``n_proc · V(f)² ·`` cycles);
* ``mean_checkpoints`` and ``mean_detected_faults`` are derived
  *exactly* from the sampled failure counts: every retry is one
  detected fault and one extra closing-CSCP, so a run's checkpoint
  count is ``n_intervals + failures`` and its detected-fault count is
  ``failures`` — the same bookkeeping the executor keeps per event.

One deliberate divergence: the event executor abandons a doomed run as
soon as its remaining work cannot fit the remaining deadline, so its
``energy_all`` (and its per-run counters on those runs) truncate early;
the fast path simulates failed runs to completion — time and energy
capped at the horizon, the failure/checkpoint counters counting the
full sampled retry sequence.  ``P`` and the paper's timely-conditional
``E`` are unaffected — timely runs never hit either mechanism — and
those are what the fast path is for.

Sharding
--------
:func:`simulate_static_cell` seeded with an integer uses a
*chunk-stable* sampler: the reps of block ``b`` (blocks are
``block_size`` reps, default :data:`~repro.sim.parallel.
DEFAULT_BLOCK_SIZE`) draw from ``SeedSequence(seed, spawn_key=(b,))``
and each block folds into an O(1) :class:`~repro.sim.montecarlo.
CellAccumulator`.  Because draws are keyed by the absolute block index
and blocks merge in block order, a static cell run through
``BatchRunner(workers=8)`` is bit-identical to the serial pass — static
cells shard across processes exactly like adaptive ones.  (Passing a
NumPy ``Generator`` via ``rng=`` instead keeps the pre-sharding
single-stream behaviour; that path cannot be distributed.)

Speedup is one to two orders of magnitude at paper-scale reps, which is
what makes 10,000-rep static cells interactive.

Relation to the fast kernel (:mod:`repro.sim.kernel`): this module is
a closed-form *sampler* for static schemes under Poisson faults,
selected per scheme column with ``fast_static=True``; the kernel is a
general vectorised *executor* covering adaptive schemes and every
stochastic fault process, selected with ``kernel="fast"``.  They share
the statistically-equivalent-but-not-bit-comparable contract, and both
leave the exact engine's bit-identity untouched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.intervals import k_fault_interval, poisson_interval
from repro.errors import ParameterError
from repro.sim.energy import EnergyModel
from repro.sim.metrics import ProportionAccumulator
from repro.sim.montecarlo import CellAccumulator, CellEstimate
from repro.sim.rng import RandomSource
from repro.sim.task import TaskSpec

__all__ = [
    "STATIC_SCHEMES",
    "StaticCellSpec",
    "StaticCellJob",
    "simulate_static_cell",
    "static_cell_for_scheme",
]

#: The scheme columns the fast path can stand in for.
STATIC_SCHEMES = ("Poisson", "k-f-t")


@dataclass(frozen=True)
class StaticCellSpec:
    """A static-scheme Monte-Carlo cell: task, interval and speed."""

    task: TaskSpec
    interval_time: float  # time units at `frequency`
    frequency: float = 1.0

    def __post_init__(self) -> None:
        if self.interval_time <= 0:
            raise ParameterError(
                f"interval_time must be > 0, got {self.interval_time}"
            )
        if self.frequency <= 0:
            raise ParameterError(f"frequency must be > 0, got {self.frequency}")


def static_cell_for_scheme(
    task: TaskSpec, scheme: str, frequency: float
) -> StaticCellSpec:
    """Build the cell spec for ``'Poisson'`` or ``'k-f-t'``."""
    cost = task.costs.checkpoint_cycles / frequency
    work = task.cycles / frequency
    if scheme not in STATIC_SCHEMES:
        raise ParameterError(
            f"fast path only covers static schemes {STATIC_SCHEMES}, "
            f"got {scheme!r}"
        )
    if scheme == "Poisson":
        interval = (
            work
            if task.fault_rate <= 0
            else min(poisson_interval(cost, task.fault_rate), work)
        )
    else:  # "k-f-t"
        interval = (
            work
            if task.fault_budget <= 0
            else min(k_fault_interval(work, task.fault_budget, cost), work)
        )
    return StaticCellSpec(task=task, interval_time=interval, frequency=frequency)


@dataclass(frozen=True)
class StaticCellJob:
    """One static-scheme cell, shippable through any execution backend.

    The counterpart of :class:`~repro.sim.backends.CellJob` for the
    vectorised fast path: a frozen, picklable payload from which any
    worker can re-derive the draws of any block.
    """

    spec: StaticCellSpec
    reps: int
    seed: int = 0
    energy_model: Optional[EnergyModel] = None
    max_attempt_factor: float = 64.0

    def __post_init__(self) -> None:
        if self.reps <= 0:
            raise ParameterError(f"reps must be > 0, got {self.reps}")
        if self.max_attempt_factor <= 0:
            raise ParameterError(
                f"max_attempt_factor must be > 0, got {self.max_attempt_factor}"
            )

    def run_block(self, block: int, start: int, stop: int) -> CellAccumulator:
        """Sample reps ``[start, stop)`` — the ``block``-th rep block.

        Draws come from ``SeedSequence(seed, spawn_key=(block,))`` (via
        :meth:`repro.sim.rng.RandomSource.block_stream`): keyed by the
        absolute block index, never by worker or completion order, so
        any topology that computes whole blocks reproduces the same
        realisations.
        """
        rng = RandomSource(self.seed).block_stream(block)
        return _sample_static(
            self.spec,
            stop - start,
            rng,
            energy_model=self.energy_model,
            max_attempt_factor=self.max_attempt_factor,
        )


def simulate_static_cell(
    spec: StaticCellSpec,
    *,
    reps: int,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    energy_model: Optional[EnergyModel] = None,
    max_attempt_factor: float = 64.0,
    block_size: Optional[int] = None,
    runner=None,
) -> CellEstimate:
    """Vectorised Monte-Carlo estimate of one static cell.

    Parameters
    ----------
    seed:
        Root seed of the chunk-stable sampler (see module docstring).
        This is the shardable path: pass ``runner`` (a
        :class:`~repro.sim.parallel.BatchRunner`) to spread the blocks
        over worker processes — the estimate is bit-identical to the
        serial pass for the same seed and block size.
    rng:
        Legacy single-stream path: one generator consumed for the whole
        cell.  Reproducible for a fixed generator state, but not
        shardable — mutually exclusive with ``seed``/``runner``/
        ``block_size``.
    block_size:
        Reps per block for the seeded path (default
        :data:`~repro.sim.parallel.DEFAULT_BLOCK_SIZE`).  Give it to
        the ``runner`` instead when one is passed.
    max_attempt_factor:
        Bounds total time per run at ``factor × deadline``: runs beyond
        it are counted as failed without simulating further retries
        (mirrors the executor's horizon).
    """
    if reps <= 0:
        raise ParameterError(f"reps must be > 0, got {reps}")
    if rng is not None:
        if seed is not None or runner is not None or block_size is not None:
            raise ParameterError(
                "rng= is the legacy single-stream path; it cannot be "
                "combined with seed=, runner= or block_size="
            )
        return _sample_static(
            spec,
            reps,
            rng,
            energy_model=energy_model,
            max_attempt_factor=max_attempt_factor,
        ).finalize()
    if seed is None:
        raise ParameterError("need seed= (or a legacy rng= generator)")
    if runner is not None and block_size is not None:
        raise ParameterError(
            "pass block_size to the runner (BatchRunner(chunk_size=...)), "
            "not alongside it"
        )
    from repro.sim.parallel import BatchRunner

    if runner is None:
        runner = BatchRunner.serial(chunk_size=block_size)
    return runner.run_cell(
        StaticCellJob(
            spec=spec,
            reps=reps,
            seed=seed,
            energy_model=energy_model,
            max_attempt_factor=max_attempt_factor,
        )
    )


def _sample_static(
    spec: StaticCellSpec,
    count: int,
    rng: np.random.Generator,
    *,
    energy_model: Optional[EnergyModel],
    max_attempt_factor: float,
) -> CellAccumulator:
    """Sample ``count`` runs from ``rng`` into an O(1) accumulator.

    The shared kernel of both the per-block sampler and the legacy
    whole-cell path; all statistics stream straight from the NumPy
    arrays into moment accumulators — no Python lists anywhere.
    """
    if energy_model is None:
        energy_model = EnergyModel.paper_dmr()

    task = spec.task
    f = spec.frequency
    rate = task.fault_rate
    cost = task.costs.checkpoint_cycles / f
    rollback = task.costs.rollback_cycles / f
    work = task.cycles / f

    # Interval layout: n_full equal intervals + optional tail.
    n_full = int(work / spec.interval_time + 1e-12)
    tail = work - n_full * spec.interval_time
    if tail < 1e-9:
        tail = 0.0

    horizon = max_attempt_factor * task.deadline
    total_time = np.zeros(count)
    failures = np.zeros(count, dtype=np.int64)

    def add_intervals(length: float, intervals: int) -> None:
        if intervals <= 0 or length <= 0:
            return
        attempt = length + cost
        p_fail = -math.expm1(-rate * length) if rate > 0 else 0.0
        if p_fail <= 0.0:
            total_time[:] += intervals * attempt
            return
        # Failures before the i-th success are geometric; summed over
        # `intervals` intervals they are negative binomial.
        draws = rng.negative_binomial(intervals, 1.0 - p_fail, size=count)
        total_time[:] += intervals * attempt + draws * (attempt + rollback)
        failures[:] += draws

    add_intervals(spec.interval_time, n_full)
    add_intervals(tail, 1)
    n_intervals = n_full + (1 if tail else 0)

    # Timeliness is judged on the uncapped time: the horizon only
    # truncates how much of a failed run's tail is charged to
    # time/energy, it must never promote a late run to timely.
    timely = total_time <= task.deadline + 1e-9
    np.minimum(total_time, horizon, out=total_time)

    # Energy: cycles executed = f · time (execution and overhead both
    # run the processor), weighted by the model's per-cycle energy.
    per_cycle = energy_model.segment_energy(f, 1.0)
    energies = total_time * f * per_cycle

    timely_count = int(timely.sum())
    total_failures = int(failures.sum())

    acc = CellAccumulator()
    acc.timely = ProportionAccumulator(successes=timely_count, trials=count)
    acc.energy_timely.add_many(energies[timely])
    acc.energy_all.add_many(energies)
    acc.finish_timely.add_many(total_time[timely])
    # Exact event bookkeeping from the sampled failure counts: each
    # retry is one detected fault and repeats the closing CSCP.
    acc.detected_faults = total_failures
    acc.checkpoints = count * n_intervals + total_failures
    acc.sub_checkpoints = 0
    return acc
