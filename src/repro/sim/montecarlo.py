"""Monte-Carlo harness: repeated runs → the paper's (P, E) estimates.

One :func:`estimate` call reproduces one cell of the paper's tables:
``reps`` independent runs of a (task, scheme) pair, aggregated into the
probability of timely completion and the mean energy of timely runs
(``NaN`` when no run is timely — the paper's own convention), plus the
all-runs energy and diagnostic counters that the paper does not report
but a user of the library will want.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.errors import ParameterError
from repro.sim.energy import EnergyModel
from repro.sim.executor import RunResult, SimulationLimits, simulate_run
from repro.sim.faults import FaultProcess, PoissonFaults
from repro.sim.metrics import MeanEstimate, ProportionEstimate
from repro.sim.rng import RandomSource
from repro.sim.task import TaskSpec

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.schemes import CheckpointPolicy

__all__ = ["CellEstimate", "estimate", "run_many"]

PolicyFactory = Callable[[], "CheckpointPolicy"]


@dataclass(frozen=True)
class CellEstimate:
    """Aggregated outcome of one Monte-Carlo cell."""

    p_timely: ProportionEstimate
    energy_timely: MeanEstimate
    energy_all: MeanEstimate
    mean_finish_time_timely: float
    mean_detected_faults: float
    mean_checkpoints: float
    mean_sub_checkpoints: float
    reps: int

    @property
    def p(self) -> float:
        """``P`` — the paper's probability of timely completion."""
        return self.p_timely.value

    @property
    def e(self) -> float:
        """``E`` — the paper's energy (mean over timely runs; NaN if none)."""
        return self.energy_timely.value


def run_many(
    task: TaskSpec,
    policy_factory: PolicyFactory,
    *,
    reps: int,
    seed: int = 0,
    faults: Optional[FaultProcess] = None,
    energy_model: Optional[EnergyModel] = None,
    faults_during_overhead: bool = False,
    limits: SimulationLimits = SimulationLimits(),
) -> List[RunResult]:
    """Execute ``reps`` independent runs and return every result.

    ``policy_factory`` must build a fresh policy per run (policies cache
    plans).  Fault realisations come from independent substreams of
    ``seed``, so results are reproducible and adding reps never changes
    earlier runs.
    """
    if reps <= 0:
        raise ParameterError(f"reps must be > 0, got {reps}")
    if faults is None:
        faults = PoissonFaults(task.fault_rate)
    if energy_model is None:
        energy_model = EnergyModel.paper_dmr()
    source = RandomSource(seed)
    results: List[RunResult] = []
    for rng in source.substreams(reps):
        results.append(
            simulate_run(
                task,
                policy_factory(),
                faults,
                energy_model,
                rng,
                faults_during_overhead=faults_during_overhead,
                limits=limits,
            )
        )
    return results


def estimate(
    task: TaskSpec,
    policy_factory: PolicyFactory,
    *,
    reps: int,
    seed: int = 0,
    faults: Optional[FaultProcess] = None,
    energy_model: Optional[EnergyModel] = None,
    faults_during_overhead: bool = False,
    limits: SimulationLimits = SimulationLimits(),
) -> CellEstimate:
    """Monte-Carlo estimate of one experiment cell (see module doc)."""
    results = run_many(
        task,
        policy_factory,
        reps=reps,
        seed=seed,
        faults=faults,
        energy_model=energy_model,
        faults_during_overhead=faults_during_overhead,
        limits=limits,
    )
    return summarize(results)


def summarize(results: List[RunResult]) -> CellEstimate:
    """Aggregate raw run results into a :class:`CellEstimate`."""
    if not results:
        raise ParameterError("cannot summarise zero results")
    reps = len(results)
    timely = [r for r in results if r.timely]
    energy_timely = [r.energy for r in timely]
    energy_all = [r.energy for r in results]
    mean_finish = (
        sum(r.finish_time for r in timely) / len(timely) if timely else math.nan
    )
    return CellEstimate(
        p_timely=ProportionEstimate.from_counts(len(timely), reps),
        energy_timely=MeanEstimate.from_values(energy_timely),
        energy_all=MeanEstimate.from_values(energy_all),
        mean_finish_time_timely=mean_finish,
        mean_detected_faults=sum(r.detected_faults for r in results) / reps,
        mean_checkpoints=sum(r.checkpoints for r in results) / reps,
        mean_sub_checkpoints=sum(r.sub_checkpoints for r in results) / reps,
        reps=reps,
    )
