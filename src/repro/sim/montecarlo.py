"""Monte-Carlo harness: repeated runs → the paper's (P, E) estimates.

One :func:`estimate` call reproduces one cell of the paper's tables:
``reps`` independent runs of a (task, scheme) pair, aggregated into the
probability of timely completion and the mean energy of timely runs
(``NaN`` when no run is timely — the paper's own convention), plus the
all-runs energy and diagnostic counters that the paper does not report
but a user of the library will want.

Rep ``i`` of a cell always draws its fault realisation from
``RandomSource(seed).substream(i)`` — a ``SeedSequence`` spawn keyed by
the absolute rep index, never by worker or block.  Aggregation is
*blocked*: reps accumulate into fixed-size blocks of O(1) streaming
moments (:mod:`repro.sim.metrics`), merged in block order.  That
discipline is what lets :mod:`repro.sim.parallel` shard a cell across
processes (``estimate(..., runner=BatchRunner(workers=8))``) — or any
other :mod:`~repro.sim.backends` backend — and still return the
bit-identical :class:`CellEstimate` of a one-worker pass, without ever
shipping raw per-rep observations.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional

import numpy as np

from repro.errors import ParameterError
from repro.sim.energy import EnergyModel
from repro.sim.executor import (
    RunResult,
    SimulationLimits,
    default_energy_model,
    execute_once,
    simulate_run,
)
from repro.sim.faults import FaultProcess, PoissonFaults
from repro.sim.metrics import (
    MeanEstimate,
    MomentAccumulator,
    ProportionAccumulator,
    ProportionEstimate,
)
from repro.sim.rng import RandomSource
from repro.sim.task import TaskSpec

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.schemes import CheckpointPolicy
    from repro.sim.parallel import BatchRunner

__all__ = [
    "CellAccumulator",
    "CellEstimate",
    "RunSlab",
    "accumulate_range",
    "estimate",
    "run_many",
    "run_range",
]

PolicyFactory = Callable[[], "CheckpointPolicy"]


@dataclass(frozen=True)
class CellEstimate:
    """Aggregated outcome of one Monte-Carlo cell."""

    p_timely: ProportionEstimate
    energy_timely: MeanEstimate
    energy_all: MeanEstimate
    mean_finish_time_timely: float
    mean_detected_faults: float
    mean_checkpoints: float
    mean_sub_checkpoints: float
    reps: int

    @property
    def p(self) -> float:
        """``P`` — the paper's probability of timely completion."""
        return self.p_timely.value

    @property
    def e(self) -> float:
        """``E`` — the paper's energy (mean over timely runs; NaN if none)."""
        return self.energy_timely.value

    def same_values(self, other: "CellEstimate") -> bool:
        """Field-for-field identity, treating NaN as equal to NaN.

        Dataclass ``==`` happens to hold for NaN-bearing estimates in
        CPython (every NaN here is the ``math.nan`` singleton, and
        tuple comparison short-circuits on identity), but that is an
        implementation accident.  Determinism checks should use this:
        ``repr`` round-trips floats exactly and spells every NaN
        ``nan``, so repr equality is value identity with NaN == NaN.
        """
        return repr(self) == repr(other)


def run_many(
    task: TaskSpec,
    policy_factory: PolicyFactory,
    *,
    reps: int,
    seed: int = 0,
    faults: Optional[FaultProcess] = None,
    energy_model: Optional[EnergyModel] = None,
    faults_during_overhead: bool = False,
    limits: SimulationLimits = SimulationLimits(),
) -> List[RunResult]:
    """Execute ``reps`` independent runs and return every result.

    ``policy_factory`` must build a fresh policy per run (policies cache
    plans).  Fault realisations come from independent substreams of
    ``seed``, so results are reproducible and adding reps never changes
    earlier runs.
    """
    if reps <= 0:
        raise ParameterError(f"reps must be > 0, got {reps}")
    return run_range(
        task,
        policy_factory,
        start=0,
        stop=reps,
        seed=seed,
        faults=faults,
        energy_model=energy_model,
        faults_during_overhead=faults_during_overhead,
        limits=limits,
    )


def run_range(
    task: TaskSpec,
    policy_factory: PolicyFactory,
    *,
    start: int,
    stop: int,
    seed: int = 0,
    faults: Optional[FaultProcess] = None,
    energy_model: Optional[EnergyModel] = None,
    faults_during_overhead: bool = False,
    limits: SimulationLimits = SimulationLimits(),
) -> List[RunResult]:
    """Execute reps ``start .. stop-1`` of a cell (one shard of it).

    Rep ``i`` draws from ``RandomSource(seed).substream(i)`` whatever
    the range bounds, so concatenating shard results in rep order
    reproduces :func:`run_many` exactly — the contract the parallel
    batch runner relies on.
    """
    if start < 0 or stop < start:
        raise ParameterError(f"need 0 <= start <= stop, got [{start}, {stop})")
    if faults is None:
        faults = PoissonFaults(task.fault_rate)
    if energy_model is None:
        energy_model = EnergyModel.paper_dmr()
    source = RandomSource(seed)
    results: List[RunResult] = []
    for index in range(start, stop):
        results.append(
            simulate_run(
                task,
                policy_factory(),
                faults,
                energy_model,
                source.substream(index),
                faults_during_overhead=faults_during_overhead,
                limits=limits,
            )
        )
    return results


def estimate(
    task: TaskSpec,
    policy_factory: PolicyFactory,
    *,
    reps: int,
    seed: int = 0,
    faults: Optional[FaultProcess] = None,
    energy_model: Optional[EnergyModel] = None,
    faults_during_overhead: bool = False,
    limits: SimulationLimits = SimulationLimits(),
    runner: Optional["BatchRunner"] = None,
    backend=None,
) -> CellEstimate:
    """Monte-Carlo estimate of one experiment cell (see module doc).

    Pass ``runner`` (a :class:`repro.sim.parallel.BatchRunner`) to shard
    the reps across worker processes; the estimate is identical to the
    serial one for the same ``seed`` and block size.  Without a runner
    the default serial runner is used, so the no-runner path follows
    the *same* blocked reduction as every parallel topology.
    ``backend`` instead names where blocks run (``"serial"``,
    ``"process"``, ``"distributed"`` — see :func:`~repro.sim.backends.
    make_backend`) or passes a backend instance; a named backend is
    built for this call and released afterwards.  ``runner`` and
    ``backend`` are mutually exclusive.
    """
    from repro.sim.parallel import CellJob, runner_scope

    job = CellJob(
        task=task,
        policy_factory=policy_factory,
        reps=reps,
        seed=seed,
        faults=faults,
        energy_model=energy_model,
        faults_during_overhead=faults_during_overhead,
        limits=limits,
    )
    with runner_scope(runner, backend=backend) as scoped:
        return scoped.run_cell(job)


class CellAccumulator:
    """Mergeable aggregation state behind a :class:`CellEstimate`.

    One accumulator summarises a contiguous block of a cell's reps;
    :meth:`merge` folds the next block in (blocks must be merged in rep
    order).  The payload is O(1) in the rep count: float statistics are
    streaming moment accumulators (count / compensated sum / Σx², see
    :class:`~repro.sim.metrics.MomentAccumulator`) and the diagnostic
    counters are exact integers.  Merging per-block accumulators in
    block order therefore reproduces the one-pass statistics without
    ever shipping raw observations — the property
    ``tests/test_parallel.py`` pins down.
    """

    __slots__ = (
        "timely",
        "energy_timely",
        "energy_all",
        "finish_timely",
        "detected_faults",
        "checkpoints",
        "sub_checkpoints",
    )

    def __init__(self) -> None:
        self.timely = ProportionAccumulator()
        self.energy_timely = MomentAccumulator()
        self.energy_all = MomentAccumulator()
        self.finish_timely = MomentAccumulator()
        self.detected_faults = 0
        self.checkpoints = 0
        self.sub_checkpoints = 0

    @property
    def reps(self) -> int:
        return self.timely.trials

    def add(self, result: RunResult) -> None:
        """Fold in one run."""
        self.timely.add(result.timely)
        self.energy_all.add(result.energy)
        if result.timely:
            self.energy_timely.add(result.energy)
            self.finish_timely.add(result.finish_time)
        self.detected_faults += result.detected_faults
        self.checkpoints += result.checkpoints
        self.sub_checkpoints += result.sub_checkpoints

    def add_all(self, results: Iterable[RunResult]) -> "CellAccumulator":
        for result in results:
            self.add(result)
        return self

    def merge(self, other: "CellAccumulator") -> "CellAccumulator":
        """Fold in the next shard (call in rep order)."""
        self.timely.merge(other.timely)
        self.energy_timely.merge(other.energy_timely)
        self.energy_all.merge(other.energy_all)
        self.finish_timely.merge(other.finish_timely)
        self.detected_faults += other.detected_faults
        self.checkpoints += other.checkpoints
        self.sub_checkpoints += other.sub_checkpoints
        return self

    def finalize(self) -> CellEstimate:
        """Close out into a :class:`CellEstimate`.

        The timely means follow the paper's convention: ``NaN`` when no
        run was timely (also the case when merging all-empty shards).
        """
        reps = self.reps
        if reps == 0:
            raise ParameterError("cannot summarise zero results")
        return CellEstimate(
            p_timely=self.timely.estimate(),
            energy_timely=self.energy_timely.estimate(),
            energy_all=self.energy_all.estimate(),
            mean_finish_time_timely=self.finish_timely.mean,
            mean_detected_faults=self.detected_faults / reps,
            mean_checkpoints=self.checkpoints / reps,
            mean_sub_checkpoints=self.sub_checkpoints / reps,
            reps=reps,
        )


def summarize(results: List[RunResult]) -> CellEstimate:
    """Aggregate raw run results into a :class:`CellEstimate`."""
    if not results:
        raise ParameterError("cannot summarise zero results")
    return CellAccumulator().add_all(results).finalize()


class RunSlab:
    """Reusable per-worker scratch arrays for one block of reps.

    The slab path writes each rep's outcome straight into preallocated
    NumPy columns and folds whole columns into the block's accumulators
    afterwards (:func:`accumulate_range`) — no per-rep
    :class:`~repro.sim.executor.RunResult`, no per-rep accumulator
    calls, no per-rep allocation beyond the simulation itself.  One
    slab per worker (thread) is reused across all blocks it executes;
    it grows to the largest block it has seen and never shrinks.
    """

    __slots__ = (
        "capacity",
        "timely",
        "energy",
        "finish",
        "detected",
        "checkpoints",
        "sub_checkpoints",
    )

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ParameterError(f"capacity must be >= 1, got {capacity}")
        self.capacity = 0
        self._grow(capacity)

    def _grow(self, capacity: int) -> None:
        self.capacity = capacity
        self.timely = np.empty(capacity, dtype=bool)
        self.energy = np.empty(capacity, dtype=np.float64)
        self.finish = np.empty(capacity, dtype=np.float64)
        self.detected = np.empty(capacity, dtype=np.int64)
        self.checkpoints = np.empty(capacity, dtype=np.int64)
        self.sub_checkpoints = np.empty(capacity, dtype=np.int64)

    def ensure(self, count: int) -> None:
        """Make room for a ``count``-rep block."""
        if count > self.capacity:
            self._grow(count)

    def fold(self, count: int) -> CellAccumulator:
        """Fold the first ``count`` filled rows into a fresh accumulator.

        Column-wise ``add_many`` feeds every accumulator the same
        values in the same rep order as per-rep
        :meth:`CellAccumulator.add` calls would, so the result is
        bit-identical to the RunResult-at-a-time path
        (``tests/test_executor_slab.py``).
        """
        timely = self.timely[:count]
        energy = self.energy[:count]
        accumulator = CellAccumulator()
        accumulator.timely.add_many(timely)
        accumulator.energy_timely.add_many(energy[timely])
        accumulator.energy_all.add_many(energy)
        accumulator.finish_timely.add_many(self.finish[:count][timely])
        accumulator.detected_faults = int(self.detected[:count].sum())
        accumulator.checkpoints = int(self.checkpoints[:count].sum())
        accumulator.sub_checkpoints = int(self.sub_checkpoints[:count].sum())
        return accumulator


_SLAB_STORE = threading.local()


def _worker_slab(count: int) -> RunSlab:
    """This worker's reusable slab, grown to at least ``count`` rows."""
    slab = getattr(_SLAB_STORE, "slab", None)
    if slab is None:
        slab = RunSlab(max(count, 256))
        _SLAB_STORE.slab = slab
    else:
        slab.ensure(count)
    return slab


def accumulate_range(
    task: TaskSpec,
    policy_factory: PolicyFactory,
    *,
    start: int,
    stop: int,
    seed: int = 0,
    faults: Optional[FaultProcess] = None,
    energy_model: Optional[EnergyModel] = None,
    faults_during_overhead: bool = False,
    limits: SimulationLimits = SimulationLimits(),
    slab: Optional[RunSlab] = None,
    kernel: str = "exact",
) -> CellAccumulator:
    """Reps ``[start, stop)`` of a cell, folded through a slab.

    The accumulator-producing twin of :func:`run_range` and the hot
    path behind :meth:`repro.sim.backends.CellJob.run_block`: identical
    simulation and identical rep-order accumulation (bit-for-bit — the
    same streams, the same arithmetic), but each run lands in reusable
    NumPy scratch instead of a :class:`RunResult`, and the block folds
    into the accumulators via vectorised ``add_many``.

    ``kernel`` selects the execution engine: ``"exact"`` (default) is
    this bit-identical per-rep path; ``"fast"`` routes the block to the
    vectorised, statistically-equivalent kernel
    (:func:`repro.sim.kernel.accumulate_range_fast`), which falls back
    here per block for unsupported cells.
    """
    if kernel not in ("exact", "fast"):
        raise ParameterError(
            f"kernel must be 'exact' or 'fast', got {kernel!r}"
        )
    if kernel == "fast":
        from repro.sim.kernel import accumulate_range_fast

        return accumulate_range_fast(
            task,
            policy_factory,
            start=start,
            stop=stop,
            seed=seed,
            faults=faults,
            energy_model=energy_model,
            faults_during_overhead=faults_during_overhead,
            limits=limits,
            slab=slab,
        )
    if start < 0 or stop < start:
        raise ParameterError(f"need 0 <= start <= stop, got [{start}, {stop})")
    count = stop - start
    if count == 0:
        return CellAccumulator()
    if faults is None:
        faults = PoissonFaults(task.fault_rate)
    if energy_model is None:
        energy_model = default_energy_model()
    if slab is None:
        slab = _worker_slab(count)
    else:
        slab.ensure(count)
    timely = slab.timely
    energy = slab.energy
    finish = slab.finish
    detected = slab.detected
    checkpoints = slab.checkpoints
    sub_checkpoints = slab.sub_checkpoints
    source = RandomSource(seed)
    substream = source.substream
    for row, index in enumerate(range(start, stop)):
        outcome = execute_once(
            task,
            policy_factory(),
            faults,
            energy_model,
            substream(index),
            faults_during_overhead=faults_during_overhead,
            limits=limits,
        )
        timely[row] = outcome.timely
        energy[row] = outcome.energy
        finish[row] = outcome.finish_time
        detected[row] = outcome.detected_faults
        checkpoints[row] = outcome.checkpoints
        sub_checkpoints[row] = outcome.sub_checkpoints
    return slab.fold(count)
