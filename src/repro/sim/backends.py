"""Execution backends: where Monte-Carlo rep blocks actually run.

The statistics layer (:mod:`repro.sim.metrics`) makes a cell's estimate
a fold of O(1) per-block accumulators, merged in block order.  This
module is the other half of that seam: an :class:`ExecutionBackend` is
anything that can evaluate a batch of :class:`BlockTask`\\ s — one
fixed-size rep block of one cell each — and return their accumulators.
:class:`~repro.sim.parallel.BatchRunner` plans the blocks, hands them
to a backend, and merges the results; it never cares *where* a block
ran.

Three backends ship today:

* :class:`SerialBackend` — in-process loop; the reference semantics and
  the fallback everywhere.
* :class:`ProcessBackend` — a lazily created, reused
  :class:`~concurrent.futures.ProcessPoolExecutor`.  Jobs whose payload
  cannot be pickled run in-process; a broken pool is discarded and its
  blocks recomputed locally, so the backend never fails where the
  serial path would have succeeded.
* :class:`DistributedBackend` — the stub surface a remote executor
  plugs into.  The contract it must honour is exactly the one the
  process pool honours (see its docstring); nothing upstream changes.

Determinism does not depend on the backend: block tasks are keyed by
absolute block index, every job re-derives its random streams from that
key, and the caller merges results in block order whatever order they
completed in.
"""

from __future__ import annotations

import os
import pickle
import weakref
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.errors import ParameterError
from repro.sim.energy import EnergyModel
from repro.sim.executor import SimulationLimits
from repro.sim.faults import FaultProcess
from repro.sim.montecarlo import CellAccumulator, PolicyFactory, run_range
from repro.sim.task import TaskSpec

__all__ = [
    "CellJob",
    "BlockTask",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessBackend",
    "DistributedBackend",
    "execute_block",
    "plan_blocks",
    "default_workers",
]


def default_workers() -> int:
    """The machine's CPU count (the natural ``workers`` choice)."""
    return os.cpu_count() or 1


@dataclass(frozen=True)
class CellJob:
    """One event-executor Monte-Carlo cell, described enough to ship.

    Everything a worker process needs to run a block of the cell: the
    payload must be picklable (dataclass specs and ``functools.partial``
    of module-level policies are; closures are not — those fall back to
    in-process execution).
    """

    task: TaskSpec
    policy_factory: PolicyFactory
    reps: int
    seed: int = 0
    faults: Optional[FaultProcess] = None
    energy_model: Optional[EnergyModel] = None
    faults_during_overhead: bool = False
    limits: SimulationLimits = field(default_factory=SimulationLimits)

    def __post_init__(self) -> None:
        if self.reps <= 0:
            raise ParameterError(f"reps must be > 0, got {self.reps}")

    def run_block(self, block: int, start: int, stop: int) -> CellAccumulator:
        """Run reps ``[start, stop)`` of this cell into an accumulator.

        Rep ``i`` draws from ``SeedSequence(seed, spawn_key=(i,))``
        whatever the block bounds, so ``block`` is unused here — the
        executor path is deterministic *per rep*, stronger than the
        per-block contract the static fast path provides.
        """
        results = run_range(
            self.task,
            self.policy_factory,
            start=start,
            stop=stop,
            seed=self.seed,
            faults=self.faults,
            energy_model=self.energy_model,
            faults_during_overhead=self.faults_during_overhead,
            limits=self.limits,
        )
        return CellAccumulator().add_all(results)


@dataclass(frozen=True)
class BlockTask:
    """One fixed-size rep block of one job in a batch.

    ``block`` is the absolute block index within the job (``start ==
    block · block_size``); the merge at the coordinator happens in
    ``(job_index, block)`` order regardless of completion order.
    """

    job: object  # CellJob or repro.sim.fastpath.StaticCellJob
    job_index: int
    block: int
    start: int
    stop: int


def execute_block(task: BlockTask) -> CellAccumulator:
    """Worker entry point (module-level so it pickles by reference)."""
    return task.job.run_block(task.block, task.start, task.stop)


def plan_blocks(jobs: Sequence[object], block_size: int) -> List[BlockTask]:
    """Every job's rep range cut into fixed-size blocks, in order."""
    if block_size < 1:
        raise ParameterError(f"block_size must be >= 1, got {block_size}")
    return [
        BlockTask(
            job=job,
            job_index=index,
            block=block,
            start=start,
            stop=min(start + block_size, job.reps),
        )
        for index, job in enumerate(jobs)
        for block, start in enumerate(range(0, job.reps, block_size))
    ]


@runtime_checkable
class ExecutionBackend(Protocol):
    """Anything that can evaluate a batch of block tasks.

    Implementations must return one :class:`~repro.sim.montecarlo.
    CellAccumulator` per task, aligned with the input order (completion
    order is the backend's business; result order is not).  They must
    not perturb the tasks' random streams — all seeding is derived from
    the task payload itself.
    """

    name: str

    def run_tasks(
        self, tasks: Sequence[BlockTask]
    ) -> List[CellAccumulator]:  # pragma: no cover - protocol
        ...

    def close(self) -> None:  # pragma: no cover - protocol
        ...


class SerialBackend:
    """In-process block execution — the reference backend."""

    name = "serial"

    def run_tasks(self, tasks: Sequence[BlockTask]) -> List[CellAccumulator]:
        return [execute_block(task) for task in tasks]

    def close(self) -> None:
        """Nothing to release."""


class ProcessBackend:
    """Block execution over a lazily created, reused process pool.

    Parameters
    ----------
    workers:
        Worker processes; ``None`` means :func:`default_workers`.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._finalizer: Optional[weakref.finalize] = None

    def close(self) -> None:
        """Shut down the worker pool (idempotent; pool recreates lazily)."""
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._pool = None

    def run_tasks(self, tasks: Sequence[BlockTask]) -> List[CellAccumulator]:
        results: List[Optional[CellAccumulator]] = [None] * len(tasks)
        shippable: Dict[int, bool] = {}
        pooled: List[int] = []
        local: List[int] = []
        for index, task in enumerate(tasks):
            ok = shippable.get(task.job_index)
            if ok is None:
                ok = _picklable(task.job)
                shippable[task.job_index] = ok
            (pooled if ok else local).append(index)
        futures: List[Tuple[int, Future]] = []
        try:
            for index in pooled:
                futures.append(
                    (index, self._ensure_pool().submit(execute_block, tasks[index]))
                )
        except BrokenExecutor:
            # The pool died while we were still handing it work (e.g. a
            # worker OOM-killed between batches); the unsubmitted tail
            # runs in-process below.
            self.close()
        # Unshippable blocks run in-process *while* the pool works on
        # the submitted ones, so a mixed grid overlaps both phases.
        for index in local:
            results[index] = execute_block(tasks[index])
        for index, future in futures:
            try:
                results[index] = future.result()
            except BrokenExecutor:
                # A dead worker poisons the whole executor; discard it
                # (the next batch gets a fresh one) and recompute this
                # block in-process — the work is deterministic, so the
                # backend must not fail where the serial path would
                # have succeeded.
                self.close()
                results[index] = execute_block(tasks[index])
        for index in pooled[len(futures):]:
            results[index] = execute_block(tasks[index])
        return results  # type: ignore[return-value] - every slot filled

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The lazily-created, reused worker pool.

        Reuse amortises worker startup across batches (``validate``
        runs one batch per table); a ``weakref.finalize`` shuts the
        pool down when the backend is garbage-collected, so callers who
        never bother with :meth:`close` leak nothing.
        """
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
            self._finalizer = weakref.finalize(
                self, ProcessPoolExecutor.shutdown, self._pool, wait=True
            )
        return self._pool


class DistributedBackend:
    """The seam a future off-host executor plugs into (stub).

    A real implementation ships each :class:`BlockTask` to a remote
    worker and collects its :class:`~repro.sim.montecarlo.
    CellAccumulator`.  The contract it must honour — and everything it
    may rely on — is:

    * **Payload.**  Tasks pickle: jobs are frozen dataclasses of specs
      and ``functools.partial`` factories over module-level classes.
    * **Results.**  One accumulator per task, aligned with input order;
      each is O(1) in ``stop - start`` (streaming moments and integer
      counters — never raw observations), so result transport is
      constant-size per block.
    * **Determinism.**  All randomness is re-derived from the task
      payload (cell seed + absolute rep/block index).  A retried,
      re-routed or duplicated block computes the identical accumulator,
      so at-least-once delivery plus idempotent collection is enough.
    * **Merging** happens at the coordinator, in block order — workers
      never need to see each other.

    Until such a transport exists, instantiating the stub is allowed
    (so wiring can be tested) but running tasks is not.
    """

    name = "distributed"

    def __init__(self, url: Optional[str] = None) -> None:
        self.url = url

    def run_tasks(self, tasks: Sequence[BlockTask]) -> List[CellAccumulator]:
        raise NotImplementedError(
            "DistributedBackend is a stub: implement run_tasks() against a "
            "transport that ships pickled BlockTasks and returns their "
            "CellAccumulators in input order (see the class docstring for "
            "the full contract)."
        )

    def close(self) -> None:
        """Nothing to release."""


def _picklable(job: object) -> bool:
    """Whether ``job`` can be shipped to a worker process."""
    try:
        pickle.dumps(job)
        return True
    except Exception:
        return False
